#!/usr/bin/env python
"""Quorum-cluster benchmark: node count × AZ-outage patterns.

Sweeps the cluster layer (:mod:`repro.core.cluster`) over cluster
sizes and injected outage patterns and reports, per configuration:

* **failover time** — primary crash → standby promoted and restored;
* **replication cost** — inter-AZ bytes per checkpoint (the quantity
  cloud-Aurora engineering actually bills for);
* **repair** — segments rebuilt onto rejoining nodes, with per-segment
  MTTR p50/max (the window that bounds durability);
* **data loss** — checkpoints that were quorum-acknowledged but not
  recovered after failover.  The acceptance criterion: **zero**, in
  every configuration, including the single-AZ outage.

Outage patterns, injected halfway through the run:

* ``none``  — steady state;
* ``node``  — one node power-fails;
* ``az``    — one full availability zone power-fails (the headline
  Aurora scenario: an AZ outage plus quorum math must cost nothing);
* ``az+1``  — an AZ *plus* one node of another AZ: below the write
  quorum, so durability stalls until repair re-establishes copies —
  still without losing anything acknowledged;
* ``partition`` — the primary is cut from every node but keeps
  committing on its side; its lease expires, a standby is promoted
  under a bumped epoch, and after the heal anti-entropy
  reconciliation fences the doomed tail.  Measures the epoch-bump
  and reconcile costs on top of the usual loss criterion: nothing
  acknowledged before the cut is lost, nothing fenced survives.

Emits ``BENCH_cluster.json`` at the repo root::

    python benchmarks/bench_cluster.py           # full sweep
    python benchmarks/bench_cluster.py --smoke   # CI-sized point
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import Machine, load_aurora
from repro.core import telemetry
from repro.core.cluster import SLSCluster
from repro.core.faults import PRIMARY, FaultPlan
from repro.units import PAGE_SIZE

NODE_SWEEP = [3, 6, 9]
OUTAGES = ["none", "node", "az", "az+1", "partition"]
AZS = 3
CHECKPOINTS = 10
SEGMENT_BYTES = 1024
#: Pages dirtied per step (keeps each delta several segments wide).
DIRTY_PAGES = 4

JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_cluster.json"


def _payload(step: int) -> bytes:
    return b"cluster-step-%04d" % step


def _inject_outage(cluster: SLSCluster, outage: str) -> list:
    """Down the pattern's nodes; returns the node ids taken out."""
    if outage == "none":
        return []
    if outage == "node":
        cluster.node_down(1, reason="bench")
        return [1]
    downed = cluster.az_down(1, reason="bench")
    if outage == "az+1":
        victim = next(node.node_id for node in cluster.nodes
                      if not node.down and node.az != 1)
        cluster.node_down(victim, reason="bench")
        downed.append(victim)
    return downed


def run_config(nodes: int, outage: str, checkpoints: int) -> dict:
    telemetry.reset()
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("bench")
    addr = proc.vmspace.mmap(16 * PAGE_SIZE, name="heap")
    group = sls.attach(proc, name="bench", periodic=False)
    cluster = SLSCluster(sls, group, nodes=nodes, azs=AZS,
                         segment_bytes=SEGMENT_BYTES)

    step_of = {}
    downed: list = []
    outage_at = checkpoints // 2
    wall_t0 = time.perf_counter()
    for step in range(checkpoints):
        if step == outage_at:
            downed = _inject_outage(cluster, outage)
        proc.vmspace.write(addr, _payload(step))
        for page in range(1, DIRTY_PAGES):
            proc.vmspace.write(addr + page * PAGE_SIZE,
                               _payload(step) + b":%d" % page)
        result = sls.checkpoint(group, sync=True)
        step_of[result.info.ckpt_id] = step
        cluster.pump()
    durable_pre_repair = cluster.durable
    stalled_checkpoints = ((checkpoints - 1)
                           - step_of[durable_pre_repair])

    for node_id in downed:
        cluster.node_up(node_id)
    repair_report = (cluster.repair() if downed
                     else {"checkpoints": 0, "segments": 0, "targets": 0,
                           "wall_ns": 0, "mttr_p50_ns": 0,
                           "mttr_max_ns": 0})
    acked_step = step_of[cluster.durable]

    machine.crash()
    promoted = cluster.failover()
    restored = promoted.root.vmspace.read(addr, len(_payload(0)))
    restored_step = int(restored.rsplit(b"-", 1)[1])
    failover_ns = telemetry.registry().histogram(
        "sls.cluster.failover_ns", group=group.group_id).max
    wall_s = time.perf_counter() - wall_t0

    return {
        "nodes": nodes,
        "azs": AZS,
        "write_quorum": cluster.write_quorum,
        "read_quorum": cluster.read_quorum,
        "outage": outage,
        "nodes_downed": downed,
        "checkpoints": checkpoints,
        "stalled_checkpoints_during_outage": stalled_checkpoints,
        "acked_step": acked_step,
        "restored_step": restored_step,
        "data_loss_checkpoints": acked_step - restored_step,
        "failover_ns": failover_ns,
        "inter_az_bytes": cluster.inter_az_bytes,
        "inter_az_bytes_per_ckpt": cluster.inter_az_bytes // checkpoints,
        "repair": repair_report,
        "wall_s": wall_s,
    }


def run_partition_config(nodes: int, checkpoints: int) -> dict:
    """The partition scenario: cut, doomed tail, lease expiry,
    epoch-bumped promotion, heal, fence, reconcile, recover."""
    telemetry.reset()
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("bench")
    addr = proc.vmspace.mmap(16 * PAGE_SIZE, name="heap")
    group = sls.attach(proc, name="bench", periodic=False)
    cluster = SLSCluster(sls, group, nodes=nodes, azs=AZS,
                         segment_bytes=SEGMENT_BYTES)
    plan = FaultPlan(name="bench-partition")
    machine.set_fault_plan(plan)

    step_of = {}
    cut_at = checkpoints // 2
    wall_t0 = time.perf_counter()
    for step in range(checkpoints):
        if step == cut_at:
            plan.partition([PRIMARY], list(range(nodes)))
        proc.vmspace.write(addr, _payload(step))
        for page in range(1, DIRTY_PAGES):
            proc.vmspace.write(addr + page * PAGE_SIZE,
                               _payload(step) + b":%d" % page)
        result = sls.checkpoint(group, sync=True)
        step_of[result.info.ckpt_id] = step
        cluster.pump()
    acked_step = step_of[cluster.durable]
    doomed = (checkpoints - 1) - acked_step

    machine.clock.advance(2 * cluster.lease_ns)
    cluster.pump()            # zero grants past expiry: lease lost
    cluster.failover()        # quorum epoch bump on the majority side
    plan.heal()
    cluster.pump()            # displaced primary fences itself
    recon = cluster.reconcile()

    machine.crash()
    recovery = cluster.recover()
    restored = recovery.result.root.vmspace.read(addr, len(_payload(0)))
    restored_step = int(restored.rsplit(b"-", 1)[1])
    registry = telemetry.registry()
    failover_ns = registry.histogram(
        "sls.cluster.failover_ns", group=group.group_id).max
    epoch_bump_ns = registry.histogram(
        "sls.cluster.epoch_bump_ns", group=group.group_id).max
    wall_s = time.perf_counter() - wall_t0

    return {
        "nodes": nodes,
        "azs": AZS,
        "write_quorum": cluster.write_quorum,
        "read_quorum": cluster.read_quorum,
        "outage": "partition",
        "nodes_downed": [],
        "checkpoints": checkpoints,
        "stalled_checkpoints_during_outage": doomed,
        "doomed_checkpoints": doomed,
        "fenced": recon["fenced"],
        "epoch_bumps": cluster.stats["epoch_bumps"],
        "epoch_bump_ns": epoch_bump_ns,
        "reconcile_ns": recon["reconcile_ns"],
        "reconcile_bytes": recon["reconcile_bytes"],
        "acked_step": acked_step,
        "restored_step": restored_step,
        "data_loss_checkpoints": acked_step - restored_step,
        "failover_ns": failover_ns,
        "inter_az_bytes": cluster.inter_az_bytes,
        "inter_az_bytes_per_ckpt": cluster.inter_az_bytes // checkpoints,
        "repair": recon,
        "wall_s": wall_s,
    }


def run_sweep(node_sweep, outages, checkpoints: int) -> dict:
    rows = []
    for nodes in node_sweep:
        for outage in outages:
            print(f"[cluster] {nodes} nodes / {AZS} AZs, "
                  f"outage={outage} ...", flush=True)
            row = (run_partition_config(nodes, checkpoints)
                   if outage == "partition"
                   else run_config(nodes, outage, checkpoints))
            print(f"[cluster]   durable@step {row['acked_step']}, "
                  f"restored@step {row['restored_step']}, "
                  f"loss={row['data_loss_checkpoints']}, "
                  f"failover={row['failover_ns']}ns, "
                  f"repaired {row['repair']['segments']} segment(s)",
                  flush=True)
            rows.append(row)
    return {
        "benchmark": "cluster",
        "description": "quorum cluster: node count x AZ-outage sweep",
        "segment_bytes": SEGMENT_BYTES,
        "results": rows,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized single point (6 nodes, AZ "
                             "outage) with hard assertions")
    parser.add_argument("--checkpoints", type=int, default=None)
    parser.add_argument("--output", type=pathlib.Path, default=JSON_PATH)
    args = parser.parse_args()

    if args.smoke:
        node_sweep, outages = [6], ["az"]
        checkpoints = args.checkpoints or 6
    else:
        node_sweep, outages = NODE_SWEEP, OUTAGES
        checkpoints = args.checkpoints or CHECKPOINTS

    results = run_sweep(node_sweep, outages, checkpoints)
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"[cluster] wrote {args.output}")

    failures = []
    for row in results["results"]:
        if row["data_loss_checkpoints"] != 0:
            failures.append(f"{row['nodes']}n/{row['outage']}: lost "
                            f"{row['data_loss_checkpoints']} acked "
                            f"checkpoint(s)")
        if row["outage"] not in ("none", "partition") \
                and row["repair"]["segments"] == 0:
            failures.append(f"{row['nodes']}n/{row['outage']}: "
                            f"repair rebuilt nothing")
        if row["outage"] == "partition":
            if row["fenced"] < row["doomed_checkpoints"]:
                failures.append(
                    f"{row['nodes']}n/partition: only {row['fenced']} "
                    f"fenced write(s) drained for "
                    f"{row['doomed_checkpoints']} doomed checkpoint(s)")
            if row["epoch_bumps"] != 1:
                failures.append(
                    f"{row['nodes']}n/partition: expected exactly one "
                    f"epoch bump, saw {row['epoch_bumps']}")
    for failure in failures:
        print(f"[cluster] FAIL {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
