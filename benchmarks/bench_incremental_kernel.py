"""Incremental kernel-state checkpoints: cost vs dirty fraction.

A 1000-fd application is checkpointed continuously while a varying
fraction of its descriptors mutates between ticks.  With epoch
dirty-tracking the per-checkpoint record count (and the staged bytes
and stop time behind it) must scale with the *dirty set*, not with
total kernel state — the kernel-state half of the claim the paper
makes for memory via system shadowing (§6).  The 0% row is the floor
(descriptor + always-dirty process records only); the 100% row
matches the old full-walk behavior.

Emits ``BENCH_incremental_kernel.json`` at the repo root to seed the
perf trajectory, alongside the usual results table.
"""

import json
import pathlib

from bench_utils import run_once

from repro import Machine, load_aurora
from repro.kernel.fs import O_CREAT, O_RDWR
from repro.units import fmt_size, fmt_time

NUM_FDS = 1000
#: Dirty fractions swept per tick (plus the 1% acceptance point).
FRACTIONS = (0.0, 0.01, 0.10, 0.50, 1.0)
#: Steady-state ticks measured per fraction.
TICKS = 4

JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_incremental_kernel.json"


def _setup():
    machine = Machine()
    sls = load_aurora(machine)
    kernel = machine.kernel
    proc = kernel.spawn("incr")
    kernel.vfs.mkdir("/bench")
    fds = [kernel.open(proc, f"/bench/f{i}", O_RDWR | O_CREAT)
           for i in range(NUM_FDS)]
    for fd in fds:
        kernel.write(proc, fd, b"seed")
    group = sls.attach(proc, periodic=False)
    return machine, sls, kernel, proc, group, fds


def run_experiment():
    machine, sls, kernel, proc, group, fds = _setup()

    # The first checkpoint is the full baseline: exactly what every
    # checkpoint cost before incremental kernel-state serialization.
    base = sls.checkpoint(group, sync=True)
    full_records = base.records_written
    full_bytes = base.bytes_staged

    rows = []
    for fraction in FRACTIONS:
        dirty = int(NUM_FDS * fraction)
        written = skipped = staged = stop = 0
        for tick in range(TICKS):
            for fd in fds[:dirty]:
                kernel.write(proc, fd, b"x")
            result = sls.checkpoint(group, sync=True)
            written += result.records_written
            skipped += result.records_skipped
            staged += result.bytes_staged
            stop += result.stop_ns
        rows.append({
            "dirty_fraction": fraction,
            "dirty_fds": dirty,
            "records_written": written / TICKS,
            "records_skipped": skipped / TICKS,
            "bytes_staged": staged / TICKS,
            "stop_ns": stop / TICKS,
        })
    return {
        "fds": NUM_FDS,
        "ticks": TICKS,
        "full_records": full_records,
        "full_bytes": full_bytes,
        "sweep": rows,
    }


def test_incremental_kernel_sweep(benchmark, report):
    results = run_once(benchmark, run_experiment)
    full_records = results["full_records"]

    lines = ["Incremental kernel-state checkpoints - cost vs dirty fraction",
             f"(1000 fds; full-walk baseline: {full_records} records, "
             f"{fmt_size(results['full_bytes'])})",
             f"{'dirty':>6} {'records':>9} {'skipped':>9} "
             f"{'staged':>10} {'stop':>10} {'vs full':>8}"]
    for row in results["sweep"]:
        ratio = full_records / max(row["records_written"], 1)
        lines.append(f"{row['dirty_fraction'] * 100:>5.0f}% "
                     f"{row['records_written']:>9.1f} "
                     f"{row['records_skipped']:>9.1f} "
                     f"{fmt_size(int(row['bytes_staged'])):>10} "
                     f"{fmt_time(int(row['stop_ns'])):>10} "
                     f"{ratio:>7.1f}x")
    report("incremental_kernel", "\n".join(lines))
    JSON_PATH.write_text(json.dumps(results, indent=2) + "\n")

    by_frac = {row["dirty_fraction"]: row for row in results["sweep"]}
    # Acceptance: at 1% dirty, steady-state records-written drops >= 10x
    # versus the pre-incremental full walk.
    assert full_records >= 10 * by_frac[0.01]["records_written"]
    # Cost is monotone in the dirty fraction and 100% ~= the full walk.
    sweep = results["sweep"]
    for prev, cur in zip(sweep, sweep[1:]):
        assert cur["records_written"] >= prev["records_written"]
    assert by_frac[1.0]["records_written"] >= 0.9 * full_records
    # The floor still re-serializes the always-dirty process records
    # and descriptor, but nothing proportional to the fd count.
    assert by_frac[0.0]["records_written"] < 0.05 * full_records
