"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's tables: each isolates one Aurora mechanism
and measures the system with it turned off or reversed.

* Collapse direction (§6): Aurora reverses the collapse so its cost
  tracks the dirty set, not the resident set.
* Chain bounding (§6): without eager collapse, shadow chains grow and
  every COW fault pays per-hop walk costs.
* External synchrony (§3): buffering until commit costs latency
  proportional to the checkpoint period.
* Lazy restore (§6): restore time vs post-restore fault storm, swept
  over the fraction of the working set the application touches.
"""

from bench_utils import run_once

from repro import Machine, load_aurora
from repro.core.shadowing import FORWARD, NONE, REVERSE
from repro.units import KiB, MiB, MSEC, PAGE_SIZE, USEC, fmt_time

RESIDENT_PAGES = 16384  # 64 MiB
DIRTY_PAGES = 64


# -- collapse direction -----------------------------------------------------------


def _collapse_cost(direction):
    machine = Machine()
    sls = load_aurora(machine)
    sls.shadow.collapse_direction = direction
    proc = machine.kernel.spawn("app")
    group = sls.attach(proc, periodic=False)
    addr = proc.vmspace.mmap(RESIDENT_PAGES * PAGE_SIZE, name="heap")
    proc.vmspace.fill(addr, RESIDENT_PAGES, seed=0)
    sls.checkpoint(group, sync=True)
    total_stop = 0
    rounds = 5
    for round_no in range(rounds):
        proc.vmspace.touch(addr, DIRTY_PAGES, seed=round_no + 1)
        total_stop += sls.checkpoint(group, sync=True).stop_ns
    return total_stop // rounds


def run_collapse_ablation():
    return {"reverse": _collapse_cost(REVERSE),
            "forward": _collapse_cost(FORWARD)}


def test_ablation_collapse_direction(benchmark, report):
    results = run_once(benchmark, run_collapse_ablation)
    lines = ["Ablation - collapse direction "
             f"(64 MiB resident, {DIRTY_PAGES}-page dirty set)",
             f"reverse (Aurora): {fmt_time(results['reverse'])} "
             f"mean stop",
             f"forward (classic): {fmt_time(results['forward'])} "
             f"mean stop"]
    report("ablation_collapse", "\n".join(lines))
    # The classic direction drags the whole resident set (16384 pages)
    # through every collapse; the reversed direction only moves the
    # dirty set (64 pages).  The stop-time delta is the resident-set
    # move cost.
    from repro.core import costs
    resident_move = RESIDENT_PAGES * costs.COLLAPSE_PAGE_MOVE
    assert results["forward"] > results["reverse"] + resident_move // 2
    assert results["forward"] > 1.5 * results["reverse"]


# -- chain bounding ---------------------------------------------------------------------


def _chain_run(direction):
    """20 checkpoint rounds, each dirtying a *different* region; then
    fault pages last written in round 0 — without eager collapse their
    newest copies sit ~20 shadows deep."""
    machine = Machine()
    sls = load_aurora(machine)
    sls.shadow.collapse_direction = direction
    proc = machine.kernel.spawn("app")
    group = sls.attach(proc, periodic=False)
    addr = proc.vmspace.mmap(1024 * PAGE_SIZE, name="heap")
    proc.vmspace.fill(addr, 1024, seed=0)
    sls.checkpoint(group, sync=True)
    for round_no in range(20):
        proc.vmspace.touch(addr + round_no * 32 * PAGE_SIZE, 32,
                           seed=round_no + 1)
        sls.checkpoint(group, sync=True)
    top = proc.vmspace.entry_at(addr).vmobject
    chain_len = top.chain_length()
    t0 = machine.clock.now()
    proc.vmspace.touch(addr, 32, seed=99)  # round-0 pages: deep lookup
    deep_fault_ns = machine.clock.now() - t0
    return deep_fault_ns, chain_len


def run_chain_ablation():
    bounded_time, bounded_len = _chain_run(REVERSE)
    unbounded_time, unbounded_len = _chain_run(NONE)
    return {"bounded": (bounded_time, bounded_len),
            "unbounded": (unbounded_time, unbounded_len)}


def test_ablation_chain_bounding(benchmark, report):
    results = run_once(benchmark, run_chain_ablation)
    (b_time, b_len) = results["bounded"]
    (u_time, u_len) = results["unbounded"]
    lines = ["Ablation - shadow chain bounding (20 checkpoint rounds, "
             "then faulting round-0 pages)",
             f"eager collapse: chain length {b_len}, "
             f"deep-fault time {fmt_time(b_time)}",
             f"no collapse:    chain length {u_len}, "
             f"deep-fault time {fmt_time(u_time)}"]
    report("ablation_chain", "\n".join(lines))
    assert b_len <= 3
    assert u_len > 10
    # Every fault walks the whole chain: per-hop costs accumulate.
    assert u_time > 1.3 * b_time


# -- external synchrony -----------------------------------------------------------------------


def _extsync_delay(period_ms):
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("server")
    group = sls.attach(proc, period_ns=period_ms * MSEC,
                       external_synchrony=True)
    addr = proc.vmspace.mmap(64 * PAGE_SIZE, name="heap")
    releases = []
    sends = 0
    deadline = machine.clock.now() + 500 * MSEC
    while machine.clock.now() < deadline:
        proc.vmspace.touch(addr, 4, seed=sends)
        sent_at = machine.clock.now()
        sls.extsync.buffer_send(
            group, 100, lambda t, s=sent_at: releases.append(t - s))
        sends += 1
        machine.run_for(1 * MSEC)
    # Stop the periodic timer, let the last flush land, seal leftovers.
    if group.timer is not None:
        group.timer.cancel()
        group.timer = None
    machine.loop.drain()
    if sls.extsync.pending_for(group):
        sls.checkpoint(group, sync=True)
    return sum(releases) // max(len(releases), 1)


def run_extsync_ablation():
    return {period: _extsync_delay(period) for period in (10, 50, 100)}


def test_ablation_external_synchrony(benchmark, report):
    results = run_once(benchmark, run_extsync_ablation)
    lines = ["Ablation - external synchrony mean release delay "
             "vs checkpoint period"]
    for period, delay in results.items():
        lines.append(f"  period {period:>3} ms: {fmt_time(delay)}")
    report("ablation_extsync", "\n".join(lines))
    # Delay tracks the checkpoint period (~period/2 + flush time).
    assert results[10] < results[50] < results[100]
    assert results[100] > 30 * MSEC
    assert results[10] < 25 * MSEC


# -- lazy restore -------------------------------------------------------------------------------


def _lazy_sweep():
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("app")
    group = sls.attach(proc, periodic=False)
    npages = 8192  # 32 MiB
    addr = proc.vmspace.mmap(npages * PAGE_SIZE, name="heap")
    proc.vmspace.fill(addr, npages, seed=0)
    gid = group.group_id
    sls.checkpoint(group, sync=True)
    machine.crash()
    machine.boot()
    sls2 = load_aurora(machine)

    full = sls2.restore(gid, periodic=False)
    full_ns = full.elapsed_ns
    results = {"full": (full_ns, 0)}
    for fraction in (0.01, 0.25, 1.0):
        for proc_old in list(full.group.processes):
            full.group.remove_process(proc_old)
            proc_old.exit(0)
        sls2.groups.pop(gid, None)
        lazy = sls2.restore(gid, lazy=True, periodic=False)
        touch_pages = int(npages * fraction)
        t0 = machine.clock.now()
        lazy.root.vmspace.read(addr, touch_pages * PAGE_SIZE)
        storm_ns = machine.clock.now() - t0
        results[f"lazy-{int(fraction * 100)}%"] = (lazy.elapsed_ns,
                                                   storm_ns)
        full = lazy
    return results


def test_ablation_lazy_restore(benchmark, report):
    results = run_once(benchmark, _lazy_sweep)
    lines = ["Ablation - lazy restore vs working-set fraction "
             "(32 MiB image)",
             f"{'mode':<12}{'restore':>12}{'fault storm':>14}"]
    for mode, (restore_ns, storm_ns) in results.items():
        lines.append(f"{mode:<12}{fmt_time(restore_ns):>12}"
                     f"{fmt_time(storm_ns):>14}")
    report("ablation_lazy_restore", "\n".join(lines))
    full_ns = results["full"][0]
    lazy_ns, small_storm = results["lazy-1%"]
    # Lazy restore is much faster up front...
    assert lazy_ns < full_ns / 3
    # ...and cheap overall when the working set is small...
    assert lazy_ns + small_storm < full_ns
    # ...but touching everything pays the deferred cost.
    _lazy_full_ns, full_storm = results["lazy-100%"]
    assert full_storm > 10 * small_storm
