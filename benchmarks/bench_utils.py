"""Shared helpers for the benchmark harness (imported by every bench
module; kept out of conftest.py so a combined ``pytest tests/
benchmarks/`` run cannot suffer a conftest module-name collision)."""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_report(name: str, text: str) -> None:
    """Print a result table and persist it for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n{text}")


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark.

    The experiments measure *simulated* time internally; the benchmark
    fixture wraps the single run so the harness integrates with
    ``pytest --benchmark-only`` and records the wall-clock cost of the
    simulation itself.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
