#!/usr/bin/env python
"""Flight recorder benchmark: observability cost and recovery fidelity.

Two claims from the ISSUE get numbers here:

* **Zero simulated cost** — a run with the recorder (telemetry
  enabled) and an identical run without it finish at the *same*
  simulated instant with the same allocator cursor: the snapshot
  rides every superblock flip for free.  The wall-clock cost of
  encoding the fixed-size record is reported per checkpoint.
* **Recovery fidelity** — after a simulated power failure, ``sls
  blackbox`` reconstruction yields a timeline whose tail is the last
  durable commit, with the snapshot's payload utilization reported
  (how much of the 64 KiB budget a busy run actually fills).

Emits ``BENCH_flightrec.json`` at the repo root::

    python benchmarks/bench_flightrec.py           # full sweep
    python benchmarks/bench_flightrec.py --smoke   # CI-sized point
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import Machine, load_aurora
from repro.core import events, flightrec, telemetry
from repro.objstore.store import ObjectStore
from repro.units import MSEC, PAGE_SIZE

SWEEP = [10, 50, 200]
JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_flightrec.json"


def _drive(checkpoints: int, enabled: bool):
    """One seeded workload run; returns (machine, sls, group)."""
    telemetry.reset()
    telemetry.set_enabled(enabled)
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("app")
    addr = proc.vmspace.mmap(32 * PAGE_SIZE, name="heap")
    group = sls.attach(proc, name="app", periodic=False)
    for i in range(checkpoints):
        proc.vmspace.fill(addr, 8, seed=i)
        machine.run_for(10 * MSEC)
        sls.checkpoint(group, name=f"v{i}", sync=True)
    return machine, sls, group


def run_config(checkpoints: int) -> dict:
    wall_on = time.perf_counter()
    machine_on, sls_on, group = _drive(checkpoints, enabled=True)
    wall_on = time.perf_counter() - wall_on
    clock_on = machine_on.clock.now()
    cursor_on = sls_on.store.alloc.cursor

    # Snapshot utilization before the registry is torn down: what the
    # encoder actually kept (post-shed) vs what the run offered it.
    from repro.objstore import records
    offered_body = flightrec.build_snapshot(
        sls_on.store, generation=sls_on.store._generation)
    offered_body["pad"] = b""
    offered = len(records.encode(records.REC_FLIGHTREC, offered_body))
    kept_body = flightrec.decode_snapshot(flightrec.encode_snapshot(
        sls_on.store, generation=sls_on.store._generation))
    kept_body["pad"] = b""
    used = len(records.encode(records.REC_FLIGHTREC, kept_body))

    # Crash, then cold blackbox reconstruction (no mount).
    machine_on.crash()
    machine_on.boot()
    recover_t0 = time.perf_counter()
    box = flightrec.blackbox(ObjectStore(machine_on))
    recover_wall = time.perf_counter() - recover_t0
    assert box is not None
    last = box.last_durable
    assert last is not None and \
        last["fields"]["name"] == f"v{checkpoints - 1}"

    wall_off = time.perf_counter()
    machine_off, sls_off, _ = _drive(checkpoints, enabled=False)
    wall_off = time.perf_counter() - wall_off

    return {
        "checkpoints": checkpoints,
        "sim_clock_on_ns": clock_on,
        "sim_clock_off_ns": machine_off.clock.now(),
        "sim_overhead_ns": clock_on - machine_off.clock.now(),
        "alloc_cursor_identical":
            cursor_on == sls_off.store.alloc.cursor,
        "snapshot_bytes": flightrec.FLIGHTREC_BYTES,
        "snapshot_used_bytes": used,
        "snapshot_offered_bytes": offered,
        "snapshot_utilization": used / flightrec.FLIGHTREC_BYTES,
        "recovered_events": len(box.events),
        "recovered_generation": box.generation,
        "recover_wall_ms": recover_wall * 1e3,
        "wall_on_s": wall_on,
        "wall_off_s": wall_off,
        "wall_overhead_per_ckpt_us":
            max(0.0, (wall_on - wall_off)) * 1e6 / checkpoints,
    }


def run_sweep(sweep) -> dict:
    rows = []
    for checkpoints in sweep:
        print(f"[flightrec] {checkpoints} checkpoint(s) ...", flush=True)
        row = run_config(checkpoints)
        print(f"[flightrec]   sim overhead {row['sim_overhead_ns']} ns, "
              f"snapshot {row['snapshot_used_bytes']}/"
              f"{row['snapshot_bytes']} B "
              f"({row['snapshot_utilization']:.0%}, "
              f"{row['snapshot_offered_bytes']} B offered), "
              f"{row['recovered_events']} event(s) recovered, "
              f"wall +{row['wall_overhead_per_ckpt_us']:.0f} us/ckpt",
              flush=True)
        rows.append(row)
    return {
        "benchmark": "flightrec",
        "description": "flight recorder: simulated-cost identity, "
                       "snapshot utilization and cold blackbox "
                       "recovery",
        "results": rows,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized point with hard assertions: "
                             "zero simulated overhead, full recovery")
    parser.add_argument("--output", type=pathlib.Path, default=JSON_PATH)
    args = parser.parse_args()

    sweep = [10] if args.smoke else SWEEP
    results = run_sweep(sweep)
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"[flightrec] wrote {args.output}")

    failures = []
    for row in results["results"]:
        if row["sim_overhead_ns"] != 0:
            failures.append(f"{row['checkpoints']} ckpts: recorder "
                            f"cost {row['sim_overhead_ns']} ns of "
                            f"simulated time")
        if not row["alloc_cursor_identical"]:
            failures.append(f"{row['checkpoints']} ckpts: allocator "
                            f"state diverged")
        if row["recovered_events"] == 0:
            failures.append(f"{row['checkpoints']} ckpts: empty "
                            f"black box")
        if row["snapshot_used_bytes"] > row["snapshot_bytes"]:
            failures.append(f"{row['checkpoints']} ckpts: shed "
                            f"snapshot still over budget "
                            f"({row['snapshot_used_bytes']} B)")
    if failures:
        print("[flightrec] FAILURES:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("[flightrec] all acceptance checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
