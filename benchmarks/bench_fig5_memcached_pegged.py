"""Figure 5: Memcached latency with throughput pegged at 120 k ops/s
(~15% of peak) over varying checkpoint periods.

This is the worst case for transparent persistence: at low utilization
there is no queueing to hide behind, so every checkpoint stop and the
post-checkpoint COW fault storm land directly on request latency.
Paper: baseline average 157 us; with persistence at a 100 ms period the
average rises to 607 us — the *larger* periods hurt more because each
checkpoint's accumulated dirty set produces a longer service
interruption.
"""

from bench_utils import run_once

from repro import Machine, load_aurora
from repro.apps.memcached import MemcachedServer
from repro.workloads.mutilate import Mutilate
from repro.units import MSEC, USEC, fmt_time

PERIODS_MS = [10, 20, 40, 60, 80, 100]
RATE = 120_000
DURATION = 600 * MSEC


def _run(period_ms):
    machine = Machine()
    sls = load_aurora(machine)
    server = MemcachedServer(machine.kernel)
    if period_ms is not None:
        sls.attach(server.proc, period_ns=period_ms * MSEC)
    agent = Mutilate(machine, server)
    return agent.pegged(RATE, duration_ns=DURATION)


def run_experiment():
    baseline = _run(None)
    sweep = {period: _run(period) for period in PERIODS_MS}
    return baseline, sweep


def test_fig5_memcached_pegged_latency(benchmark, report):
    baseline, sweep = run_once(benchmark, run_experiment)
    lines = ["Figure 5 - Memcached latency at 120 k ops/s "
             "vs checkpoint period",
             f"{'period':>8} {'avg lat':>10} {'p95 lat':>10}",
             f"{'base':>8} {fmt_time(baseline.latency_avg_ns):>10} "
             f"{fmt_time(baseline.latency_p95_ns):>10}"]
    for period in PERIODS_MS:
        stats = sweep[period]
        lines.append(f"{period:>6}ms {fmt_time(stats.latency_avg_ns):>10} "
                     f"{fmt_time(stats.latency_p95_ns):>10}")
    report("fig5_memcached_pegged", "\n".join(lines))

    # Baseline average in the paper's ~157 us regime.
    assert baseline.latency_avg_ns <= 350 * USEC
    # Persistence visibly raises the average at every period.
    for period in PERIODS_MS:
        assert sweep[period].latency_avg_ns \
            > 1.3 * baseline.latency_avg_ns
    # The worst-case claim: large periods hurt the average more than
    # small ones at this low utilization (bigger dirty sets, longer
    # interruptions), and the tails are far above the baseline.
    assert sweep[100].latency_avg_ns > sweep[10].latency_avg_ns
    assert sweep[100].latency_p95_ns > 3 * baseline.latency_p95_ns
    # Offered rate was actually sustained (within 10%).
    for period in PERIODS_MS:
        assert abs(sweep[period].throughput - RATE) / RATE < 0.1
