"""Figure 6: RocksDB configurations on the Prefix_dist workload.

Five configurations, matching the paper's bars:

  No Sync group (no write persistence guarantee):
    * rocksdb            — unmodified, no persistence at all
    * aurora-100hz       — unmodified under transparent 10 ms
                           checkpoints (weaker consistency: writes
                           persist at the next checkpoint)
    * rocksdb+wal        — builtin WAL, buffered (no fsync)
  Sync group (persisted before acknowledge):
    * rocksdb+wal-sync   — builtin WAL + fsync per write group
    * aurora+wal         — the Aurora port: sls_journal custom WAL

Paper's claims asserted: ~83% throughput decrease for transparent mode
vs ephemeral; transparent ≈ half of the builtin WAL; the custom WAL
beats the persistent configurations by ~75%; transparent mode has the
worst tail latencies; the custom WAL beats the builtin WAL at p99 but
pays at p99.9 (writes that trigger checkpoints wait for them).
"""

from bench_utils import run_once

from repro import Machine, load_aurora
from repro.apps.rocksdb import AuroraRocksDB, DBOptions, RocksDB
from repro.core.api import AuroraAPI
from repro.slsfs.kernel_fs import mount_ffs
from repro.units import KiB, MiB, MSEC, USEC, fmt_time
from repro.workloads.prefix_dist import OP_PUT, PrefixDistWorkload

NOPS = 120_000
#: The paper sizes the memtable to hold the whole database in memory;
#: runs start against a loaded arena.
PRELOAD = 64 * MiB


class ConfigResult:
    def __init__(self, name, group_label):
        self.name = name
        self.group_label = group_label
        self.throughput = 0.0
        self.p99_ns = 0
        self.p999_ns = 0
        self.max_ns = 0


def _drive(machine, db, name, group_label):
    workload = PrefixDistWorkload(seed=42)
    clock = machine.clock
    write_lats = []
    start = clock.now()
    for op, key, value in workload.ops(NOPS):
        machine.loop.run_pending()
        if op == OP_PUT:
            t0 = clock.now()
            db.put(key, value)
            machine.loop.run_pending()
            write_lats.append(clock.now() - t0)
        else:
            db.get(key)
    flush = getattr(db, "flush", None)
    if flush is not None:
        flush()
    elapsed = clock.now() - start
    result = ConfigResult(name, group_label)
    result.throughput = NOPS * 1e9 / elapsed
    ordered = sorted(write_lats)
    result.p99_ns = ordered[(len(ordered) * 99) // 100]
    result.p999_ns = ordered[(len(ordered) * 999) // 1000]
    result.max_ns = ordered[-1]
    return result


def _rocksdb_machine(wal, sync):
    machine = Machine()
    mount_ffs(machine)
    proc = machine.kernel.spawn("rocksdb")
    db = RocksDB(machine.kernel, proc,
                 options=DBOptions(wal=wal, sync=sync,
                                   memtable_bytes=256 * MiB))
    db.preload(PRELOAD)
    return machine, db


def run_experiment():
    results = {}

    machine, db = _rocksdb_machine(wal=False, sync=False)
    results["rocksdb"] = _drive(machine, db, "rocksdb", "No Sync")

    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("rocksdb")
    db = RocksDB(machine.kernel, proc,
                 options=DBOptions(wal=False, memtable_bytes=256 * MiB))
    db.preload(PRELOAD)
    sls.attach(proc, period_ns=10 * MSEC)
    results["aurora-100hz"] = _drive(machine, db, "aurora-100hz",
                                     "No Sync")

    machine, db = _rocksdb_machine(wal=True, sync=False)
    results["rocksdb+wal"] = _drive(machine, db, "rocksdb+wal", "No Sync")

    machine, db = _rocksdb_machine(wal=True, sync=True)
    results["rocksdb+wal-sync"] = _drive(machine, db, "rocksdb+wal-sync",
                                         "Sync")

    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("rocksdb-port")
    group = sls.attach(proc, periodic=False)
    api = AuroraAPI(sls, proc)
    db = AuroraRocksDB(machine.kernel, proc, api,
                       journal_bytes=16 * MiB,
                       memtable_bytes=256 * MiB)
    db.preload(PRELOAD)
    results["aurora+wal"] = _drive(machine, db, "aurora+wal", "Sync")
    return results


CONFIG_ORDER = ["rocksdb", "aurora-100hz", "rocksdb+wal",
                "rocksdb+wal-sync", "aurora+wal"]


def test_fig6_rocksdb_configurations(benchmark, report):
    results = run_once(benchmark, run_experiment)
    lines = ["Figure 6 - RocksDB configurations (Prefix_dist)",
             f"{'config':<18}{'group':<9}{'ops/s':>10}"
             f"{'p99 write':>12}{'p99.9 write':>13}{'max write':>12}"]
    for name in CONFIG_ORDER:
        r = results[name]
        lines.append(f"{r.name:<18}{r.group_label:<9}"
                     f"{r.throughput / 1e6:>9.2f}M"
                     f"{fmt_time(r.p99_ns):>12}"
                     f"{fmt_time(r.p999_ns):>13}"
                     f"{fmt_time(r.max_ns):>12}")
    report("fig6_rocksdb", "\n".join(lines))

    ephemeral = results["rocksdb"]
    transparent = results["aurora-100hz"]
    wal = results["rocksdb+wal"]
    wal_sync = results["rocksdb+wal-sync"]
    port = results["aurora+wal"]

    # (a) throughput shapes:
    # transparent mode costs a large fraction of ephemeral throughput
    # (paper: 83% decrease).
    decrease = 1 - transparent.throughput / ephemeral.throughput
    assert 0.45 <= decrease <= 0.92
    # transparent ~ half the builtin WAL's throughput.
    assert 0.25 <= transparent.throughput / wal.throughput <= 0.9
    # the custom WAL provides sync persistence yet beats the
    # persistent builtin configuration by a wide margin (paper: +75%).
    assert port.throughput >= 1.4 * wal_sync.throughput
    # and the ephemeral config dominates everything.
    assert ephemeral.throughput > max(r.throughput
                                      for n, r in results.items()
                                      if n != "rocksdb")

    # (b)/(c) latency shapes:
    # transparent checkpoints produce the worst stalls: the post-
    # checkpoint fault tail and, at the extreme, the stop time itself.
    assert transparent.p999_ns > wal.p999_ns
    assert transparent.max_ns > 100 * USEC  # a stop-blocked write
    # the custom WAL has better p99 than the synced builtin WAL...
    assert port.p99_ns < wal_sync.p99_ns
    # ...but its extreme tail suffers: writes that trigger checkpoint
    # rollovers wait for the checkpoint to complete.
    assert port.p999_ns > 2 * port.p99_ns or port.max_ns > 20 * port.p99_ns
