#!/usr/bin/env python
"""Fleet control-plane benchmark: tenant count × EDF scheduling.

Sweeps the fleet scheduler (:mod:`repro.core.fleet`) over fleet sizes
N ∈ {8, 64, 256} of mixed memcached/redis/rocksdb-profile tenants with
a seeded arrival/departure process, and reports, per configuration:

* **p99 RPO lag** — per-tenant tail recovery-point lag, min/max across
  the fleet;
* **deadline-miss rate** — EDF dispatches later than the per-tenant
  slack past their deadline, over all dispatches.  The acceptance
  criterion: **zero** while aggregate demand stays feasible (≤ 80 %
  of measured store throughput);
* **Jain fairness** — ``(Σx)²/(n·Σx²)`` over per-tenant p99 RPO lag
  normalized by each tenant's period (a 100 ms tenant structurally
  carries 10× the raw lag of a 10 ms tenant).  Acceptance: ≥ 0.9;
* **admission/backpressure activity** — rejects and widens; the 256
  tenant point intentionally over-subscribes the control plane so the
  widen path shows up.

Tenant profiles are calibrated to the paper's applications (dirty
footprint per checkpoint and checkpoint cadence), not the full app
models — 256 live application arenas would measure the Python
interpreter, not the scheduler.

Emits ``BENCH_fleet.json`` at the repo root::

    python benchmarks/bench_fleet.py           # full sweep
    python benchmarks/bench_fleet.py --smoke   # CI-sized 16 tenants
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import Machine, load_aurora
from repro.core import telemetry
from repro.errors import AdmissionRejected
from repro.units import MSEC, PAGE_SIZE

FLEET_SWEEP = [8, 64, 256]
SEED = 0xF1EE7
DURATION_MS = 1500
STEP_MS = 5

#: (name, period_ms, dirty pages per checkpoint) — memcached churns a
#: small hot set fast, redis snapshots more bytes less often, rocksdb
#: flushes the most per capture at the widest cadence.
PROFILES = [
    ("memcached", 25, 8),
    ("redis", 50, 16),
    ("rocksdb", 100, 24),
]

JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_fleet.json"


class Tenant:
    """One synthetic application under fleet scheduling."""

    def __init__(self, sls, kernel, index: int):
        name, period_ms, pages = PROFILES[index % len(PROFILES)]
        self.profile = name
        self.pages = pages
        self.period_ns = period_ms * MSEC
        self.proc = kernel.spawn(f"{name}{index}")
        arena = (pages + 8) * PAGE_SIZE
        self.addr = self.proc.vmspace.mmap(arena, name="heap")
        self.proc.vmspace.fill(self.addr, arena // PAGE_SIZE, seed=index)
        self.cursor = 0
        # Explicit per-tenant budget: four periods of RPO lag (one
        # period of cadence + async flush + scheduling jitter).
        self.group = sls.attach(
            self.proc, name=f"{name}{index}",
            period_ns=self.period_ns,
            rpo_budget_ns=4 * self.period_ns,
            history_limit=4,
            demand_bytes_per_sec=pages * PAGE_SIZE * 1000 // period_ms)

    def step(self, step_no: int) -> None:
        """Dirty the profile's share of pages for one driver step."""
        per_step = max(1, self.pages * STEP_MS * MSEC // self.period_ns)
        for _ in range(per_step):
            page = self.cursor % self.pages
            self.cursor += 1
            self.proc.vmspace.write(
                self.addr + page * PAGE_SIZE,
                b"%s:%d:%d" % (self.profile.encode(), step_no, page))


def run_config(tenants: int, duration_ms: int, seed: int) -> dict:
    telemetry.reset()
    rng = random.Random(seed ^ tenants)
    machine = Machine()
    sls = load_aurora(machine)
    kernel = machine.kernel

    steps = duration_ms // STEP_MS
    # Seeded arrival/departure: three quarters of the fleet attaches
    # up front, the rest arrives through the first half of the run;
    # an eighth departs during the second half.
    upfront = max(1, tenants * 3 // 4)
    late_at = sorted(rng.randrange(1, max(2, steps // 2))
                     for _ in range(tenants - upfront))
    departures = min(tenants // 8, upfront - 1)
    depart_at = sorted(rng.randrange(steps // 2, max(steps // 2 + 1,
                                                     steps - 1))
                       for _ in range(departures))

    refused = 0

    def arrive(index: int):
        """Admit one tenant; a full store refusing it is a counted
        outcome, not an error."""
        nonlocal refused
        try:
            return Tenant(sls, kernel, index)
        except AdmissionRejected:
            refused += 1
            return None

    live = [t for t in (arrive(i) for i in range(upfront))
            if t is not None]
    next_index = upfront
    departed = 0
    wall_t0 = time.perf_counter()
    for step_no in range(steps):
        while late_at and late_at[0] <= step_no:
            late_at.pop(0)
            tenant = arrive(next_index)
            next_index += 1
            if tenant is not None:
                live.append(tenant)
        while depart_at and depart_at[0] <= step_no and len(live) > 1:
            depart_at.pop(0)
            victim = live.pop(rng.randrange(len(live)))
            sls.detach(victim.group)
            departed += 1
        for tenant in live:
            tenant.step(step_no)
        machine.run_for(STEP_MS * MSEC)
    wall_s = time.perf_counter() - wall_t0

    registry = telemetry.registry()
    summary = sls.fleet.summary()
    fairness = summary["fairness"]
    dispatches = registry.value("sls.fleet.dispatches")
    misses = summary["deadline_misses"]
    checkpoints = sum(t.group.stats["checkpoints"] for t in live)
    return {
        "tenants": tenants,
        "admitted": next_index - refused,
        "refused": refused,
        "arrived_late": next_index - upfront,
        "departed": departed,
        "duration_ms": duration_ms,
        "steps": steps,
        "checkpoints": checkpoints,
        "dispatches": dispatches,
        "deadline_misses": misses,
        "miss_rate": misses / max(1, dispatches),
        "flush_skips": registry.value("sls.fleet.flush_skips"),
        "capacity_bps": summary["capacity_bps"],
        "aggregate_demand_bps": summary["aggregate_demand_bps"],
        "bandwidth_util": summary["bandwidth_util"],
        "time_util": summary["time_util"],
        # A feasible row is one the control plane never had to defend:
        # estimated utilization inside the caps AND no tenant refused
        # or widened.  Offered load that forced admission control or
        # backpressure to act is over-subscription by construction,
        # even if the *admitted* subset's estimates fit.
        "feasible": (summary["time_util"] <= 0.8
                     and summary["bandwidth_util"] <= 0.8
                     and refused == 0
                     and summary["backpressure_widens"] == 0),
        "admission_rejects": summary["admission_rejects"],
        "backpressure_widens": summary["backpressure_widens"],
        "p99_rpo_min_ns": fairness["p99_rpo_min_ns"],
        "p99_rpo_max_ns": fairness["p99_rpo_max_ns"],
        "jain_fairness": fairness["jain"],
        "max_min_ratio": fairness["max_min_ratio"],
        "wall_s": wall_s,
    }


def run_sweep(fleet_sweep, duration_ms: int, seed: int) -> dict:
    rows = []
    for tenants in fleet_sweep:
        print(f"[fleet] {tenants} tenant(s), {duration_ms} ms ...",
              flush=True)
        row = run_config(tenants, duration_ms, seed)
        print(f"[fleet]   {row['checkpoints']} checkpoints, "
              f"{row['deadline_misses']} miss(es) "
              f"({row['miss_rate']:.4f}), "
              f"Jain {row['jain_fairness']:.3f}, "
              f"time util {row['time_util']:.2f}, "
              f"{row['backpressure_widens']} widen(s), "
              f"{row['wall_s']:.1f}s wall", flush=True)
        rows.append(row)
    return {
        "benchmark": "fleet",
        "description": "fleet control plane: EDF scheduling, admission "
                       "control and fairness across tenant counts",
        "seed": seed,
        "profiles": [{"name": n, "period_ms": p, "pages_per_ckpt": d}
                     for n, p, d in PROFILES],
        "results": rows,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized point (16 tenants) with hard "
                             "assertions: zero misses, Jain >= 0.9")
    parser.add_argument("--duration-ms", type=int, default=None)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--output", type=pathlib.Path, default=JSON_PATH)
    args = parser.parse_args()

    if args.smoke:
        fleet_sweep = [16]
        duration_ms = args.duration_ms or 600
    else:
        fleet_sweep = FLEET_SWEEP
        duration_ms = args.duration_ms or DURATION_MS

    results = run_sweep(fleet_sweep, duration_ms, args.seed)
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"[fleet] wrote {args.output}")

    failures = []
    for row in results["results"]:
        label = f"{row['tenants']} tenants"
        if row["feasible"]:
            if row["deadline_misses"] != 0:
                failures.append(f"{label}: {row['deadline_misses']} "
                                f"deadline miss(es) under feasible load")
            if row["jain_fairness"] < 0.9:
                failures.append(f"{label}: Jain fairness "
                                f"{row['jain_fairness']:.3f} < 0.9")
        elif row["backpressure_widens"] == 0 \
                and row["admission_rejects"] == 0:
            failures.append(f"{label}: over capacity but neither "
                            f"admission control nor backpressure acted")
    for failure in failures:
        print(f"[fleet] FAIL {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
