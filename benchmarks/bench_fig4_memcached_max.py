"""Figure 4: Memcached at max throughput over varying checkpoint
periods (closed-loop Mutilate, 576 connections).

Paper shapes: baseline ~1.1 M ops/s; with Aurora, throughput rises
monotonically with the checkpoint period (overheads "9%-82% depending
on the persistence granularity"); between the 10 ms and 20 ms points
the frequency halves and throughput rises sharply while latency drops
by more than ~2x; latency impact shrinks as network queues saturate.
"""

from bench_utils import run_once

from repro import Machine, load_aurora
from repro.apps.memcached import MemcachedServer
from repro.workloads.mutilate import Mutilate
from repro.units import MSEC, SEC, fmt_time

PERIODS_MS = [10, 20, 40, 60, 80, 100]
DURATION = 600 * MSEC


def _run(period_ms):
    machine = Machine()
    sls = load_aurora(machine)
    server = MemcachedServer(machine.kernel)
    if period_ms is not None:
        sls.attach(server.proc, period_ns=period_ms * MSEC)
    agent = Mutilate(machine, server)
    return agent.max_throughput(duration_ns=DURATION)


def run_experiment():
    baseline = _run(None)
    sweep = {period: _run(period) for period in PERIODS_MS}
    return baseline, sweep


def test_fig4_memcached_max_throughput(benchmark, report):
    baseline, sweep = run_once(benchmark, run_experiment)
    lines = ["Figure 4 - Memcached max throughput vs checkpoint period",
             f"{'period':>8} {'ops/s':>10} {'of base':>8} "
             f"{'avg lat':>10} {'p95 lat':>10}",
             f"{'base':>8} {baseline.throughput / 1e6:>9.2f}M "
             f"{'100%':>8} {fmt_time(baseline.latency_avg_ns):>10} "
             f"{fmt_time(baseline.latency_p95_ns):>10}"]
    for period in PERIODS_MS:
        stats = sweep[period]
        ratio = stats.throughput / baseline.throughput
        lines.append(f"{period:>6}ms {stats.throughput / 1e6:>9.2f}M "
                     f"{ratio * 100:>7.0f}% "
                     f"{fmt_time(stats.latency_avg_ns):>10} "
                     f"{fmt_time(stats.latency_p95_ns):>10}")
    report("fig4_memcached_max", "\n".join(lines))

    # Baseline near the paper's ~1.1 M ops/s.
    assert 0.9e6 <= baseline.throughput <= 1.4e6
    # Throughput rises monotonically with the period.
    ordered = [sweep[p].throughput for p in PERIODS_MS]
    assert all(b >= a * 0.98 for a, b in zip(ordered, ordered[1:]))
    # Overhead spans the paper's "9%-82%" band: heavy at 10 ms...
    overhead_10 = baseline.throughput / sweep[10].throughput - 1
    assert 0.5 <= overhead_10 <= 1.6
    # ...modest at 100 ms.
    overhead_100 = baseline.throughput / sweep[100].throughput - 1
    assert overhead_100 <= 0.25
    # Lowering the frequency buys substantial throughput back and
    # cuts the tail latency.
    assert sweep[20].throughput > 1.02 * sweep[10].throughput
    assert sweep[40].throughput > 1.3 * sweep[10].throughput
    assert sweep[10].latency_p95_ns > 1.5 * sweep[100].latency_p95_ns
    # Latency always above the no-persistence baseline.
    assert all(sweep[p].latency_avg_ns > baseline.latency_avg_ns
               for p in PERIODS_MS)
