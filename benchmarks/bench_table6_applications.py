"""Table 6: checkpoint stop times and restore times for applications.

Paper values (ms):
             firefox  mosh  pillow  tomcat  vim
  Size (MiB)   198     24     75     197     48
  Ckpt Mem     1.4    0.4    0.7     2.7    0.7
  Ckpt Full    1.8    0.4    0.9     3.2    0.8
  Ckpt Incr    1.9    0.4    0.6     2.1    0.7
  Rest Mem     0.9    0.2    0.2     0.5    0.3
  Rest Full   12.4    1.9    8.2    33.6    4.1
  Rest Lazy    6.3    0.9    0.2     3.1    2.4

The paper's structural claims this bench asserts: stop time tracks OS
state complexity, not memory size (pillow/vim have small footprints
but many address-space objects); full restores scale with resident
size; lazy restores only pay for OS state.
"""

from bench_utils import run_once

from repro import Machine, load_aurora
from repro.apps.synthetic import PROFILES, SyntheticApp
from repro.units import MiB, MSEC, USEC, fmt_time

APPS = ["firefox", "mosh", "pillow", "tomcat", "vim"]

PAPER_MS = {
    #         mem   full  incr  r_mem r_full r_lazy
    "firefox": (1.4, 1.8, 1.9, 0.9, 12.4, 6.3),
    "mosh": (0.4, 0.4, 0.4, 0.2, 1.9, 0.9),
    "pillow": (0.7, 0.9, 0.6, 0.2, 8.2, 0.2),
    "tomcat": (2.7, 3.2, 2.1, 0.5, 33.6, 3.1),
    "vim": (0.7, 0.8, 0.7, 0.3, 4.1, 2.4),
}


def _fresh_app(name):
    machine = Machine()
    sls = load_aurora(machine)
    app = SyntheticApp(machine.kernel, PROFILES[name])
    group = sls.attach(app.root, periodic=False)
    return machine, sls, app, group


def run_experiment():
    results = {}
    for name in APPS:
        machine, sls, app, group = _fresh_app(name)
        # Baseline checkpoint, then idle ticks (Table 6's applications
        # are "mostly idle").
        sls.checkpoint(group, sync=True)
        app.idle_tick(seed=1)
        mem = sls.checkpoint(group, mode="mem").stop_ns
        app.idle_tick(seed=2)
        full = sls.checkpoint(group, full=True, sync=True).stop_ns
        app.idle_tick(seed=3)
        incr = sls.checkpoint(group, sync=True).stop_ns

        gid = group.group_id
        machine.crash()
        machine.boot()
        sls2 = load_aurora(machine)
        result_full = sls2.restore(gid, periodic=False)
        r_full = result_full.elapsed_ns
        # "Mem" restore: the OS-state-only portion (no store reads, no
        # page inserts) — what restoring a memory checkpoint costs.
        r_mem = r_full - result_full.io_ns - result_full.insert_ns

        # Lazy restore of a second incarnation.
        for proc in list(result_full.group.processes):
            result_full.group.remove_process(proc)
            proc.exit(0)
        sls2.groups.pop(gid, None)
        result_lazy = sls2.restore(gid, lazy=True, periodic=False)
        r_lazy = result_lazy.elapsed_ns
        results[name] = (mem, full, incr, r_mem, r_full, r_lazy,
                         app.resident_pages())
    return results


def test_table6_application_checkpoints(benchmark, report):
    results = run_once(benchmark, run_experiment)
    lines = ["Table 6 - application checkpoint/restore "
             "(measured, paper in parens, ms)",
             f"{'':<10}" + "".join(f"{name:>14}" for name in APPS)]
    row_names = ["Ckpt Mem", "Ckpt Full", "Ckpt Incr",
                 "Rest Mem", "Rest Full", "Rest Lazy"]
    for row_index, row_name in enumerate(row_names):
        cells = []
        for name in APPS:
            measured_ms = results[name][row_index] / MSEC
            paper = PAPER_MS[name][row_index]
            cells.append(f"{measured_ms:>6.2f}({paper:>4.1f})")
        lines.append(f"{row_name:<10}" + "".join(f"{c:>14}"
                                                 for c in cells))
    report("table6_applications", "\n".join(lines))

    for name in APPS:
        mem, full, incr, r_mem, r_full, r_lazy, _pages = results[name]
        # Stop times in the paper's millisecond band (0.1x..3x paper).
        for measured, paper_ms in zip((mem, full, incr),
                                      PAPER_MS[name][:3]):
            assert 0.15 * paper_ms <= measured / MSEC <= 3 * paper_ms, \
                (name, measured, paper_ms)
        # Full restore dominated by pages; lazy and mem far cheaper.
        assert r_full > 2 * r_lazy or name == "pillow"
        assert r_mem < r_full
    # OS-state complexity, not memory, drives stop time: tomcat (many
    # threads/objects) stops longer than firefox despite equal size.
    assert results["tomcat"][1] > results["firefox"][1]
    # And restore scales with size: tomcat/firefox ≫ mosh.
    assert results["firefox"][4] > 4 * results["mosh"][4]
    assert results["tomcat"][4] > results["vim"][4] > results["mosh"][4]
