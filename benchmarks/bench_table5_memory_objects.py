"""Table 5: checkpoint times for userspace data objects, by mode.

Paper columns (stop time / latency per dirty size):
  Incremental: 185 us @4KiB ... 6.1 ms @1GiB (linear in the dirty set)
  Atomic (sls_memckpt): 80 us @4KiB ... 6.3 ms @1GiB
  Journaled (sls_journal): 28 us @4KiB ... 417.2 ms @1GiB

Crossovers the paper calls out: journaling wins below ~64 KiB; the
asynchronous modes win above; atomic is ~100 us cheaper than a full
incremental checkpoint.
"""

from bench_utils import run_once

from repro import Machine, load_aurora
from repro.core.api import AuroraAPI
from repro.units import GiB, KiB, MiB, PAGE_SIZE, USEC, MSEC, fmt_time

SIZES = [4 * KiB, 16 * KiB, 64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB,
         16 * MiB, 64 * MiB, 256 * MiB, 1 * GiB]

#: Paper's numbers in ns, for the report table.
PAPER = {
    4 * KiB: (185 * USEC, 80 * USEC, 28 * USEC),
    16 * KiB: (185 * USEC, 83 * USEC, 32 * USEC),
    64 * KiB: (183 * USEC, 74 * USEC, 55 * USEC),
    256 * KiB: (186 * USEC, 81 * USEC, 121 * USEC),
    1 * MiB: (186 * USEC, 72 * USEC, 443 * USEC),
    4 * MiB: (226 * USEC, 114 * USEC, 1800 * USEC),
    16 * MiB: (304 * USEC, 184 * USEC, 6600 * USEC),
    64 * MiB: (600 * USEC, 492 * USEC, 25900 * USEC),
    256 * MiB: (1900 * USEC, 1600 * USEC, 104700 * USEC),
    1 * GiB: (6100 * USEC, 6300 * USEC, 417200 * USEC),
}


def _setup(region_bytes):
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("bench")
    group = sls.attach(proc, periodic=False)
    api = AuroraAPI(sls, proc)
    addr = proc.vmspace.mmap(region_bytes, name="data")
    npages = region_bytes // PAGE_SIZE
    proc.vmspace.fill(addr, npages, seed=0)
    # Establish the baseline checkpoint so later ones are incremental.
    sls.checkpoint(group, sync=True)
    return machine, sls, group, api, proc, addr, npages


def run_experiment():
    results = {}
    for size in SIZES:
        npages = size // PAGE_SIZE
        # Incremental: dirty the region, full-pipeline checkpoint.
        machine, sls, group, api, proc, addr, _ = _setup(size)
        proc.vmspace.touch(addr, npages, seed=1)
        # Stop time derived from the pipeline's stage trace
        # (first stop-time stage start → resume stage end).
        incr = sls.checkpoint(group).stop_time_ns()
        machine.loop.drain()

        # Atomic: dirty again, sls_memckpt of just the region.
        proc.vmspace.touch(addr, npages, seed=2)
        atomic = api.sls_memckpt(addr, size).stop_ns
        machine.loop.drain()

        # Journaled: synchronous sls_journal write of the same bytes.
        journal = api.sls_journal_open(2 * size + 1 * MiB)
        t0 = machine.clock.now()
        journal.append_synthetic(size)
        journaled = machine.clock.now() - t0
        results[size] = (incr, atomic, journaled)
    return results


def test_table5_checkpoint_modes(benchmark, report):
    results = run_once(benchmark, run_experiment)
    lines = ["Table 5 - stop time per dirty size and mode "
             "(measured | paper)",
             f"{'Size':>8}  {'Incremental':>22}  {'Atomic':>22}  "
             f"{'Journaled':>22}"]
    for size in SIZES:
        incr, atomic, journaled = results[size]
        p_incr, p_atomic, p_journal = PAPER[size]
        label = f"{size // KiB} KiB" if size < MiB else \
            (f"{size // MiB} MiB" if size < GiB else "1 GiB")
        lines.append(
            f"{label:>8}  {fmt_time(incr):>10} |{fmt_time(p_incr):>10}  "
            f"{fmt_time(atomic):>10} |{fmt_time(p_atomic):>10}  "
            f"{fmt_time(journaled):>10} |{fmt_time(p_journal):>10}")
    report("table5_memory_objects", "\n".join(lines))

    # Within 2x of the paper everywhere.
    for size in SIZES:
        for measured, paper in zip(results[size], PAPER[size]):
            assert paper / 2 <= measured <= paper * 2, \
                f"{size}: {measured} vs {paper}"
    # The paper's qualitative claims:
    #  - journaling is the fastest strategy up to 64 KiB;
    for size in (4 * KiB, 16 * KiB, 64 * KiB):
        incr, atomic, journaled = results[size]
        assert journaled < atomic < incr
    #  - beyond 1 MiB the asynchronous modes win;
    for size in (4 * MiB, 64 * MiB, 1 * GiB):
        incr, atomic, journaled = results[size]
        assert journaled > incr and journaled > atomic
    #  - atomic saves roughly 100 us of stop time at small sizes;
    incr4, atomic4, _ = results[4 * KiB]
    assert 50 * USEC <= incr4 - atomic4 <= 200 * USEC
    #  - stop time scales linearly with the dirty set.
    incr_small = results[4 * KiB][0]
    incr_large = results[1 * GiB][0]
    pages = (1 * GiB) // PAGE_SIZE
    slope = (incr_large - incr_small) / pages
    assert 10 <= slope <= 50  # ns/page, paper: ~23
