"""Fixtures for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's §9:
it runs the experiment on the simulator, prints the paper-shaped rows
(also saved under ``benchmarks/results/``), and asserts the paper's
*qualitative* claims — who wins, by roughly what factor, where the
crossovers are.  Absolute numbers are simulated time from the
calibrated cost model (see ``src/repro/core/costs.py``).
"""

from __future__ import annotations

import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from bench_utils import save_report  # noqa: E402


@pytest.fixture
def report():
    return save_report
