#!/usr/bin/env python
"""Simulation-scale benchmark: wall-clock cost per simulated second.

Everything else in ``benchmarks/`` measures *simulated* time — the
paper's numbers.  This one measures the cost of running the simulation
itself, which is what bounds how large a scenario the reproduction can
model.  A consistency group is driven at the checkpoint cadence
(100 Hz) over address spaces of growing size and kernel state of
growing fd counts, with a small per-tick dirty set — the paper's
steady state.  The metric is wall-clock seconds per simulated second
(= per 100 checkpoints).

The columnar hot path (bitmap pmaps, run-based merges, slab
collapses, batched extent staging) is measured against the
``--baseline``-selectable legacy path (dict-of-PTE pmap + per-page
merge/collapse), which is kept in-tree as the executable
specification.  The legacy write-protect pass is O(address space) per
checkpoint, so the baseline is only measured up to 256k pages; the
1M-page / 10k-fd point exists to show the columnar path completes it
at all.

Emits ``BENCH_simscale.json`` at the repo root::

    python benchmarks/bench_simscale.py            # full sweep
    python benchmarks/bench_simscale.py --smoke    # CI-sized sweep

``--smoke`` shrinks the sweep to the 64k point, runs fewer ticks and
fails (exit 1) if the columnar speedup regresses below the threshold.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import Machine, load_aurora
from repro.core.serialize import CheckpointSerializer
from repro.kernel.fs import O_CREAT, O_RDWR
import repro.kernel.vm.vmspace as vmspace_mod
from repro.kernel.vm.pmap import LegacyPmap, Pmap
from repro.units import PAGE_SIZE

HZ = 100
#: (address-space pages, open fds) sweep points.  The last point is
#: the acceptance target: 1M pages / 10k fds at 100 Hz.
SWEEP = [(64 * 1024, 64), (256 * 1024, 256), (1024 * 1024, 10 * 1000)]
#: The legacy pmap's write-protect pass walks every page per tick;
#: past this size the baseline takes minutes per simulated second.
BASELINE_MAX_PAGES = 256 * 1024
#: Per-tick dirty set: a few contiguous runs, the steady-state shape.
DIRTY_RUNS_PER_TICK = 4
DIRTY_RUN_PAGES = 16
#: Kernel-state churn: 0.1% of the open fds mutate per tick.  Zero at
#: the small sweep points (they isolate the VM hot path the baseline
#: contrast targets); 10 per tick at the 10k-fd endpoint, which
#: exercises the incremental kernel-state path at scale.
FD_DIRTY_FRACTION = 0.001

JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "BENCH_simscale.json"


def run_config(npages: int, nfds: int, ticks: int,
               legacy: bool) -> dict:
    """Drive ``ticks`` checkpoints over an ``npages``-page process with
    ``nfds`` open files; return wall-clock stats (setup and the first
    full checkpoint are excluded from the timed region)."""
    original_pmap = vmspace_mod.Pmap
    original_walk = CheckpointSerializer.legacy_walk
    vmspace_mod.Pmap = LegacyPmap if legacy else Pmap
    CheckpointSerializer.legacy_walk = legacy
    try:
        machine = Machine()
        sls = load_aurora(machine)
        sls.shadow.legacy_hot_path = legacy
        kernel = machine.kernel
        proc = kernel.spawn("simscale")
        addr = proc.vmspace.mmap(npages * PAGE_SIZE, name="heap")
        proc.vmspace.fill(addr, npages, seed=1)
        kernel.vfs.mkdir("/simscale")
        fds = [kernel.open(proc, f"/simscale/f{i}", O_RDWR | O_CREAT)
               for i in range(nfds)]
        for fd in fds:
            kernel.write(proc, fd, b"seed")
        group = sls.attach(proc, periodic=False)
        # First checkpoint captures the full image; steady state starts
        # after it.
        sls.checkpoint(group, sync=True)

        span = npages - DIRTY_RUN_PAGES
        fd_writes = int(nfds * FD_DIRTY_FRACTION)
        sim_t0 = machine.clock.now()
        t0 = time.perf_counter()
        for tick in range(ticks):
            for run in range(DIRTY_RUNS_PER_TICK):
                # Deterministic scatter across the address space.
                start = (tick * 7919 + run * 104729) % span
                proc.vmspace.touch(addr + start * PAGE_SIZE,
                                   DIRTY_RUN_PAGES,
                                   seed=tick * DIRTY_RUNS_PER_TICK + run)
            for fd in fds[:fd_writes]:
                kernel.write(proc, fd, b"x")
            sls.checkpoint(group, sync=True)
        elapsed = time.perf_counter() - t0
        return {
            "pages": npages,
            "fds": nfds,
            "ticks": ticks,
            "wall_s": elapsed,
            "wall_s_per_sim_s": elapsed * HZ / ticks,
            "wall_ms_per_tick": elapsed * 1000 / ticks,
            "sim_ns_elapsed": machine.clock.now() - sim_t0,
            "pages_flushed": group.stats["pages_flushed"],
            "dirty_runs": sls.shadow.stats["dirty_runs"],
        }
    finally:
        vmspace_mod.Pmap = original_pmap
        CheckpointSerializer.legacy_walk = original_walk


def run_sweep(sweep, ticks: int, with_baseline: bool) -> dict:
    rows = []
    for npages, nfds in sweep:
        print(f"[simscale] columnar: {npages} pages, {nfds} fds, "
              f"{ticks} ticks @ {HZ} Hz ...", flush=True)
        columnar = run_config(npages, nfds, ticks, legacy=False)
        row = {
            "pages": npages,
            "fds": nfds,
            "columnar": columnar,
            "baseline": None,
            "speedup": None,
        }
        if with_baseline and npages <= BASELINE_MAX_PAGES:
            print(f"[simscale] baseline: {npages} pages, {nfds} fds ...",
                  flush=True)
            baseline = run_config(npages, nfds, ticks, legacy=True)
            row["baseline"] = baseline
            row["speedup"] = (baseline["wall_s_per_sim_s"]
                              / columnar["wall_s_per_sim_s"])
        rows.append(row)
    return {
        "hz": HZ,
        "ticks_per_point": ticks,
        "dirty_pages_per_tick": DIRTY_RUNS_PER_TICK * DIRTY_RUN_PAGES,
        "fd_dirty_fraction": FD_DIRTY_FRACTION,
        "sweep": rows,
    }


def report(results: dict) -> None:
    print(f"\nSimulation scale - wall-clock per simulated second "
          f"({HZ} Hz, {results['dirty_pages_per_tick']} dirty pages/tick)")
    print(f"{'pages':>9} {'fds':>6} {'columnar':>12} {'baseline':>12} "
          f"{'speedup':>8}")
    for row in results["sweep"]:
        col = row["columnar"]["wall_s_per_sim_s"]
        if row["baseline"] is not None:
            base = f"{row['baseline']['wall_s_per_sim_s']:>10.2f} s"
            speed = f"{row['speedup']:>7.1f}x"
        else:
            base = f"{'-':>12}"
            speed = f"{'-':>8}"
        print(f"{row['pages']:>9} {row['fds']:>6} {col:>10.2f} s "
              f"{base} {speed}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: 64k-page point only, fewer "
                             "ticks, fail below --threshold speedup")
    parser.add_argument("--ticks", type=int, default=None,
                        help="measured checkpoints per sweep point "
                             "(default: 100 full, 20 smoke)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="skip the legacy-path baseline runs")
    parser.add_argument("--threshold", type=float, default=None,
                        help="minimum acceptable speedup (default: "
                             "10.0 full at 256k, 2.0 smoke at 64k)")
    parser.add_argument("--output", type=pathlib.Path, default=JSON_PATH,
                        help=f"result path (default {JSON_PATH.name})")
    args = parser.parse_args()

    if args.smoke:
        sweep = SWEEP[:1]
        ticks = args.ticks or 20
        # Generous: the 64k point's legacy write-protect term is small,
        # so its true speedup (~3x) sits far below the 256k gate; the
        # smoke job only guards against losing the columnar path
        # outright.
        threshold = args.threshold if args.threshold is not None else 2.0
    else:
        sweep = SWEEP
        ticks = args.ticks or HZ
        threshold = args.threshold if args.threshold is not None else 10.0

    results = run_sweep(sweep, ticks, with_baseline=not args.no_baseline)
    results["smoke"] = args.smoke
    report(results)
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    if args.no_baseline:
        return 0
    # Acceptance: the largest baselined point must show the columnar
    # speedup (full run: >= 10x at 256k pages; smoke: >= 3x at 64k).
    checked = [row for row in results["sweep"]
               if row["speedup"] is not None]
    if not checked:
        return 0
    gate = max(checked, key=lambda row: row["pages"])
    print(f"speedup at {gate['pages']} pages: {gate['speedup']:.1f}x "
          f"(threshold {threshold:.1f}x)")
    if gate["speedup"] < threshold:
        print("FAIL: columnar speedup below threshold", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
