"""Table 1: CRIU's checkpointing overheads for a 500 MB Redis process.

Paper values:  OS state copy 49 ms | memory copy 413 ms |
total stop 462 ms | IO write 350 ms.
"""

from bench_utils import run_once

from repro.machine import Machine
from repro.apps.redis import RedisServer
from repro.baselines.criu import CRIUCheckpointer
from repro.units import MiB, MSEC, fmt_time

PAPER = {"os_state": 49 * MSEC, "memory": 413 * MSEC,
         "total_stop": 462 * MSEC, "io": 350 * MSEC}


def run_experiment():
    machine = Machine()
    server = RedisServer(machine.kernel, heap_bytes=600 * MiB)
    server.populate_synthetic(500 * MiB, value_size=4096)
    checkpointer = CRIUCheckpointer(machine.kernel)
    return checkpointer.checkpoint(server.proc)


def test_table1_criu_breakdown(benchmark, report):
    result = run_once(benchmark, run_experiment)
    rows = [
        ("OS State Copy", result.os_state_ns, PAPER["os_state"]),
        ("Memory Copy", result.memory_copy_ns, PAPER["memory"]),
        ("Total Stop Time", result.total_stop_ns, PAPER["total_stop"]),
        ("IO Write", result.io_write_ns, PAPER["io"]),
    ]
    lines = ["Table 1 - CRIU checkpoint breakdown (500 MB Redis)",
             f"{'Type':<18} {'Measured':>12} {'Paper':>12}"]
    for name, measured, paper in rows:
        lines.append(f"{name:<18} {fmt_time(measured):>12} "
                     f"{fmt_time(paper):>12}")
    report("table1_criu", "\n".join(lines))

    # Shape assertions: each component within 2x of the paper, and the
    # structural relations hold.
    for _name, measured, paper in rows:
        assert paper / 2 <= measured <= paper * 2
    assert result.memory_copy_ns > 5 * result.os_state_ns
    assert result.total_stop_ns == result.os_state_ns + result.memory_copy_ns
