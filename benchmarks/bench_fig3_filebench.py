"""Figure 3: FileBench microbenchmarks — Aurora FS vs ZFS vs FFS.

Panels: (a) 64 KiB random/sequential write throughput, (b) 4 KiB
writes, (c) createfiles + write+fsync ops/s, (d) fileserver / varmail /
webserver personalities.

Paper's qualitative claims, asserted below:
* ZFS is slower than Aurora in both write configurations (simpler
  metadata updates);
* FFS wins the small-write panel (fragments);
* Aurora's file creation is the slowest (global lock);
* Aurora's fsync is a no-op, so it dominates write+fsync and varmail;
* ZFS syncs are slower than FFS and Aurora;
* the three are comparable on fileserver and webserver.
"""

from bench_utils import run_once

from repro.machine import Machine
from repro.slsfs import AuroraFSModel, FFSModel, ZFSModel
from repro.workloads.filebench import FileBench
from repro.units import KiB, MiB

ENGINES = [
    ("zfs", lambda m: ZFSModel(m)),
    ("zfs+csum", lambda m: ZFSModel(m, checksums=True)),
    ("ffs", lambda m: FFSModel(m)),
    ("aurora", lambda m: AuroraFSModel(m)),
]


def _bench(make_fs, method, *args, **kwargs):
    machine = Machine()
    fb = FileBench(make_fs(machine))
    return getattr(fb, method)(*args, **kwargs)


def run_experiment():
    results = {}
    for name, make in ENGINES:
        results[name] = {
            "w64_rand": _bench(make, "write_throughput", 64 * KiB, False,
                               total_bytes=128 * MiB),
            "w64_seq": _bench(make, "write_throughput", 64 * KiB, True,
                              total_bytes=128 * MiB),
            "w4_rand": _bench(make, "write_throughput", 4 * KiB, False,
                              total_bytes=64 * MiB),
            "w4_seq": _bench(make, "write_throughput", 4 * KiB, True,
                             total_bytes=64 * MiB),
            "createfiles": _bench(make, "createfiles", 10_000),
            "fsync4": _bench(make, "write_fsync", 4 * KiB, 5_000),
            "fsync64": _bench(make, "write_fsync", 64 * KiB, 5_000),
            "fileserver": _bench(make, "fileserver", 30_000),
            "varmail": _bench(make, "varmail", 30_000),
            "webserver": _bench(make, "webserver", 30_000),
        }
    return results


def test_fig3_filebench(benchmark, report):
    results = run_once(benchmark, run_experiment)
    lines = ["Figure 3 - FileBench: Aurora FS vs ZFS vs FFS",
             f"{'engine':<10}{'w64r':>7}{'w64s':>7}{'w4r':>7}{'w4s':>7}"
             f"  (GiB/s) |{'create':>9}{'fsync4':>9}{'fsync64':>9}"
             f"{'filesrv':>9}{'varmail':>9}{'websrv':>9}  (kops/s)"]
    for name, _make in ENGINES:
        r = results[name]
        lines.append(
            f"{name:<10}{r['w64_rand']:>7.2f}{r['w64_seq']:>7.2f}"
            f"{r['w4_rand']:>7.2f}{r['w4_seq']:>7.2f}          |"
            f"{r['createfiles'] / 1e3:>9.1f}{r['fsync4'] / 1e3:>9.1f}"
            f"{r['fsync64'] / 1e3:>9.1f}{r['fileserver'] / 1e3:>9.1f}"
            f"{r['varmail'] / 1e3:>9.1f}{r['webserver'] / 1e3:>9.1f}")
    report("fig3_filebench", "\n".join(lines))

    zfs, csum = results["zfs"], results["zfs+csum"]
    ffs, aurora = results["ffs"], results["aurora"]
    # (a)/(b): ZFS slower than Aurora in both write configurations.
    for key in ("w64_rand", "w64_seq", "w4_rand", "w4_seq"):
        assert zfs[key] < aurora[key]
        assert csum[key] < zfs[key]  # checksums cost extra
    # (b): FFS's fragment path wins small writes.
    assert ffs["w4_rand"] > aurora["w4_rand"] > zfs["w4_rand"]
    # (c): Aurora's create path is the slowest (global lock)...
    assert aurora["createfiles"] < ffs["createfiles"]
    assert aurora["createfiles"] < zfs["createfiles"]
    # ...but its no-op fsync dominates:
    assert aurora["fsync4"] > 5 * ffs["fsync4"]
    assert aurora["fsync64"] > 5 * zfs["fsync64"]
    # ...and ZFS syncs are slower than FFS.
    assert zfs["fsync4"] < ffs["fsync4"]
    # (d): Aurora wins varmail (fsync-heavy) by a wide margin...
    assert aurora["varmail"] > 3 * ffs["varmail"]
    assert aurora["varmail"] > 3 * zfs["varmail"]
    # ...and is comparable elsewhere (within 2x of the best).
    best_file = max(r["fileserver"] for r in results.values())
    best_web = max(r["webserver"] for r in results.values())
    assert aurora["fileserver"] > best_file / 2
    assert aurora["webserver"] > best_web / 2
