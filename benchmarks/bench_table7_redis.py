"""Table 7: Aurora vs CRIU vs Redis RDB on a 500 MiB Redis instance.

Paper values:
            Aurora     CRIU     RDB
  OS State   0.3 ms    49 ms    N/A
  Memory     3.7 ms   413 ms    N/A
  Total Stop 4.0 ms   462 ms    8 ms
  IO Write  97.6 ms   350 ms   300 ms

Headline claims: Aurora's stop time is two orders of magnitude below
CRIU's; Aurora writes the checkpoint ~3x faster than either (and
unlike CRIU actually flushes); RDB is slower than Aurora despite
saving only the data, because of serialization overheads.
"""

from bench_utils import run_once

from repro import Machine, load_aurora
from repro.apps.redis import RedisServer
from repro.baselines.criu import CRIUCheckpointer
from repro.units import MiB, MSEC, USEC, fmt_time

SIZE = 500 * MiB


def run_experiment():
    # --- Aurora -----------------------------------------------------------
    machine = Machine()
    sls = load_aurora(machine)
    server = RedisServer(machine.kernel, heap_bytes=600 * MiB)
    server.populate_synthetic(SIZE, value_size=4096)
    group = sls.attach(server.proc, periodic=False)
    result = sls.checkpoint(group, sync=False)  # full first checkpoint
    # Stage-derived timings: the pipeline records one span per stage,
    # and the result exposes them by name.
    aurora_stop = result.stop_time_ns()
    aurora_os = result.stage_ns("quiesce") + result.stage_ns("serialize")
    aurora_mem = result.stage_ns("collapse") + result.stage_ns("shadow")
    t0 = machine.clock.now()
    machine.loop.drain()  # the asynchronous flush
    aurora_io = machine.clock.now() - t0

    # --- CRIU -------------------------------------------------------------
    machine2 = Machine()
    server2 = RedisServer(machine2.kernel, heap_bytes=600 * MiB)
    server2.populate_synthetic(SIZE, value_size=4096)
    criu = CRIUCheckpointer(machine2.kernel).checkpoint(server2.proc)

    # --- Redis RDB (BGSAVE) -------------------------------------------------
    machine3 = Machine()
    server3 = RedisServer(machine3.kernel, heap_bytes=600 * MiB)
    server3.populate_synthetic(SIZE, value_size=4096)
    rdb = server3.bgsave()

    return {
        "aurora": (aurora_os, aurora_mem, aurora_stop, aurora_io),
        "criu": (criu.os_state_ns, criu.memory_copy_ns,
                 criu.total_stop_ns, criu.io_write_ns),
        "rdb": (None, None, rdb.fork_stop_ns,
                rdb.serialize_ns + rdb.io_write_ns),
    }


def test_table7_aurora_vs_criu_vs_rdb(benchmark, report):
    results = run_once(benchmark, run_experiment)
    aurora = results["aurora"]
    criu = results["criu"]
    rdb = results["rdb"]

    def cell(value):
        return fmt_time(value) if value is not None else "N/A"

    lines = ["Table 7 - full checkpoint of a 500 MiB Redis instance",
             f"{'Type':<16} {'Aurora':>12} {'CRIU':>12} {'RDB':>12}",
             f"{'OS State':<16} {cell(aurora[0]):>12} "
             f"{cell(criu[0]):>12} {cell(rdb[0]):>12}",
             f"{'Memory':<16} {cell(aurora[1]):>12} "
             f"{cell(criu[1]):>12} {cell(rdb[1]):>12}",
             f"{'Total Stop Time':<16} {cell(aurora[2]):>12} "
             f"{cell(criu[2]):>12} {cell(rdb[2]):>12}",
             f"{'IO Write':<16} {cell(aurora[3]):>12} "
             f"{cell(criu[3]):>12} {cell(rdb[3]):>12}",
             "",
             "Paper:            Aurora 0.3/3.7/4.0/97.6 ms | "
             "CRIU 49/413/462/350 ms | RDB -/-/8/300 ms"]
    report("table7_redis", "\n".join(lines))

    # Aurora's stop time is two orders of magnitude below CRIU's.
    assert criu[2] > 50 * aurora[2]
    # Aurora's stop time lands in the paper's millisecond band.
    assert 1 * MSEC <= aurora[2] <= 12 * MSEC
    # Aurora writes out ~3x faster than CRIU (while actually flushing).
    assert criu[3] > 2 * aurora[3]
    # RDB's fork stop beats CRIU but loses to Aurora.
    assert aurora[2] < rdb[2] < criu[2]
    # RDB write-out is ~3x slower than Aurora's flush.
    assert rdb[3] > 2 * aurora[3]
