"""Table 4: checkpoint and restore times for individual POSIX objects.

Paper values (checkpoint / restore):
kqueue w/1024 events 35.2/2.7 us | pipes 1.7/2.6 | pseudoterminals
3.1/30.2 | shm POSIX 4.5/3.8 | shm SysV 14.9/2.8 | sockets 1.8/3.6 |
vnodes 1.7/2.0.
"""

from bench_utils import run_once

from repro import Machine, load_aurora
from repro.core.serialize import CheckpointSerializer
from repro.core.restore import GroupRestorer
from repro.kernel.ipc.kqueue import EVFILT_READ, KEvent
from repro.units import PAGE_SIZE, USEC, fmt_time

PAPER = {  # object -> (checkpoint us, restore us)
    "kqueue": (35.2, 2.7),
    "pipe": (1.7, 2.6),
    "pty": (3.1, 30.2),
    "shm-posix": (4.5, 3.8),
    "shm-sysv": (14.9, 2.8),
    "socket": (1.8, 3.6),
    "vnode": (1.7, 2.0),
}


class _SinkTxn:
    """Captures records without store costs (microbenchmark isolation)."""

    def __init__(self):
        self.records = {}

    def put_object(self, oid, otype, state):
        self.records[oid] = (otype, state)

    def put_pages(self, oid, pages):
        pass


def _measure(kernel, serializer_call, fobj):
    t0 = kernel.clock.now()
    oid = serializer_call(fobj)
    return oid, kernel.clock.now() - t0


def run_experiment():
    machine = Machine()
    sls = load_aurora(machine)
    kernel = machine.kernel
    proc = kernel.spawn("micro")
    group = sls.attach(proc, periodic=False)
    txn = _SinkTxn()
    serializer = CheckpointSerializer(kernel, group, sls.store, txn)

    # Build one instance of each object type.
    kqfd = kernel.kqueue(proc)
    kq = proc.fdtable.get(kqfd).fobj
    for ident in range(1024):
        kq.register(KEvent(ident, EVFILT_READ))
    rfd, _wfd = kernel.pipe(proc)
    pipe = proc.fdtable.get(rfd).fobj
    mfd, _sfd = kernel.open_pty(proc)
    pty = proc.fdtable.get(mfd).fobj
    pshm_fd = kernel.shm_open(proc, "/posix-seg", 16 * PAGE_SIZE)
    pshm = proc.fdtable.get(pshm_fd).fobj
    sysv_id = kernel.shmget(0x77, 16 * PAGE_SIZE)
    sysv = kernel.sysv_shm.segment(sysv_id)
    sockfd = kernel.tcp_socket(proc)
    sock = proc.fdtable.get(sockfd).fobj
    vfd = kernel.open(proc, "/bench-vnode", 0x40 | 0x2)
    vnode = proc.fdtable.get(vfd).vnode

    objects = [
        ("kqueue", serializer.serialize_kqueue, kq, "kqueue"),
        ("pipe", serializer.serialize_pipe, pipe, "pipe"),
        ("pty", serializer.serialize_pty, pty, "pty"),
        ("shm-posix", serializer.serialize_shm, pshm, "shm"),
        ("shm-sysv", serializer.serialize_shm, sysv, "shm"),
        ("socket", serializer.serialize_socket, sock, "tcpsock"),
        ("vnode", serializer.serialize_vnode, vnode, "vnode"),
    ]

    results = {}
    for name, call, fobj, otype in objects:
        oid, ckpt_ns = _measure(kernel, call, fobj)
        # Restore in isolation on a fresh restorer.
        restorer = GroupRestorer(kernel, sls.store, sls.slsfs)
        record = {oid: txn.records[oid]}
        if name == "vnode":
            # The vnode already exists in the mounted slsfs; resurrect
            # path exercises vnode_for_restore.
            sls.slsfs._vnodes.pop(vnode.inode, None)
            sls.slsfs._persisted_inodes.add(vnode.inode)
            sls.slsfs.checkpoint(sync=True)
        t0 = kernel.clock.now()
        restorer._create_shells(record, {}, lazy=False)
        restore_ns = kernel.clock.now() - t0
        results[name] = (ckpt_ns, restore_ns)
    return results


def test_table4_posix_object_costs(benchmark, report):
    results = run_once(benchmark, run_experiment)
    lines = ["Table 4 - POSIX object checkpoint/restore times",
             f"{'Object':<12} {'ckpt':>10} {'paper':>8}   "
             f"{'restore':>10} {'paper':>8}"]
    for name, (ckpt_ns, restore_ns) in results.items():
        paper_ckpt, paper_restore = PAPER[name]
        lines.append(f"{name:<12} {fmt_time(ckpt_ns):>10} "
                     f"{paper_ckpt:>6.1f}us   {fmt_time(restore_ns):>10} "
                     f"{paper_restore:>6.1f}us")
    report("table4_posix_objects", "\n".join(lines))

    for name, (ckpt_ns, restore_ns) in results.items():
        paper_ckpt, paper_restore = PAPER[name]
        assert 0.5 * paper_ckpt <= ckpt_ns / USEC <= 2.0 * paper_ckpt, name
        assert 0.5 * paper_restore <= restore_ns / USEC \
            <= 2.0 * paper_restore, name
    # Structural claims from the paper's discussion:
    assert results["kqueue"][0] > 5 * results["pipe"][0]      # 1024 knotes
    assert results["shm-sysv"][0] > 2 * results["shm-posix"][0]  # scan
    assert results["pty"][1] > 5 * results["pty"][0]          # devfs locks
