#!/usr/bin/env python3
"""Serverless warm starts via checkpoint/restore (§1, §10).

A "function" with an expensive initialization (loading libraries,
building caches) is initialized once, captured post-initialization
with ``sls suspend``, and then every invocation is a *restore* instead
of a cold start.  Lazy restores defer memory loading to first touch,
so invocation latency depends on the working set, not the image size.

Run:  python examples/serverless_warmstart.py
"""

from repro import Machine, load_aurora
from repro.units import MSEC, PAGE_SIZE, fmt_time

INIT_PAGES = 24576       # 96 MiB of "loaded libraries and caches"
HANDLER_PAGES = 64       # what one invocation actually touches


def cold_start(machine):
    """Initialize the function from scratch (the expensive path)."""
    kernel = machine.kernel
    proc = kernel.spawn("lambda")
    heap = proc.vmspace.mmap(INIT_PAGES * PAGE_SIZE, name="runtime")
    t0 = machine.clock.now()
    # Simulated interpreter boot + imports: CPU plus page population.
    machine.clock.advance(180 * MSEC)
    proc.vmspace.fill(heap, INIT_PAGES, seed=0xF)
    init_ns = machine.clock.now() - t0
    return proc, heap, init_ns


def invoke(machine, proc, heap):
    """One invocation: touch the handler's working set."""
    t0 = machine.clock.now()
    proc.vmspace.read(heap, HANDLER_PAGES * PAGE_SIZE)
    machine.clock.advance(250_000)  # handler CPU time
    return machine.clock.now() - t0


def main():
    machine = Machine()
    sls = load_aurora(machine)

    proc, heap, init_ns = cold_start(machine)
    print(f"cold start (init from scratch): {fmt_time(init_ns)}")

    group = sls.attach(proc, name="lambda", periodic=False)
    gid = group.group_id
    ckpt = sls.suspend(group)
    print(f"captured post-init snapshot as checkpoint {ckpt}")

    # Full-restore invocation.
    result = sls.restore(gid, periodic=False)
    t_restore_full = result.elapsed_ns
    t_invoke = invoke(machine, result.root, heap)
    print(f"warm start (full restore):  restore "
          f"{fmt_time(t_restore_full)} + handler {fmt_time(t_invoke)}")
    for p in list(result.group.processes):
        result.group.remove_process(p)
        p.exit(0)
    sls.groups.pop(gid, None)

    # Lazy-restore invocation: OS state now, pages on demand.
    result = sls.restore(gid, lazy=True, periodic=False)
    t_restore_lazy = result.elapsed_ns
    t_invoke_lazy = invoke(machine, result.root, heap)
    print(f"warm start (lazy restore):  restore "
          f"{fmt_time(t_restore_lazy)} + handler "
          f"{fmt_time(t_invoke_lazy)} (pages fault in on demand)")

    speedup = init_ns / (t_restore_lazy + t_invoke_lazy)
    print(f"\nlazy warm start is {speedup:.0f}x faster than cold start "
          f"for a {HANDLER_PAGES}-page working set out of "
          f"{INIT_PAGES} resident pages")


if __name__ == "__main__":
    main()
