#!/usr/bin/env python3
"""High availability by continuous checkpoint replication (Table 2).

A primary machine runs a stateful service under Aurora; every
checkpoint is streamed incrementally to a standby machine.  When the
primary suffers a power failure, the standby takes over from the last
replicated checkpoint — losing at most one period of work, with no
application code for replication, serialization or recovery.

Run:  python examples/high_availability.py
"""

from repro import Machine, load_aurora
from repro.core.replication import ReplicationLink
from repro.units import MSEC, PAGE_SIZE, fmt_size


def main():
    primary = Machine()
    primary_sls = load_aurora(primary)
    standby = Machine()
    standby_sls = load_aurora(standby)

    kernel = primary.kernel
    proc = kernel.spawn("orders-service")
    heap = proc.vmspace.mmap(256 * PAGE_SIZE, name="orders")
    group = primary_sls.attach(proc, name="orders-service",
                               period_ns=10 * MSEC)
    link = ReplicationLink(primary_sls, standby_sls, group)
    link.install()
    print("primary serving; standby receiving incremental streams "
          "every 10 ms")

    orders = 0
    for _tick in range(60):
        orders += 1
        proc.vmspace.write(heap, orders.to_bytes(8, "little"))
        proc.vmspace.write(heap + 8 * orders,
                           f"order-{orders}".encode())
        primary.run_for(2 * MSEC)

    print(f"processed {orders} orders; "
          f"{link.stats['streams']} streams shipped "
          f"({fmt_size(link.stats['bytes'])} total), "
          f"standby lag: {link.lag_checkpoints()} checkpoint(s)")

    print("PRIMARY POWER FAILURE")
    primary.crash()

    result = link.failover()
    restored = result.root
    recovered = int.from_bytes(restored.vmspace.read(heap, 8), "little")
    print(f"standby took over at order {recovered} "
          f"(lost {orders - recovered} in-flight orders, "
          f"<= one period + replication lag)")
    assert orders - recovered <= 10
    # The standby continues as the new primary.
    recovered += 1
    restored.vmspace.write(heap, recovered.to_bytes(8, "little"))
    standby.run_for(20 * MSEC)
    print(f"standby now serving (order counter at {recovered}); "
          f"history on standby: "
          f"{len(standby_sls.store.checkpoints_for(group.group_id, include_partial=True))} checkpoints")


if __name__ == "__main__":
    main()
