#!/usr/bin/env python3
"""Live migration between machines with ``sls send``/``sls recv`` (§3).

A stateful service runs on machine A under Aurora.  We pre-copy its
checkpoints to machine B with incremental streams, then do a final
stop-and-copy round and resume it on B — the classic pre-copy live
migration built from Aurora's primitives.

Run:  python examples/live_migration.py
"""

from repro import Machine, load_aurora
from repro.core import migration
from repro.units import MSEC, PAGE_SIZE, fmt_size, fmt_time


def main():
    source = Machine()
    src_sls = load_aurora(source)
    target = Machine()
    dst_sls = load_aurora(target)

    # The service: a session table that keeps changing.
    kernel = source.kernel
    proc = kernel.spawn("session-store")
    heap = proc.vmspace.mmap(4096 * PAGE_SIZE, name="sessions")
    proc.vmspace.fill(heap, 4096, seed=1)
    proc.vmspace.write(heap, b"session-epoch-1")
    group = src_sls.attach(proc, name="session-store", periodic=False)

    # Round 1: full baseline stream.
    src_sls.checkpoint(group, full=True, sync=True)
    stream = migration.send_checkpoint(src_sls, group.group_id)
    migration.recv_checkpoint(dst_sls, stream)
    print(f"pre-copy round 1: {fmt_size(len(stream))} (full image)")

    # The service keeps mutating while we pre-copy.
    proc.vmspace.touch(heap + 64 * PAGE_SIZE, 32, seed=2)
    proc.vmspace.write(heap, b"session-epoch-2")
    baseline = group.last_complete_id
    src_sls.checkpoint(group, sync=True)
    stream = migration.send_checkpoint(src_sls, group.group_id,
                                       since=baseline)
    migration.recv_checkpoint(dst_sls, stream)
    print(f"pre-copy round 2: {fmt_size(len(stream))} (dirty delta only)")

    # Final stop-and-copy + switchover, all in one call.
    t0 = source.clock.now()
    proc.vmspace.write(heap, b"session-epoch-3")
    result = migration.migrate(src_sls, dst_sls, group, rounds=1)
    print(f"switchover at source t={fmt_time(source.clock.now() - t0)}")

    restored = result.root
    epoch = restored.vmspace.read(heap, 15)
    print(f"service resumed on target machine: pid {restored.pid}, "
          f"state {epoch!r}")
    assert epoch == b"session-epoch-3"
    assert proc.state == "zombie"
    print("OK: no state lost, source incarnation retired")


if __name__ == "__main__":
    main()
