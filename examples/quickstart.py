#!/usr/bin/env python3
"""Quickstart: transparent persistence in thirty lines.

A counter "application" runs under Aurora with the default 10 ms
checkpoint period and *no persistence code of its own*.  We pull the
(simulated) power cable mid-run; after reboot, Aurora restores the
process — memory, file descriptors, PID — and it resumes as if nothing
happened, missing at most one checkpoint period of work.

Run:  python examples/quickstart.py
"""

from repro import Machine, load_aurora
from repro.units import MSEC, PAGE_SIZE, fmt_time


def main():
    machine = Machine()
    sls = load_aurora(machine)
    kernel = machine.kernel

    # An ordinary process: a counter in anonymous memory plus a log
    # file.  No fsync, no serialization code, no recovery logic.
    proc = kernel.spawn("counter")
    heap = proc.vmspace.mmap(64 * PAGE_SIZE, name="heap")
    log_fd = kernel.open(proc, "/counter.log", flags=0x40 | 0x2)

    group = sls.attach(proc, name="counter")   # <- the only Aurora call
    print(f"attached as group {group.group_id}, checkpointing every "
          f"{group.period_ns // MSEC} ms")

    value = 0
    for _tick in range(50):
        value += 1
        proc.vmspace.write(heap, value.to_bytes(8, "little"))
        kernel.write(proc, log_fd, f"tick {value}\n".encode())
        machine.run_for(2 * MSEC)   # application work; checkpoints
                                    # fire on their own timer

    print(f"counter reached {value}; checkpoints taken: "
          f"{group.stats['checkpoints']}")
    print("pulling the power cable...")
    machine.crash()

    machine.boot()
    sls = load_aurora(machine)      # recovers the object store
    print(f"rebooted; Aurora knows about groups {sls.restorable_groups()}")

    result = sls.restore(group.group_id)
    restored = result.root
    recovered = int.from_bytes(restored.vmspace.read(heap, 8), "little")
    print(f"restored pid {restored.pid} in {fmt_time(result.elapsed_ns)}; "
          f"counter = {recovered}")

    kernel = machine.kernel
    kernel.lseek(restored, log_fd, 0)
    tail = kernel.read(restored, log_fd, 1 << 16).decode().splitlines()
    print(f"log file has {len(tail)} entries; last: {tail[-1]!r}")
    # One checkpoint period (10 ms) spans five 2 ms ticks: the crash
    # can cost at most that much work.
    assert recovered >= value - 6, "lost more than one checkpoint period"
    print(f"OK: lost {value - recovered} ticks — at most one checkpoint "
          f"period of work")


if __name__ == "__main__":
    main()
