#!/usr/bin/env python3
"""Time-travel debugging with execution history (§1, §7).

Aurora retains the full checkpoint history of an application — "the
history of an application execution is only limited by the available
storage."  This example runs a buggy service, then:

1. lists the execution history (``sls ps`` / ``sls history`` style);
2. rewinds to successively older checkpoints to bisect when the
   corruption appeared;
3. extracts an ELF coredump of the faulty state for offline inspection
   (``sls dump``);
4. trims old history with the store's snapshot GC.

Run:  python examples/timetravel_debugging.py
"""

from repro import Machine, load_aurora
from repro.core.coredump import dump_process, parse_core
from repro.units import PAGE_SIZE, fmt_size, fmt_time


def main():
    machine = Machine()
    sls = load_aurora(machine)
    kernel = machine.kernel

    proc = kernel.spawn("ledger")
    heap = proc.vmspace.mmap(16 * PAGE_SIZE, name="heap")
    group = sls.attach(proc, name="ledger", periodic=False)

    # The "application": appends entries; a bug corrupts the balance
    # at step 13.
    balance = 0
    history = []
    for step in range(1, 21):
        balance += 100
        if step == 13:
            balance = -999_999  # the bug
        proc.vmspace.write(heap, balance.to_bytes(8, "little",
                                                  signed=True))
        proc.vmspace.write(heap + 8, step.to_bytes(4, "little"))
        res = sls.checkpoint(group, name=f"step{step}", sync=True)
        history.append((step, res.info.ckpt_id))

    chain = sls.store.checkpoints_for(group.group_id)
    print(f"execution history: {len(chain)} checkpoints, "
          f"{fmt_size(sum(c.data_bytes for c in chain))} of deltas")

    # Bisect backwards for the last good state.
    print("bisecting history for the corruption...")
    lo, hi = 0, len(history) - 1
    last_good = None
    while lo <= hi:
        mid = (lo + hi) // 2
        step, ckpt_id = history[mid]
        result = sls.restore(group.group_id, ckpt_id=ckpt_id,
                             periodic=False)
        value = int.from_bytes(result.root.vmspace.read(heap, 8),
                               "little", signed=True)
        print(f"  step {step:>2} (ckpt {ckpt_id}): balance {value}")
        if value >= 0:
            last_good = (step, ckpt_id)
            lo = mid + 1
        else:
            hi = mid - 1
        for p in list(result.group.processes):
            result.group.remove_process(p)
            p.exit(0)
        sls.groups.pop(result.group.group_id, None)
    print(f"last good state: step {last_good[0]} — bug introduced at "
          f"step {last_good[0] + 1}")

    # Dump the first bad state as an ELF core for offline tooling.
    bad_ckpt = history[last_good[0]][1]
    result = sls.restore(group.group_id, ckpt_id=bad_ckpt,
                         periodic=False)
    core = dump_process(result.root)
    parsed = parse_core(core)
    print(f"sls dump: {fmt_size(len(core))} ELF core, "
          f"{len(parsed['segments'])} loadable segments, "
          f"{len(parsed['notes'])} thread notes")

    # Retire ancient history (WAFL-style snapshot deletion).
    reclaimed = sls.store.retain_last(group.group_id, keep=5)
    print(f"trimmed history to 5 checkpoints, reclaimed "
          f"{fmt_size(reclaimed)}")


if __name__ == "__main__":
    main()
