#!/usr/bin/env python3
"""Replacing a database's storage engine with Aurora (§9.6's story).

Runs the same write workload against:

1. RocksDB with its built-in WAL, fsync'd — the classic architecture:
   LSM tree + write-ahead log + group commit;
2. the Aurora port — no LSM tree, no WAL file: the memtable is the
   database (Aurora persists it) and ``sls_journal`` provides
   microsecond-durability for acknowledgements.

Then crashes the machine and recovers both ways, verifying no
acknowledged write is lost.

Run:  python examples/kvstore_persistence.py
"""

from repro import Machine, load_aurora
from repro.apps.rocksdb import AuroraRocksDB, DBOptions, RocksDB
from repro.core.api import AuroraAPI
from repro.slsfs.kernel_fs import mount_ffs
from repro.units import MiB, fmt_time

N_WRITES = 5_000


def run_baseline():
    machine = Machine()
    mount_ffs(machine)           # a conventional FS: fsync costs
    proc = machine.kernel.spawn("rocksdb")
    db = RocksDB(machine.kernel, proc,
                 options=DBOptions(wal=True, sync=True))
    t0 = machine.clock.now()
    for i in range(N_WRITES):
        db.put(f"user:{i:06d}".encode(), f"profile-{i}".encode())
    db.wal.flush()
    elapsed = machine.clock.now() - t0
    print(f"  built-in WAL (sync): {N_WRITES} writes in "
          f"{fmt_time(elapsed)} "
          f"({N_WRITES * 1e9 / elapsed / 1e3:.0f} k ops/s), "
          f"{db.wal.syncs} fsyncs")
    return elapsed


def run_aurora_port():
    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("rocksdb-port")
    group = sls.attach(proc, periodic=False)
    api = AuroraAPI(sls, proc)
    db = AuroraRocksDB(machine.kernel, proc, api, journal_bytes=8 * MiB)

    t0 = machine.clock.now()
    for i in range(N_WRITES):
        db.put(f"user:{i:06d}".encode(), f"profile-{i}".encode())
    db.flush()
    elapsed = machine.clock.now() - t0
    print(f"  Aurora port:         {N_WRITES} writes in "
          f"{fmt_time(elapsed)} "
          f"({N_WRITES * 1e9 / elapsed / 1e3:.0f} k ops/s), "
          f"{db.stats['journal_appends']} journal appends, "
          f"{db.stats['checkpoints']} checkpoints")

    # Crash and recover: checkpointed memtable + journal tail.
    sls.checkpoint(group, sync=True)
    for i in range(N_WRITES, N_WRITES + 100):   # post-checkpoint writes
        db.put(f"user:{i:06d}".encode(), f"profile-{i}".encode())
    db.flush()
    gid, jid = group.group_id, db.journal.jid
    machine.crash()
    machine.boot()

    sls2 = load_aurora(machine)
    result = sls2.restore(gid)
    api2 = AuroraAPI(sls2, result.root)
    recovered = AuroraRocksDB.recover(machine.kernel, result.root, api2,
                                      sls2.store.journal(jid))
    assert recovered.get(b"user:005099") == b"profile-5099"
    assert recovered.get(b"user:000000") == b"profile-0"
    print("  crash recovery: all acknowledged writes intact "
          "(checkpoint + journal replay)")
    return elapsed


def main():
    print(f"{N_WRITES} synchronous-durability writes, two architectures:")
    baseline = run_baseline()
    port = run_aurora_port()
    print(f"\nAurora port speedup: {baseline / port:.2f}x "
          f"(paper: +75% throughput with 109 lines instead of 81k)")


if __name__ == "__main__":
    main()
