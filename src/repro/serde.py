"""Deterministic tag-length-value serialization for on-disk records.

The Aurora object store persists kernel object state as byte records on
the simulated NVMe array.  We deliberately do not use :mod:`pickle`:
records must be a stable wire format that survives "reboots" into a
fresh interpreter, must never execute code on load, and must be
checksummable byte-for-byte.  This module provides a small, strict TLV
encoding for the value shapes kernel serializers actually produce:

* ``None``, ``bool``, ``int`` (arbitrary precision, signed)
* ``bytes``, ``str`` (UTF-8)
* ``list`` / ``tuple`` (decoded as ``list``)
* ``dict`` with ``str`` keys, encoded in sorted key order so that equal
  dicts always produce identical bytes (important for dedup tests).

The format is self-describing and versioned via :data:`MAGIC`.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any

from .errors import CorruptRecord

#: Format magic, bumped if the encoding ever changes incompatibly.
MAGIC = b"ATLV"
VERSION = 1

_TAG_NONE = 0x00
_TAG_FALSE = 0x01
_TAG_TRUE = 0x02
_TAG_INT = 0x03
_TAG_NEGINT = 0x04
_TAG_BYTES = 0x05
_TAG_STR = 0x06
_TAG_LIST = 0x07
_TAG_DICT = 0x08

_LEN = struct.Struct(">Q")


def _encode_varbytes(out: bytearray, tag: int, payload: bytes) -> None:
    out.append(tag)
    out += _LEN.pack(len(payload))
    out += payload


def _encode_value(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, int):
        # Arbitrary precision: store magnitude as big-endian bytes.
        tag = _TAG_INT if value >= 0 else _TAG_NEGINT
        magnitude = abs(value)
        nbytes = max(1, (magnitude.bit_length() + 7) // 8)
        _encode_varbytes(out, tag, magnitude.to_bytes(nbytes, "big"))
    elif isinstance(value, bytes):
        _encode_varbytes(out, _TAG_BYTES, value)
    elif isinstance(value, bytearray):
        _encode_varbytes(out, _TAG_BYTES, bytes(value))
    elif isinstance(value, str):
        _encode_varbytes(out, _TAG_STR, value.encode("utf-8"))
    elif isinstance(value, (list, tuple)):
        out.append(_TAG_LIST)
        out += _LEN.pack(len(value))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, dict):
        out.append(_TAG_DICT)
        out += _LEN.pack(len(value))
        for key in sorted(value):
            if not isinstance(key, str):
                raise TypeError(f"dict keys must be str, got {type(key).__name__}")
            _encode_value(out, key)
            _encode_value(out, value[key])
    else:
        raise TypeError(f"cannot serialize {type(value).__name__}")


def dumps(value: Any) -> bytes:
    """Serialize ``value`` to a framed, checksummed byte record."""
    body = bytearray()
    _encode_value(body, value)
    header = MAGIC + bytes([VERSION])
    checksum = zlib.crc32(bytes(body))
    return header + _LEN.pack(checksum) + _LEN.pack(len(body)) + bytes(body)


class _Decoder:
    def __init__(self, data: bytes, offset: int):
        self.data = data
        self.offset = offset

    def _take(self, n: int) -> bytes:
        end = self.offset + n
        if end > len(self.data):
            raise CorruptRecord("record truncated")
        chunk = self.data[self.offset:end]
        self.offset = end
        return chunk

    def _take_len(self) -> int:
        return _LEN.unpack(self._take(_LEN.size))[0]

    def decode(self) -> Any:
        """Decode the next value at the cursor (internal TLV walk)."""
        tag = self._take(1)[0]
        if tag == _TAG_NONE:
            return None
        if tag == _TAG_TRUE:
            return True
        if tag == _TAG_FALSE:
            return False
        if tag in (_TAG_INT, _TAG_NEGINT):
            payload = self._take(self._take_len())
            magnitude = int.from_bytes(payload, "big")
            return magnitude if tag == _TAG_INT else -magnitude
        if tag == _TAG_BYTES:
            return bytes(self._take(self._take_len()))
        if tag == _TAG_STR:
            return self._take(self._take_len()).decode("utf-8")
        if tag == _TAG_LIST:
            count = self._take_len()
            return [self.decode() for _ in range(count)]
        if tag == _TAG_DICT:
            count = self._take_len()
            result = {}
            for _ in range(count):
                key = self.decode()
                if not isinstance(key, str):
                    raise CorruptRecord("dict key is not a string")
                result[key] = self.decode()
            return result
        raise CorruptRecord(f"unknown tag 0x{tag:02x}")


def loads(data: bytes) -> Any:
    """Decode a record produced by :func:`dumps`.

    Raises :class:`~repro.errors.CorruptRecord` on any malformed input,
    including checksum mismatches — the object store relies on this to
    detect torn writes after a simulated crash.
    """
    header_len = len(MAGIC) + 1 + 2 * _LEN.size
    if len(data) < header_len:
        raise CorruptRecord("record shorter than header")
    if data[:len(MAGIC)] != MAGIC:
        raise CorruptRecord("bad magic")
    if data[len(MAGIC)] != VERSION:
        raise CorruptRecord(f"unsupported version {data[len(MAGIC)]}")
    checksum = _LEN.unpack_from(data, len(MAGIC) + 1)[0]
    body_len = _LEN.unpack_from(data, len(MAGIC) + 1 + _LEN.size)[0]
    body = data[header_len:header_len + body_len]
    if len(body) != body_len:
        raise CorruptRecord("record truncated")
    if zlib.crc32(body) != checksum:
        raise CorruptRecord("checksum mismatch")
    decoder = _Decoder(bytes(body), 0)
    value = decoder.decode()
    if decoder.offset != len(body):
        raise CorruptRecord("trailing bytes after value")
    return value
