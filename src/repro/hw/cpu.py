"""Simulated CPUs: interprocessor interrupts and TLB accounting.

Aurora quiesces applications by sending IPIs to every core running the
application, forcing threads to the user/kernel boundary (§5.1), and
system shadowing must flush the TLB when it write-protects pages (§6).
Both operations have real latency costs that dominate small-checkpoint
stop times, so the CPU model charges for them explicitly and keeps
counters that tests and ablation benchmarks can read.
"""

from __future__ import annotations

from typing import List

from .clock import SimClock
from ..core import costs


class CPU:
    """A single simulated core."""

    def __init__(self, cpu_id: int):
        self.cpu_id = cpu_id
        #: Number of IPIs delivered to this core.
        self.ipi_count = 0
        #: Number of TLB flushes performed on this core.
        self.tlb_flush_count = 0

    def deliver_ipi(self) -> None:
        """Count one interprocessor interrupt on this core."""
        self.ipi_count += 1

    def flush_tlb(self) -> None:
        """Count one TLB flush on this core."""
        self.tlb_flush_count += 1

    def __repr__(self) -> str:
        return f"CPU({self.cpu_id})"


class CPUSet:
    """The machine's cores, with cost-charging broadcast operations."""

    def __init__(self, clock: SimClock, ncpus: int = 24):
        if ncpus < 1:
            raise ValueError("need at least one CPU")
        self.clock = clock
        self.cpus: List[CPU] = [CPU(i) for i in range(ncpus)]

    def __len__(self) -> int:
        return len(self.cpus)

    def broadcast_ipi(self, ncores: int) -> int:
        """Deliver an IPI to ``ncores`` cores; returns the elapsed ns.

        IPI delivery to multiple cores overlaps: the sender pays one
        send cost plus a per-target acknowledgement, matching the
        FreeBSD ``smp_rendezvous`` pattern Aurora's quiesce extends.
        """
        ncores = min(max(ncores, 0), len(self.cpus))
        if ncores == 0:
            return 0
        for cpu in self.cpus[:ncores]:
            cpu.deliver_ipi()
        elapsed = costs.IPI_SEND + ncores * costs.IPI_ACK_PER_CORE
        self.clock.advance(elapsed)
        return elapsed

    def tlb_shootdown(self, ncores: int, npages: int) -> int:
        """Flush translations for ``npages`` pages on ``ncores`` cores.

        System shadowing triggers these when it downgrades writable
        mappings to read-only.  Cost = one broadcast + a per-page
        invalidation term (full flush above the per-page threshold,
        mirroring how real kernels switch from INVLPG loops to a full
        flush for large ranges).
        """
        ncores = min(max(ncores, 0), len(self.cpus))
        if ncores == 0 or npages <= 0:
            return 0
        for cpu in self.cpus[:ncores]:
            cpu.flush_tlb()
        per_page = min(npages, costs.TLB_FULL_FLUSH_THRESHOLD_PAGES)
        elapsed = costs.TLB_SHOOTDOWN_BASE + per_page * costs.TLB_INVLPG_PER_PAGE
        self.clock.advance(elapsed)
        return elapsed
