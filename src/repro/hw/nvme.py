"""Simulated NVMe devices and the 64 KiB striped array.

The paper's testbed stripes four Intel Optane 900P devices at 64 KiB.
The model charges each device ``latency + size / bandwidth`` per
command, serialized per device (``busy_until``), so concurrent IO to
different stripe units overlaps while a single synchronous stream sees
queue-depth-1 behaviour — exactly the asymmetry behind Table 5's
journal column versus Table 7's 97.6 ms async flush.

Payload storage is *extent exact*: callers read back exactly the
extents they wrote (the object store's metadata always records extent
offsets and lengths).  Asynchronous writes only become durable at
their completion time; :meth:`NVMeDevice.discard_inflight` models a
power failure dropping everything still in the device queue, which the
crash-recovery property tests rely on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from .clock import SimClock
from ..core import costs, telemetry
from ..errors import DeviceFull, StoreError
from ..units import STRIPE_SIZE

#: Extent payloads are real bytes or a synthetic (seed, length) marker.
Payload = Union[bytes, Tuple[str, int, int]]


def synthetic_payload(seed: int, length: int) -> Payload:
    """A (seed, length) marker standing in for real bytes."""
    return ("synthetic", seed, length)


def payload_length(payload: Payload) -> int:
    """Byte length of a real or synthetic payload."""
    if isinstance(payload, bytes):
        return len(payload)
    return payload[2]


class NVMeDevice:
    """One simulated NVMe namespace."""

    def __init__(self, clock: SimClock, capacity: int, name: str = "nvd0"):
        self.clock = clock
        self.capacity = capacity
        self.name = name
        self._extents: Dict[int, Payload] = {}
        self._busy_until = 0
        #: (apply_at, offset, payload) for writes still in the queue.
        self._inflight: List[Tuple[int, int, Payload]] = []
        self.bytes_written = 0
        self.bytes_read = 0
        self.write_commands = 0
        self.read_commands = 0
        # Telemetry counters are resolved once here: submit/read are
        # the hot paths, so no registry lookups per command.
        registry = telemetry.registry()
        self._registry = registry
        inst = telemetry.next_instance()
        self._t_bytes_written = registry.counter(
            "nvme.bytes_written", device=name, inst=inst)
        self._t_bytes_read = registry.counter(
            "nvme.bytes_read", device=name, inst=inst)
        self._t_write_commands = registry.counter(
            "nvme.write_commands", device=name, inst=inst)
        self._t_read_commands = registry.counter(
            "nvme.read_commands", device=name, inst=inst)

    # -- timing ------------------------------------------------------------

    def _command_time(self, nbytes: int, latency: int, bandwidth: int) -> int:
        """Completion time for a command submitted now.

        Bandwidth serializes commands on the device (``_busy_until``),
        but completion latency overlaps across queued commands — the
        queue-depth behaviour of real NVMe.  A synchronous caller that
        waits for each completion before submitting the next therefore
        degenerates to queue-depth-1 (the journal path) while a
        flood of async submissions streams at device bandwidth.
        """
        start = max(self.clock.now(), self._busy_until)
        transfer = (nbytes * 1_000_000_000) // bandwidth
        self._busy_until = start + transfer
        return start + transfer + latency

    # -- writes ------------------------------------------------------------

    def submit_write(self, offset: int, payload: Payload,
                     sync: bool = False) -> int:
        """Queue a write; returns its completion time (ns).

        ``sync`` selects the queue-depth-1 latency/bandwidth profile
        used by the journal path.  The payload becomes visible (and
        durable) only at the returned completion time; callers that
        need synchronous semantics advance the clock to it.
        """
        nbytes = payload_length(payload)
        if offset < 0 or offset + nbytes > self.capacity:
            raise DeviceFull(
                f"write [{offset}, {offset + nbytes}) beyond {self.name} "
                f"capacity {self.capacity}"
            )
        submitted = self.clock.now()
        if sync:
            done = self._command_time(nbytes, costs.SYNC_WRITE_LATENCY,
                                      costs.SYNC_WRITE_BW)
        else:
            done = self._command_time(nbytes, costs.NVME_WRITE_LATENCY,
                                      costs.NVME_WRITE_BW)
        self._inflight.append((done, offset, payload))
        self.bytes_written += nbytes
        self.write_commands += 1
        self._t_bytes_written.add(nbytes)
        self._t_write_commands.add(1)
        if self._registry.enabled:
            # Submission→completion span: the IO is attributed to
            # whatever operation trace is active (the registry's
            # ambient trace), without this layer knowing about traces.
            self._registry.record_span("nvme.write", submitted, done,
                                       device=self.name)
        return done

    def poll(self) -> None:
        """Apply every queued write whose completion time has passed."""
        now = self.clock.now()
        still_pending = []
        for done, offset, payload in self._inflight:
            if done <= now:
                self._extents[offset] = payload
            else:
                still_pending.append((done, offset, payload))
        self._inflight = still_pending

    def write(self, offset: int, payload: Payload, sync: bool = False) -> int:
        """Synchronous write: submit, advance the clock, apply."""
        done = self.submit_write(offset, payload, sync=sync)
        self.clock.advance_to(done)
        self.poll()
        return done

    # -- reads ---------------------------------------------------------------

    def read(self, offset: int) -> Payload:
        """Read back the extent previously written at ``offset``."""
        self.poll()
        try:
            payload = self._extents[offset]
        except KeyError:
            raise StoreError(f"no extent at offset {offset} on {self.name}")
        nbytes = payload_length(payload)
        submitted = self.clock.now()
        done = self._command_time(nbytes, costs.NVME_READ_LATENCY,
                                  costs.NVME_READ_BW)
        self.clock.advance_to(done)
        self.bytes_read += nbytes
        self.read_commands += 1
        self._t_bytes_read.add(nbytes)
        self._t_read_commands.add(1)
        if self._registry.enabled:
            self._registry.record_span("nvme.read", submitted, done,
                                       device=self.name)
        return payload

    def read_async(self, offset: int) -> Tuple[Payload, int]:
        """Queue a read; returns (payload, completion time).

        Callers batching many reads advance the clock once to the max
        completion time, modeling a deep read queue (restore reads all
        object records in parallel)."""
        self.poll()
        try:
            payload = self._extents[offset]
        except KeyError:
            raise StoreError(f"no extent at offset {offset} on {self.name}")
        nbytes = payload_length(payload)
        submitted = self.clock.now()
        done = self._command_time(nbytes, costs.NVME_READ_LATENCY,
                                  costs.NVME_READ_BW)
        self.bytes_read += nbytes
        self.read_commands += 1
        self._t_bytes_read.add(nbytes)
        self._t_read_commands.add(1)
        if self._registry.enabled:
            self._registry.record_span("nvme.read", submitted, done,
                                       device=self.name)
        return payload, done

    def has_extent(self, offset: int) -> bool:
        """True when a durable extent exists at ``offset``."""
        self.poll()
        return offset in self._extents

    def discard_extent(self, offset: int) -> None:
        """Drop an extent (GC reclaimed its blocks)."""
        self._extents.pop(offset, None)

    def tear_write(self, offset: int, payload: Payload) -> None:
        """Force a (truncated) payload durable immediately.

        Models the media-side half of a torn write: part of the
        command's data reached flash before power died, bypassing the
        queue that :meth:`discard_inflight` tears away.
        """
        self._extents[offset] = payload

    def place_extent(self, offset: int, payload: Payload) -> None:
        """Stage a payload onto media with zero simulated cost.

        The observability sidecar path (the flight recorder riding
        each superblock flip): the payload lands immediately, advances
        no clock, consumes no device bandwidth, records no span and
        counts in no IO statistics — so instrumented runs stay
        timing-identical and crash-schedule IO indices are unchanged.
        Durability semantics are the caller's problem: the extent is
        only *meaningful* once something durable references it.
        """
        nbytes = payload_length(payload)
        if offset < 0 or offset + nbytes > self.capacity:
            raise DeviceFull(
                f"place [{offset}, {offset + nbytes}) beyond {self.name} "
                f"capacity {self.capacity}"
            )
        self._extents[offset] = payload

    def cancel_inflight_at(self, offset: int) -> int:
        """Drop queued writes targeting ``offset`` before they land.

        An aborted checkpoint frees its extents while some of its
        writes may still sit in the device queue; cancelling them
        keeps a later reuse of the blocks from being clobbered by a
        stale write completing afterwards.  Returns writes dropped.
        """
        self.poll()
        before = len(self._inflight)
        self._inflight = [entry for entry in self._inflight
                          if entry[1] != offset]
        return before - len(self._inflight)

    # -- crash behaviour -------------------------------------------------------

    def discard_inflight(self) -> int:
        """Power failure: drop writes still in the queue.

        Writes whose completion time has passed are applied first (they
        made it to media); the rest are torn away.  Returns the number
        of writes lost.
        """
        self.poll()
        lost = len(self._inflight)
        self._inflight.clear()
        self._busy_until = self.clock.now()
        return lost


class StripedArray:
    """Four devices striped at 64 KiB, presented as one address space.

    Extents are assigned to a device by their starting stripe unit.
    The object store's block allocator deliberately round-robins
    allocations across stripe units, so large flushes fan out over all
    devices (aggregate bandwidth), while a single synchronous journal
    stream keeps hitting one device at a time (single-stream
    bandwidth) — reproducing the paper's two IO regimes.
    """

    def __init__(self, clock: SimClock, ndevices: int = costs.NVME_DEVICES,
                 capacity_per_device: int = 256 * 1024 * 1024 * 1024,
                 stripe: int = STRIPE_SIZE):
        if ndevices < 1:
            raise ValueError("array needs at least one device")
        self.clock = clock
        self.stripe = stripe
        # One stripe of tail slack per device: extents may start in
        # the last stripe unit and spill past it.
        self.devices = [
            NVMeDevice(clock, capacity_per_device + stripe,
                       name=f"nvd{i}")
            for i in range(ndevices)
        ]
        self.capacity = ndevices * capacity_per_device
        #: Optional FaultPlan consulted before every write dispatch
        #: (installed via Machine.set_fault_plan, cleared on crash).
        self.fault_plan = None

    def _device_for(self, offset: int) -> Tuple[NVMeDevice, int]:
        """Classic RAID-0 LBA mapping: stripe unit ``u`` lives on
        device ``u mod n`` at device-local unit ``u div n``."""
        unit = offset // self.stripe
        ndev = len(self.devices)
        device = self.devices[unit % ndev]
        local = (unit // ndev) * self.stripe + offset % self.stripe
        return device, local

    def _inject(self, device: NVMeDevice, local: int, offset: int,
                payload: Payload, sync: bool) -> Payload:
        """Consult the fault plan; returns the (possibly corrupted)
        payload to dispatch, or raises the injected failure."""
        from ..core.faults import InjectedCrash

        verb, payload = self.fault_plan.on_io(offset, payload, sync)
        if verb == "torn":
            device.tear_write(local, payload)
            raise InjectedCrash(
                f"injected torn write at array offset {offset}")
        return payload

    def submit_write(self, offset: int, payload: Payload,
                     sync: bool = False) -> int:
        """Queue a write on the owning device (striped dispatch)."""
        device, local = self._device_for(offset)
        if self.fault_plan is not None:
            payload = self._inject(device, local, offset, payload, sync)
        return device.submit_write(local, payload, sync=sync)

    def write(self, offset: int, payload: Payload, sync: bool = False) -> int:
        """Synchronous write: submit, advance the clock, apply."""
        device, local = self._device_for(offset)
        if self.fault_plan is not None:
            payload = self._inject(device, local, offset, payload, sync)
        return device.write(local, payload, sync=sync)

    def read(self, offset: int) -> Payload:
        """Read back the extent previously written at ``offset``."""
        device, local = self._device_for(offset)
        if self.fault_plan is not None:
            self.fault_plan.on_read(offset)
        return device.read(local)

    def read_async(self, offset: int):
        """Queue a read on the owning device (striped dispatch)."""
        device, local = self._device_for(offset)
        if self.fault_plan is not None:
            self.fault_plan.on_read(offset)
        return device.read_async(local)

    def has_extent(self, offset: int) -> bool:
        """True when a durable extent exists at ``offset``."""
        device, local = self._device_for(offset)
        return device.has_extent(local)

    def discard_extent(self, offset: int) -> None:
        """Drop an extent (GC reclaimed its blocks)."""
        device, local = self._device_for(offset)
        device.discard_extent(local)

    def place_extent(self, offset: int, payload: Payload) -> None:
        """Zero-cost media placement (flight-recorder sidecar path).

        Bypasses the fault plan as well as the cost model: no IO index
        is consumed, so crash schedules enumerate exactly the same
        points with or without a flight recorder riding the commit.
        """
        device, local = self._device_for(offset)
        device.place_extent(local, payload)

    def cancel_extent(self, offset: int) -> int:
        """Cancel queued writes to ``offset`` (checkpoint abort)."""
        device, local = self._device_for(offset)
        return device.cancel_inflight_at(local)

    def poll(self) -> None:
        """Apply every queued write whose completion time passed."""
        for device in self.devices:
            device.poll()

    def discard_inflight(self) -> int:
        """Power failure across the whole array."""
        return sum(device.discard_inflight() for device in self.devices)

    @property
    def bytes_written(self) -> int:
        """Total bytes written across the array."""
        return sum(device.bytes_written for device in self.devices)

    @property
    def bytes_read(self) -> int:
        """Total bytes read across the array."""
        return sum(device.bytes_read for device in self.devices)
