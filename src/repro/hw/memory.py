"""Physical memory: page frames and page payloads.

Pages carry either *real* payloads (actual bytes, used by correctness
tests that write data, crash the machine and read it back after a
restore) or *synthetic* payloads (a deterministic ``(seed, length)``
pair, used by the multi-hundred-MiB benchmark datasets so that a
500 MiB Redis instance does not materialize 500 MiB of Python bytes).
Both kinds flow through the identical checkpoint/flush/restore paths
and are accounted identically by the IO model; only the bytes are
virtual.  A synthetic page can always be *realized* — its content is a
pure function of its seed — so even synthetic data round-trips are
verifiable.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from ..units import PAGE_SIZE
from ..errors import InvalidArgument


def synthetic_bytes(seed: int, length: int = PAGE_SIZE) -> bytes:
    """Deterministic content of a synthetic page with ``seed``."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        out += hashlib.sha256(f"{seed}:{counter}".encode()).digest()
        counter += 1
    return bytes(out[:length])


class Page:
    """A single page frame's contents.

    Exactly one of ``data`` (real payload, at most :data:`PAGE_SIZE`
    bytes) or ``seed`` (synthetic payload) is set.  Pages are treated
    as immutable values: a write to a mapped page replaces the Page
    object, which is what makes COW sharing between VM objects safe.
    """

    __slots__ = ("data", "seed", "clean_locator")

    def __init__(self, data: Optional[bytes] = None, seed: Optional[int] = None):
        if (data is None) == (seed is None):
            raise InvalidArgument("exactly one of data/seed must be given")
        if data is not None and len(data) > PAGE_SIZE:
            raise InvalidArgument("page payload larger than a page")
        self.data = data
        self.seed = seed
        #: Where this exact content is persisted in the object store
        #: (set by the flush path).  A write replaces the Page object,
        #: so a non-None locator means the page is *clean*: the
        #: pageout daemon can evict it without IO (§6).
        self.clean_locator = None

    @property
    def synthetic(self) -> bool:
        """True for (seed, length) pages with virtual content."""
        return self.seed is not None

    def realize(self) -> bytes:
        """The page's full content as bytes (zero-padded to page size)."""
        if self.seed is not None:
            return synthetic_bytes(self.seed)
        assert self.data is not None
        return self.data.ljust(PAGE_SIZE, b"\x00")

    def copy(self) -> "Page":
        """A value-equal private copy (the COW fault path uses this)."""
        if self.seed is not None:
            return Page(seed=self.seed)
        return Page(data=self.data)

    def same_content(self, other: "Page") -> bool:
        """Value equality of two pages' contents."""
        if self.seed is not None or other.seed is not None:
            return self.seed == other.seed
        return self.realize() == other.realize()

    def __repr__(self) -> str:
        if self.seed is not None:
            return f"Page(seed={self.seed})"
        assert self.data is not None
        return f"Page({len(self.data)}B)"


class PhysicalMemory:
    """Frame accounting for one machine.

    The simulator does not model individual frame addresses — VM
    objects hold :class:`Page` values directly — but it does account
    for how many frames are in use so that memory overcommitment and
    the pageout daemon (§6 "Memory Overcommitment") have real pressure
    to react to.
    """

    def __init__(self, total_bytes: int):
        if total_bytes < PAGE_SIZE:
            raise InvalidArgument("machine needs at least one page of RAM")
        self.total_frames = total_bytes // PAGE_SIZE
        self.used_frames = 0
        #: Lifetime allocation counter (for tests/diagnostics).
        self.alloc_count = 0

    @property
    def free_frames(self) -> int:
        """Frames not currently in use."""
        return self.total_frames - self.used_frames

    def usage_ratio(self) -> float:
        """Fraction of frames in use."""
        return self.used_frames / self.total_frames

    def allocate(self, nframes: int = 1) -> None:
        """Account for ``nframes`` newly used frames.

        Allocation never fails outright — the pageout daemon is
        responsible for keeping usage below the watermarks; exceeding
        physical capacity entirely indicates a simulator bug.
        """
        if nframes < 0:
            raise InvalidArgument("cannot allocate a negative frame count")
        self.used_frames += nframes
        self.alloc_count += nframes
        if self.used_frames > self.total_frames:
            raise MemoryError(
                f"simulated machine out of memory: "
                f"{self.used_frames}/{self.total_frames} frames"
            )

    def release(self, nframes: int = 1) -> None:
        """Return frames to the free pool."""
        if nframes < 0:
            raise InvalidArgument("cannot release a negative frame count")
        if nframes > self.used_frames:
            raise InvalidArgument("releasing more frames than are in use")
        self.used_frames -= nframes
