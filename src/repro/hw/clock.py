"""Deterministic simulated time.

Every :class:`~repro.machine.Machine` owns a single :class:`SimClock`.
All durations in the simulator are integer nanoseconds; components call
:meth:`SimClock.advance` with costs from :mod:`repro.core.costs` rather
than sleeping, so an entire evaluation run is deterministic and takes
wall time proportional only to the number of simulated *events*.

The :class:`EventLoop` provides time-ordered callbacks on top of the
clock.  The SLS orchestrator uses it for its periodic checkpoint timer
and for asynchronous flush completions; benchmarks use it to interleave
workload requests with checkpoints.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from ..units import fmt_time


class SimClock:
    """Monotonic simulated clock with integer-nanosecond resolution."""

    def __init__(self, start_ns: int = 0):
        if start_ns < 0:
            raise ValueError("clock cannot start before zero")
        self._now = start_ns

    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    def advance(self, delta_ns: int) -> int:
        """Advance the clock by ``delta_ns`` and return the new time."""
        if delta_ns < 0:
            raise ValueError(f"cannot advance time backwards ({delta_ns} ns)")
        self._now += delta_ns
        return self._now

    def advance_to(self, when_ns: int) -> int:
        """Advance the clock to an absolute time (no-op if in the past)."""
        if when_ns > self._now:
            self._now = when_ns
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(t={fmt_time(self._now)})"


class Event:
    """A scheduled callback.  Returned by :meth:`EventLoop.call_at`."""

    __slots__ = ("when", "seq", "callback", "cancelled")

    def __init__(self, when: int, seq: int, callback: Callable[[], Any]):
        self.when = when
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when due."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)


class EventLoop:
    """Time-ordered callback scheduler over a :class:`SimClock`.

    Events scheduled for the same instant run in scheduling order, which
    keeps runs reproducible.  Callbacks may schedule further events.
    """

    def __init__(self, clock: SimClock):
        self.clock = clock
        self._heap: list[Event] = []
        self._seq = itertools.count()

    def call_at(self, when_ns: int, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at absolute simulated time ``when_ns``."""
        if when_ns < self.clock.now():
            raise ValueError("cannot schedule an event in the past")
        event = Event(when_ns, next(self._seq), callback)
        heapq.heappush(self._heap, event)
        return event

    def call_after(self, delay_ns: int, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` ``delay_ns`` nanoseconds from now."""
        return self.call_at(self.clock.now() + delay_ns, callback)

    def next_deadline(self) -> Optional[int]:
        """Time of the earliest pending event, or None if the loop is idle."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].when if self._heap else None

    def run_until(self, when_ns: int) -> int:
        """Run every event scheduled at or before ``when_ns``.

        The clock is advanced to each event's deadline before its
        callback runs, and finally to ``when_ns``.  Returns the number
        of callbacks executed.
        """
        executed = 0
        while True:
            deadline = self.next_deadline()
            if deadline is None or deadline > when_ns:
                break
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.when)
            event.callback()
            executed += 1
        self.clock.advance_to(when_ns)
        return executed

    def run_pending(self) -> int:
        """Run every event due at or before the *current* time."""
        return self.run_until(self.clock.now())

    def drain(self, limit: int = 1_000_000) -> int:
        """Run events until the loop is empty (bounded by ``limit``)."""
        executed = 0
        while executed < limit:
            deadline = self.next_deadline()
            if deadline is None:
                return executed
            executed += self.run_until(deadline)
        raise RuntimeError("event loop failed to drain (runaway rescheduling?)")
