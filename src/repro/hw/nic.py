"""Simulated 10 GbE NIC.

Figures 4 and 5 drive Memcached over a 10 GbE LAN; what matters for
the reproduction is the one-way latency floor and the bandwidth-driven
serialization delay, both of which feed the client-observed latency
model in :mod:`repro.workloads.mutilate`.
"""

from __future__ import annotations

from .clock import SimClock
from ..core import costs


class NIC:
    """Latency/bandwidth model of one network interface."""

    def __init__(self, clock: SimClock,
                 rtt_ns: int = costs.NET_RTT,
                 bandwidth: int = costs.NET_BW):
        self.clock = clock
        self.rtt = rtt_ns
        self.bandwidth = bandwidth
        self.bytes_sent = 0
        self.packets_sent = 0

    def transfer_time(self, nbytes: int) -> int:
        """Serialization delay for ``nbytes`` on the wire."""
        return (nbytes * 1_000_000_000) // self.bandwidth

    def send(self, nbytes: int) -> int:
        """Account for sending ``nbytes``; returns the wire time."""
        self.bytes_sent += nbytes
        self.packets_sent += 1
        return self.rtt // 2 + self.transfer_time(nbytes)
