"""Simulated hardware: deterministic clock, CPUs, memory, NVMe and NICs.

The hardware layer is the substitution boundary of this reproduction
(see DESIGN.md §2): everything above it — the kernel, the object store,
Aurora itself — is a real implementation operating on real object
graphs; everything below it is a calibrated latency/bandwidth model.
"""

from .clock import SimClock, EventLoop
from .cpu import CPU, CPUSet
from .memory import Page, PhysicalMemory
from .nvme import NVMeDevice, StripedArray
from .nic import NIC

__all__ = [
    "SimClock",
    "EventLoop",
    "CPU",
    "CPUSet",
    "Page",
    "PhysicalMemory",
    "NVMeDevice",
    "StripedArray",
    "NIC",
]
