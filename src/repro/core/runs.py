"""Contiguous-run slab utilities for the checkpoint hot path.

The columnar refactor moves page sets through the checkpoint pipeline
as *runs* — ``(start_index, count)`` pairs over sorted page indexes —
instead of page-at-a-time dict traffic.  Shadow flush items expose
their dirty sets as runs, and the object store coalesces adjacent page
extents into single staged writes, so per-checkpoint staging cost
tracks the run count (a handful for sequential writers) rather than
the page count.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Tuple


def build_runs(indexes: Iterable[int]) -> List[Tuple[int, int]]:
    """Coalesce page indexes into sorted ``(start, count)`` runs."""
    ordered = sorted(indexes)
    runs: List[Tuple[int, int]] = []
    for index in ordered:
        if runs and runs[-1][0] + runs[-1][1] == index:
            runs[-1] = (runs[-1][0], runs[-1][1] + 1)
        else:
            runs.append((index, 1))
    return runs


def page_runs(pages: Mapping[int, object]) -> List[Tuple[int, int]]:
    """Runs of a page-dict's indexes (newest-wins merged dirty set)."""
    return build_runs(pages.keys())


def build_arith_runs(indexes: Iterable[int]) -> List[List[int]]:
    """Coalesce indexes into ``[start, count, step]`` arithmetic runs.

    A generalization of :func:`build_runs` for sequences with a
    constant stride — OID allocations interleave classes, so a live
    set's per-class OIDs step by a small constant rather than by 1.
    The second element of a run pins its step (as in the synthetic
    page-run encoding); the greedy choice can split an optimal run but
    never changes what the runs expand back to.
    """
    runs: List[List[int]] = []
    for value in sorted(indexes):
        if runs:
            start, count, step = runs[-1]
            if count == 1:
                runs[-1] = [start, 2, value - start]
                continue
            if value == start + step * count:
                runs[-1][1] += 1
                continue
        runs.append([value, 1, 0])
    return runs


def expand_arith_runs(runs: Iterable[List[int]]) -> List[int]:
    """Flatten ``[start, count, step]`` runs back to indexes."""
    out: List[int] = []
    for start, count, step in runs:
        out.extend(start + step * i for i in range(count))
    return out


def run_count(indexes: Iterable[int]) -> int:
    """Number of contiguous runs without materializing them."""
    return len(build_runs(indexes))


def expand_runs(runs: Sequence[Tuple[int, int]]) -> List[int]:
    """Flatten ``(start, count)`` runs back to individual indexes."""
    out: List[int] = []
    for start, count in runs:
        out.extend(range(start, start + count))
    return out
