"""Quiescing at the user/kernel boundary (§5.1).

Aurora's first prototype used SIGSTOP — incomplete (in-flight syscalls
keep mutating state) and visible (EINTR leaks).  The shipped mechanism,
reproduced here, extends the fork/exec rendezvous: IPIs force every
core running the application to the boundary; short syscalls are waited
out; sleeping syscalls are interrupted and their program counter is
rewound so the thread transparently reissues the call, with no EINTR
ever reaching userspace.
"""

from __future__ import annotations

from typing import List

from ..kernel.proc.thread import (AT_BOUNDARY, IN_SYSCALL,
                                  IN_SYSCALL_SLEEPING, IN_USER, Thread)
from . import costs


class QuiesceReport:
    """What one quiesce pass did (read by tests and benchmarks)."""

    __slots__ = ("threads", "ipis", "waited_syscalls", "restarted_syscalls",
                 "elapsed_ns")

    def __init__(self):
        self.threads = 0
        self.ipis = 0
        self.waited_syscalls = 0
        self.restarted_syscalls = 0
        self.elapsed_ns = 0


def quiesce_group(kernel, group) -> QuiesceReport:
    """Stop every thread of the group at the user/kernel boundary."""
    report = QuiesceReport()
    start = kernel.clock.now()
    threads: List[Thread] = list(group.all_threads())
    report.threads = len(threads)

    # IPI every core the group's threads could be running on.
    running_cores = min(len(threads), len(kernel.cpus))
    report.ipis = running_cores
    kernel.cpus.broadcast_ipi(running_cores)

    for thread in threads:
        kernel.clock.advance(costs.QUIESCE_PER_THREAD)
        if thread.location == IN_SYSCALL:
            # Non-sleeping syscalls finish quickly; wait them out.
            kernel.clock.advance(costs.QUIESCE_SYSCALL_RESIDUAL)
            report.waited_syscalls += 1
        elif thread.location == IN_SYSCALL_SLEEPING:
            # Interrupt and arm the transparent restart.
            kernel.clock.advance(costs.QUIESCE_SYSCALL_RESTART)
            report.restarted_syscalls += 1
        if thread.cpu_state.fpu_on_cpu:
            # Lazy-FPU cores must flush vector state to the process
            # structure before it can be serialized (§5.1).
            thread.cpu_state.fpu_on_cpu = False
        thread.park_at_boundary()
    report.elapsed_ns = kernel.clock.now() - start
    return report


def resume_group(kernel, group) -> int:
    """Release every parked thread; returns elapsed ns."""
    start = kernel.clock.now()
    for thread in group.all_threads():
        if thread.location == AT_BOUNDARY:
            kernel.clock.advance(costs.RESUME_PER_THREAD)
            thread.resume()
    return kernel.clock.now() - start


def assert_quiesced(group) -> bool:
    """True iff no group thread can mutate state (all at boundary)."""
    return all(t.location == AT_BOUNDARY for t in group.all_threads())
