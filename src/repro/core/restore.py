"""Restoring applications from the store (§4, §5).

A restore reads the merged view of a checkpoint chain, recreates every
object, and *links* them back up — the inverse of the POSIX object
model's decomposition.  Because sharing was never flattened at
checkpoint time, it needs no inference here either: two fd slots that
referenced one OpenFile reference one recreated OpenFile.

Full restores insert every page eagerly (Table 6's Full rows,
~230 ns/page); lazy restores recreate only the OS state and register
page locators with the pageout daemon, so pages stream in on first
touch through the unified swap path (§6 "The swap integration enables
lazy restores").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import RestoreError
from ..hw.memory import Page
from ..kernel.fs.file import OpenFile
from ..kernel.ipc.devfs import DeviceFile
from ..kernel.ipc.kqueue import KEvent, KQueue
from ..kernel.ipc.pipe import Pipe
from ..kernel.ipc.pty import Pty
from ..kernel.ipc.shm import SharedMemorySegment
from ..kernel.ipc.unixsock import ControlMessage, Message, UnixSocket
from ..kernel.net.tcp import TCPSocket, TCP_ESTABLISHED, TCP_LISTEN
from ..kernel.net.udp import Datagram, UDPSocket
from ..kernel.proc.process import Process
from ..kernel.proc.session import ProcessGroup, Session
from ..kernel.proc.signals import SIGCHLD, SIGSLSRESTORE
from ..kernel.vm.vmobject import VMObject
from ..objstore.oid import CLASS_MEMORY, oid_class
from ..units import PAGE_SIZE
from . import costs, events, telemetry, tracing
from .group import ConsistencyGroup, ObjectTrack


class RestoreResult:
    """What a restore produced, with its timing breakdown."""

    def __init__(self, group: ConsistencyGroup, processes: List[Process],
                 ckpt_id: int, lazy: bool, elapsed_ns: int,
                 pages_restored: int, pages_lazy: int):
        self.group = group
        self.processes = processes
        self.ckpt_id = ckpt_id
        self.lazy = lazy
        self.elapsed_ns = elapsed_ns
        self.pages_restored = pages_restored
        self.pages_lazy = pages_lazy

    @property
    def root(self) -> Process:
        """The restored application's root process."""
        return self.processes[0]


class GroupRestorer:
    """Recreates one consistency group from a checkpoint."""

    def __init__(self, kernel, store, slsfs=None):
        self.kernel = kernel
        self.store = store
        self.slsfs = slsfs
        self.objects: Dict[int, object] = {}
        self.pages_restored = 0
        self.pages_lazy = 0
        #: Time spent reading records/pages from the store (device IO)
        #: and inserting pages — subtracting both from the elapsed time
        #: gives the OS-state-only cost (Table 6's "Mem" restore row).
        self.io_ns = 0
        self.insert_ns = 0

    # -- entry point ----------------------------------------------------------------

    def restore(self, ckpt_id: int, lazy: bool = False) -> RestoreResult:
        """Recreate the group from ``ckpt_id``; returns the result."""
        with tracing.trace(self.kernel.clock, tracing.RESTORE,
                           ckpt=ckpt_id) as trace_obj:
            result = self._restore_traced(ckpt_id, lazy, trace_obj)
            if trace_obj is not None:
                trace_obj.complete = True
            events.emit(self.kernel.clock.now(), events.RESTORE_DONE,
                        group=result.group.group_id, ckpt=ckpt_id,
                        lazy=lazy, pages_eager=result.pages_restored,
                        pages_lazy=result.pages_lazy)
        return result

    def _restore_traced(self, ckpt_id: int, lazy: bool,
                        trace_obj) -> RestoreResult:
        registry = telemetry.registry()
        clock = self.kernel.clock
        start = clock.now()
        with registry.span(clock, "restore.read", ckpt=ckpt_id):
            record_extents, page_locs = self.store.merged_view(ckpt_id)
            io_start = clock.now()
            decoded = self.store.read_object_records(
                record_extents,
                fallbacks=self.store.record_fallbacks(ckpt_id,
                                                      record_extents))
            self.io_ns += clock.now() - io_start

        descriptor = None
        for oid, (otype, state) in decoded.items():
            if otype == "group":
                descriptor = (oid, state)
        if descriptor is None:
            raise RestoreError(f"checkpoint {ckpt_id} has no group record")
        desc_oid, desc = descriptor

        group = ConsistencyGroup(desc["group_id"], name=desc["name"],
                                 period_ns=desc["period_ns"],
                                 external_synchrony=desc["external_synchrony"])
        group.desc_oid = desc_oid
        group.last_ckpt_id = ckpt_id
        group.last_complete_id = ckpt_id
        if trace_obj is not None:
            trace_obj.labels["group"] = group.group_id

        with registry.span(clock, "restore.build", group=group.group_id):
            self._create_shells(decoded, page_locs, lazy)
            self._link_backings(decoded)
            self._create_files(decoded)
            self._link_sockets(decoded)
            processes = self._create_processes(decoded, desc, group)
            self._register_tracks(decoded, group)
            self._reissue_aio(desc)
            self._post_restore_signals(desc, processes)

        elapsed = clock.now() - start
        registry.record_span("restore.group", start, clock.now(),
                             group=group.group_id)
        registry.counter("sls.restore.pages_eager",
                         group=group.group_id).add(self.pages_restored)
        registry.counter("sls.restore.pages_lazy",
                         group=group.group_id).add(self.pages_lazy)
        result = RestoreResult(group, processes, ckpt_id, lazy, elapsed,
                               self.pages_restored, self.pages_lazy)
        result.io_ns = self.io_ns
        result.insert_ns = self.insert_ns
        return result

    # -- phase A: object shells --------------------------------------------------------

    def _create_shells(self, decoded, page_locs, lazy: bool) -> None:
        kernel = self.kernel
        for oid, (otype, state) in decoded.items():
            if otype == "vmobject":
                obj = VMObject(kernel, state["size_pages"],
                               kind="anonymous", name=state["name"])
                obj.sls_oid = oid
                self._populate_pages(obj, page_locs.get(oid, {}), lazy)
                kernel.clock.advance(costs.RESTORE_VMOBJECT)
                self.objects[oid] = obj
            elif otype == "vnode":
                self.objects[oid] = self._restore_vnode(oid, state,
                                                        page_locs)
            elif otype == "pipe":
                kernel.clock.advance(costs.RESTORE_PIPE)
                pipe = Pipe(kernel, state["capacity"])
                pipe.buffer = bytearray(state["buffer"])
                pipe.read_open = state["read_open"]
                pipe.write_open = state["write_open"]
                self.objects[oid] = pipe
            elif otype == "unixsock":
                kernel.clock.advance(costs.RESTORE_SOCKET)
                sock = UnixSocket(kernel, state["sock_type"])
                sock.options = dict(state["options"])
                if state["address"] is not None:
                    sock.bind(state["address"])
                if state["listening"]:
                    sock.listen()
                self.objects[oid] = sock
            elif otype == "udpsock":
                kernel.clock.advance(costs.RESTORE_SOCKET)
                sock = UDPSocket(kernel)
                sock.options = dict(state["options"])
                if state["lport"] is not None:
                    sock.bind(state["laddr"], state["lport"])
                for dgram in state["datagrams"]:
                    sock.enqueue(tuple(dgram["source"]), dgram["payload"])
                self.objects[oid] = sock
            elif otype == "tcpsock":
                kernel.clock.advance(costs.RESTORE_SOCKET)
                self.objects[oid] = self._restore_tcp(state)
            elif otype == "kqueue":
                kernel.clock.advance(costs.RESTORE_KQUEUE)
                kq = KQueue(kernel)
                for e in state["events"]:
                    kq.register(KEvent(e["ident"], e["filter"], e["flags"],
                                       e["fflags"], e["data"], e["udata"]))
                self.objects[oid] = kq
            elif otype == "pty":
                # Recreating the devfs node takes device locks — the
                # reason Table 4's pty restore costs 30.2 us.
                kernel.clock.advance(costs.RESTORE_PTY)
                pty = Pty(kernel, kernel._next_pty_unit)
                kernel._next_pty_unit += 1
                pty.termios = dict(state["termios"])
                pty._to_slave = bytearray(state["to_slave"])
                pty._to_master = bytearray(state["to_master"])
                self.objects[oid] = pty
            elif otype == "device":
                self.objects[oid] = DeviceFile(kernel, state["name"])

        # Shm segments need their vm objects first.
        for oid, (otype, state) in decoded.items():
            if otype != "shm":
                continue
            self.kernel.clock.advance(
                costs.RESTORE_SHM_SYSV if state["flavor"] == "sysv"
                else costs.RESTORE_SHM_POSIX)
            segment = SharedMemorySegment(self.kernel, state["name"],
                                          state["size"], state["flavor"])
            vm_obj = self.objects.get(state["vm_oid"])
            if vm_obj is not None:
                segment.replace_object(vm_obj)
            if state["flavor"] == "posix":
                self.kernel.posix_shm._segments[state["name"]] = segment
            elif state["key"] is not None:
                registry = self.kernel.sysv_shm
                shmid = registry._next_id
                registry._next_id += 1
                segment.shmid = shmid
                segment.key = state["key"]
                registry._by_key[state["key"]] = shmid
                registry._slots[shmid] = segment
            self.objects[oid] = segment

    def _populate_pages(self, obj: VMObject, locators: dict,
                        lazy: bool) -> None:
        if lazy:
            for pindex, locator in locators.items():
                self.kernel.pageout.evicted[(obj.kid, pindex)] = locator
                self.pages_lazy += 1
            return
        start = self.kernel.clock.now()
        for pindex, locator in locators.items():
            obj.insert_page(pindex, self.store.fetch_page(locator))
            self.kernel.clock.advance(costs.RESTORE_PAGE_INSERT)
            self.pages_restored += 1
        self.insert_ns += self.kernel.clock.now() - start

    def _link_backings(self, decoded) -> None:
        """Relink the persisted VM object hierarchy (§6 "Checkpointing
        the VM"): COW relationships survive the restore."""
        for oid, (otype, state) in decoded.items():
            if otype != "vmobject" or state.get("backing_oid") is None:
                continue
            obj = self.objects[oid]
            backing = self.objects.get(state["backing_oid"])
            if backing is None:
                raise RestoreError(
                    f"VM object {oid} references missing backing "
                    f"{state['backing_oid']}")
            backing.ref()
            backing.shadow_count += 1
            obj.backing = backing

    def _restore_vnode(self, oid: int, state: dict, page_locs):
        if state["fs_type"] == "slsfs":
            if self.slsfs is None:
                raise RestoreError("checkpoint references the Aurora FS "
                                   "but no slsfs is mounted")
            self.kernel.clock.advance(costs.RESTORE_VNODE)
            return self.slsfs.vnode_for_restore(state["inode"], oid, state)
        # Volatile fs: recreate the vnode with embedded data.
        self.kernel.clock.advance(costs.RESTORE_VNODE)
        rootfs = self.kernel.vfs.rootfs
        vnode = rootfs.alloc_vnode(state["vtype"])
        vnode.link_count = state["link_count"]
        vnode.size = state["size"]
        if vnode.vmobject is not None:
            from ..units import pages_of
            vnode.vmobject.grow(pages_of(state["size"]))
            self._populate_pages(vnode.vmobject,
                                 page_locs.get(oid, {}), lazy=False)
        return vnode

    def _restore_tcp(self, state: dict) -> TCPSocket:
        sock = TCPSocket(self.kernel)
        sock.options = dict(state["options"])
        sock.snd_nxt = state["snd_nxt"]
        sock.rcv_nxt = state["rcv_nxt"]
        sock.sndbuf.restore(state["sndbuf"])
        sock.rcvbuf.restore(state["rcvbuf"])
        if state["state"] == TCP_LISTEN:
            sock.bind(state["laddr"], state["lport"])
            sock.listen()
            # Accept queue intentionally NOT restored (§5.3): pending
            # clients look like a dropped SYN and will retry.
        elif state["state"] == TCP_ESTABLISHED:
            sock.state = TCP_ESTABLISHED
            sock.laddr, sock.lport = state["laddr"], state["lport"]
            sock.raddr, sock.rport = state["raddr"], state["rport"]
        return sock

    # -- phase B: open files ----------------------------------------------------------------

    def _create_files(self, decoded) -> None:
        for oid, (otype, state) in decoded.items():
            if otype != "file":
                continue
            fobj = self.objects.get(state["fobj_oid"])
            if fobj is None:
                raise RestoreError(
                    f"file {oid} references missing object "
                    f"{state['fobj_oid']}")
            file = OpenFile(self.kernel, fobj, state["ftype"],
                            state["flags"])
            file.offset = state["offset"]
            file.sls_nosync = state["sls_nosync"]
            self.objects[oid] = file

    # -- phase C: socket linking ----------------------------------------------------------------

    def _link_sockets(self, decoded) -> None:
        for oid, (otype, state) in decoded.items():
            obj = self.objects.get(oid)
            if otype == "unixsock":
                peer = self.objects.get(state["peer_oid"]) \
                    if state["peer_oid"] is not None else None
                if isinstance(peer, UnixSocket):
                    obj.peer = peer
                for message in state["messages"]:
                    control = None
                    if message["file_oids"] or message["creds"]:
                        files = [self.objects[foid]
                                 for foid in message["file_oids"]]
                        for file in files:
                            file.ref()
                        creds = tuple(message["creds"]) \
                            if message["creds"] else None
                        control = ControlMessage(files=[], creds=creds)
                        control.files = files
                    obj.buffer.append(Message(message["data"], control))
                    obj.buffer_bytes += len(message["data"])
            elif otype == "tcpsock" and state["state"] == TCP_ESTABLISHED:
                peer_oid = state.get("peer_oid")
                if peer_oid is not None:
                    peer = self.objects.get(peer_oid)
                    if isinstance(peer, TCPSocket):
                        obj.peer = peer

    # -- phase D: processes -------------------------------------------------------------------------

    def _create_processes(self, decoded, desc, group) -> List[Process]:
        kernel = self.kernel
        # The descriptor written at this checkpoint is authoritative:
        # records of members that exited earlier still sit in the
        # merged view (incremental deltas never erase), but they must
        # not come back to life.
        members = set(desc.get("member_oids", []))
        proc_records = [(oid, state) for oid, (otype, state)
                        in decoded.items()
                        if otype == "proc" and oid in members]
        # Parents before children.
        by_pid = {state["local_pid"]: (oid, state)
                  for oid, state in proc_records}
        ordered: List[Tuple[int, dict]] = []
        seen = set()

        def place(pid: int) -> None:
            if pid in seen or pid not in by_pid:
                return
            seen.add(pid)
            _oid, state = by_pid[pid]
            parent = state["parent_local_pid"]
            if parent is not None:
                place(parent)
            ordered.append(by_pid[pid])

        for pid in sorted(by_pid):
            place(pid)

        sessions: Dict[int, Session] = {}
        pgroups: Dict[int, ProcessGroup] = {}
        restored: Dict[int, Process] = {}
        processes: List[Process] = []
        for oid, state in ordered:
            kernel.clock.advance(costs.RESTORE_PROC_BASE)
            local_pid = state["local_pid"]
            if kernel.pid_alloc.reserve(local_pid):
                global_pid = local_pid
            else:
                global_pid = kernel.pid_alloc.allocate()
                group.idmap.bind(local_pid, global_pid)

            sid = state["sid"]
            if sid not in sessions:
                sessions[sid] = Session(kernel, sid)
            pgid = state["pgid"]
            if pgid not in pgroups:
                pgroups[pgid] = ProcessGroup(kernel, pgid, sessions[sid])

            parent = restored.get(state["parent_local_pid"]) \
                if state["parent_local_pid"] is not None else None
            proc = Process(kernel, global_pid, name=state["name"],
                           parent=parent, pgroup=pgroups[pgid])
            proc.local_pid = local_pid
            proc.cwd = state["cwd"]
            self._restore_vmspace(proc, state["entries"])
            self._restore_fdtable(proc, decoded, state["fdtable_oid"])
            self._restore_threads(proc, state["threads"], group)
            group.add_process(proc)
            kernel.register_process(proc)
            group.oid_map[proc.kid] = oid
            restored[local_pid] = proc
            processes.append(proc)
        if not processes:
            raise RestoreError("checkpoint contains no processes")
        return processes

    def _restore_vmspace(self, proc: Process, entries: List[dict]) -> None:
        for entry_rec in entries:
            if entry_rec["name"] == "vdso" or entry_rec["kind"] == "device":
                if entry_rec["name"] == "vdso":
                    # Inject the *current* boot's vDSO (§5.3).
                    proc.vmspace.mmap(
                        entry_rec["npages"] * PAGE_SIZE,
                        protection=entry_rec["protection"],
                        inheritance=entry_rec["inheritance"],
                        vmobject=self.kernel.vdso.vmobject,
                        fixed_page=entry_rec["start_page"], name="vdso")
                else:
                    device = DeviceFile(self.kernel, "hpet")
                    proc.vmspace.mmap(
                        entry_rec["npages"] * PAGE_SIZE,
                        protection=entry_rec["protection"],
                        inheritance=entry_rec["inheritance"],
                        vmobject=device.vmobject,
                        fixed_page=entry_rec["start_page"],
                        name=entry_rec["name"])
                    device.unref()
                continue
            vm_oid = entry_rec["vm_oid"]
            obj = self.objects.get(vm_oid)
            if obj is None:
                raise RestoreError(f"entry references missing VM object "
                                   f"{vm_oid}")
            proc.vmspace.mmap(entry_rec["npages"] * PAGE_SIZE,
                              protection=entry_rec["protection"],
                              inheritance=entry_rec["inheritance"],
                              vmobject=obj,
                              fixed_page=entry_rec["start_page"],
                              name=entry_rec["name"])
            entry = proc.vmspace.map.lookup(entry_rec["start_page"])
            entry.needs_copy = entry_rec["needs_copy"]
            entry.sls_excluded = entry_rec["sls_excluded"]

    def _restore_fdtable(self, proc: Process, decoded,
                         fdtable_oid: int) -> None:
        otype, state = decoded[fdtable_oid]
        if otype != "fdtable":
            raise RestoreError(f"{fdtable_oid} is not an fd table")
        for fd_str, file_oid in state["fds"].items():
            file = self.objects.get(file_oid)
            if not isinstance(file, OpenFile):
                raise RestoreError(f"fd {fd_str} references non-file "
                                   f"{file_oid}")
            self.kernel.clock.advance(costs.RESTORE_FILE_DESC)
            proc.fdtable.install(file, fd=int(fd_str))

    def _restore_threads(self, proc: Process, thread_records: List[dict],
                         group) -> None:
        kernel = self.kernel
        for index, record in enumerate(thread_records):
            kernel.clock.advance(costs.RESTORE_THREAD)
            thread = proc.threads[0] if index == 0 else proc.add_thread()
            local_tid = record["local_tid"]
            if thread.tid != local_tid:
                if kernel.tid_alloc.reserve(local_tid):
                    kernel.tid_alloc.release(thread.tid)
                    thread.tid = local_tid
                else:
                    group.idmap.bind(local_tid, thread.tid)
            thread.local_tid = local_tid
            thread.cpu_state.restore(record["cpu"])
            thread.signals.restore(record["signals"])
            thread.sched_priority = record["priority"]
            thread.syscall_restarted = record["syscall_restarted"]

    # -- phase E: shadow tracks --------------------------------------------------------------------

    def _register_tracks(self, decoded, group) -> None:
        """Re-arm system shadowing so the next checkpoint flushes only
        post-restore dirt: each restored object gets a fresh shadow."""
        for oid, obj in self.objects.items():
            if not isinstance(obj, VMObject):
                continue
            if oid_class(oid) != CLASS_MEMORY:
                continue
            group.oid_map[obj.kid] = oid
            shadow = obj.shadow(name=f"sys:{obj.name}")
            shadow.sls_oid = oid
            # Repoint every entry mapping the restored base.
            for proc in group.processes:
                for entry in proc.vmspace.entries_for_object(obj):
                    entry.set_object(shadow)
            segment = self.kernel.shm_backmap.get(obj.kid)
            if segment is not None:
                segment.replace_object(shadow)
            group.oid_map[shadow.kid] = oid
            track = ObjectTrack(oid, shadow)
            track.new = False
            group.tracks[oid] = track

    # -- phase F: signals ------------------------------------------------------------------------------

    def _reissue_aio(self, desc) -> int:
        """Pending reads recorded at checkpoint time are reissued so
        the application finds them completed as expected (§5.3)."""
        from ..kernel.aio import AIO_READ

        reissued = 0
        for read in desc.get("aio", {}).get("reads", []):
            self.kernel.aio.submit(AIO_READ, None, read["offset"],
                                   read["length"])
            reissued += 1
        return reissued

    def _post_restore_signals(self, desc, processes: List[Process]) -> None:
        by_local = {p.local_pid: p for p in processes}
        for entry in desc.get("ephemeral_pids", []):
            parent = by_local.get(entry.get("parent_local_pid"))
            if parent is not None:
                # The ephemeral child is gone; to the parent it looks
                # like the child exited (§3).
                parent.post_signal(SIGCHLD)
        for proc in processes:
            proc.post_signal(SIGSLSRESTORE)
