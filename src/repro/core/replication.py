"""Continuous replication to a standby machine (Table 2: ``sls send``
"can ... continually feed incremental checkpoints to a remote host,
... or provide high availability").

A :class:`ReplicationLink` subscribes to a consistency group's commits:
after each checkpoint completes locally, the delta since the last
shipped checkpoint is serialized into a migration stream, charged
across the NIC, and applied to the standby's object store.  When the
primary dies, :meth:`failover` restores the newest replicated
checkpoint on the standby — bounded loss of at most one checkpoint
period plus replication lag.

Link flaps are survivable: each ship attempt consults the primary's
fault plan (:meth:`~repro.core.faults.FaultPlan.on_link`) and retries
:class:`~repro.errors.LinkDown` with the standard backoff policy.  An
outage that outlasts the retries marks the link *down* (``sls
events``: ``replication.link_down``) and shipping quietly resumes on
the next pump; :meth:`failover` during an outage is only allowed once
the outage has exceeded the failover deadline — flapping links must
not trigger split-brain-style premature failovers.
"""

from __future__ import annotations

from typing import Optional

from ..errors import MachineCrashed, RetriesExhausted, SLSError
from ..units import MSEC
from . import events, faults, migration, telemetry, tracing
from .resilience import RetryPolicy

#: An outage must last this long before failover is permitted.
DEFAULT_FAILOVER_DEADLINE_NS = 100 * MSEC


class ReplicationLink:
    """One group continuously replicated from a primary to a standby."""

    def __init__(self, src_sls, dst_sls, group,
                 failover_deadline_ns: int = DEFAULT_FAILOVER_DEADLINE_NS):
        self.src_sls = src_sls
        self.dst_sls = dst_sls
        self.group = group
        self.last_shipped: Optional[int] = None
        self.stats = {"streams": 0, "bytes": 0, "full_syncs": 0,
                      "outages": 0}
        self._installed = False
        self.failover_deadline_ns = failover_deadline_ns
        #: Sim-instant the current outage began (None = link healthy).
        self.down_since: Optional[int] = None
        #: This link's far endpoint id in directional partition cuts
        #: (the quorum cluster overrides it with the node id; the
        #: plain standby keeps 0).
        self.peer_id = 0
        self.retry = RetryPolicy(src_sls.machine.clock,
                                 seed=0x11A6 ^ group.group_id,
                                 op="replication.ship")

    # -- shipping -----------------------------------------------------------------

    def _clock(self):
        return self.src_sls.machine.clock

    def _ship_once(self, newest: int) -> None:
        """One connect + send attempt (the retry policy's unit)."""
        plan = getattr(self.src_sls.machine, "fault_plan", None)
        if plan is not None:
            plan.on_link()
            # The ship direction can be partitioned independently of
            # the reverse path: delivery, not just shipping, fails
            # per-direction (and may be skewed late).
            delay = plan.on_deliver(faults.PRIMARY, self.peer_id)
            if delay:
                self._clock().advance(delay)
        # Attribute the standby leg to the newest checkpoint trace of
        # this group, when one exists — same propagation rule as the
        # quorum cluster's legs (spans never advance the clock).
        ctx = tracing.TraceContext.capture()
        if ctx is None:
            finished = tracing.tracer().traces(tracing.CHECKPOINT,
                                               group=self.group.group_id)
            if finished:
                ctx = tracing.TraceContext.capture(finished[-1])
        with tracing.use(ctx.resolve() if ctx is not None else None):
            with telemetry.registry().span(self._clock(), "repl.ship",
                                           group=self.group.group_id,
                                           ckpt=newest):
                if self.last_shipped is None:
                    stream = migration.send_checkpoint(
                        self.src_sls, self.group.group_id, ckpt_id=newest)
                    self.stats["full_syncs"] += 1
                else:
                    stream = migration.send_checkpoint(
                        self.src_sls, self.group.group_id, ckpt_id=newest,
                        since=self.last_shipped)
                migration.recv_checkpoint(self.dst_sls, stream)
        self.stats["streams"] += 1
        self.stats["bytes"] += len(stream)

    def ship(self) -> Optional[int]:
        """Ship everything committed since the last shipment.

        Returns the checkpoint id now current on the standby, or None
        when there is nothing new — or when the link is down and the
        retries did not outlast the flap (the next pump tries again).
        """
        newest = self.group.last_complete_id
        if newest is None or newest == self.last_shipped:
            return None
        now = self._clock().now()
        try:
            self.retry.run(lambda: self._ship_once(newest))
        except RetriesExhausted as exc:
            if self.down_since is None:
                self.down_since = now
                self.stats["outages"] += 1
                events.emit(self._clock().now(), events.LINK_DOWN,
                            group=self.group.group_id,
                            error=f"{type(exc).__name__}: {exc}")
                telemetry.registry().counter(
                    "sls.replication.outages",
                    group=self.group.group_id).add(1)
            return None
        self._mark_link_up()
        self.last_shipped = newest
        return newest

    def _mark_link_up(self) -> None:
        """A ship attempt went through: close any recorded outage.

        Every healthy path must come through here — ``down_since``
        carries the outage *start*, and a stale start left behind
        after the link healed would let :meth:`failover` misread a
        long-dead outage as a long-running one.
        """
        if self.down_since is None:
            return
        events.emit(self._clock().now(), events.LINK_UP,
                    group=self.group.group_id,
                    outage_ns=self._clock().now() - self.down_since)
        self.down_since = None

    def install(self) -> None:
        """Hook the group's periodic commits: every completed
        checkpoint is shipped automatically.

        Implemented by chaining the orchestrator's periodic timer —
        the link ships on the same event-loop cadence as the group's
        checkpoints, immediately after each fires.
        """
        if self._installed:
            return
        self._installed = True
        loop = self.src_sls.machine.loop

        def pump():
            if not self._installed or not self.group.attached:
                return
            # Shipping only ever reads *complete* checkpoints, so an
            # in-flight flush is no obstacle.
            self.ship()
            self._timer = loop.call_after(self.group.period_ns, pump)

        # Offset by half a period so shipments interleave with the
        # group's checkpoint timer instead of racing it.
        self._timer = loop.call_after(self.group.period_ns +
                                      self.group.period_ns // 2, pump)

    def stop(self) -> None:
        """Cease shipping (standby keeps what it has)."""
        self._installed = False
        timer = getattr(self, "_timer", None)
        if timer is not None:
            timer.cancel()

    # -- failover -------------------------------------------------------------------

    def outage_ns(self) -> int:
        """How long the current outage has lasted (0 when healthy)."""
        if self.down_since is None:
            return 0
        return self._clock().now() - self.down_since

    def failover(self, lazy: bool = False, force: bool = False):
        """The primary is gone: resume the application on the standby
        from the newest replicated checkpoint.

        During a link outage, failover is refused until the outage has
        exceeded the failover deadline — a flapping link should
        reconnect with backoff, not promote the standby.  ``force``
        overrides (operator knows the primary is really dead).
        """
        if self.last_shipped is None:
            raise SLSError("nothing was ever replicated")
        if self.down_since is not None and not force:
            # The recorded outage start may be stale: an outage noted
            # when retries exhausted is never re-examined unless a
            # later ship happens to succeed, so a link that healed
            # (and possibly re-flapped) in between would inherit the
            # old start and look deadline-old.  Probe before trusting
            # it — one last ship attempt; if anything gets through the
            # link is alive and failover would lose the unshipped
            # tail.
            try:
                self.ship()
            except MachineCrashed:
                pass  # primary really is gone; the outage stands
            if self.down_since is None:
                raise SLSError(
                    "link probe succeeded: the link is up (standby is "
                    "current), refusing failover")
        outage = self.outage_ns()
        if (self.down_since is not None and not force
                and outage < self.failover_deadline_ns):
            raise SLSError(
                f"link down only {outage}ns (< deadline "
                f"{self.failover_deadline_ns}ns): keep retrying before "
                f"failing over")
        self.stop()
        events.emit(self._clock().now(), events.FAILOVER,
                    group=self.group.group_id, ckpt=self.last_shipped,
                    outage_ns=outage)
        return self.dst_sls.restore(self.group.group_id,
                                    ckpt_id=self.last_shipped,
                                    lazy=lazy)

    def lag_checkpoints(self) -> int:
        """How many committed checkpoints the standby is behind."""
        chain = self.src_sls.store.checkpoints_for(self.group.group_id,
                                                   include_partial=True)
        if self.last_shipped is None:
            return len(chain)
        return sum(1 for info in chain if info.ckpt_id > self.last_shipped)
