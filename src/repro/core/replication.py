"""Continuous replication to a standby machine (Table 2: ``sls send``
"can ... continually feed incremental checkpoints to a remote host,
... or provide high availability").

A :class:`ReplicationLink` subscribes to a consistency group's commits:
after each checkpoint completes locally, the delta since the last
shipped checkpoint is serialized into a migration stream, charged
across the NIC, and applied to the standby's object store.  When the
primary dies, :meth:`failover` restores the newest replicated
checkpoint on the standby — bounded loss of at most one checkpoint
period plus replication lag.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import SLSError
from . import migration


class ReplicationLink:
    """One group continuously replicated from a primary to a standby."""

    def __init__(self, src_sls, dst_sls, group):
        self.src_sls = src_sls
        self.dst_sls = dst_sls
        self.group = group
        self.last_shipped: Optional[int] = None
        self.stats = {"streams": 0, "bytes": 0, "full_syncs": 0}
        self._installed = False

    # -- shipping -----------------------------------------------------------------

    def ship(self) -> Optional[int]:
        """Ship everything committed since the last shipment.

        Returns the checkpoint id now current on the standby, or None
        when there is nothing new.
        """
        newest = self.group.last_complete_id
        if newest is None or newest == self.last_shipped:
            return None
        if self.last_shipped is None:
            stream = migration.send_checkpoint(self.src_sls,
                                               self.group.group_id,
                                               ckpt_id=newest)
            self.stats["full_syncs"] += 1
        else:
            stream = migration.send_checkpoint(self.src_sls,
                                               self.group.group_id,
                                               ckpt_id=newest,
                                               since=self.last_shipped)
        migration.recv_checkpoint(self.dst_sls, stream)
        self.stats["streams"] += 1
        self.stats["bytes"] += len(stream)
        self.last_shipped = newest
        return newest

    def install(self) -> None:
        """Hook the group's periodic commits: every completed
        checkpoint is shipped automatically.

        Implemented by chaining the orchestrator's periodic timer —
        the link ships on the same event-loop cadence as the group's
        checkpoints, immediately after each fires.
        """
        if self._installed:
            return
        self._installed = True
        loop = self.src_sls.machine.loop

        def pump():
            if not self._installed or not self.group.attached:
                return
            # Shipping only ever reads *complete* checkpoints, so an
            # in-flight flush is no obstacle.
            self.ship()
            self._timer = loop.call_after(self.group.period_ns, pump)

        # Offset by half a period so shipments interleave with the
        # group's checkpoint timer instead of racing it.
        self._timer = loop.call_after(self.group.period_ns +
                                      self.group.period_ns // 2, pump)

    def stop(self) -> None:
        """Cease shipping (standby keeps what it has)."""
        self._installed = False
        timer = getattr(self, "_timer", None)
        if timer is not None:
            timer.cancel()

    # -- failover -------------------------------------------------------------------

    def failover(self, lazy: bool = False):
        """The primary is gone: resume the application on the standby
        from the newest replicated checkpoint."""
        if self.last_shipped is None:
            raise SLSError("nothing was ever replicated")
        self.stop()
        return self.dst_sls.restore(self.group.group_id,
                                    ckpt_id=self.last_shipped,
                                    lazy=lazy)

    def lag_checkpoints(self) -> int:
        """How many committed checkpoints the standby is behind."""
        chain = self.src_sls.store.checkpoints_for(self.group.group_id,
                                                   include_partial=True)
        if self.last_shipped is None:
            return len(chain)
        return sum(1 for info in chain if info.ckpt_id > self.last_shipped)
