"""Per-POSIX-object checkpoint serializers (§5).

Every kernel object reachable from a consistency group is serialized
into its own on-disk record, exactly once per checkpoint, keyed by the
group's kernel-address→OID map.  Sharing needs no inference: two fd
table slots naming one OpenFile produce one record; two OpenFiles over
one vnode produce two file records referencing one vnode record — the
POSIX object model of §5.2.

Incremental checkpoints: when ``epoch_floor`` is set, objects whose
``dirty_epoch`` is at or below the floor are *walked* (for OID
liveness and to reach dirty children) but their unchanged records are
not re-written — the restore path resolves them from older deltas via
:meth:`~repro.objstore.store.ObjectStore.merged_view`.  The walked OID
set (:attr:`live_oids`) is recorded per checkpoint so a delta can
distinguish "unchanged" from "deleted".  Processes and the group
descriptor are always re-serialized: their records embed per-thread
CPU state that changes every instant.

Each serializer charges the calibrated cost from Table 4; the costs
module documents the calibration.  Skipped objects charge nothing —
the per-object cost of an incremental checkpoint is proportional to
the dirty set, which is the point.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, List, Optional, Set

from ..errors import InvalidArgument, PermissionDenied
from ..kernel.fs.file import (DTYPE_DEVICE, DTYPE_KQUEUE, DTYPE_PIPE,
                              DTYPE_PTS, DTYPE_SHM, DTYPE_SOCKET,
                              DTYPE_VNODE, OpenFile)
from ..kernel.ipc.devfs import DEVICE_WHITELIST
from ..objstore.oid import CLASS_FILE, CLASS_GROUP, CLASS_POSIX
from . import costs, telemetry


def _traced(otype: str) -> Callable:
    """Wrap a serializer method in a ``serialize.<otype>`` span so each
    serialized object becomes a child of the checkpoint's serialize
    stage in the causal trace (recording reads the clock, never
    advances it)."""
    def wrap(method: Callable) -> Callable:
        @functools.wraps(method)
        def inner(self, *args, **kwargs):
            with telemetry.registry().span(self.kernel.clock,
                                           f"serialize.{otype}",
                                           group=self.group.group_id):
                return method(self, *args, **kwargs)
        return inner
    return wrap


class CheckpointSerializer:
    """Serializes one consistency group's OS state into a txn."""

    #: Pre-refactor walk behavior, kept for the scale benchmark's
    #: baseline mode: every file/vnode builds its state dict and
    #: tracing span *before* the clean-skip decision — the per-object
    #: wall-clock the columnar fast path removed.  Output is identical
    #: either way; only real time differs.
    legacy_walk = False

    def __init__(self, kernel: Any, group: Any, store: Any, txn: Any,
                 epoch_floor: Optional[int] = None,
                 prior_live: Optional[Set[int]] = None) -> None:
        self.kernel = kernel
        self.group = group
        self.store = store
        self.txn = txn
        #: Objects whose ``dirty_epoch`` ≤ the floor were captured by a
        #: previous checkpoint of this chain; None forces a full pass.
        self.epoch_floor = epoch_floor
        #: OIDs resolvable from the parent checkpoint's chain.  A clean
        #: object may only be skipped when its record is actually
        #: reachable there: an object that predates the floor but was
        #: unreachable at the previous checkpoint (a closed-then-
        #: reopened file's vnode) has no on-disk record to resolve.
        self.prior_live = prior_live
        #: OIDs already visited in this pass (dedup).
        self._done: Set[int] = set()
        #: Every OID the walk reached — the checkpoint's live set.
        self.live_oids: Set[int] = set()
        #: Records actually staged vs. skipped as unchanged.
        self.records_written = 0
        self.records_skipped = 0

    # -- helpers -----------------------------------------------------------------

    def _oid(self, kobj: Any, obj_class: int = CLASS_POSIX) -> int:
        oid = self.group.oid_for(kobj, self.store, obj_class)
        self.live_oids.add(oid)
        return oid

    def _clean(self, kobj: Any) -> bool:
        """True when the object is unchanged since the epoch floor."""
        if self.epoch_floor is None:
            return False
        epoch = getattr(kobj, "dirty_epoch", None)
        return epoch is not None and epoch <= self.epoch_floor

    def _skippable(self, kobj: Any, obj_class: int = CLASS_POSIX,
                   oid: Optional[int] = None) -> bool:
        """Unchanged since the floor AND resolvable from the parent
        chain.  Cleanliness alone is not enough: an object that
        predates the floor but was unreachable at the previous
        checkpoint (a closed-then-reopened file's vnode) has no
        on-disk record for the merged view to resolve.  Callers that
        already allocated the OID pass it to avoid a second lookup —
        this check runs once per kernel object per checkpoint."""
        if not self._clean(kobj):
            return False
        if oid is None:
            oid = self.group.oid_for(kobj, self.store, obj_class)
        return self.prior_live is not None and oid in self.prior_live

    def _put_once(self, kobj: Any, otype: str, state: Dict[str, Any],
                  obj_class: int = CLASS_POSIX, force: bool = False) -> int:
        oid = self._oid(kobj, obj_class)
        if oid not in self._done:
            self._done.add(oid)
            if not force and self._skippable(kobj, obj_class):
                self.records_skipped += 1
            else:
                self.txn.put_object(oid, otype, state)
                self.records_written += 1
        return oid

    # -- top level --------------------------------------------------------------------

    def serialize_all(self) -> Dict[str, Any]:
        """Serialize the whole group; returns the group descriptor."""
        member_oids = []
        for proc in self.group.persistent_processes():
            member_oids.append(self.serialize_process(proc))
        ephemeral_pids = [
            {"local_pid": p.local_pid,
             "parent_local_pid": (p.parent.local_pid
                                  if p.parent is not None and
                                  p.parent.sls_group is self.group else None)}
            for p in self.group.processes if p.sls_ephemeral
        ]
        descriptor = {
            "group_id": self.group.group_id,
            "name": self.group.name,
            "period_ns": self.group.period_ns,
            "external_synchrony": self.group.external_synchrony,
            "member_oids": member_oids,
            "ephemeral_pids": ephemeral_pids,
            # In-flight asynchronous IO (§5.3): pending reads are
            # recorded for reissue at restore; pending writes gate the
            # checkpoint's completion (the orchestrator waits on the
            # barrier); failures are recorded as-is.
            "aio": self.kernel.aio.quiesce(),
        }
        # The descriptor is always-dirty: member lists and aio state
        # are recomputed every checkpoint.
        self.txn.put_object(self.group.desc_oid, "group", descriptor)
        self.records_written += 1
        if self.group.desc_oid is not None:
            self.live_oids.add(self.group.desc_oid)
        registry = telemetry.registry()
        registry.counter("sls.serialize.records",
                         group=self.group.group_id).add(self.records_written)
        registry.counter("sls.serialize.records_skipped",
                         group=self.group.group_id).add(self.records_skipped)
        return descriptor

    # -- processes ---------------------------------------------------------------------

    @_traced("proc")
    def serialize_process(self, proc: Any) -> int:
        """One process: identity, threads, map entries, fd table.

        Processes are always-dirty: thread CPU state mutates on every
        quiesce, so there is nothing to skip.
        """
        self.kernel.clock.advance(costs.CKPT_PROC_BASE)
        threads = []
        for thread in proc.threads:
            self.kernel.clock.advance(costs.CKPT_THREAD)
            threads.append({
                "local_tid": thread.local_tid,
                "cpu": thread.cpu_state.snapshot(),
                "signals": thread.signals.snapshot(),
                "priority": thread.sched_priority,
                "syscall_restarted": thread.syscall_restarted,
            })
        entries = []
        for entry in proc.vmspace.map:
            self.kernel.clock.advance(costs.CKPT_VMENTRY)
            entries.append(self.serialize_entry(entry))
        fdtable_oid = self.serialize_fdtable(proc.fdtable)
        parent = proc.parent
        parent_local = parent.local_pid if parent is not None \
            and parent.sls_group is self.group else None
        state = {
            "local_pid": proc.local_pid,
            "name": proc.name,
            "parent_local_pid": parent_local,
            "pgid": proc.pgroup.pgid,
            "sid": proc.pgroup.session.sid,
            "cwd": proc.cwd,
            "threads": threads,
            "entries": entries,
            "fdtable_oid": fdtable_oid,
        }
        return self._put_once(proc, "proc", state, force=True)

    def serialize_entry(self, entry: Any) -> Dict[str, Any]:
        """One vm_map_entry: range, protection, object reference."""
        obj = entry.vmobject
        segment = self.kernel.shm_backmap.get(obj.kid)
        if segment is not None:
            # A mapped shared-memory segment is a first-class object
            # even when no descriptor references it (shmat with the
            # fd long closed).
            self.serialize_shm(segment)
        if obj.kind == "device":
            # Mapped devices (HPET, vDSO) are recreated from the
            # restore-time machine, not persisted (§5.3).
            vm_oid = None
        elif obj.sls_oid is not None:
            vm_oid = obj.sls_oid
            self.live_oids.add(vm_oid)
        else:
            vm_oid = None
        return {
            "start_page": entry.start_page,
            "npages": entry.npages,
            "protection": entry.protection,
            "inheritance": entry.inheritance,
            "needs_copy": entry.needs_copy,
            "sls_excluded": entry.sls_excluded,
            "name": entry.name,
            "vm_oid": vm_oid,
            "kind": obj.kind,
        }

    # -- descriptors ----------------------------------------------------------------------

    @_traced("fdtable")
    def serialize_fdtable(self, fdtable: Any) -> int:
        """The fd table: slot -> OpenFile OID (sharing preserved).

        Every slot is walked (the files behind clean tables can still
        be dirty), but a table whose slot layout did not change skips
        its own record.
        """
        fds = {}
        for fd, file in fdtable.items():
            self.kernel.clock.advance(costs.CKPT_FILE_DESC)
            fds[str(fd)] = self.serialize_file(file)
        return self._put_once(fdtable, "fdtable", {"fds": fds})

    def serialize_file(self, file: OpenFile) -> int:
        """One OpenFile: mode, offset, underlying object reference.

        The clean-skip decision is taken *before* the tracing span and
        the state dict are built: a 10k-fd table whose descriptors are
        unchanged costs one epoch check per slot, not 10k span records
        — the skip path is the serializer's hot path under continuous
        checkpointing.  The underlying object is always visited (it
        carries its own dirty epoch and must stay in the live set).
        """
        if self.legacy_walk:
            with telemetry.registry().span(self.kernel.clock,
                                           "serialize.file",
                                           group=self.group.group_id):
                state = {
                    "ftype": file.ftype,
                    "flags": file.flags,
                    "offset": file.offset,
                    "sls_nosync": file.sls_nosync,
                    "fobj_oid": self.serialize_fobj(file.fobj, file.ftype),
                }
                return self._put_once(file, "file", state)
        oid = self._oid(file)
        if oid in self._done:
            return oid
        if self._skippable(file, oid=oid):
            self._done.add(oid)
            self.records_skipped += 1
            self.serialize_fobj(file.fobj, file.ftype)
            return oid
        with telemetry.registry().span(self.kernel.clock, "serialize.file",
                                       group=self.group.group_id):
            state = {
                "ftype": file.ftype,
                "flags": file.flags,
                "offset": file.offset,
                "sls_nosync": file.sls_nosync,
                "fobj_oid": self.serialize_fobj(file.fobj, file.ftype),
            }
            return self._put_once(file, "file", state)

    def serialize_fobj(self, fobj: Any, ftype: str) -> int:
        """Dispatch to the type-specific object serializer."""
        if ftype == DTYPE_VNODE:
            return self.serialize_vnode(fobj)
        if ftype == DTYPE_PIPE:
            return self.serialize_pipe(fobj)
        if ftype == DTYPE_SOCKET:
            return self.serialize_socket(fobj)
        if ftype == DTYPE_KQUEUE:
            return self.serialize_kqueue(fobj)
        if ftype == DTYPE_PTS:
            return self.serialize_pty(fobj)
        if ftype == DTYPE_SHM:
            return self.serialize_shm(fobj)
        if ftype == DTYPE_DEVICE:
            return self.serialize_device(fobj)
        raise InvalidArgument(f"no serializer for {ftype}")

    # -- individual object types (Table 4) ------------------------------------------------------

    def serialize_vnode(self, vnode: Any) -> int:
        """Vnodes are checkpointed as an inode reference — no namei or
        name-cache walk (§5.2), hence Table 4's 1.7 µs.  Clean vnodes
        skip before the span is opened, like :meth:`serialize_file`."""
        oid = self._oid(vnode, CLASS_FILE)
        if oid in self._done:
            return oid
        self._done.add(oid)
        if not self.legacy_walk and self._skippable(vnode, CLASS_FILE,
                                                    oid=oid):
            self.records_skipped += 1
            return oid
        with telemetry.registry().span(self.kernel.clock, "serialize.vnode",
                                       group=self.group.group_id):
            self.kernel.clock.advance(costs.CKPT_VNODE)
            state = {
                "inode": vnode.inode,
                "fs_type": vnode.fs.fs_type,
                "vtype": vnode.vtype,
                "size": vnode.size,
                "link_count": vnode.link_count,
            }
            self.txn.put_object(oid, "vnode", state)
            self.records_written += 1
            if vnode.fs.fs_type != "slsfs" and vnode.vmobject is not None:
                # Volatile filesystems get their data embedded in the
                # checkpoint; the Aurora FS persists data itself.
                self.txn.put_pages(oid, dict(vnode.vmobject.pages))
        return oid

    @_traced("pipe")
    def serialize_pipe(self, pipe: Any) -> int:
        """A pipe: buffer contents + endpoint liveness (Table 4)."""
        if not self._skippable(pipe):
            self.kernel.clock.advance(costs.CKPT_PIPE)
        return self._put_once(pipe, "pipe", {
            "buffer": bytes(pipe.buffer),
            "capacity": pipe.capacity,
            "read_open": pipe.read_open,
            "write_open": pipe.write_open,
        })

    def serialize_socket(self, sock: Any) -> int:
        """Dispatch UNIX/UDP/TCP socket serialization."""
        if sock.obj_type == "unixsock":
            return self.serialize_unix_socket(sock)
        if sock.obj_type == "udpsock":
            return self.serialize_udp(sock)
        if sock.obj_type == "tcpsock":
            return self.serialize_tcp(sock)
        raise InvalidArgument(f"unknown socket type {sock.obj_type}")

    @_traced("unixsock")
    def serialize_unix_socket(self, sock: Any) -> int:
        """UNIX sockets: the buffer is *parsed* for control messages so
        every in-flight descriptor is chased and persisted (§5.3).

        The chase runs even for a clean socket: an in-flight file is
        live (and possibly dirty) whether or not the queue changed."""
        oid = self._oid(sock)
        if oid in self._done:
            return oid
        self._done.add(oid)
        messages = []
        for message in sock.buffer:
            entry = {"data": message.data, "file_oids": [], "creds": None}
            if message.control is not None:
                entry["file_oids"] = [self.serialize_file(f)
                                      for f in message.control.files]
                if message.control.creds is not None:
                    entry["creds"] = list(message.control.creds)
            messages.append(entry)
        if self._skippable(sock):
            self.records_skipped += 1
            return oid
        self.kernel.clock.advance(costs.CKPT_SOCKET)
        peer_oid = None
        if sock.peer is not None:
            peer_oid = self.group.oid_map.get(sock.peer.kid)
            if peer_oid is None:
                peer_oid = self._oid(sock.peer)
        self.txn.put_object(oid, "unixsock", {
            "sock_type": sock.sock_type,
            "address": sock.address,
            "listening": sock.listening,
            "messages": messages,
            "peer_oid": peer_oid,
            "options": dict(sock.options),
        })
        self.records_written += 1
        return oid

    @_traced("udpsock")
    def serialize_udp(self, sock: Any) -> int:
        """A UDP socket: binding, options, queued datagrams (§5.3)."""
        if not self._skippable(sock):
            self.kernel.clock.advance(costs.CKPT_SOCKET)
        return self._put_once(sock, "udpsock", {
            "laddr": sock.laddr,
            "lport": sock.lport,
            "options": dict(sock.options),
            "datagrams": [{"source": list(d.source), "payload": d.payload}
                          for d in sock.rcvqueue],
        })

    @_traced("tcpsock")
    def serialize_tcp(self, sock: Any) -> int:
        """TCP: 5-tuple, sequence numbers, options and buffers; the
        accept queue is deliberately omitted — clients see a dropped
        SYN and retry (§5.3)."""
        if not self._skippable(sock):
            self.kernel.clock.advance(costs.CKPT_SOCKET)
        peer_oid = None
        if sock.peer is not None and sock.peer.kid in self.group.oid_map:
            peer_oid = self.group.oid_map[sock.peer.kid]
        return self._put_once(sock, "tcpsock", {
            "state": sock.state,
            "laddr": sock.laddr,
            "lport": sock.lport,
            "raddr": sock.raddr,
            "rport": sock.rport,
            "snd_nxt": sock.snd_nxt,
            "rcv_nxt": sock.rcv_nxt,
            "options": dict(sock.options),
            "sndbuf": sock.sndbuf.snapshot(),
            "rcvbuf": sock.rcvbuf.snapshot(),
            "dropped_accepts": len(sock.accept_queue),
            "peer_oid": peer_oid,
        })

    @_traced("kqueue")
    def serialize_kqueue(self, kq: Any) -> int:
        """Cost scales with registered events: each knote is locked and
        serialized (Table 4: 35.2 µs for 1024 events)."""
        events = kq.events()
        if not self._skippable(kq):
            self.kernel.clock.advance(
                costs.CKPT_KQUEUE_BASE +
                len(events) * costs.CKPT_KEVENT_EACH)
        return self._put_once(kq, "kqueue", {
            "events": [{"ident": e.ident, "filter": e.filter,
                        "flags": e.flags, "fflags": e.fflags,
                        "data": e.data, "udata": e.udata}
                       for e in events],
        })

    @_traced("pty")
    def serialize_pty(self, pty: Any) -> int:
        """A pseudoterminal: termios + both direction buffers."""
        if not self._skippable(pty):
            self.kernel.clock.advance(costs.CKPT_PTY)
        return self._put_once(pty, "pty", {
            "unit": pty.unit,
            "termios": {k: v for k, v in pty.termios.items()},
            "to_slave": bytes(pty._to_slave),
            "to_master": bytes(pty._to_master),
        })

    @_traced("shm")
    def serialize_shm(self, segment: Any) -> int:
        """POSIX shm is direct; SysV requires scanning the global
        namespace table (Table 4: 14.9 µs vs 4.5 µs)."""
        oid = self._oid(segment)
        if oid in self._done:
            if segment.vmobject.sls_oid is not None:
                self.live_oids.add(segment.vmobject.sls_oid)
            return oid
        self._done.add(oid)
        if self._skippable(segment) and segment.vmobject.sls_oid is not None:
            self.live_oids.add(segment.vmobject.sls_oid)
            self.records_skipped += 1
            return oid
        if segment.flavor == "sysv":
            self.kernel.clock.advance(
                costs.CKPT_SHM_SYSV_BASE +
                self.kernel.sysv_shm.nslots *
                costs.CKPT_SHM_SYSV_SCAN_PER_SLOT)
        else:
            self.kernel.clock.advance(costs.CKPT_SHM_POSIX)
        vm_oid = segment.vmobject.sls_oid
        pages = None
        if vm_oid is None:
            # Held open but never mapped by the group: persist the
            # content directly under a memory OID.
            from ..objstore.oid import CLASS_MEMORY
            vm_oid = self.group.oid_for(segment.vmobject, self.store,
                                        CLASS_MEMORY)
            segment.vmobject.sls_oid = vm_oid
            pages = dict(segment.vmobject.pages)
        self.live_oids.add(vm_oid)
        self.txn.put_object(oid, "shm", {
            "name": segment.name,
            "size": segment.size,
            "flavor": segment.flavor,
            "key": getattr(segment, "key", None),
            "vm_oid": vm_oid,
        })
        self.records_written += 1
        if pages is not None:
            self.txn.put_object(vm_oid, "vmobject", {
                "size_pages": segment.vmobject.size_pages,
                "kind": "anonymous",
                "name": segment.vmobject.name,
                "backing_oid": None,
            })
            self.records_written += 1
            self.txn.put_pages(vm_oid, pages)
        return oid

    @_traced("device")
    def serialize_device(self, device: Any) -> int:
        """A whitelisted device: name only (recreated at restore)."""
        if device.name not in DEVICE_WHITELIST:
            raise PermissionDenied(
                f"device {device.name!r} cannot be persisted")
        if not self._skippable(device):
            self.kernel.clock.advance(costs.CKPT_PIPE)  # trivial record
        return self._put_once(device, "device", {"name": device.name})
