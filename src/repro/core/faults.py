"""Deterministic fault injection for crash-schedule exploration.

Aurora's core claim is that a whole application survives a power
failure at *any* instant (§5, §7).  A :class:`FaultPlan` turns "any
instant" into an enumerable schedule: every device write gets a
monotonically increasing IO index, and the checkpoint pipeline reports
every stage boundary, so a test can say "crash exactly at IO 17" or
"crash right before the seal stage" and get the same instant on every
run.  The plan is threaded through :class:`~repro.hw.nvme.StripedArray`
(IO faults) and :class:`~repro.core.pipeline.CheckpointPipeline`
(stage-boundary faults); :meth:`~repro.machine.Machine.set_fault_plan`
installs it and a machine crash clears it.

Four fault kinds:

* ``crash`` — power fails the instant before the write is issued (or
  at the stage boundary): :class:`InjectedCrash` unwinds to the test
  harness, which calls ``machine.crash()`` to tear in-flight IO.
* ``torn`` — the first half of the write reaches media, then power
  fails: the truncated payload is forced durable and
  :class:`InjectedCrash` is raised.
* ``bitflip`` — one byte of the payload is silently corrupted; the
  write completes normally (the scrubber's prey).
* ``nospace`` — the device reports ``ENOSPC`` for this command.

Two *retryable* kinds model transient trouble — the device (or link)
fails but a retry may succeed, which is what the
:mod:`~repro.core.resilience` policy layer exists for:

* ``transient`` — the command at a given IO (or read) index fails
  ``times`` times with :class:`~repro.errors.TransientDeviceError`,
  then succeeds.  The index does *not* advance on a transient failure
  (the command never reached the queue), so a retry deterministically
  re-hits the same registration until it is exhausted.
* ``intermittent`` — every write attempt independently fails with
  probability ``p`` drawn from the plan's seeded RNG (optionally
  capped at ``limit`` total failures); identical seeds replay the
  identical failure sequence.

``flaky_link`` does the same for the replication link: the next
``times`` ship attempts raise :class:`~repro.errors.LinkDown`.

Network partitions are first-class: :meth:`FaultPlan.partition` (cut a
node set off symmetrically), :meth:`FaultPlan.asym_partition` (one-way
link drops) and :meth:`FaultPlan.partial_partition` (an exact directed
pair list) install directed cuts consulted by :meth:`on_deliver` —
the hook the cluster threads through every *delivery* direction (ship
leg, ack leg, repair donor leg, lease ping), so delivery, not just
shipping, fails per-direction.  :meth:`delay_link` adds per-direction
message-delay skew instead of a cut.  Cuts can be armed to install
when a given replication boundary is crossed (``at_repl=``), and
:meth:`heal_after_drops` gives seeded plans a deterministic self-heal
budget so :meth:`FaultPlan.random` can emit partition schedules that
are guaranteed to heal.

Everything a plan does is a pure function of its registrations, so a
seeded plan (:meth:`FaultPlan.random`) reproduces exactly.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..errors import LinkDown, NoSpace, ReproError, TransientDeviceError
from . import events as sls_events

#: Fault kinds.
CRASH = "crash"
TORN = "torn"
BITFLIP = "bitflip"
NOSPACE = "nospace"
TRANSIENT = "transient"
INTERMITTENT = "intermittent"
LINKFLAP = "linkflap"
NODECRASH = "nodecrash"
PARTITION = "partition"
ASYM_PARTITION = "asym_partition"
PARTIAL_PARTITION = "partial_partition"

#: Endpoint id of the *primary* in directional cut pairs — cluster
#: nodes are numbered from 0, so the primary gets a sentinel that can
#: never collide with a node id.
PRIMARY = -1

#: Stage-boundary edges.
BEFORE = "before"
AFTER = "after"


class InjectedFault(ReproError):
    """Base class for failures raised by a :class:`FaultPlan`."""


class InjectedCrash(InjectedFault):
    """A scheduled power failure fired.

    The simulated machine is *not* crashed yet when this unwinds; the
    harness models the power loss by calling ``machine.crash()``,
    which tears away every write still in the device queues.
    """


class InjectedNodeCrash(InjectedFault):
    """A scheduled power failure of one *cluster node* fired.

    Unlike :class:`InjectedCrash` (the whole primary dies and the
    harness takes over), a node crash is survivable: the cluster pump
    catches it, downs that node, and keeps replicating to the rest —
    the quorum, not any single node, is the availability unit.
    """

    def __init__(self, message: str = "", node: int = 0) -> None:
        super().__init__(message)
        self.node = node


class FaultEvent:
    """One fault that fired (the plan's audit trail)."""

    __slots__ = ("kind", "io_index", "stage", "edge", "offset", "op",
                 "node")

    def __init__(self, kind: str, io_index: int,
                 stage: Optional[str] = None, edge: Optional[str] = None,
                 offset: Optional[int] = None, op: Optional[str] = None,
                 node: Optional[int] = None) -> None:
        self.kind = kind
        #: Number of device writes fully submitted when the fault fired.
        self.io_index = io_index
        self.stage = stage
        self.edge = edge
        self.offset = offset
        #: Which operation the fault hit: "write" (default), "read",
        #: "link", or "repl".
        self.op = op
        #: Cluster node a replication-boundary fault targeted.
        self.node = node

    def __repr__(self) -> str:
        where = (f"stage={self.stage}/{self.edge}" if self.stage
                 else f"io={self.io_index}")
        return f"FaultEvent({self.kind}, {where})"


class FaultPlan:
    """A reproducible schedule of injected faults.

    With no registrations the plan is a pure observer: it numbers
    every device write (``io_log``) and records every pipeline stage
    boundary (``boundaries_seen``), which is how the crash-schedule
    explorer discovers the schedule space before sweeping it.
    """

    def __init__(self, name: str = "", seed: int = 0) -> None:
        self.name = name
        self.seed = seed
        #: Installed by :meth:`~repro.machine.Machine.set_fault_plan`
        #: so fired faults land in the structured event log at the
        #: sim-instant they fired.
        self.clock: Optional[Any] = None
        #: Next IO index == number of writes fully submitted so far.
        self.io_index = 0
        self.io_log: List[int] = []
        #: Next read index == number of reads fully served so far.
        self.read_index = 0
        self.boundaries_seen: List[Tuple[str, str]] = []
        self.events: List[FaultEvent] = []
        self._io_faults: Dict[int, str] = {}
        self._stage_faults: Dict[Tuple[str, str], str] = {}
        #: Registered transient counts (immutable — what ``describe``
        #: reports) and mutable remaining counters consumed as fires.
        self._transient_writes: Dict[int, int] = {}
        self._transient_writes_left: Dict[int, int] = {}
        self._transient_reads: Dict[int, int] = {}
        self._transient_reads_left: Dict[int, int] = {}
        self._intermittent_p = 0.0
        self._intermittent_limit: Optional[int] = None
        self._intermittent_fired = 0
        self._intermittent_rng: Optional[random.Random] = None
        self._link_flaps = 0
        self._link_flaps_left = 0
        #: Every replication/quorum boundary seen, in order:
        #: ``(node_id, boundary)`` tuples — the cluster crash-schedule
        #: explorer's enumerable instants.
        self.repl_log: List[Tuple[int, str]] = []
        self._repl_faults: Dict[int, str] = {}
        #: Every fleet-scheduler boundary seen, in order:
        #: ``(group_id, boundary)`` tuples — ``admit`` (admission
        #: decision), ``dispatch`` (EDF dispatch) and ``widen``
        #: (backpressure widen).  The fleet crash-schedule explorer's
        #: enumerable instants.
        self.fleet_log: List[Tuple[int, str]] = []
        self._fleet_faults: Dict[int, str] = {}
        #: Directed cuts currently installed: ``(src, dst)`` pairs a
        #: delivery may not cross (``PRIMARY`` == -1 is the primary).
        self._cuts: Set[Tuple[int, int]] = set()
        #: Which registration kind cut each pair (for the audit trail).
        self._cut_kind: Dict[Tuple[int, int], str] = {}
        #: Per-direction message-delay skew in ns (no cut, just late).
        self._link_delays: Dict[Tuple[int, int], int] = {}
        #: The registered cut schedule, in registration order:
        #: ``(kind, at_repl, pairs)`` — what ``describe`` reports and
        #: the reproducibility contract for seeded partition plans.
        self._partition_regs: List[Tuple[str, Optional[int],
                                         Tuple[Tuple[int, int], ...]]] = []
        #: Cuts armed to install when ``repl_log`` reaches an index.
        self._pending_cuts: Dict[int, List[Tuple[str, Tuple[Tuple[int, int],
                                                            ...]]]] = {}
        #: Delivery audit trail: ``(src, dst, verdict)``.
        self.deliveries: List[Tuple[int, int, str]] = []
        #: Pairs that already fired a partition FaultEvent (fire-once
        #: per install; healing re-arms them).
        self._partition_fired: Set[Tuple[int, int]] = set()
        #: Auto-heal: total dropped deliveries before every cut heals
        #: (None = cuts persist until :meth:`heal`).
        self._drop_budget: Optional[int] = None
        self._drops = 0

    # -- registration ------------------------------------------------------

    def crash_at_io(self, index: int) -> "FaultPlan":
        """Power fails the instant write ``index`` would be issued."""
        self._io_faults[index] = CRASH
        return self

    def torn_at_io(self, index: int) -> "FaultPlan":
        """Write ``index`` is torn: half lands, then power fails."""
        self._io_faults[index] = TORN
        return self

    def bitflip_at_io(self, index: int) -> "FaultPlan":
        """Write ``index`` lands with one byte silently flipped."""
        self._io_faults[index] = BITFLIP
        return self

    def nospace_at_io(self, index: int) -> "FaultPlan":
        """Write ``index`` fails with ENOSPC."""
        self._io_faults[index] = NOSPACE
        return self

    def crash_at_stage(self, stage: str, edge: str = BEFORE) -> "FaultPlan":
        """Power fails at the named pipeline stage boundary."""
        if edge not in (BEFORE, AFTER):
            raise ValueError(f"bad stage edge {edge!r}")
        self._stage_faults[(stage, edge)] = CRASH
        return self

    def transient_at_io(self, index: int, times: int = 1) -> "FaultPlan":
        """Write ``index`` fails retryably ``times`` times, then lands."""
        if times < 1:
            raise ValueError("transient fault needs times >= 1")
        self._transient_writes[index] = times
        self._transient_writes_left[index] = times
        return self

    def transient_at_read(self, index: int, times: int = 1) -> "FaultPlan":
        """Read ``index`` fails retryably ``times`` times, then serves."""
        if times < 1:
            raise ValueError("transient fault needs times >= 1")
        self._transient_reads[index] = times
        self._transient_reads_left[index] = times
        return self

    def intermittent(self, p: float,
                     limit: Optional[int] = None) -> "FaultPlan":
        """Each write attempt fails retryably with probability ``p``.

        The draws come from a dedicated RNG seeded from the plan's
        seed, so an identical seed replays the identical sequence of
        failures.  ``limit`` caps the total number of fires.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"bad intermittent probability {p!r}")
        self._intermittent_p = p
        self._intermittent_limit = limit
        self._intermittent_rng = random.Random(self.seed ^ 0xA5A5)
        return self

    def flaky_link(self, times: int = 1) -> "FaultPlan":
        """The next ``times`` replication ship attempts find the link
        down (:class:`~repro.errors.LinkDown`)."""
        if times < 1:
            raise ValueError("link flap needs times >= 1")
        self._link_flaps = times
        self._link_flaps_left = times
        return self

    def crash_at_repl(self, index: int) -> "FaultPlan":
        """The *primary* loses power the instant replication boundary
        ``index`` (an offset into ``repl_log``) is crossed."""
        self._repl_faults[index] = CRASH
        return self

    def node_crash_at_repl(self, index: int) -> "FaultPlan":
        """The *node* at replication boundary ``index`` loses power
        there (:class:`InjectedNodeCrash`; the cluster pump downs the
        node and carries on)."""
        self._repl_faults[index] = NODECRASH
        return self

    def crash_at_fleet(self, index: int) -> "FaultPlan":
        """Power fails the instant fleet-scheduler boundary ``index``
        (an offset into ``fleet_log``) is crossed."""
        self._fleet_faults[index] = CRASH
        return self

    # -- partitions --------------------------------------------------------

    def _register_cuts(self, kind: str, pairs: Iterable[Tuple[int, int]],
                       at_repl: Optional[int]) -> "FaultPlan":
        ordered = tuple(sorted(set(pairs)))
        if not ordered:
            raise ValueError("a partition needs at least one directed pair")
        self._partition_regs.append((kind, at_repl, ordered))
        if at_repl is None:
            self._install_cuts(kind, ordered)
        else:
            self._pending_cuts.setdefault(at_repl, []).append((kind, ordered))
        return self

    def _install_cuts(self, kind: str,
                      pairs: Tuple[Tuple[int, int], ...]) -> None:
        for pair in pairs:
            self._cuts.add(pair)
            self._cut_kind[pair] = kind
            self._partition_fired.discard(pair)

    def partition(self, side_a: Iterable[int], side_b: Iterable[int],
                  at_repl: Optional[int] = None) -> "FaultPlan":
        """Cut every link between the two node sets, both directions
        (use :data:`PRIMARY` for the primary endpoint).  With
        ``at_repl`` the cut installs only once replication boundary
        ``at_repl`` is crossed — how a campaign partitions the primary
        *mid-quorum*, deterministically."""
        a, b = list(side_a), list(side_b)
        pairs = [(x, y) for x in a for y in b if x != y]
        pairs += [(y, x) for x in a for y in b if x != y]
        return self._register_cuts(PARTITION, pairs, at_repl)

    def asym_partition(self, srcs: Iterable[int], dsts: Iterable[int],
                       at_repl: Optional[int] = None) -> "FaultPlan":
        """One-way cut: deliveries from ``srcs`` to ``dsts`` drop, the
        reverse direction stays up (asymmetric partition)."""
        pairs = [(s, d) for s in srcs for d in dsts if s != d]
        return self._register_cuts(ASYM_PARTITION, pairs, at_repl)

    def partial_partition(self, pairs: Iterable[Tuple[int, int]],
                          at_repl: Optional[int] = None) -> "FaultPlan":
        """Cut an exact list of directed ``(src, dst)`` links."""
        return self._register_cuts(PARTIAL_PARTITION, list(pairs), at_repl)

    def delay_link(self, src: int, dst: int, delay_ns: int) -> "FaultPlan":
        """Message-delay skew: every delivery ``src -> dst`` arrives
        ``delay_ns`` late (charged to the sender's clock)."""
        if delay_ns < 0:
            raise ValueError("delay must be >= 0")
        self._link_delays[(src, dst)] = delay_ns
        return self

    def heal_after_drops(self, count: int) -> "FaultPlan":
        """Every installed cut heals after ``count`` total dropped
        deliveries — the deterministic self-heal budget that lets
        seeded random plans emit partition schedules guaranteed to
        heal."""
        if count < 1:
            raise ValueError("heal budget needs count >= 1")
        self._drop_budget = count
        return self

    def heal(self, pairs: Optional[Iterable[Tuple[int, int]]] = None) -> None:
        """Remove cuts (all of them, or just ``pairs``); a later
        re-partition of the same pair fires a fresh fault event."""
        doomed = set(self._cuts) if pairs is None else set(pairs)
        healed = sorted(self._cuts & doomed)
        for pair in healed:
            self._cuts.discard(pair)
            self._partition_fired.discard(pair)
        if healed and self.clock is not None:
            sls_events.emit(self.clock.now(), sls_events.NET_HEAL,
                            pairs=len(healed))

    def is_cut(self, src: int, dst: int) -> bool:
        """Whether a delivery ``src -> dst`` would currently drop."""
        return (src, dst) in self._cuts

    def cut_schedule(self) -> List[Tuple[str, Optional[int],
                                         Tuple[Tuple[int, int], ...]]]:
        """The registered cut schedule (kind, arm boundary, pairs) —
        pure registration state, identical for identical seeds."""
        return list(self._partition_regs)

    @classmethod
    def random(cls, seed: int, io_count: int,
               boundaries: Optional[List[Tuple[str, str]]] = None,
               nodes: Optional[int] = None) -> "FaultPlan":
        """A seeded one-fault plan over a known schedule space.

        The same ``(seed, io_count, boundaries, nodes)`` always yields
        the same plan — the fixed-seed smoke tests in CI rely on it.
        With ``nodes`` (a cluster size), half the seeds draw a
        partition schedule instead: a seeded symmetric, asymmetric, or
        partial cut over node ids plus :data:`PRIMARY`, with a seeded
        self-heal drop budget so every drawn partition heals.
        """
        rng = random.Random(seed)
        plan = cls(name=f"random-{seed}", seed=seed)
        if nodes is not None and nodes >= 2 and rng.random() < 0.5:
            ids = [PRIMARY] + list(range(nodes))
            kind = (PARTITION, ASYM_PARTITION,
                    PARTIAL_PARTITION)[rng.randrange(3)]
            shuffled = rng.sample(ids, len(ids))
            split = 1 + rng.randrange(len(ids) - 1)
            side_a, side_b = shuffled[:split], shuffled[split:]
            if kind == PARTITION:
                plan.partition(side_a, side_b)
            elif kind == ASYM_PARTITION:
                plan.asym_partition(side_a, side_b)
            else:
                npairs = 1 + rng.randrange(len(ids))
                pairs = set()
                for _ in range(npairs):
                    src, dst = rng.sample(ids, 2)
                    pairs.add((src, dst))
                plan.partial_partition(sorted(pairs))
            if rng.random() < 0.5:
                src, dst = rng.sample(ids, 2)
                plan.delay_link(src, dst, (1 + rng.randrange(8)) * 1_000_000)
            plan.heal_after_drops(1 + rng.randrange(8))
            return plan
        kinds = [CRASH, TORN, BITFLIP, NOSPACE,
                 TRANSIENT, TRANSIENT, INTERMITTENT]
        if boundaries and rng.random() < 0.25:
            stage, edge = boundaries[rng.randrange(len(boundaries))]
            plan.crash_at_stage(stage, edge)
            return plan
        index = rng.randrange(max(io_count, 1))
        kind = kinds[rng.randrange(len(kinds))]
        if kind == TRANSIENT:
            plan.transient_at_io(index, times=1 + rng.randrange(3))
        elif kind == INTERMITTENT:
            plan.intermittent(p=0.05 + 0.15 * rng.random(), limit=4)
        else:
            plan._io_faults[index] = kind
        return plan

    def describe(self) -> str:
        """Human-readable registration summary (stable across runs).

        Transient counts report the *registered* fail budget, not the
        mutable remainder, so the description is identical before and
        after a run — the reproducibility tests compare exactly that.
        """
        io_parts = {idx: f"io{idx}:{kind}"
                    for idx, kind in self._io_faults.items()}
        for idx, times in self._transient_writes.items():
            io_parts[idx] = f"io{idx}:{TRANSIENT}(x{times})"
        parts = [io_parts[idx] for idx in sorted(io_parts)]
        parts += [f"read{idx}:{TRANSIENT}(x{times})"
                  for idx, times in sorted(self._transient_reads.items())]
        parts += [f"{stage}/{edge}:{kind}"
                  for (stage, edge), kind
                  in sorted(self._stage_faults.items())]
        if self._intermittent_p > 0.0:
            limit = ("" if self._intermittent_limit is None
                     else f",limit={self._intermittent_limit}")
            parts.append(f"{INTERMITTENT}(p={self._intermittent_p:.4f}"
                         f"{limit})")
        if self._link_flaps:
            parts.append(f"link:flap(x{self._link_flaps})")
        for cut_kind, at_repl, pairs in self._partition_regs:
            arms = "" if at_repl is None else f"@repl{at_repl}"
            links = ";".join(f"{s}>{d}" for s, d in pairs)
            parts.append(f"{cut_kind}{arms}{{{links}}}")
        for (src, dst), delay in sorted(self._link_delays.items()):
            parts.append(f"delay{{{src}>{dst}}}:+{delay}ns")
        if self._drop_budget is not None:
            parts.append(f"heal_after({self._drop_budget})")
        parts += [f"repl{idx}:{kind}"
                  for idx, kind in sorted(self._repl_faults.items())]
        parts += [f"fleet{idx}:{kind}"
                  for idx, kind in sorted(self._fleet_faults.items())]
        return ",".join(parts) or "observe"

    # -- hooks (called by the device array and the pipeline) ---------------

    def _fire(self, kind: str, stage: Optional[str] = None,
              edge: Optional[str] = None,
              offset: Optional[int] = None,
              op: Optional[str] = None,
              node: Optional[int] = None) -> FaultEvent:
        event = FaultEvent(kind, self.io_index, stage=stage, edge=edge,
                           offset=offset, op=op, node=node)
        self.events.append(event)
        if self.clock is not None:
            sls_events.emit(self.clock.now(), sls_events.FAULT_INJECTED,
                            fault=kind, io_index=self.io_index,
                            stage=stage, edge=edge, offset=offset,
                            op=op, node=node)
        return event

    def on_io(self, offset: int, payload: Any,
              sync: bool) -> Tuple[str, Any]:
        """Called by the device array before each write is queued.

        Returns ``(verb, payload)`` where verb is ``"ok"`` (queue the
        returned payload normally) or ``"torn"`` (force the returned
        truncated payload durable, then the array raises the crash).
        May raise :class:`InjectedCrash`,
        :class:`~repro.errors.NoSpace`, or — for the retryable kinds —
        :class:`~repro.errors.TransientDeviceError`.  Retryable
        failures do *not* advance the IO index: the command never
        reached the queue, so a retry re-hits the same index.
        """
        index = self.io_index
        left = self._transient_writes_left.get(index, 0)
        if left > 0:
            self._transient_writes_left[index] = left - 1
            self._fire(TRANSIENT, offset=offset, op="write")
            raise TransientDeviceError(
                f"injected transient write error at IO {index} "
                f"(offset {offset}, {left - 1} more)")
        rng = self._intermittent_rng
        if (rng is not None and self._intermittent_p > 0.0
                and (self._intermittent_limit is None
                     or self._intermittent_fired < self._intermittent_limit)
                and rng.random() < self._intermittent_p):
            self._intermittent_fired += 1
            self._fire(INTERMITTENT, offset=offset, op="write")
            raise TransientDeviceError(
                f"injected intermittent write error at IO {index} "
                f"(offset {offset})")
        kind = self._io_faults.get(index)
        if kind == CRASH:
            self._fire(CRASH, offset=offset)
            raise InjectedCrash(
                f"injected power failure at IO {index} (offset {offset})")
        if kind == NOSPACE:
            self._fire(NOSPACE, offset=offset)
            raise NoSpace(f"injected ENOSPC at IO {index}")
        # The write reaches the queue: it counts.
        self.io_index += 1
        self.io_log.append(offset)
        if kind == BITFLIP:
            self._fire(BITFLIP, offset=offset)
            return "ok", _flip_payload(payload, self.seed)
        if kind == TORN:
            self._fire(TORN, offset=offset)
            return "torn", _tear_payload(payload)
        return "ok", payload

    def on_read(self, offset: int) -> None:
        """Called by the device array before each read is served.

        Raises :class:`~repro.errors.TransientDeviceError` while the
        registration at the current read index has fails left; the
        read index only advances once the read actually serves.
        """
        index = self.read_index
        left = self._transient_reads_left.get(index, 0)
        if left > 0:
            self._transient_reads_left[index] = left - 1
            self._fire(TRANSIENT, offset=offset, op="read")
            raise TransientDeviceError(
                f"injected transient read error at read {index} "
                f"(offset {offset}, {left - 1} more)")
        self.read_index += 1

    def on_link(self) -> None:
        """Called by the replication link before each ship attempt."""
        if self._link_flaps_left > 0:
            self._link_flaps_left -= 1
            self._fire(LINKFLAP, op="link")
            raise LinkDown(
                f"injected link flap ({self._link_flaps_left} more)")

    def on_deliver(self, src: int, dst: int) -> int:
        """Called before a message crosses the ``src -> dst`` link
        (ship leg, ack leg, repair donor leg, lease ping).

        Raises :class:`~repro.errors.LinkDown` when the direction is
        cut — retryable, so the standard backoff/health machinery
        absorbs it — and otherwise returns the extra delay (ns) the
        caller must charge for message skew.
        """
        pair = (src, dst)
        if pair in self._cuts:
            self.deliveries.append((src, dst, "dropped"))
            self._drops += 1
            if pair not in self._partition_fired:
                self._partition_fired.add(pair)
                self._fire(self._cut_kind.get(pair, PARTITION), op="net",
                           node=dst if dst >= 0 else src)
            if (self._drop_budget is not None
                    and self._drops >= self._drop_budget):
                self.heal()
            raise LinkDown(f"partitioned: delivery {src}->{dst} dropped")
        self.deliveries.append((src, dst, "ok"))
        return self._link_delays.get(pair, 0)

    def on_repl(self, node: int, boundary: str) -> None:
        """Called by the cluster pump at each replication/quorum
        boundary of each node (ship, deliver, apply, ack, repair —
        plus ``epoch``/``lease``/``reconcile`` control-plane
        boundaries).

        Like :meth:`on_stage`, the boundary is recorded first, then a
        registered crash fires *at* it: work preceding the boundary is
        complete when the crash unwinds, work after it never happened.
        Cuts armed with ``at_repl`` install here, after the boundary
        records but before any registered crash — a partition and a
        crash at the same instant still partitions first.
        """
        self.repl_log.append((node, boundary))
        pending = self._pending_cuts.pop(len(self.repl_log) - 1, None)
        if pending is not None:
            for cut_kind, pairs in pending:
                self._install_cuts(cut_kind, pairs)
                if self.clock is not None:
                    sls_events.emit(self.clock.now(),
                                    sls_events.NET_PARTITION,
                                    cut=cut_kind, pairs=len(pairs),
                                    at_repl=len(self.repl_log) - 1)
        kind = self._repl_faults.get(len(self.repl_log) - 1)
        if kind == CRASH:
            self._fire(CRASH, op="repl", node=node, stage=boundary)
            raise InjectedCrash(
                f"injected primary power failure at replication "
                f"boundary {len(self.repl_log) - 1} "
                f"(node {node}, {boundary})")
        if kind == NODECRASH:
            self._fire(NODECRASH, op="repl", node=node, stage=boundary)
            raise InjectedNodeCrash(
                f"injected node {node} power failure at replication "
                f"boundary {len(self.repl_log) - 1} ({boundary})",
                node=node)

    def on_fleet(self, group: int, boundary: str) -> None:
        """Called by the fleet scheduler at each control-plane
        boundary (admission decision, EDF dispatch, backpressure
        widen).

        Like :meth:`on_stage`, the boundary is recorded first, then a
        registered crash fires *at* it: state changed before the
        boundary survives to the post-crash store, state after it
        never happened.
        """
        self.fleet_log.append((group, boundary))
        if self._fleet_faults.get(len(self.fleet_log) - 1) == CRASH:
            self._fire(CRASH, op="fleet", node=group, stage=boundary)
            raise InjectedCrash(
                f"injected power failure at fleet boundary "
                f"{len(self.fleet_log) - 1} (group {group}, {boundary})")

    def on_stage(self, stage: str, edge: str) -> None:
        """Called by the checkpoint pipeline at each stage boundary."""
        self.boundaries_seen.append((stage, edge))
        if self._stage_faults.get((stage, edge)) == CRASH:
            self._fire(CRASH, stage=stage, edge=edge)
            raise InjectedCrash(
                f"injected power failure {edge} stage {stage!r}")

    # -- audit -------------------------------------------------------------

    @property
    def fired(self) -> bool:
        """True once at least one registered fault fired."""
        return bool(self.events)

    def __repr__(self) -> str:
        return (f"FaultPlan({self.name or 'anon'}: {self.describe()}, "
                f"{self.io_index} IOs seen, {len(self.events)} fired)")


def _flip_payload(payload: Any, seed: int) -> Any:
    """One corrupted byte (real payloads) or a perturbed seed
    (synthetic payloads — their content is a function of the seed)."""
    if isinstance(payload, bytes):
        if not payload:
            return payload
        index = seed % len(payload)
        return (payload[:index] + bytes([payload[index] ^ 0x80]) +
                payload[index + 1:])
    tag, syn_seed, length = payload
    return (tag, syn_seed ^ 0x1, length)


def _tear_payload(payload: Any) -> Any:
    """The prefix of the write that reached media before power died."""
    if isinstance(payload, bytes):
        return payload[:max(1, len(payload) // 2)]
    tag, syn_seed, length = payload
    return (tag, syn_seed, max(1, length // 2))
