"""Deterministic fault injection for crash-schedule exploration.

Aurora's core claim is that a whole application survives a power
failure at *any* instant (§5, §7).  A :class:`FaultPlan` turns "any
instant" into an enumerable schedule: every device write gets a
monotonically increasing IO index, and the checkpoint pipeline reports
every stage boundary, so a test can say "crash exactly at IO 17" or
"crash right before the seal stage" and get the same instant on every
run.  The plan is threaded through :class:`~repro.hw.nvme.StripedArray`
(IO faults) and :class:`~repro.core.pipeline.CheckpointPipeline`
(stage-boundary faults); :meth:`~repro.machine.Machine.set_fault_plan`
installs it and a machine crash clears it.

Four fault kinds:

* ``crash`` — power fails the instant before the write is issued (or
  at the stage boundary): :class:`InjectedCrash` unwinds to the test
  harness, which calls ``machine.crash()`` to tear in-flight IO.
* ``torn`` — the first half of the write reaches media, then power
  fails: the truncated payload is forced durable and
  :class:`InjectedCrash` is raised.
* ``bitflip`` — one byte of the payload is silently corrupted; the
  write completes normally (the scrubber's prey).
* ``nospace`` — the device reports ``ENOSPC`` for this command.

Two *retryable* kinds model transient trouble — the device (or link)
fails but a retry may succeed, which is what the
:mod:`~repro.core.resilience` policy layer exists for:

* ``transient`` — the command at a given IO (or read) index fails
  ``times`` times with :class:`~repro.errors.TransientDeviceError`,
  then succeeds.  The index does *not* advance on a transient failure
  (the command never reached the queue), so a retry deterministically
  re-hits the same registration until it is exhausted.
* ``intermittent`` — every write attempt independently fails with
  probability ``p`` drawn from the plan's seeded RNG (optionally
  capped at ``limit`` total failures); identical seeds replay the
  identical failure sequence.

``flaky_link`` does the same for the replication link: the next
``times`` ship attempts raise :class:`~repro.errors.LinkDown`.

Everything a plan does is a pure function of its registrations, so a
seeded plan (:meth:`FaultPlan.random`) reproduces exactly.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..errors import LinkDown, NoSpace, ReproError, TransientDeviceError
from . import events as sls_events

#: Fault kinds.
CRASH = "crash"
TORN = "torn"
BITFLIP = "bitflip"
NOSPACE = "nospace"
TRANSIENT = "transient"
INTERMITTENT = "intermittent"
LINKFLAP = "linkflap"
NODECRASH = "nodecrash"

#: Stage-boundary edges.
BEFORE = "before"
AFTER = "after"


class InjectedFault(ReproError):
    """Base class for failures raised by a :class:`FaultPlan`."""


class InjectedCrash(InjectedFault):
    """A scheduled power failure fired.

    The simulated machine is *not* crashed yet when this unwinds; the
    harness models the power loss by calling ``machine.crash()``,
    which tears away every write still in the device queues.
    """


class InjectedNodeCrash(InjectedFault):
    """A scheduled power failure of one *cluster node* fired.

    Unlike :class:`InjectedCrash` (the whole primary dies and the
    harness takes over), a node crash is survivable: the cluster pump
    catches it, downs that node, and keeps replicating to the rest —
    the quorum, not any single node, is the availability unit.
    """

    def __init__(self, message: str = "", node: int = 0):
        super().__init__(message)
        self.node = node


class FaultEvent:
    """One fault that fired (the plan's audit trail)."""

    __slots__ = ("kind", "io_index", "stage", "edge", "offset", "op",
                 "node")

    def __init__(self, kind: str, io_index: int,
                 stage: Optional[str] = None, edge: Optional[str] = None,
                 offset: Optional[int] = None, op: Optional[str] = None,
                 node: Optional[int] = None):
        self.kind = kind
        #: Number of device writes fully submitted when the fault fired.
        self.io_index = io_index
        self.stage = stage
        self.edge = edge
        self.offset = offset
        #: Which operation the fault hit: "write" (default), "read",
        #: "link", or "repl".
        self.op = op
        #: Cluster node a replication-boundary fault targeted.
        self.node = node

    def __repr__(self) -> str:
        where = (f"stage={self.stage}/{self.edge}" if self.stage
                 else f"io={self.io_index}")
        return f"FaultEvent({self.kind}, {where})"


class FaultPlan:
    """A reproducible schedule of injected faults.

    With no registrations the plan is a pure observer: it numbers
    every device write (``io_log``) and records every pipeline stage
    boundary (``boundaries_seen``), which is how the crash-schedule
    explorer discovers the schedule space before sweeping it.
    """

    def __init__(self, name: str = "", seed: int = 0):
        self.name = name
        self.seed = seed
        #: Installed by :meth:`~repro.machine.Machine.set_fault_plan`
        #: so fired faults land in the structured event log at the
        #: sim-instant they fired.
        self.clock = None
        #: Next IO index == number of writes fully submitted so far.
        self.io_index = 0
        self.io_log: List[int] = []
        #: Next read index == number of reads fully served so far.
        self.read_index = 0
        self.boundaries_seen: List[Tuple[str, str]] = []
        self.events: List[FaultEvent] = []
        self._io_faults: Dict[int, str] = {}
        self._stage_faults: Dict[Tuple[str, str], str] = {}
        #: Registered transient counts (immutable — what ``describe``
        #: reports) and mutable remaining counters consumed as fires.
        self._transient_writes: Dict[int, int] = {}
        self._transient_writes_left: Dict[int, int] = {}
        self._transient_reads: Dict[int, int] = {}
        self._transient_reads_left: Dict[int, int] = {}
        self._intermittent_p = 0.0
        self._intermittent_limit: Optional[int] = None
        self._intermittent_fired = 0
        self._intermittent_rng: Optional[random.Random] = None
        self._link_flaps = 0
        self._link_flaps_left = 0
        #: Every replication/quorum boundary seen, in order:
        #: ``(node_id, boundary)`` tuples — the cluster crash-schedule
        #: explorer's enumerable instants.
        self.repl_log: List[Tuple[int, str]] = []
        self._repl_faults: Dict[int, str] = {}
        #: Every fleet-scheduler boundary seen, in order:
        #: ``(group_id, boundary)`` tuples — ``admit`` (admission
        #: decision), ``dispatch`` (EDF dispatch) and ``widen``
        #: (backpressure widen).  The fleet crash-schedule explorer's
        #: enumerable instants.
        self.fleet_log: List[Tuple[int, str]] = []
        self._fleet_faults: Dict[int, str] = {}

    # -- registration ------------------------------------------------------

    def crash_at_io(self, index: int) -> "FaultPlan":
        """Power fails the instant write ``index`` would be issued."""
        self._io_faults[index] = CRASH
        return self

    def torn_at_io(self, index: int) -> "FaultPlan":
        """Write ``index`` is torn: half lands, then power fails."""
        self._io_faults[index] = TORN
        return self

    def bitflip_at_io(self, index: int) -> "FaultPlan":
        """Write ``index`` lands with one byte silently flipped."""
        self._io_faults[index] = BITFLIP
        return self

    def nospace_at_io(self, index: int) -> "FaultPlan":
        """Write ``index`` fails with ENOSPC."""
        self._io_faults[index] = NOSPACE
        return self

    def crash_at_stage(self, stage: str, edge: str = BEFORE) -> "FaultPlan":
        """Power fails at the named pipeline stage boundary."""
        if edge not in (BEFORE, AFTER):
            raise ValueError(f"bad stage edge {edge!r}")
        self._stage_faults[(stage, edge)] = CRASH
        return self

    def transient_at_io(self, index: int, times: int = 1) -> "FaultPlan":
        """Write ``index`` fails retryably ``times`` times, then lands."""
        if times < 1:
            raise ValueError("transient fault needs times >= 1")
        self._transient_writes[index] = times
        self._transient_writes_left[index] = times
        return self

    def transient_at_read(self, index: int, times: int = 1) -> "FaultPlan":
        """Read ``index`` fails retryably ``times`` times, then serves."""
        if times < 1:
            raise ValueError("transient fault needs times >= 1")
        self._transient_reads[index] = times
        self._transient_reads_left[index] = times
        return self

    def intermittent(self, p: float,
                     limit: Optional[int] = None) -> "FaultPlan":
        """Each write attempt fails retryably with probability ``p``.

        The draws come from a dedicated RNG seeded from the plan's
        seed, so an identical seed replays the identical sequence of
        failures.  ``limit`` caps the total number of fires.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"bad intermittent probability {p!r}")
        self._intermittent_p = p
        self._intermittent_limit = limit
        self._intermittent_rng = random.Random(self.seed ^ 0xA5A5)
        return self

    def flaky_link(self, times: int = 1) -> "FaultPlan":
        """The next ``times`` replication ship attempts find the link
        down (:class:`~repro.errors.LinkDown`)."""
        if times < 1:
            raise ValueError("link flap needs times >= 1")
        self._link_flaps = times
        self._link_flaps_left = times
        return self

    def crash_at_repl(self, index: int) -> "FaultPlan":
        """The *primary* loses power the instant replication boundary
        ``index`` (an offset into ``repl_log``) is crossed."""
        self._repl_faults[index] = CRASH
        return self

    def node_crash_at_repl(self, index: int) -> "FaultPlan":
        """The *node* at replication boundary ``index`` loses power
        there (:class:`InjectedNodeCrash`; the cluster pump downs the
        node and carries on)."""
        self._repl_faults[index] = NODECRASH
        return self

    def crash_at_fleet(self, index: int) -> "FaultPlan":
        """Power fails the instant fleet-scheduler boundary ``index``
        (an offset into ``fleet_log``) is crossed."""
        self._fleet_faults[index] = CRASH
        return self

    @classmethod
    def random(cls, seed: int, io_count: int,
               boundaries: Optional[List[Tuple[str, str]]] = None
               ) -> "FaultPlan":
        """A seeded one-fault plan over a known schedule space.

        The same ``(seed, io_count, boundaries)`` always yields the
        same plan — the fixed-seed smoke tests in CI rely on it.
        """
        rng = random.Random(seed)
        plan = cls(name=f"random-{seed}", seed=seed)
        kinds = [CRASH, TORN, BITFLIP, NOSPACE,
                 TRANSIENT, TRANSIENT, INTERMITTENT]
        if boundaries and rng.random() < 0.25:
            stage, edge = boundaries[rng.randrange(len(boundaries))]
            plan.crash_at_stage(stage, edge)
            return plan
        index = rng.randrange(max(io_count, 1))
        kind = kinds[rng.randrange(len(kinds))]
        if kind == TRANSIENT:
            plan.transient_at_io(index, times=1 + rng.randrange(3))
        elif kind == INTERMITTENT:
            plan.intermittent(p=0.05 + 0.15 * rng.random(), limit=4)
        else:
            plan._io_faults[index] = kind
        return plan

    def describe(self) -> str:
        """Human-readable registration summary (stable across runs).

        Transient counts report the *registered* fail budget, not the
        mutable remainder, so the description is identical before and
        after a run — the reproducibility tests compare exactly that.
        """
        io_parts = {idx: f"io{idx}:{kind}"
                    for idx, kind in self._io_faults.items()}
        for idx, times in self._transient_writes.items():
            io_parts[idx] = f"io{idx}:{TRANSIENT}(x{times})"
        parts = [io_parts[idx] for idx in sorted(io_parts)]
        parts += [f"read{idx}:{TRANSIENT}(x{times})"
                  for idx, times in sorted(self._transient_reads.items())]
        parts += [f"{stage}/{edge}:{kind}"
                  for (stage, edge), kind
                  in sorted(self._stage_faults.items())]
        if self._intermittent_p > 0.0:
            limit = ("" if self._intermittent_limit is None
                     else f",limit={self._intermittent_limit}")
            parts.append(f"{INTERMITTENT}(p={self._intermittent_p:.4f}"
                         f"{limit})")
        if self._link_flaps:
            parts.append(f"link:flap(x{self._link_flaps})")
        parts += [f"repl{idx}:{kind}"
                  for idx, kind in sorted(self._repl_faults.items())]
        parts += [f"fleet{idx}:{kind}"
                  for idx, kind in sorted(self._fleet_faults.items())]
        return ",".join(parts) or "observe"

    # -- hooks (called by the device array and the pipeline) ---------------

    def _fire(self, kind: str, stage: Optional[str] = None,
              edge: Optional[str] = None,
              offset: Optional[int] = None,
              op: Optional[str] = None,
              node: Optional[int] = None) -> FaultEvent:
        event = FaultEvent(kind, self.io_index, stage=stage, edge=edge,
                           offset=offset, op=op, node=node)
        self.events.append(event)
        if self.clock is not None:
            sls_events.emit(self.clock.now(), sls_events.FAULT_INJECTED,
                            fault=kind, io_index=self.io_index,
                            stage=stage, edge=edge, offset=offset,
                            op=op, node=node)
        return event

    def on_io(self, offset: int, payload, sync: bool):
        """Called by the device array before each write is queued.

        Returns ``(verb, payload)`` where verb is ``"ok"`` (queue the
        returned payload normally) or ``"torn"`` (force the returned
        truncated payload durable, then the array raises the crash).
        May raise :class:`InjectedCrash`,
        :class:`~repro.errors.NoSpace`, or — for the retryable kinds —
        :class:`~repro.errors.TransientDeviceError`.  Retryable
        failures do *not* advance the IO index: the command never
        reached the queue, so a retry re-hits the same index.
        """
        index = self.io_index
        left = self._transient_writes_left.get(index, 0)
        if left > 0:
            self._transient_writes_left[index] = left - 1
            self._fire(TRANSIENT, offset=offset, op="write")
            raise TransientDeviceError(
                f"injected transient write error at IO {index} "
                f"(offset {offset}, {left - 1} more)")
        rng = self._intermittent_rng
        if (rng is not None and self._intermittent_p > 0.0
                and (self._intermittent_limit is None
                     or self._intermittent_fired < self._intermittent_limit)
                and rng.random() < self._intermittent_p):
            self._intermittent_fired += 1
            self._fire(INTERMITTENT, offset=offset, op="write")
            raise TransientDeviceError(
                f"injected intermittent write error at IO {index} "
                f"(offset {offset})")
        kind = self._io_faults.get(index)
        if kind == CRASH:
            self._fire(CRASH, offset=offset)
            raise InjectedCrash(
                f"injected power failure at IO {index} (offset {offset})")
        if kind == NOSPACE:
            self._fire(NOSPACE, offset=offset)
            raise NoSpace(f"injected ENOSPC at IO {index}")
        # The write reaches the queue: it counts.
        self.io_index += 1
        self.io_log.append(offset)
        if kind == BITFLIP:
            self._fire(BITFLIP, offset=offset)
            return "ok", _flip_payload(payload, self.seed)
        if kind == TORN:
            self._fire(TORN, offset=offset)
            return "torn", _tear_payload(payload)
        return "ok", payload

    def on_read(self, offset: int) -> None:
        """Called by the device array before each read is served.

        Raises :class:`~repro.errors.TransientDeviceError` while the
        registration at the current read index has fails left; the
        read index only advances once the read actually serves.
        """
        index = self.read_index
        left = self._transient_reads_left.get(index, 0)
        if left > 0:
            self._transient_reads_left[index] = left - 1
            self._fire(TRANSIENT, offset=offset, op="read")
            raise TransientDeviceError(
                f"injected transient read error at read {index} "
                f"(offset {offset}, {left - 1} more)")
        self.read_index += 1

    def on_link(self) -> None:
        """Called by the replication link before each ship attempt."""
        if self._link_flaps_left > 0:
            self._link_flaps_left -= 1
            self._fire(LINKFLAP, op="link")
            raise LinkDown(
                f"injected link flap ({self._link_flaps_left} more)")

    def on_repl(self, node: int, boundary: str) -> None:
        """Called by the cluster pump at each replication/quorum
        boundary of each node (ship, deliver, apply, ack, repair).

        Like :meth:`on_stage`, the boundary is recorded first, then a
        registered crash fires *at* it: work preceding the boundary is
        complete when the crash unwinds, work after it never happened.
        """
        self.repl_log.append((node, boundary))
        kind = self._repl_faults.get(len(self.repl_log) - 1)
        if kind == CRASH:
            self._fire(CRASH, op="repl", node=node, stage=boundary)
            raise InjectedCrash(
                f"injected primary power failure at replication "
                f"boundary {len(self.repl_log) - 1} "
                f"(node {node}, {boundary})")
        if kind == NODECRASH:
            self._fire(NODECRASH, op="repl", node=node, stage=boundary)
            raise InjectedNodeCrash(
                f"injected node {node} power failure at replication "
                f"boundary {len(self.repl_log) - 1} ({boundary})",
                node=node)

    def on_fleet(self, group: int, boundary: str) -> None:
        """Called by the fleet scheduler at each control-plane
        boundary (admission decision, EDF dispatch, backpressure
        widen).

        Like :meth:`on_stage`, the boundary is recorded first, then a
        registered crash fires *at* it: state changed before the
        boundary survives to the post-crash store, state after it
        never happened.
        """
        self.fleet_log.append((group, boundary))
        if self._fleet_faults.get(len(self.fleet_log) - 1) == CRASH:
            self._fire(CRASH, op="fleet", node=group, stage=boundary)
            raise InjectedCrash(
                f"injected power failure at fleet boundary "
                f"{len(self.fleet_log) - 1} (group {group}, {boundary})")

    def on_stage(self, stage: str, edge: str) -> None:
        """Called by the checkpoint pipeline at each stage boundary."""
        self.boundaries_seen.append((stage, edge))
        if self._stage_faults.get((stage, edge)) == CRASH:
            self._fire(CRASH, stage=stage, edge=edge)
            raise InjectedCrash(
                f"injected power failure {edge} stage {stage!r}")

    # -- audit -------------------------------------------------------------

    @property
    def fired(self) -> bool:
        """True once at least one registered fault fired."""
        return bool(self.events)

    def __repr__(self) -> str:
        return (f"FaultPlan({self.name or 'anon'}: {self.describe()}, "
                f"{self.io_index} IOs seen, {len(self.events)} fired)")


def _flip_payload(payload, seed: int):
    """One corrupted byte (real payloads) or a perturbed seed
    (synthetic payloads — their content is a function of the seed)."""
    if isinstance(payload, bytes):
        if not payload:
            return payload
        index = seed % len(payload)
        return (payload[:index] + bytes([payload[index] ^ 0x80]) +
                payload[index + 1:])
    tag, syn_seed, length = payload
    return (tag, syn_seed ^ 0x1, length)


def _tear_payload(payload):
    """The prefix of the write that reached media before power died."""
    if isinstance(payload, bytes):
        return payload[:max(1, len(payload) // 2)]
    tag, syn_seed, length = payload
    return (tag, syn_seed, max(1, length // 2))
