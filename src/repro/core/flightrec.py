"""The crash-persistent flight recorder.

Aurora's thesis is that *all* state belongs in the single level store
— including the observability state that explains a crash.  The flight
recorder snapshots the volatile telemetry surfaces — the structured
event ring, recent span summaries, retry/degraded-mode counters and
per-tenant SLO samples — into one bounded, fixed-size record that the
object store places next to every catalog write and anchors from the
superblock it flips.  Durability therefore rides the commit protocol
itself: a snapshot is meaningful exactly when its superblock is, and a
crash at any instant leaves the black box of the *previous* durable
commit intact.

Two invariants keep instrumented runs timing-identical and crash
schedules stable:

* **Zero simulated cost** — the snapshot lands via the device's
  ``place_extent`` path: no clock advance, no bandwidth, no fault-plan
  IO index, no span.  Crash schedules enumerate exactly the same
  points with or without the recorder.
* **Fixed size** — the encoded record is always exactly
  :data:`FLIGHTREC_BYTES` (content is shed oldest-first, then padded),
  so allocator cursors and superblock record lengths — and with them
  every downstream IO cost — are identical whether telemetry is
  enabled or disabled.

Reconstruction (:func:`blackbox`, surfaced as ``sls blackbox``) reads
the raw superblock slots of an unmounted or crashed store, follows the
newest valid anchor, and rebuilds the timeline leading up to the
crash.  The snapshot is taken *before* its own superblock flip, so the
flip's success is itself evidence: a recovered snapshot's pending
commit is synthesized into the timeline as the last durable commit.
An optional still-live event ring (it survives a simulated power
failure in-process) is merged in as the post-snapshot tail — the
events, fault injections included, that never reached durability.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..errors import CorruptRecord, ReproError, StoreError
from . import events as events_mod
from . import telemetry

#: Exact on-media size of every flight-recorder record.
FLIGHTREC_BYTES = 64 * 1024
#: Content caps (shed further, oldest first, if the encode overflows).
MAX_EVENTS = 256
MAX_SPANS = 128
MAX_SLO_TAIL = 32
FORMAT_VERSION = 1

#: Synthetic kind closing a recovered timeline: the commit the
#: snapshot rode to disk, proven durable by its anchoring superblock.
COMMIT_DURABLE = "flightrec.commit_durable"


def _clean(value: Any) -> Any:
    """Coerce a value into the strict serde vocabulary (floats and
    exotic objects become their string form)."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, (bytes, bytearray)):
        return bytes(value)
    if isinstance(value, (list, tuple)):
        return [_clean(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _clean(item) for key, item in value.items()}
    return str(value)


def _event_row(event: Any) -> Dict[str, Any]:
    return {
        "time_ns": event.time_ns,
        "kind": event.kind,
        "trace_id": event.trace_id,
        "fields": _clean(event.fields),
    }


def _span_row(span: Any) -> Dict[str, Any]:
    return {
        "name": span.name,
        "start_ns": span.start_ns,
        "end_ns": span.end_ns,
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "labels": _clean(span.labels),
    }


def _slo_rows(tracker: Any) -> List[Dict[str, Any]]:
    """Per-tenant SLO state: commits, sample summaries, the recent
    RPO-lag tail, and degraded/burn state."""
    if tracker is None:
        return []
    rows: List[Dict[str, Any]] = []
    names = getattr(tracker, "tenant_names", {})
    for gid in sorted(tracker.groups):
        state = tracker.groups[gid]
        rows.append({
            "group": gid,
            "tenant": names.get(gid),
            "commits": state.commits,
            "rpo_lag": _clean(state.rpo_lag.summary()),
            "rpo_tail": list(state.rpo_lag.values[-MAX_SLO_TAIL:]),
            "stop": _clean(state.stop.summary()),
            "quorum_lag": _clean(state.quorum_lag.summary()),
            "degraded_total_ns": state.degraded_total_ns,
            "degraded_open": state.degraded_since is not None,
            "rpo_burn_milli": tracker.burn_rate_milli(gid, "rpo"),
            "quorum_burn_milli": tracker.burn_rate_milli(gid, "quorum"),
        })
    return rows


def _counter_rows(registry: Any) -> List[Dict[str, Any]]:
    """The retry / degraded-mode / SLO-violation history counters."""
    rows: List[Dict[str, Any]] = []
    for prefix in ("sls.resilience", "sls.slo", "sls.events.degraded",
                   "sls.events.fault"):
        for counter in registry.counters_matching(prefix):
            rows.append({"name": counter.name,
                         "labels": _clean(counter.labels),
                         "value": counter.value})
    return rows


def build_snapshot(store: Any, pending: Optional[Dict[str, Any]] = None,
                   generation: int = 0) -> Dict[str, Any]:
    """The snapshot body (unpadded) as of the store's clock now."""
    registry = telemetry.registry()
    log = events_mod.log()
    return {
        "version": FORMAT_VERSION,
        "generation": generation,
        "time_ns": store.clock.now(),
        "pending": _clean(pending) if pending else None,
        "telemetry_enabled": bool(registry.enabled),
        "events": [_event_row(e) for e in list(log)[-MAX_EVENTS:]],
        "events_retained": len(log),
        "events_dropped": registry.value("sls.telemetry.events_dropped"),
        "traces_dropped": registry.value("sls.telemetry.traces_dropped"),
        "spans": [_span_row(s)
                  for s in list(registry.spans)[-MAX_SPANS:]],
        "counters": _counter_rows(registry),
        "slo": _slo_rows(getattr(store, "_slo_tracker", None)),
    }


def encode_snapshot(store: Any, pending: Optional[Dict[str, Any]] = None,
                    generation: int = 0) -> bytes:
    """Encode a snapshot at exactly :data:`FLIGHTREC_BYTES`.

    Over-budget content is shed oldest-first (events, then spans, then
    SLO rows, then counters); the remainder is zero-padded.  The serde
    layer's fixed 8-byte length prefixes make the padding exact.
    """
    from ..objstore import records

    body = build_snapshot(store, pending=pending, generation=generation)
    while True:
        body["pad"] = b""
        blob = records.encode(records.REC_FLIGHTREC, body)
        delta = FLIGHTREC_BYTES - len(blob)
        if delta >= 0:
            break
        for key in ("events", "spans", "slo", "counters"):
            rows = body[key]
            if rows:
                body[key] = rows[len(rows) // 2 + 1:]
                break
        else:
            raise StoreError(
                f"flight recorder snapshot cannot fit {FLIGHTREC_BYTES} "
                f"bytes even when empty ({len(blob)} bytes)")
    body["pad"] = b"\x00" * delta
    payload = records.encode(records.REC_FLIGHTREC, body)
    assert len(payload) == FLIGHTREC_BYTES
    return payload


def decode_snapshot(payload: bytes) -> Dict[str, Any]:
    """The snapshot body back out of one on-media record."""
    from ..objstore import records

    body = records.decode(payload, records.REC_FLIGHTREC)
    if not isinstance(body, dict) or body.get("version") != FORMAT_VERSION:
        raise CorruptRecord("flight recorder record has no valid body")
    body.pop("pad", None)
    return body


# -- reconstruction ---------------------------------------------------------------------


class BlackBox:
    """One recovered flight recorder: the persisted timeline (which
    ends at the last durable commit) plus, when a surviving in-process
    event ring is merged in, the volatile post-snapshot tail."""

    def __init__(self, snapshot: Dict[str, Any], generation: int):
        self.snapshot = snapshot
        self.generation = generation
        self.events: List[Dict[str, Any]] = list(snapshot.get("events") or [])
        pending = snapshot.get("pending")
        if isinstance(pending, dict):
            marker = {"time_ns": snapshot.get("time_ns", 0),
                      "kind": COMMIT_DURABLE, "trace_id": None,
                      "fields": dict(pending), "synthetic": True}
            self.events.append(marker)
        self.volatile: List[Dict[str, Any]] = []

    @property
    def last_durable(self) -> Optional[Dict[str, Any]]:
        """The commit the persisted timeline ends at: the synthesized
        pending-commit marker, else the newest persisted commit event."""
        for row in reversed(self.events):
            if row["kind"] in (COMMIT_DURABLE, events_mod.CKPT_COMMIT):
                return row
        return None

    def attach_volatile(self, log: Any) -> None:
        """Merge the surviving in-process event ring: everything newer
        than the snapshot instant is the post-crash tail (the events —
        injected faults included — that never reached durability)."""
        snap_ns = self.snapshot.get("time_ns", 0)
        seen = {(row["time_ns"], row["kind"], str(row.get("fields")))
                for row in self.events}
        for event in log:
            if event.time_ns < snap_ns:
                continue
            row = _event_row(event)
            key = (row["time_ns"], row["kind"], str(row["fields"]))
            if row["time_ns"] == snap_ns and key in seen:
                continue
            row["post_snapshot"] = True
            self.volatile.append(row)

    def timeline(self) -> List[Dict[str, Any]]:
        """Persisted events (ending at the last durable commit)
        followed by the volatile tail."""
        return self.events + self.volatile

    def __repr__(self) -> str:
        return (f"BlackBox(gen={self.generation}, "
                f"{len(self.events)} persisted, "
                f"{len(self.volatile)} volatile)")


def recover_snapshot(store: Any) -> Optional[Tuple[Dict[str, Any], int]]:
    """Read the newest recoverable snapshot from a store's raw
    superblock slots (no mount required).  Falls back across
    generations when the newest anchor is unreadable."""
    from ..objstore import recovery as recovery_mod
    from ..objstore.store import SUPERBLOCK_SLOTS

    candidates = []
    for slot in SUPERBLOCK_SLOTS:
        superblock = recovery_mod._read_superblock(store, slot)
        if superblock is not None:
            candidates.append(superblock)
    candidates.sort(key=lambda sb: -sb.get("generation", 0))
    for superblock in candidates:
        anchor = superblock.get("flightrec")
        if not anchor:
            continue
        try:
            payload = store.device.read(anchor[0])
            if not isinstance(payload, (bytes, bytearray)):
                continue
            snapshot = decode_snapshot(bytes(payload))
        except (CorruptRecord, StoreError, ReproError):
            continue
        return snapshot, superblock.get("generation", 0)
    return None


def blackbox(store: Any, volatile: Any = None) -> Optional[BlackBox]:
    """Reconstruct the black box of a (possibly crashed, possibly
    unmountable) store; ``volatile`` optionally merges a surviving
    event ring as the post-snapshot tail."""
    found = recover_snapshot(store)
    if found is None:
        return None
    snapshot, generation = found
    box = BlackBox(snapshot, generation)
    if volatile is not None:
        box.attach_volatile(volatile)
    return box
