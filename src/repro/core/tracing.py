"""Causal operation traces over the telemetry span layer.

A :class:`Trace` groups every span one logical operation — a
checkpoint, a restore, a GC pass, a scrub — produced anywhere in the
stack (orchestrator → pipeline stages → serializer → store transaction
→ journal → NVMe model) into one tree: each span carries
``trace_id``/``span_id``/``parent_id``, parented to the innermost span
open at the instant it was recorded.  Attribution is ambient — the
active trace is installed on the telemetry registry, so the NVMe model
needs no knowledge of checkpoints to have its IOs attributed to one.

Everything here is sim-clock-free: creating, attributing and exporting
traces never advances the simulated clock, so traced and untraced runs
are timing-identical (asserted by test), and identical runs produce
identical trace trees (trace/span ids are deterministic counters that
reset with :func:`repro.core.telemetry.reset`).

Consumers:

* :func:`chrome_trace` — Chrome ``trace_event`` JSON (``sls trace
  --chrome out.json``), loadable in Perfetto / ``chrome://tracing``;
  :func:`validate_chrome_trace` checks a document against the schema
  in ``schemas/chrome_trace.schema.json`` without external deps.
* :func:`prometheus_text` / :func:`metrics_json` — the registry's
  counters and histograms in Prometheus text exposition or plain JSON
  (``sls metrics --format prom|json``).
* :func:`critical_path` — per-span self times (duration minus child
  durations), the decomposition ``sls slo`` aggregates per stage.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from . import telemetry
from .telemetry import SpanRecord, TelemetryRegistry

#: Trace kinds (the operations that open a trace).
CHECKPOINT = "checkpoint"
RESTORE = "restore"
GC = "gc"
SCRUB = "scrub"


class Trace:
    """One operation's span tree (the alloc/push/pop/attach protocol
    the telemetry registry drives)."""

    __slots__ = ("trace_id", "kind", "labels", "spans", "complete",
                 "error", "_stack", "_parents", "_next_span", "root_id")

    def __init__(self, trace_id: int, kind: str,
                 labels: Dict[str, object]):
        self.trace_id = trace_id
        self.kind = kind
        self.labels = labels
        self.spans: List[SpanRecord] = []
        #: True once the operation reached its durable/terminal point
        #: (a checkpoint's commit finalized, a restore returned).  A
        #: crash mid-operation leaves it False — the "incomplete trace"
        #: marker the crash tests assert on.
        self.complete = False
        self.error: Optional[str] = None
        self._stack: List[int] = []
        self._parents: Dict[int, Optional[int]] = {}
        self._next_span = 0
        self.root_id: Optional[int] = None

    # -- the registry-facing protocol ---------------------------------------------

    def alloc(self) -> int:
        self._next_span += 1
        return self._next_span

    def push(self) -> int:
        """Open a span: allocate its id and make it the parent of
        everything recorded until the matching :meth:`pop`."""
        span_id = self.alloc()
        self._parents[span_id] = self._ambient_parent(span_id)
        if self.root_id is None:
            self.root_id = span_id
        self._stack.append(span_id)
        return span_id

    def pop(self, span_id: int) -> None:
        if self._stack and self._stack[-1] == span_id:
            self._stack.pop()
        elif span_id in self._stack:
            self._stack.remove(span_id)

    def _ambient_parent(self, span_id: int) -> Optional[int]:
        if self._stack:
            return self._stack[-1]
        # Nothing open: parent to the root (async completions land
        # here), unless this span *is* the root.
        return self.root_id if self.root_id != span_id else None

    def attach(self, span: SpanRecord,
               span_id: Optional[int] = None) -> None:
        """Adopt a completed span into this trace's tree."""
        if span_id is None:
            span_id = self.alloc()
            parent = self._ambient_parent(span_id)
        else:
            parent = self._parents.pop(span_id, self.root_id)
        span.trace_id = self.trace_id
        span.span_id = span_id
        span.parent_id = parent
        self.spans.append(span)

    # -- queries -----------------------------------------------------------------

    @property
    def root(self) -> Optional[SpanRecord]:
        for span in self.spans:
            if span.span_id == self.root_id:
                return span
        return None

    def children_of(self, span_id: Optional[int]) -> List[SpanRecord]:
        return [s for s in self.spans if s.parent_id == span_id]

    def duration_ns(self) -> int:
        root = self.root
        return root.duration_ns if root is not None else 0

    def __repr__(self) -> str:
        state = "complete" if self.complete else "incomplete"
        return (f"Trace(#{self.trace_id} {self.kind}{self.labels or ''} "
                f"{len(self.spans)} spans, {state})")


class Tracer:
    """Process-wide trace factory and bounded store of finished traces."""

    #: Finished traces retained (a 200-checkpoint benchmark run plus
    #: its restores/GC/scrub passes fits comfortably).
    TRACE_CAPACITY = 1024

    def __init__(self, capacity: int = TRACE_CAPACITY):
        self.capacity = capacity
        self.finished: List[Trace] = []
        self.dropped = 0
        self._next_trace = 0

    def start(self, kind: str, **labels: object) -> Trace:
        self._next_trace += 1
        return Trace(self._next_trace, kind, labels)

    def finish(self, trace: Trace) -> None:
        if len(self.finished) >= self.capacity:
            self.finished.pop(0)
            self.dropped += 1
            telemetry.registry().counter("sls.telemetry.traces_dropped").add(1)
        self.finished.append(trace)

    def traces(self, kind: Optional[str] = None,
               **labels: object) -> List[Trace]:
        """Finished traces filtered by kind and label subset."""
        out = []
        for trace in self.finished:
            if kind is not None and trace.kind != kind:
                continue
            if all(trace.labels.get(k) == v for k, v in labels.items()):
                out.append(trace)
        return out

    def reset(self) -> None:
        self.finished.clear()
        self.dropped = 0
        self._next_trace = 0


_TRACER = Tracer()
telemetry.on_reset(_TRACER.reset)


def tracer() -> Tracer:
    """The process-wide tracer."""
    return _TRACER


def current() -> Optional[Trace]:
    """The trace spans are currently being attributed to, if any."""
    active = telemetry.registry().active_trace
    return active if isinstance(active, Trace) else None


class _TraceScope:
    """Context manager opening one operation trace (or a no-op when
    telemetry is disabled)."""

    def __init__(self, clock: Any, kind: str,
                 labels: Dict[str, object]) -> None:
        self.clock = clock
        self.kind = kind
        self.labels = labels
        self.trace: Optional[Trace] = None
        self._prev: Optional[object] = None
        self._root_span: Any = None

    def __enter__(self) -> Optional[Trace]:
        registry = telemetry.registry()
        if not registry.enabled:
            return None
        self.trace = _TRACER.start(self.kind, **self.labels)
        self._prev = registry.active_trace
        registry.active_trace = self.trace
        self._root_span = registry.span(self.clock, self.kind,
                                        **self.labels)
        self._root_span.__enter__()
        return self.trace

    def __exit__(self, exc_type: Any, exc: Any,
                 tb: Any) -> None:
        if self.trace is None:
            return
        registry = telemetry.registry()
        if exc_type is not None:
            self.trace.error = f"{exc_type.__name__}: {exc}"
        self._root_span.__exit__(exc_type, exc, tb)
        registry.active_trace = self._prev
        _TRACER.finish(self.trace)


def trace(clock: Any, kind: str, **labels: object) -> _TraceScope:
    """``with tracing.trace(clock, "checkpoint", group=3) as t: ...``

    Opens a new trace with a root span named ``kind`` spanning the
    with-block; yields the :class:`Trace` (or None when telemetry is
    disabled).  The trace is stored on exit even when incomplete.
    """
    return _TraceScope(clock, kind, labels)


class _UseScope:
    """Temporarily re-enter a trace (async commit completions record
    their spans into the checkpoint that issued them)."""

    def __init__(self, trace: Optional[Trace]) -> None:
        self.trace = trace
        self._prev: Optional[object] = None

    def __enter__(self) -> Optional[Trace]:
        registry = telemetry.registry()
        self._prev = registry.active_trace
        if self.trace is not None and registry.enabled:
            registry.active_trace = self.trace
        return self.trace

    def __exit__(self, exc_type: Any, exc: Any,
                 tb: Any) -> None:
        telemetry.registry().active_trace = self._prev


def use(trace_obj: Optional[Trace]) -> _UseScope:
    """``with tracing.use(txn.trace): ...`` — attribute spans recorded
    in the block to a previously opened trace (no-op on None)."""
    return _UseScope(trace_obj)


# -- distributed trace propagation -----------------------------------------------------


class TraceContext:
    """A serializable handle on one trace for crossing machine
    boundaries.

    Replication stamps a context onto each shipped manifest; the
    receiving leg resolves it back to the originating :class:`Trace`
    (every simulated node shares this process's tracer) and records
    its ship/deliver/apply/ack spans into it under :func:`use`, so one
    checkpoint trace spans primary → replicas → quorum ack.  The wire
    form is a plain str-keyed dict of ints and strings — exactly what
    :mod:`repro.serde` can carry inside a shipped stream.
    """

    __slots__ = ("trace_id", "span_id", "group", "tenant", "_trace")

    def __init__(self, trace_id: int, span_id: Optional[int] = None,
                 group: Optional[int] = None,
                 tenant: Optional[str] = None,
                 trace: Optional[Trace] = None) -> None:
        self.trace_id = trace_id
        #: Root span of the originating trace — the remote legs'
        #: causal parent.
        self.span_id = span_id
        self.group = group
        self.tenant = tenant
        self._trace = trace

    @classmethod
    def capture(cls, trace_obj: Optional[Trace] = None,
                tenant: Optional[str] = None) -> Optional["TraceContext"]:
        """Context for ``trace_obj`` (default: the active trace);
        None when there is nothing to propagate."""
        if trace_obj is None:
            trace_obj = current()
        if trace_obj is None:
            return None
        group = trace_obj.labels.get("group")
        label_tenant = trace_obj.labels.get("tenant")
        if tenant is None and isinstance(label_tenant, str):
            tenant = label_tenant
        return cls(trace_obj.trace_id, trace_obj.root_id,
                   group if isinstance(group, int) else None,
                   tenant, trace=trace_obj)

    def to_wire(self) -> Dict[str, Any]:
        """The serializable wire form (survives :mod:`repro.serde`)."""
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "group": self.group, "tenant": self.tenant}

    @classmethod
    def from_wire(cls, payload: Any) -> Optional["TraceContext"]:
        """Rebuild from :meth:`to_wire` output (None on junk input)."""
        if not isinstance(payload, dict):
            return None
        trace_id = payload.get("trace_id")
        if not isinstance(trace_id, int) or isinstance(trace_id, bool):
            return None
        span_id = payload.get("span_id")
        group = payload.get("group")
        tenant = payload.get("tenant")
        return cls(trace_id,
                   span_id if isinstance(span_id, int) else None,
                   group if isinstance(group, int) else None,
                   tenant if isinstance(tenant, str) else None)

    def resolve(self) -> Optional[Trace]:
        """The trace this context names, if the process still holds it
        — the captured reference, the active trace, or the tracer's
        bounded finished ring (evicted traces resolve to None)."""
        if self._trace is not None:
            return self._trace
        active = current()
        if active is not None and active.trace_id == self.trace_id:
            self._trace = active
            return active
        for trace_obj in reversed(_TRACER.finished):
            if trace_obj.trace_id == self.trace_id:
                self._trace = trace_obj
                return trace_obj
        return None

    def __repr__(self) -> str:
        return (f"TraceContext(trace={self.trace_id}, "
                f"group={self.group}, tenant={self.tenant})")


# -- the critical-path analyzer -------------------------------------------------------


def self_times(trace_obj: Trace) -> Dict[int, int]:
    """Per-span self time: duration minus direct children's durations
    (clamped at zero — overlap-stage children can outlive a parent that
    returned after submission)."""
    child_total: Dict[Optional[int], int] = {}
    for span in trace_obj.spans:
        child_total[span.parent_id] = (child_total.get(span.parent_id, 0) +
                                       span.duration_ns)
    out: Dict[int, int] = {}
    for span in trace_obj.spans:
        if span.span_id is None:
            continue
        out[span.span_id] = max(
            0, span.duration_ns - child_total.get(span.span_id, 0))
    return out


def critical_path(trace_obj: Trace) -> List[Dict[str, Any]]:
    """Stage-level wall-time decomposition of one operation trace.

    Rows for each direct child of the root (the pipeline stages of a
    checkpoint trace), carrying the stage's total duration and its
    *self* time — what remains after its own children (serializer
    object spans, store flush, device IOs) are peeled off — plus an
    ``(untraced)`` row for root time no child covers.
    """
    selfs = self_times(trace_obj)
    rows = []
    covered = 0
    for span in trace_obj.children_of(trace_obj.root_id):
        covered += span.duration_ns
        rows.append({
            "name": span.name,
            "duration_ns": span.duration_ns,
            "self_ns": selfs.get(span.span_id, span.duration_ns),
        })
    root = trace_obj.root
    if root is not None:
        gap = max(0, root.duration_ns - covered)
        rows.append({"name": "(untraced)", "duration_ns": gap,
                     "self_ns": gap})
    return rows


def child_coverage(trace_obj: Trace) -> float:
    """Fraction of the root span's duration covered by its direct
    children (1.0 for a zero-duration root)."""
    root = trace_obj.root
    if root is None or root.duration_ns == 0:
        return 1.0
    covered = sum(s.duration_ns
                  for s in trace_obj.children_of(trace_obj.root_id))
    return min(1.0, covered / root.duration_ns)


# -- Chrome trace_event export ---------------------------------------------------------

#: Replica-node spans get per-node ``tid`` lanes in a reserved band
#: far above plain trace ids: lane = BASE + trace*STRIDE + node.
NODE_LANE_BASE = 1 << 20
NODE_LANE_STRIDE = 256


def chrome_trace(traces: Iterable[Trace]) -> Dict[str, Any]:
    """A Chrome ``trace_event`` document (Perfetto-loadable).

    Complete events (``ph: "X"``) with microsecond timestamps; one
    ``tid`` lane per trace so overlapping operations (a checkpoint's
    async flush running under the next checkpoint) stay readable, with
    the process row keyed by consistency group.  Spans carrying a
    ``node`` label — the replication legs recorded on replica nodes —
    fan out into one extra lane per node under the same trace, so a
    quorum commit reads as parallel per-node swimlanes.
    """
    events: List[Dict[str, Any]] = []
    for trace_obj in traces:
        group = trace_obj.labels.get("group")
        pid = group if isinstance(group, int) else 0
        for span in trace_obj.spans:
            args: Dict[str, Any] = {str(k): v
                                    for k, v in span.labels.items()}
            args["trace_id"] = trace_obj.trace_id
            args["span_id"] = span.span_id
            args["parent_id"] = span.parent_id
            args["complete"] = trace_obj.complete
            node = span.labels.get("node")
            if isinstance(node, int) and not isinstance(node, bool):
                tid = (NODE_LANE_BASE
                       + trace_obj.trace_id * NODE_LANE_STRIDE + node)
            else:
                tid = trace_obj.trace_id
            events.append({
                "name": span.name,
                "cat": trace_obj.kind,
                "ph": "X",
                "ts": span.start_ns / 1000.0,
                "dur": span.duration_ns / 1000.0,
                "pid": pid,
                "tid": tid,
                "args": args,
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(doc: Any) -> None:
    """Validate a Chrome trace document (raises ValueError).

    Mirrors ``schemas/chrome_trace.schema.json``; implemented by hand
    so validation needs no third-party jsonschema package.
    """
    if not isinstance(doc, dict):
        raise ValueError("trace document must be a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be an array")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: not an object")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"{where}: missing/empty name")
        if event.get("ph") != "X":
            raise ValueError(f"{where}: ph must be 'X'")
        for key in ("ts", "dur"):
            value = event.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool) \
                    or value < 0:
                raise ValueError(f"{where}: {key} must be a number >= 0")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError(f"{where}: {key} must be an integer")
        args = event.get("args")
        if not isinstance(args, dict):
            raise ValueError(f"{where}: args must be an object")
        if not isinstance(args.get("trace_id"), int):
            raise ValueError(f"{where}: args.trace_id must be an integer")
        if not isinstance(args.get("span_id"), int):
            raise ValueError(f"{where}: args.span_id must be an integer")
        parent = args.get("parent_id")
        if parent is not None and not isinstance(parent, int):
            raise ValueError(f"{where}: args.parent_id must be int or null")
        if not isinstance(args.get("complete"), bool):
            raise ValueError(f"{where}: args.complete must be a boolean")


# -- metrics export --------------------------------------------------------------------


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_labels(labels: Dict[str, object],
                 extra: Optional[Dict[str, object]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(f'{_prom_name(str(k))}="{v}"'
                    for k, v in sorted(merged.items(), key=lambda i: i[0]))
    return "{" + body + "}"


def prometheus_text(registry: Optional[TelemetryRegistry] = None) -> str:
    """Prometheus text exposition of every counter and histogram.

    Histograms surface as ``<name>_count`` / ``<name>_sum_ns`` /
    ``<name>_max_ns`` plus quantile gauges (log2-bucket upper bounds),
    which is what the sim-clock-native layer can state exactly.
    """
    registry = registry or telemetry.registry()
    lines: List[str] = []
    counters = sorted(registry.counters_matching(""),
                      key=lambda c: (c.name, sorted(
                          (str(k), str(v)) for k, v in c.labels.items())))
    seen_types = set()
    for counter in counters:
        name = _prom_name(counter.name)
        if name not in seen_types:
            lines.append(f"# TYPE {name} counter")
            seen_types.add(name)
        lines.append(f"{name}{_prom_labels(counter.labels)} "
                     f"{counter.value}")
    histograms = sorted(registry.histograms_matching(""),
                        key=lambda h: (h.name, sorted(
                            (str(k), str(v)) for k, v in h.labels.items())))
    for histogram in histograms:
        name = _prom_name(histogram.name)
        if f"{name}_summary" not in seen_types:
            lines.append(f"# TYPE {name}_count counter")
            seen_types.add(f"{name}_summary")
        label_str = _prom_labels(histogram.labels)
        lines.append(f"{name}_count{label_str} {histogram.count}")
        lines.append(f"{name}_sum_ns{label_str} {histogram.total}")
        lines.append(f"{name}_max_ns{label_str} {histogram.max}")
        for quantile in (50, 95, 99):
            qlabels = _prom_labels(histogram.labels,
                                   {"quantile": f"0.{quantile}"})
            lines.append(f"{name}_ns{qlabels} "
                         f"{histogram.percentile(quantile)}")
    return "\n".join(lines) + "\n"


def metrics_json(registry: Optional[TelemetryRegistry] = None
                 ) -> Dict[str, Any]:
    """Every counter and histogram as one JSON-ready dict."""
    registry = registry or telemetry.registry()

    def key(labels: Dict[str, object]) -> List[Tuple[str, str]]:
        return sorted((str(k), str(v)) for k, v in labels.items())

    counters = [{
        "name": c.name,
        "labels": {str(k): v for k, v in c.labels.items()},
        "value": c.value,
    } for c in sorted(registry.counters_matching(""),
                      key=lambda c: (c.name, key(c.labels)))]
    histograms = [{
        "name": h.name,
        "labels": {str(k): v for k, v in h.labels.items()},
        "count": h.count,
        "sum_ns": h.total,
        "min_ns": h.min,
        "max_ns": h.max,
        "mean_ns": h.mean,
        "p50_ns": h.percentile(50),
        "p95_ns": h.percentile(95),
        "p99_ns": h.percentile(99),
    } for h in sorted(registry.histograms_matching(""),
                      key=lambda h: (h.name, key(h.labels)))]
    return {"counters": counters, "histograms": histograms}


def _validate_main(argv: List[str]) -> int:
    """``python -m repro.core.tracing trace.json`` — CI schema check."""
    if len(argv) != 1:
        print("usage: python -m repro.core.tracing <chrome-trace.json>")
        return 2
    with open(argv[0], "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    try:
        validate_chrome_trace(doc)
    except ValueError as exc:
        print(f"invalid chrome trace: {exc}")
        return 1
    print(f"{argv[0]}: valid chrome trace "
          f"({len(doc['traceEvents'])} events)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(_validate_main(sys.argv[1:]))
