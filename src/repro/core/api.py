"""The Aurora application API (Table 3).

Custom applications trade transparency for control: they trigger their
own checkpoints, exclude scratch memory, checkpoint single regions
atomically without quiescing the whole application, journal
synchronously, and suppress external synchrony per descriptor.  This
is the API the customized RocksDB uses (§9.6) — its WAL becomes
``sls_journal`` and its LSM tree becomes ``sls_memckpt`` + full
checkpoints.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import InvalidArgument, NotAttached, SLSError
from ..objstore.journal import Journal
from ..units import PAGE_SIZE, pages_of
from . import costs
from .orchestrator import CheckpointResult, Orchestrator


class AuroraAPI:
    """Per-process binding of the sls_* calls."""

    def __init__(self, sls: Orchestrator, proc):
        self.sls = sls
        self.proc = proc

    @property
    def group(self):
        """The calling process's consistency group (or NotAttached)."""
        group = self.proc.sls_group
        if group is None:
            raise NotAttached(f"{self.proc} is not attached to Aurora")
        return group

    # -- whole-application checkpoints -------------------------------------------------

    def sls_checkpoint(self, name: str = "", full: bool = False,
                       sync: bool = False) -> CheckpointResult:
        """Manually checkpoint the calling process's group."""
        return self.sls.checkpoint(self.group, name=name, full=full,
                                   sync=sync)

    def sls_barrier(self) -> int:
        """Block until the newest checkpoint is durable on the array."""
        return self.sls.barrier(self.group)

    def sls_restore(self, ckpt_id: Optional[int] = None):
        """Roll the application back to a checkpoint.

        The current incarnation is torn down and a fresh one is
        restored; the restored processes receive SIGSLSRESTORE so the
        application can fix up runtime state (§3).
        """
        group = self.group
        group_id = group.group_id
        if group.timer is not None:
            group.timer.cancel()
            group.timer = None
        for proc in list(group.processes):
            group.remove_process(proc)
            proc.exit(0)
        self.sls.groups.pop(group_id, None)
        return self.sls.restore(group_id, ckpt_id=ckpt_id)

    # -- fine-grained persistence ----------------------------------------------------------

    def sls_memckpt(self, addr: int, nbytes: int,
                    sync: bool = False) -> CheckpointResult:
        """Atomically checkpoint one mapped region (§7).

        Shadows just that region's VM object and flushes it
        asynchronously as a *partial* checkpoint; at restore the store
        composes it on top of the preceding full checkpoint.  No
        quiesce, no OS-state walk — the Table 5 "Atomic" column.
        """
        group = self.group
        kernel = self.sls.kernel
        clock = kernel.clock
        t_start = clock.now()
        space = self.proc.vmspace
        entry = space.entry_at(addr)
        end_page = (addr + nbytes - 1) // PAGE_SIZE
        if end_page >= entry.end_page:
            raise InvalidArgument("region spans multiple map entries")

        from ..objstore.oid import CLASS_MEMORY
        from .group import ObjectTrack
        from .shadowing import merged_chain_pages, object_record

        top = entry.vmobject
        if top.sls_oid is None:
            oid = group.oid_for(top, self.sls.store, CLASS_MEMORY)
            top.sls_oid = oid
            track = ObjectTrack(oid, top)
            group.tracks[oid] = track
        else:
            track = group.tracks[top.sls_oid]
        if track.frozen is not None and not track.flushed \
                and group.flush_in_progress:
            # Previous flush of this region still in flight: wait for
            # this group's pending commit only (not the whole loop).
            self.sls._await_flush(group)
        self.sls.shadow.collapse_completed(group)

        clock.advance(costs.CKPT_ATOMIC_BASE)
        if track.new:
            dirty = merged_chain_pages(top)
        else:
            dirty = dict(top.pages)
        record = object_record(top)

        shadow = top.shadow(name=f"atomic:{top.name}")
        shadow.sls_oid = track.oid
        downgraded = self.sls.shadow._repoint_entries(group, top, shadow)
        clock.advance(len(dirty) * costs.COW_MARK_PER_PAGE)
        kernel.cpus.tlb_shootdown(
            min(len(self.proc.threads), len(kernel.cpus)),
            max(downgraded, 1))
        top.frozen = True
        track.frozen = top
        track.active = shadow
        track.flushed = False
        track.new = False

        txn = self.sls.store.begin_checkpoint(
            group.group_id, name="memckpt", parent=group.last_ckpt_id,
            partial=True)
        txn.put_object(track.oid, "vmobject", record)
        txn.put_pages(track.oid, dirty)

        result = CheckpointResult(txn.info, "atomic")
        result.stop_ns = clock.now() - t_start
        result.pages_flushed = len(dirty)
        result.bytes_staged = txn.staged_bytes()
        group.flush_in_progress = True

        def on_complete(info):
            group.flush_in_progress = False
            group.last_complete_id = info.ckpt_id
            track.flushed = True

        info = self.sls.store.commit(txn, sync=sync,
                                     on_complete=on_complete)
        group.last_ckpt_id = info.ckpt_id
        return result

    # -- journals ----------------------------------------------------------------------------

    def sls_journal_open(self, capacity: int) -> Journal:
        """Preallocate a non-COW journal region (the custom-WAL path)."""
        return self.sls.store.journal_create(capacity)

    def sls_journal(self, journal: Journal, data: bytes) -> int:
        """Synchronous non-temporal flush outside the checkpoint
        (Table 3).  28 µs for one 4 KiB page (§7)."""
        return journal.append(data)

    def sls_journal_truncate(self, journal: Journal) -> None:
        """Reset a journal (epoch bump; one sync header write)."""
        journal.truncate()

    # -- knobs -----------------------------------------------------------------------------------

    def sls_mctl(self, addr: int, nbytes: int, exclude: bool = True) -> int:
        """Include/exclude memory regions from checkpoints (§3).

        Returns the number of map entries affected."""
        space = self.proc.vmspace
        start_page = addr // PAGE_SIZE
        end_page = start_page + pages_of(nbytes)
        affected = 0
        for entry in space.map:
            if entry.start_page >= start_page and entry.end_page <= end_page:
                entry.sls_excluded = exclude
                affected += 1
        if affected == 0:
            raise InvalidArgument("range covers no complete map entry")
        return affected

    def sls_fdctl(self, fd: int, nosync: bool = True) -> None:
        """Suppress (or re-enable) external synchrony on one
        descriptor — e.g. read-only client connections (§3)."""
        file = self.proc.fdtable.get(fd)
        file.sls_nosync = nosync
        file.mark_dirty()
