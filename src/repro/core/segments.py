"""Checkpoint-delta sharding: segments and protection groups.

Cloud-Aurora durability (SNIPPETS.md lecture notes; Verbitski et al.)
is organized around *segments*: the replicated stream is cut into
fixed-size pieces, each piece is the unit of failure and — more
importantly — the unit of *repair*.  Losing a 10 GB segment costs ~10
seconds to re-replicate from the surviving copies, so the mean time to
repair, not the mean time to failure, bounds durability: the window in
which a second (and third) fault can line up on the same data is the
repair window.

This module is the pure-data half of the cluster layer
(:mod:`repro.core.cluster` owns the nodes and the quorum protocol):

* :class:`SegmentMeta` — one segment's index, extent and CRC.
* :class:`ShardManifest` — a checkpoint delta's complete segment map,
  checksummed so any reassembly is self-verifying.
* :func:`shard_stream` / :func:`assemble` — cut a migration stream
  into segments / glue verified segments back together.
* :class:`ProtectionGroupLayout` — the segment→protection-group
  assignment; a protection group is the set of segments whose copies
  live and die together, the bookkeeping unit repair reports MTTR
  against.

The simulated streams are kilobytes, not gigabytes, so the default
segment size is scaled down to keep several segments per checkpoint —
the *topology* (many segments, parallel repair) is what the tests
exercise, not the absolute sizes.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Tuple

from ..errors import SegmentCorrupt
from ..units import KiB

#: Scaled-down stand-in for Aurora's 10 GB segment.
DEFAULT_SEGMENT_BYTES = 4 * KiB

#: Protection groups per consistency group (Aurora: enough PGs to
#: cover the volume; here a small fixed fan-out).
DEFAULT_PROTECTION_GROUPS = 4


def _crc(payload: bytes) -> int:
    return zlib.crc32(payload) & 0xFFFFFFFF


class SegmentMeta:
    """One segment of a sharded checkpoint stream."""

    __slots__ = ("index", "offset", "length", "crc")

    def __init__(self, index: int, offset: int, length: int, crc: int):
        self.index = index
        self.offset = offset
        self.length = length
        self.crc = crc

    def verify(self, payload: bytes) -> None:
        """Checksum + length check; raises
        :class:`~repro.errors.SegmentCorrupt` on mismatch."""
        if len(payload) != self.length:
            raise SegmentCorrupt(
                f"segment {self.index}: {len(payload)} bytes on the "
                f"wire, manifest says {self.length}")
        if _crc(payload) != self.crc:
            raise SegmentCorrupt(
                f"segment {self.index}: CRC mismatch "
                f"({_crc(payload):#010x} != {self.crc:#010x})")

    def __repr__(self) -> str:
        return (f"SegmentMeta(#{self.index} @{self.offset}"
                f"+{self.length} crc={self.crc:#010x})")


class ShardManifest:
    """The complete segment map of one replicated checkpoint delta.

    Canonical per checkpoint: every node receives (and repair
    reconstructs) the *same* segmentation of the same stream, so a
    segment index names identical bytes cluster-wide and any complete
    copy can donate any segment.
    """

    __slots__ = ("group_id", "ckpt_id", "total_bytes", "segment_bytes",
                 "segments", "trace_ctx", "epoch")

    def __init__(self, group_id: int, ckpt_id: int, total_bytes: int,
                 segment_bytes: int, segments: List[SegmentMeta],
                 epoch: int = 0):
        self.group_id = group_id
        self.ckpt_id = ckpt_id
        self.total_bytes = total_bytes
        self.segment_bytes = segment_bytes
        self.segments = segments
        #: Distributed trace context (a ``tracing.TraceContext`` or
        #: ``None``): the checkpoint trace this delta's replication
        #: belongs to, stamped by the primary and carried on the wire
        #: so replica-side spans land in the originating trace.
        self.trace_ctx = None
        #: Cluster membership epoch the shipping primary held when it
        #: put this delta on the wire; replicas fence any manifest
        #: whose epoch trails their durably promised epoch.
        self.epoch = epoch

    def __len__(self) -> int:
        return len(self.segments)

    def __repr__(self) -> str:
        return (f"ShardManifest(group={self.group_id} "
                f"ckpt={self.ckpt_id}: {len(self.segments)} segments, "
                f"{self.total_bytes} bytes)")


def shard_stream(group_id: int, ckpt_id: int, stream: bytes,
                 segment_bytes: int = DEFAULT_SEGMENT_BYTES
                 ) -> Tuple[ShardManifest, List[bytes]]:
    """Cut a migration stream into fixed-size segments.

    Returns ``(manifest, payloads)``; the manifest's segment order is
    the payload list's order.  The final segment carries the tail and
    may be short.
    """
    if segment_bytes < 1:
        raise ValueError(f"bad segment size {segment_bytes}")
    payloads: List[bytes] = []
    metas: List[SegmentMeta] = []
    offset = 0
    index = 0
    # A zero-length stream still ships one (empty) segment so the
    # manifest is never vacuous.
    while offset < len(stream) or index == 0:
        piece = stream[offset:offset + segment_bytes]
        metas.append(SegmentMeta(index, offset, len(piece), _crc(piece)))
        payloads.append(piece)
        offset += len(piece)
        index += 1
        if not piece:
            break
    return (ShardManifest(group_id, ckpt_id, len(stream), segment_bytes,
                          metas), payloads)


def assemble(manifest: ShardManifest,
             payloads: Dict[int, bytes]) -> bytes:
    """Glue verified segments back into the original stream.

    ``payloads`` maps segment index → bytes (sourced from any mix of
    donors).  Every segment is completeness- and checksum-verified
    against the manifest; any gap or corruption raises
    :class:`~repro.errors.SegmentCorrupt` — a partially-assembled
    stream must never reach a replica's store.
    """
    parts: List[bytes] = []
    for meta in manifest.segments:
        payload = payloads.get(meta.index)
        if payload is None:
            raise SegmentCorrupt(
                f"segment {meta.index} of checkpoint "
                f"{manifest.ckpt_id} missing from every donor")
        meta.verify(payload)
        parts.append(payload)
    stream = b"".join(parts)
    if len(stream) != manifest.total_bytes:
        raise SegmentCorrupt(
            f"assembled {len(stream)} bytes, manifest says "
            f"{manifest.total_bytes}")
    return stream


class ProtectionGroupLayout:
    """Static segment→protection-group assignment.

    A protection group is the durability bookkeeping unit: its member
    segments' copies share fate under quorum math, and repair MTTR is
    tracked per segment but reported per PG.  Assignment is round-robin
    by segment index, so it is stable across checkpoints and across
    nodes without coordination.
    """

    def __init__(self, npgs: int = DEFAULT_PROTECTION_GROUPS):
        if npgs < 1:
            raise ValueError(f"bad protection group count {npgs}")
        self.npgs = npgs

    def pg_of(self, segment_index: int) -> int:
        return segment_index % self.npgs

    def members(self, manifest: ShardManifest, pg: int) -> List[SegmentMeta]:
        """The manifest's segments assigned to protection group ``pg``."""
        return [meta for meta in manifest.segments
                if self.pg_of(meta.index) == pg]

    def __repr__(self) -> str:
        return f"ProtectionGroupLayout({self.npgs} PGs)"


# --- anti-entropy digest tree ----------------------------------------------
#
# The merkle-style structure the heal-time reconciliation exchange
# compares: segment CRCs (already carried by every manifest) roll up
# into one digest per protection group, PG digests roll up into one
# root per checkpoint, checkpoint roots into one root per node.  Two
# nodes agree on a subtree iff the digests match, so the exchange
# descends only into mismatched subtrees and repair is fed exactly the
# segments that actually differ — bytes on the wire scale with the
# divergence, not the history.

def pg_digest(layout: ProtectionGroupLayout, manifest: ShardManifest,
              pg: int) -> int:
    """One protection group's digest: CRC over its member segments'
    ``(index, length, crc)`` triples in index order."""
    acc = b"".join(b"%d:%d:%d;" % (meta.index, meta.length, meta.crc)
                   for meta in layout.members(manifest, pg))
    return _crc(acc)


def manifest_digests(layout: ProtectionGroupLayout,
                     manifest: ShardManifest) -> Dict[int, int]:
    """Per-PG digests of one checkpoint's manifest."""
    return {pg: pg_digest(layout, manifest, pg)
            for pg in range(layout.npgs)}


class DigestTree:
    """One node's digest tree over its applied checkpoint manifests.

    Built from ``{primary_ckpt_id: ShardManifest}``; :meth:`diff`
    against a canonical tree returns, per divergent or missing
    checkpoint, exactly the segment indexes whose bytes differ.
    """

    def __init__(self, layout: ProtectionGroupLayout,
                 manifests: Dict[int, ShardManifest]):
        self.layout = layout
        #: ckpt -> segment index -> (length, crc) leaf digests.
        self.leaves: Dict[int, Dict[int, Tuple[int, int]]] = {}
        #: ckpt -> pg -> digest.
        self.pgs: Dict[int, Dict[int, int]] = {}
        #: ckpt -> checkpoint root digest.
        self.roots: Dict[int, int] = {}
        for ckpt, manifest in manifests.items():
            self.leaves[ckpt] = {meta.index: (meta.length, meta.crc)
                                 for meta in manifest.segments}
            digests = manifest_digests(layout, manifest)
            self.pgs[ckpt] = digests
            self.roots[ckpt] = _crc(b"".join(
                b"%d:%d;" % (pg, digests[pg]) for pg in sorted(digests)))
        #: Whole-node root digest over checkpoint roots in id order.
        self.root = _crc(b"".join(
            b"%d:%d;" % (ckpt, self.roots[ckpt])
            for ckpt in sorted(self.roots)))

    def diff(self, canonical: "DigestTree") -> Dict[int, List[int]]:
        """Segments this node must fetch to match ``canonical``.

        Returns ``{ckpt: [segment indexes]}`` covering checkpoints the
        node is missing entirely (every canonical segment listed) and
        checkpoints whose digests diverge (only the differing member
        segments listed, found by descending root -> PG -> leaf).
        Checkpoints this node holds beyond the canonical tree are the
        fencing layer's business, not the diff's.
        """
        needed: Dict[int, List[int]] = {}
        for ckpt, root in canonical.roots.items():
            if ckpt not in self.roots:
                needed[ckpt] = sorted(canonical.leaves[ckpt])
                continue
            if self.roots[ckpt] == root:
                continue
            divergent: List[int] = []
            for pg, digest in canonical.pgs[ckpt].items():
                if self.pgs[ckpt].get(pg) == digest:
                    continue
                for index, leaf in canonical.leaves[ckpt].items():
                    if self.layout.pg_of(index) != pg:
                        continue
                    if self.leaves[ckpt].get(index) != leaf:
                        divergent.append(index)
            if divergent:
                needed[ckpt] = sorted(divergent)
        return needed

    def __repr__(self) -> str:
        return (f"DigestTree({len(self.roots)} ckpts, "
                f"root={self.root:#010x})")
