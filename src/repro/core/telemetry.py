"""Unified SLS telemetry: spans, counters, latency histograms.

Every layer of the single level store — orchestrator, shadow engine,
serializers, object store, journals, the Aurora FS, the NVMe model —
reports into one process-wide :class:`TelemetryRegistry`.  Metrics are
*sim-clock-native*: spans and histograms record integer simulated
nanoseconds and recording never advances the clock, so instrumented
and uninstrumented runs are timing-identical.

Three primitives:

* :class:`Counter` — a monotonic (or settable) integer, keyed by name
  plus a label set (``group=3``, ``device="nvd0"``, ...).
* :class:`Histogram` — a log2-bucketed latency distribution with exact
  count/total/min/max, cheap enough for per-IO observation.
* spans — ``registry.record_span(name, start, end, **labels)`` keeps a
  bounded trace ring and feeds a histogram of the same name, which is
  how per-stage checkpoint timings become queryable after the fact
  (``sls stat``).  Evictions from the full ring are counted in
  ``sls.telemetry.spans_dropped``.

Spans are *causal*: every span carries ``trace_id``/``span_id``/
``parent_id`` slots.  When an operation trace is active (see
:mod:`.tracing`), the registry attributes each recorded span to it —
nested ``registry.span(...)`` context managers produce a proper parent
tree, and post-hoc ``record_span`` calls parent to the innermost open
span.  The registry itself stays tracing-agnostic: the active trace is
any object with the small ``alloc/push/pop/attach`` protocol, supplied
by :func:`repro.core.tracing.trace`.

``set_enabled(False)`` turns span/trace recording off entirely (the
ring, histograms fed by spans, traces and the event log all go quiet;
counters stay live — subsystems use them for bookkeeping).  Recording
never advances the simulated clock either way, so instrumented and
uninstrumented runs are timing-identical — asserted by test.

:class:`StatsView` is the compatibility shim: a dict-shaped view over
registry counters so existing readers of ``group.stats["checkpoints"]``
et al. keep working while the data lives in the registry.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

#: Canonical label encoding: sorted (key, value) tuples.
LabelKey = Tuple[Tuple[str, object], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted(labels.items()))


class Counter:
    """A named integer metric; supports add and (for maxima) set."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, object]):
        self.name = name
        self.labels = labels
        self.value = 0

    def add(self, delta: int = 1) -> int:
        self.value += delta
        return self.value

    def set(self, value: int) -> int:
        self.value = value
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name}{self.labels or ''}={self.value})"


class Histogram:
    """Log2-bucketed distribution of integer nanosecond samples."""

    __slots__ = ("name", "labels", "count", "total", "min", "max",
                 "buckets")

    def __init__(self, name: str, labels: Dict[str, object]):
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max = 0
        #: bucket index (sample.bit_length()) -> sample count.
        self.buckets: Dict[int, int] = {}

    def observe(self, value: int) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = int(value).bit_length()
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> int:
        """Upper bound of the bucket holding the p-th percentile."""
        if not self.count:
            return 0
        target = max(1, int(self.count * p / 100.0 + 0.5))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= target:
                return (1 << index) - 1 if index else 0
        return self.max

    def __repr__(self) -> str:
        return (f"Histogram({self.name}{self.labels or ''}: n={self.count}, "
                f"mean={self.mean:.0f}ns, max={self.max}ns)")


class SpanRecord:
    """One completed span on the simulated clock.

    ``trace_id``/``span_id``/``parent_id`` are None for spans recorded
    outside any operation trace; inside one they form the causal tree
    the Chrome exporter and the critical-path analyzer consume.
    """

    __slots__ = ("name", "labels", "start_ns", "end_ns",
                 "trace_id", "span_id", "parent_id")

    def __init__(self, name: str, labels: Dict[str, object],
                 start_ns: int, end_ns: int):
        self.name = name
        self.labels = labels
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.trace_id: Optional[int] = None
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def __repr__(self) -> str:
        return (f"Span({self.name}{self.labels or ''} "
                f"[{self.start_ns}, {self.end_ns}))")


class _SpanContext:
    """Context manager produced by :meth:`TelemetryRegistry.span`.

    While the with-block is open the span sits on the active trace's
    stack, so spans recorded inside become its children.
    """

    __slots__ = ("registry", "clock", "name", "labels", "start_ns",
                 "span_id")

    def __init__(self, registry: "TelemetryRegistry", clock, name: str,
                 labels: Dict[str, object]):
        self.registry = registry
        self.clock = clock
        self.name = name
        self.labels = labels
        self.start_ns: Optional[int] = None
        self.span_id: Optional[int] = None

    def __enter__(self) -> "_SpanContext":
        self.start_ns = self.clock.now()
        trace = self.registry.active_trace
        if trace is not None:
            self.span_id = trace.push()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        trace = self.registry.active_trace
        if trace is not None and self.span_id is not None:
            trace.pop(self.span_id)
        self.registry.record_span(self.name, self.start_ns,
                                  self.clock.now(),
                                  span_id=self.span_id, **self.labels)


class TelemetryRegistry:
    """Process-wide home of all counters, histograms and spans."""

    #: Bounded span trace: enough for a benchmark run's recent history
    #: without growing across thousands of simulated checkpoints.
    SPAN_CAPACITY = 8192

    def __init__(self, span_capacity: int = SPAN_CAPACITY):
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}
        self.spans: deque = deque(maxlen=span_capacity)
        #: Span/trace/event recording switch (counters stay live).
        self.enabled = True
        #: The operation trace spans are currently attributed to (an
        #: object with the alloc/push/pop/attach protocol), or None.
        self.active_trace: Optional[object] = None

    # -- metric access ------------------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        key = (name, _label_key(labels))
        counter = self._counters.get(key)
        if counter is None:
            counter = Counter(name, labels)
            self._counters[key] = counter
        return counter

    def histogram(self, name: str, **labels) -> Histogram:
        key = (name, _label_key(labels))
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = Histogram(name, labels)
            self._histograms[key] = histogram
        return histogram

    # -- spans --------------------------------------------------------------------

    def record_span(self, name: str, start_ns: int, end_ns: int,
                    span_id: Optional[int] = None, **labels) -> SpanRecord:
        """Record a completed span and feed its latency histogram.

        ``span_id`` is supplied by :class:`_SpanContext` when the span
        was pushed on an operation trace at open time; post-hoc calls
        leave it None and the active trace (if any) allocates one.
        """
        span = SpanRecord(name, labels, start_ns, end_ns)
        if not self.enabled:
            return span
        trace = self.active_trace
        if trace is not None:
            trace.attach(span, span_id=span_id)
        if len(self.spans) == self.spans.maxlen:
            self.counter("sls.telemetry.spans_dropped").add(1)
        self.spans.append(span)
        self.histogram(name, **labels).observe(span.duration_ns)
        return span

    def span(self, clock, name: str, **labels) -> _SpanContext:
        """``with registry.span(clock, "restore", group=3): ...``"""
        return _SpanContext(self, clock, name, labels)

    # -- queries ------------------------------------------------------------------

    def counters_matching(self, prefix: str = "",
                          **labels) -> Iterator[Counter]:
        """Counters whose name starts with ``prefix`` and whose label
        set contains every given label (extra labels are ignored)."""
        wanted = labels.items()
        for counter in self._counters.values():
            if not counter.name.startswith(prefix):
                continue
            if all(counter.labels.get(k) == v for k, v in wanted):
                yield counter

    def histograms_matching(self, prefix: str = "",
                            **labels) -> Iterator[Histogram]:
        """Histograms filtered like :meth:`counters_matching`."""
        wanted = labels.items()
        for histogram in self._histograms.values():
            if not histogram.name.startswith(prefix):
                continue
            if all(histogram.labels.get(k) == v for k, v in wanted):
                yield histogram

    def value(self, name: str, **labels) -> int:
        """Sum of every counter with this exact name and matching
        labels (aggregates across instance labels)."""
        return sum(c.value for c in self.counters_matching(name, **labels)
                   if c.name == name)

    def stage_rows(self, group_id: Optional[int] = None,
                   prefix: str = "ckpt.") -> List[dict]:
        """Per-stage latency summary rows (the ``sls stat`` payload)."""
        rows = []
        labels = {} if group_id is None else {"group": group_id}
        for histogram in self.histograms_matching(prefix, **labels):
            rows.append({
                "stage": histogram.name[len(prefix):],
                "group": histogram.labels.get("group"),
                "count": histogram.count,
                "total_ns": histogram.total,
                "mean_ns": histogram.mean,
                "max_ns": histogram.max,
                "p50_ns": histogram.percentile(50),
                "p95_ns": histogram.percentile(95),
                "p99_ns": histogram.percentile(99),
            })
        return rows

    def reset(self) -> None:
        """Drop every metric (test isolation between experiments)."""
        self._counters.clear()
        self._histograms.clear()
        self.spans.clear()
        self.enabled = True
        self.active_trace = None


#: The process-wide registry.  Components grab it at construction; the
#: CLI and benchmarks read it after a run.
_REGISTRY = TelemetryRegistry()

#: Monotonic instance ids keep same-named stats of different component
#: instances (two machines' stores, a restored group's new incarnation)
#: on separate counters, matching the old per-object dict behaviour.
_INSTANCES = itertools.count(1)


#: Callbacks run by :func:`reset` so sibling singletons (the tracer,
#: the event log) clear in lock-step with the registry.  Registered at
#: import time by :mod:`.tracing` and :mod:`.events` — telemetry never
#: imports them.
_RESET_HOOKS: List = []


def on_reset(hook) -> None:
    """Register a callable to run whenever :func:`reset` is called."""
    _RESET_HOOKS.append(hook)


def registry() -> TelemetryRegistry:
    """The process-wide telemetry registry."""
    return _REGISTRY


def reset() -> None:
    """Clear the process-wide registry (between tests/experiments).

    Instance labels restart too, so two identical experiments bracketed
    by ``reset()`` produce identical metrics and trace trees — the
    determinism the trace tests assert.
    """
    global _INSTANCES
    _REGISTRY.reset()
    _INSTANCES = itertools.count(1)
    for hook in _RESET_HOOKS:
        hook()


def set_enabled(flag: bool) -> None:
    """Turn span/trace/event recording on or off process-wide."""
    _REGISTRY.enabled = flag


def enabled() -> bool:
    """Whether span/trace/event recording is currently on."""
    return _REGISTRY.enabled


def next_instance() -> int:
    """A fresh instance label value."""
    return next(_INSTANCES)


class StatsView:
    """Dict-shaped compatibility view over registry counters.

    ``view["checkpoints"] += 1`` reads and writes the backing counter
    named ``<prefix>.checkpoints`` with this view's labels, so legacy
    ``component.stats[...]`` readers keep working while every number
    is also queryable (and aggregatable) through the registry.
    """

    __slots__ = ("_prefix", "_labels", "_keys")

    def __init__(self, prefix: str, labels: Optional[Dict[str, object]] = None,
                 keys: Iterable[str] = ()):
        self._prefix = prefix
        self._labels = dict(labels or {})
        self._labels.setdefault("inst", next_instance())
        self._keys: List[str] = []
        for key in keys:
            self._counter(key)

    def _counter(self, key: str) -> Counter:
        if key not in self._keys:
            self._keys.append(key)
        return _REGISTRY.counter(f"{self._prefix}.{key}", **self._labels)

    def __getitem__(self, key: str) -> int:
        return self._counter(key).value

    def __setitem__(self, key: str, value: int) -> None:
        self._counter(key).set(value)

    def get(self, key: str, default: int = 0) -> int:
        if key not in self._keys:
            return default
        return self[key]

    def keys(self) -> List[str]:
        return list(self._keys)

    def items(self) -> List[Tuple[str, int]]:
        return [(key, self[key]) for key in self._keys]

    def values(self) -> List[int]:
        return [self[key] for key in self._keys]

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: str) -> bool:
        return key in self._keys

    def as_dict(self) -> Dict[str, int]:
        return dict(self.items())

    def __repr__(self) -> str:
        return f"StatsView({self._prefix}, {self.as_dict()})"
