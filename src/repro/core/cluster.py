"""Quorum-replicated SLS cluster: N segment copies across simulated
availability zones.

The single :class:`~repro.core.replication.ReplicationLink` gives
Aurora one standby; this module grows it into the cloud-Aurora
durability story (SNIPPETS.md snippets 2–3): every committed
checkpoint delta is sharded into segments
(:mod:`repro.core.segments`), shipped to ``N`` replica nodes spread
round-robin over ``azs`` availability zones, and acknowledged as
*durable* only once a **write quorum** (default 4 of 6) holds the
complete delta on media.  Recovery and reads need only a **read
quorum** (default 3 of 6): ``W + R > N`` guarantees every read quorum
intersects every write quorum, so any R survivors contain at least one
complete copy of everything ever acknowledged.

The protocol, made enumerable for the crash-schedule explorer by
:meth:`~repro.core.faults.FaultPlan.on_repl` boundaries:

* ``ship``    — the delta is about to leave the primary for a node.
* ``deliver`` — the stream reached the node, not yet on its media.
* ``apply``   — the node committed the delta (its superblock flipped);
  the copy now survives that node's power loss.
* ``ack``     — the primary registered the node's acknowledgement;
  quorum accounting advances here.
* ``repair``  — one segment was rebuilt onto a repair target.
* ``epoch``   — one voter durably promised a bumped membership epoch.
* ``lease``   — the primary's lease expired unrenewed.
* ``reconcile`` — the anti-entropy exchange settled one node.

Partition tolerance rests on three pieces.  **Epoch fencing**: every
shipped manifest is stamped with the primary's membership epoch;
:meth:`SLSCluster.promote` first wins a quorum epoch bump
(:meth:`SLSCluster.bump_epoch`) recorded durably in each voter's
store superblock, after which replicas fence (``FENCED_WRITE``) any
delta from the displaced epoch.  **Leased primaryship**: the pump
renews a sim-clock lease whenever a write quorum answers its pings;
:meth:`SLSCluster.failover` refuses while the incumbent is alive and
the lease unexpired, and a fenced ex-primary drains into the
``STALE_PRIMARY`` degraded mode instead of diverging.  **Anti-entropy
reconciliation** (:meth:`SLSCluster.reconcile`): on heal, a
merkle-style digest exchange (:class:`~repro.core.segments.DigestTree`)
fence-truncates superseded minority tails and feeds repair exactly
the segments that differ.

Durability is defined by *media*, not bookkeeping: a checkpoint is
quorum-durable the instant the W-th node's apply commits.  Recovery
(:meth:`SLSCluster.recover`) reboots reachable nodes, counts complete
copies, picks the newest checkpoint whose copy count proves a write
quorum, truncates every replica's non-quorum tail
(:meth:`~repro.objstore.store.ObjectStore.truncate_checkpoint` — the
Aurora-style discard of writes that never reached quorum), and
restores from any holder.  Failover (:meth:`SLSCluster.failover`)
refuses to promote a node whose applied history trails the
quorum-durable watermark (:class:`~repro.errors.StaleReplica`).

Repair (:meth:`SLSCluster.repair`) is segment-parallel: targets
rebuild concurrently, each target's segments stream sequentially from
surviving holders (round-robin across donors), and per-segment MTTR —
the quantity that actually bounds durability — lands in the
``sls.cluster.repair.segment_mttr`` histogram and the SLO tracker.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..errors import ClusterError, LeaseValid, LinkDown, QuorumLost, \
    RetriesExhausted, SLSError, StaleEpoch, StaleReplica
from ..machine import Machine
from ..units import MSEC, USEC, fmt_size
from . import events, faults, migration, telemetry, tracing
from .faults import FaultPlan
from .group import ConsistencyGroup
from .orchestrator import Orchestrator, load_aurora
from .replication import ReplicationLink
from .resilience import REASON_STALE_PRIMARY, PeerHealth, RetryPolicy
from .restore import RestoreResult
from .segments import (DEFAULT_PROTECTION_GROUPS, DEFAULT_SEGMENT_BYTES,
                       DigestTree, ProtectionGroupLayout, ShardManifest,
                       assemble, shard_stream)

#: Replication/quorum boundary names (``FaultPlan.on_repl``).
B_SHIP = "ship"
B_DELIVER = "deliver"
B_APPLY = "apply"
B_ACK = "ack"
B_REPAIR = "repair"
#: Control-plane boundaries: one ``epoch`` per voter's durable promise
#: during a quorum epoch bump, one ``lease`` when the primary's lease
#: expires unrenewed, one ``reconcile`` per node the heal-time
#: anti-entropy exchange settles.
B_EPOCH = "epoch"
B_LEASE = "lease"
B_RECONCILE = "reconcile"

#: Replica-checkpoint name prefix: ``repl-<primary ckpt id>`` (plus an
#: ``@e<epoch>`` suffix since epochs exist).  The mapping from primary
#: to node-local checkpoint ids — and the epoch each delta was
#: accepted under — must survive a node reboot, and checkpoint names
#: are the one piece of metadata that already does.
REPL_NAME_PREFIX = "repl-"
REPL_EPOCH_SEP = "@e"

#: Fixed per-segment rebuild overhead (scheduling + media write) on
#: top of the wire time — keeps segment MTTR nonzero even for tiny
#: simulated segments.
SEGMENT_REBUILD_COST_NS = 50 * USEC

#: Primaryship lease: while fewer than a write quorum of nodes are
#: answering lease pings, the primary may not renew; once the lease
#: expires, failover is allowed without forcing.
DEFAULT_LEASE_NS = 50 * MSEC

#: Size of one epoch-bump control message (request or grant).
EPOCH_MSG_BYTES = 128


class ClusterNode:
    """One replica node: its own machine, store, and volatile caches."""

    def __init__(self, node_id: int, az: int, group_id: int):
        self.node_id = node_id
        self.az = az
        self.group_id = group_id
        self.machine = Machine()
        self.sls: Orchestrator = load_aurora(self.machine)
        self.down = False
        #: Primary checkpoint id -> node-local checkpoint id, for
        #: every delta this node holds complete on media.
        self.applied: Dict[int, int] = {}
        #: Primary checkpoint id -> membership epoch the delta was
        #: accepted under (0 for pre-epoch histories).  Survives
        #: reboots via the ``@e<epoch>`` checkpoint-name suffix.
        self.applied_epoch: Dict[int, int] = {}
        #: Volatile segment cache: primary ckpt -> (manifest,
        #: payloads).  Dies with the node's power; repair falls back
        #: to re-serializing from the node's store.
        self.shards: Dict[int, Tuple[ShardManifest, List[bytes]]] = {}

    @property
    def applied_max(self) -> Optional[int]:
        """Newest primary checkpoint this node holds (None = none)."""
        return max(self.applied) if self.applied else None

    @property
    def promised_epoch(self) -> int:
        """The membership epoch this node's store durably promised."""
        return int(self.sls.store.cluster_epoch)

    def apply(self, primary_ckpt: int, stream: bytes,
              epoch: int = 0) -> int:
        """Commit one delta stream to this node's media, recording the
        epoch it was accepted under in the checkpoint name so the
        attribution survives a reboot."""
        name = f"{REPL_NAME_PREFIX}{primary_ckpt}"
        if epoch:
            name += f"{REPL_EPOCH_SEP}{epoch}"
        local = migration.recv_checkpoint(self.sls, stream, name=name)
        self.applied[primary_ckpt] = local
        self.applied_epoch[primary_ckpt] = epoch
        return local

    def crash(self) -> None:
        """Power failure: volatile caches die, media survives."""
        if self.down:
            return
        self.machine.crash()
        self.down = True
        self.applied = {}
        self.applied_epoch = {}
        self.shards = {}

    def reboot(self) -> None:
        """Bring the node back; recover its store and rediscover
        which primary checkpoints its media holds."""
        if not self.down:
            return
        self.machine.boot()
        self.sls = load_aurora(self.machine)
        self.down = False
        self.rescan()

    def wipe(self) -> None:
        """Total loss of the node's media: a blank replacement node
        takes over the slot (repair must rebuild everything)."""
        self.machine = Machine()
        self.sls = load_aurora(self.machine)
        self.down = False
        self.applied = {}
        self.applied_epoch = {}
        self.shards = {}

    def rescan(self) -> None:
        """Rebuild the primary→local checkpoint map (and the per-delta
        epoch attribution) from the store — checkpoint names encode
        both the primary id and the accepting epoch."""
        self.applied = {}
        self.applied_epoch = {}
        for info in self.sls.store.checkpoints_for(self.group_id):
            if not info.name.startswith(REPL_NAME_PREFIX):
                continue
            tail = info.name[len(REPL_NAME_PREFIX):]
            epoch = 0
            if REPL_EPOCH_SEP in tail:
                tail, _, suffix = tail.partition(REPL_EPOCH_SEP)
                try:
                    epoch = int(suffix)
                except ValueError:
                    continue
            try:
                primary_ckpt = int(tail)
            except ValueError:
                continue
            self.applied[primary_ckpt] = info.ckpt_id
            self.applied_epoch[primary_ckpt] = epoch

    def truncate_above(self, durable: int) -> List[int]:
        """Discard every local checkpoint newer than the quorum
        watermark.  Returns the primary ids discarded."""
        return self.truncate_from(durable + 1)

    def truncate_from(self, floor: int) -> List[int]:
        """Discard every local checkpoint at or above ``floor``
        (newest first — only childless checkpoints may be truncated).
        Returns the primary ids discarded."""
        doomed = sorted((c for c in self.applied if c >= floor),
                        reverse=True)
        for primary_ckpt in doomed:
            local = self.applied.pop(primary_ckpt)
            self.applied_epoch.pop(primary_ckpt, None)
            self.sls.store.truncate_checkpoint(local)
            self.shards.pop(primary_ckpt, None)
        return doomed

    def __repr__(self) -> str:
        state = "down" if self.down else f"applied<={self.applied_max}"
        return f"ClusterNode(#{self.node_id} az{self.az} {state})"


class SegmentedLink(ReplicationLink):
    """One primary→node leg of the cluster.

    Reuses :class:`ReplicationLink`'s retry policy, outage accounting
    (``down_since``), stats and events; shipping is overridden to go
    checkpoint-by-checkpoint through the cluster's canonical shard
    manifests, crossing the ``on_repl`` quorum boundaries.
    """

    def __init__(self, cluster: "SLSCluster", node: ClusterNode,
                 group: ConsistencyGroup):
        super().__init__(cluster.primary, node.sls, group)
        self.cluster = cluster
        self.node = node
        self.peer_id = node.node_id
        # A per-node seed keeps backoff jitter independent across legs.
        self.retry = RetryPolicy(
            cluster.primary.machine.clock,
            seed=0x11A6 ^ group.group_id ^ (node.node_id << 8),
            op=f"cluster.ship.n{node.node_id}")

    def _plan(self) -> Optional[FaultPlan]:
        plan: Optional[FaultPlan] = getattr(self.src_sls.machine,
                                            "fault_plan", None)
        return plan

    def _ship_ckpt(self, ckpt_id: int) -> None:
        """One connect + send + apply attempt for one checkpoint."""
        cluster = self.cluster
        node = self.node
        plan = self._plan()
        if plan is not None:
            plan.on_repl(node.node_id, B_SHIP)
            plan.on_link()
            # The ship direction can be partitioned independently of
            # the ack path: delivery, not just shipping, fails
            # per-direction (and may be skewed late).
            delay = plan.on_deliver(faults.PRIMARY, node.node_id)
            if delay:
                self._clock().advance(delay)
        manifest, payloads = cluster.shards_for(ckpt_id)
        ctx = manifest.trace_ctx
        registry = telemetry.registry()
        clock = self._clock()
        labels: Dict[str, Any] = {"group": self.group.group_id,
                                  "node": node.node_id, "ckpt": ckpt_id}
        if ctx is not None and ctx.tenant is not None:
            labels["tenant"] = ctx.tenant
        # Replica-side legs record into the originating checkpoint
        # trace (resolved from the shipped context) so one trace spans
        # primary → replicas; spans never advance the clock or touch
        # the fault plan, keeping crash schedules identical.
        with tracing.use(ctx.resolve() if ctx is not None else None):
            with registry.span(clock, "repl.ship", **labels):
                # The whole delta crosses the fabric to this node;
                # wire time is charged on the primary's clock like any
                # ``sls send``.
                wire = self.src_sls.machine.nic.send(manifest.total_bytes)
                self._clock().advance(wire)
            self.stats["streams"] += 1
            self.stats["bytes"] += manifest.total_bytes
            cluster.account_transfer(cluster.primary_az, node.az,
                                     manifest.total_bytes)
            if plan is not None:
                plan.on_repl(node.node_id, B_DELIVER)
            # Epoch fencing: a replica refuses any delta stamped with
            # an epoch older than the one its store durably promised —
            # a partitioned ex-primary's writes die here, before they
            # can reach the node's media.
            promised = node.promised_epoch
            if manifest.epoch < promised:
                events.emit(clock.now(), events.FENCED_WRITE,
                            group=self.group.group_id,
                            node=node.node_id, ckpt=ckpt_id,
                            epoch=manifest.epoch, promised=promised)
                telemetry.registry().counter(
                    "sls.cluster.fenced_writes",
                    group=self.group.group_id).add(1)
                cluster.stats["fenced_writes"] += 1
                raise StaleEpoch(
                    f"node {node.node_id} promised epoch {promised}, "
                    f"delta carries epoch {manifest.epoch}: write "
                    f"fenced", epoch=promised)
            with registry.span(clock, "repl.deliver", **labels):
                stream = assemble(manifest,
                                  {meta.index: payloads[meta.index]
                                   for meta in manifest.segments})
            with registry.span(clock, "repl.apply", **labels):
                node.apply(ckpt_id, stream, epoch=manifest.epoch)
            node.shards[ckpt_id] = (manifest, payloads)
            if plan is not None:
                plan.on_repl(node.node_id, B_APPLY)

    def ship_checkpoint(self, ckpt_id: int) -> bool:
        """Ship one checkpoint to this node; True once it is on the
        node's media, False when the leg is down (the next pump round
        retries)."""
        now = self._clock().now()
        try:
            self.retry.run(lambda: self._ship_ckpt(ckpt_id))
        except RetriesExhausted as exc:
            if self.down_since is None:
                self.down_since = now
                self.stats["outages"] += 1
                events.emit(self._clock().now(), events.LINK_DOWN,
                            group=self.group.group_id,
                            node=self.node.node_id,
                            error=f"{type(exc).__name__}: {exc}")
                telemetry.registry().counter(
                    "sls.replication.outages",
                    group=self.group.group_id).add(1)
            return False
        self._mark_link_up()
        self.last_shipped = ckpt_id
        return True


class ClusterRecovery:
    """What :meth:`SLSCluster.recover` established."""

    def __init__(self, durable: int, donor: ClusterNode,
                 result: RestoreResult, truncated: List[Tuple[int, int]],
                 available: int):
        #: The quorum-durable primary checkpoint recovery settled on.
        self.durable = durable
        self.donor = donor
        self.result = result
        #: ``(node_id, primary_ckpt)`` pairs discarded as non-quorum
        #: tail.
        self.truncated = truncated
        self.available = available

    def __repr__(self) -> str:
        return (f"ClusterRecovery(ckpt={self.durable} "
                f"donor=#{self.donor.node_id} "
                f"truncated={len(self.truncated)})")


class ReconcilePlan:
    """Differential-repair feed built by :meth:`SLSCluster.reconcile`.

    Maps ``(node_id, primary_ckpt)`` to the locally retained segment
    payloads whose digests matched the canonical tree — those need not
    cross the wire again; only the segments that actually differ do.
    Also the accounting sink for how much the heal moved."""

    def __init__(self) -> None:
        self.local: Dict[Tuple[int, int], Dict[int, bytes]] = {}
        self.wire_bytes = 0
        self.wire_segments = 0
        self.local_segments = 0


class SLSCluster:
    """The cluster control plane: quorum replication, recovery,
    failover and segment repair for one consistency group."""

    def __init__(self, primary: Orchestrator, group: ConsistencyGroup,
                 nodes: int = 6, azs: int = 3,
                 write_quorum: Optional[int] = None,
                 read_quorum: Optional[int] = None,
                 segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 npgs: int = DEFAULT_PROTECTION_GROUPS,
                 primary_az: int = 0,
                 lease_ns: int = DEFAULT_LEASE_NS):
        if nodes < 1:
            raise ClusterError(f"a cluster needs nodes, got {nodes}")
        if azs < 1 or azs > nodes:
            raise ClusterError(f"bad AZ count {azs} for {nodes} nodes")
        self.primary = primary
        self.group = group
        self.gid = group.group_id
        self.n = nodes
        self.azs = azs
        self.write_quorum = write_quorum or nodes // 2 + 1
        self.read_quorum = read_quorum or nodes - self.write_quorum + 1
        if self.write_quorum + self.read_quorum <= nodes:
            raise ClusterError(
                f"quorums must intersect: W={self.write_quorum} + "
                f"R={self.read_quorum} <= N={nodes}")
        if self.write_quorum > nodes:
            raise ClusterError(f"write quorum {self.write_quorum} "
                               f"exceeds cluster size {nodes}")
        self.primary_az = primary_az
        self.segment_bytes = segment_bytes
        self.layout = ProtectionGroupLayout(npgs)
        self.nodes: List[ClusterNode] = [
            ClusterNode(i, az=i % azs, group_id=self.gid)
            for i in range(nodes)]
        self.links: List[SegmentedLink] = [
            SegmentedLink(self, node, group) for node in self.nodes]
        self.health: List[PeerHealth] = [PeerHealth()
                                         for _ in range(nodes)]
        #: Quorum-durable watermark: newest primary checkpoint with a
        #: registered write quorum of acknowledgements.
        self.durable: Optional[int] = None
        self.acks: Dict[int, Set[int]] = {}
        self.inter_az_bytes = 0
        self.stats: Dict[str, int] = {
            "pumps": 0, "acks": 0, "failovers": 0,
            "segments_repaired": 0, "ckpts_replicated": 0,
            "fenced_writes": 0, "epoch_bumps": 0, "reconciles": 0,
            "forced_promotes": 0}
        #: Membership epoch this control-plane handle ships under.  A
        #: successful :meth:`promote` bumps the *nodes'* promised
        #: epochs past it, so a partitioned ex-primary handle fences
        #: itself on its next contact with the majority.
        self.epoch = 1
        #: Sim-clock primaryship lease: renewed whenever a write
        #: quorum of nodes answers the pump's lease ping; failover is
        #: refused (:class:`~repro.errors.LeaseValid`) while the
        #: incumbent is alive and the lease unexpired.
        self.lease_ns = lease_ns
        self.lease_until = primary.machine.clock.now() + lease_ns
        self._lease_lost = False
        #: A fenced primary drains: it stops pumping and acking
        #: (``STALE_PRIMARY`` degraded mode) instead of diverging.
        self.fenced = False
        #: Canonical per-checkpoint shard cache (primary memory).
        self._streams: Dict[int, Tuple[ShardManifest, List[bytes]]] = {}
        self._commit_seen: Dict[int, int] = {}
        self._installed = False
        self._pumping = False
        self._timer: Any = None

    # -- plumbing ----------------------------------------------------------

    def _clock(self) -> Any:
        """The reference clock (the primary machine's — it keeps
        counting across crashes)."""
        return self.primary.machine.clock

    def _plan(self) -> Optional[FaultPlan]:
        return getattr(self.primary.machine, "fault_plan", None)

    def account_transfer(self, src_az: int, dst_az: int,
                         nbytes: int) -> None:
        """Byte accounting for one replication/repair transfer."""
        telemetry.registry().counter("sls.cluster.repl_bytes",
                                     group=self.gid).add(nbytes)
        if src_az != dst_az:
            self.inter_az_bytes += nbytes
            telemetry.registry().counter("sls.cluster.inter_az_bytes",
                                         group=self.gid).add(nbytes)

    def shards_for(self, ckpt_id: int
                   ) -> Tuple[ShardManifest, List[bytes]]:
        """The canonical sharded delta of one primary checkpoint
        (serialized once, memoized)."""
        cached = self._streams.get(ckpt_id)
        if cached is None:
            info = self.primary.store.get_checkpoint(ckpt_id)
            stream = migration.send_checkpoint(self.primary, self.gid,
                                               ckpt_id=ckpt_id,
                                               since=info.parent)
            cached = shard_stream(self.gid, ckpt_id, stream,
                                  self.segment_bytes)
            self._streams[ckpt_id] = cached
        if cached[0].trace_ctx is None:
            cached[0].trace_ctx = self._capture_ctx()
        # Stamped at ship time, not shard time: the wire always
        # carries the epoch this handle *currently* holds.
        cached[0].epoch = self.epoch
        return cached

    def _capture_ctx(self) -> Optional["tracing.TraceContext"]:
        """The trace context replication ships with a delta: the live
        checkpoint trace when one is open, else the group's newest
        finished checkpoint trace (the sync-commit hook runs *after*
        the trace scope closed, so the commit that triggered this pump
        is the ring's tail)."""
        ctx = tracing.TraceContext.capture(tenant=self.group.name)
        if ctx is not None:
            return ctx
        finished = tracing.tracer().traces(tracing.CHECKPOINT,
                                           group=self.gid)
        if finished:
            return tracing.TraceContext.capture(finished[-1],
                                                tenant=self.group.name)
        return None

    def up_nodes(self) -> List[ClusterNode]:
        return [node for node in self.nodes if not node.down]

    # -- the quorum pump ---------------------------------------------------

    def pump(self) -> Optional[int]:
        """Replicate every committed-but-unreplicated checkpoint to
        every reachable node, in order, advancing the durable
        watermark the moment a write quorum holds each one.  Returns
        the watermark.

        A node crash injected at a replication boundary
        (:class:`~repro.core.faults.InjectedNodeCrash`) downs that
        node and the pump carries on — the quorum, not any single
        node, is the availability unit.  An injected *primary* crash
        propagates to the harness.
        """
        if self._pumping or self.fenced:
            return self.durable
        self._pumping = True
        try:
            return self._pump()
        finally:
            self._pumping = False

    def _pump(self) -> Optional[int]:
        from .faults import InjectedNodeCrash
        self.stats["pumps"] += 1
        self._renew_lease()
        if self.fenced:
            return self.durable
        chain = self.primary.store.checkpoints_for(self.gid)
        clock = self._clock()
        for info in chain:
            ckpt = info.ckpt_id
            self._commit_seen.setdefault(ckpt, clock.now())
            acks = self.acks.setdefault(ckpt, set())
            for node, link, health in zip(self.nodes, self.links,
                                          self.health):
                if node.down:
                    continue
                if ckpt in node.applied:
                    # Already on this node's media (possibly
                    # rediscovered after a reboot): (re-)register —
                    # but only once the ack direction is deliverable;
                    # a copy behind a one-way cut counts at recovery
                    # (media defines durability) yet earns no quorum
                    # credit until the partition heals.
                    if node.node_id not in acks \
                            and self._ack_delivered(node):
                        acks.add(node.node_id)
                        self._maybe_advance(ckpt)
                    continue
                if info.parent is not None \
                        and info.parent in self.acks \
                        and info.parent not in node.applied:
                    # The node is missing this delta's baseline;
                    # earlier chain entries (or repair) must land
                    # first so its local chain stays well-parented.
                    continue
                if not health.should_attempt():
                    continue
                plan = self._plan()
                try:
                    shipped = link.ship_checkpoint(ckpt)
                    acked = shipped and self._ack_delivered(node)
                    if acked and plan is not None:
                        plan.on_repl(node.node_id, B_ACK)
                except InjectedNodeCrash as exc:
                    self.node_down(exc.node, reason="fault")
                    continue
                except StaleEpoch as exc:
                    # A replica fenced this write: the membership
                    # moved on without us.  Drain instead of
                    # diverging further.
                    self._fence(exc.epoch)
                    return self.durable
                if acked:
                    health.record_success()
                    acks.add(node.node_id)
                    self.stats["acks"] += 1
                    self._ack_span(ckpt, node)
                    self._maybe_advance(ckpt)
                elif shipped:
                    # Applied on the node's media but the
                    # acknowledgement never made it back: the
                    # re-register branch above credits it after the
                    # heal.
                    health.record_success()
                else:
                    health.record_failure(clock.now())
        if chain and (self.durable is None
                      or self.durable < chain[-1].ckpt_id):
            newest = chain[-1].ckpt_id
            events.emit(clock.now(), events.QUORUM_STALL,
                        group=self.gid, ckpt=newest,
                        acks=len(self.acks.get(newest, ())),
                        needed=self.write_quorum)
            telemetry.registry().counter("sls.cluster.quorum_stalls",
                                         group=self.gid).add(1)
        return self.durable

    def _ack_delivered(self, node: ClusterNode) -> bool:
        """Whether the node→primary ack direction is deliverable right
        now (charges any configured delay skew on the reference
        clock)."""
        plan = self._plan()
        if plan is None:
            return True
        try:
            delay = plan.on_deliver(node.node_id, faults.PRIMARY)
        except LinkDown:
            return False
        if delay:
            self._clock().advance(delay)
        return True

    def _renew_lease(self) -> None:
        """One lease round: ping every up node both ways; a write
        quorum of grants renews the lease, and any node promising a
        newer epoch fences this handle on the spot.  Pings are
        control-plane chatter — they charge no wire time and cross no
        replication boundaries, so existing crash schedules are
        untouched."""
        plan = self._plan()
        clock = self._clock()
        grants = 0
        highest = self.epoch
        for node in self.up_nodes():
            if plan is not None:
                try:
                    plan.on_deliver(faults.PRIMARY, node.node_id)
                    plan.on_deliver(node.node_id, faults.PRIMARY)
                except LinkDown:
                    continue
            promised = node.promised_epoch
            if promised > self.epoch:
                highest = max(highest, promised)
                continue
            grants += 1
        if highest > self.epoch:
            self._fence(highest)
            return
        now = clock.now()
        if grants >= self.write_quorum:
            if self._lease_lost:
                self._lease_lost = False
                events.emit(now, events.LEASE_RENEW, group=self.gid,
                            epoch=self.epoch, grants=grants)
            self.lease_until = now + self.lease_ns
        elif now > self.lease_until and not self._lease_lost:
            self._lease_lost = True
            events.emit(now, events.LEASE_EXPIRE, group=self.gid,
                        epoch=self.epoch, grants=grants,
                        needed=self.write_quorum)
            telemetry.registry().counter("sls.cluster.lease_expiries",
                                         group=self.gid).add(1)
            if plan is not None:
                plan.on_repl(faults.PRIMARY, B_LEASE)

    def _fence(self, promised: int) -> None:
        """This handle's epoch has been superseded: drain into the
        ``STALE_PRIMARY`` degraded mode — stop pumping and acking,
        enter group-health degradation — rather than diverge."""
        if self.fenced:
            return
        self.fenced = True
        now = self._clock().now()
        events.emit(now, events.STALE_PRIMARY, group=self.gid,
                    epoch=self.epoch, promised=promised,
                    durable=self.durable)
        telemetry.registry().counter("sls.cluster.stale_primaries",
                                     group=self.gid).add(1)
        self.group.health.enter(REASON_STALE_PRIMARY, now)
        self.primary.slo.on_degraded_enter(self.gid, now)
        self.stop()

    def _ack_span(self, ckpt: int, node: ClusterNode) -> None:
        """A zero-duration span marking the primary registering one
        node's acknowledgement, in the originating checkpoint trace."""
        cached = self._streams.get(ckpt)
        ctx = cached[0].trace_ctx if cached is not None else None
        labels: Dict[str, Any] = {"group": self.gid, "node": node.node_id,
                                  "ckpt": ckpt}
        if ctx is not None and ctx.tenant is not None:
            labels["tenant"] = ctx.tenant
        with tracing.use(ctx.resolve() if ctx is not None else None):
            now = self._clock().now()
            telemetry.registry().record_span("repl.ack", now, now,
                                             **labels)

    def _maybe_advance(self, ckpt: int) -> None:
        if self.fenced:
            # A fenced ex-primary must not acknowledge anything: the
            # new epoch's primary owns the watermark now.
            return
        if len(self.acks.get(ckpt, ())) < self.write_quorum:
            return
        if self.durable is not None and ckpt <= self.durable:
            return
        clock = self._clock()
        self.durable = ckpt
        self.stats["ckpts_replicated"] += 1
        lag = clock.now() - self._commit_seen.get(ckpt, clock.now())
        events.emit(clock.now(), events.QUORUM_ACK, group=self.gid,
                    ckpt=ckpt, acks=len(self.acks[ckpt]),
                    lag_ns=lag, tenant=self.group.name)
        telemetry.registry().histogram("sls.cluster.quorum_lag",
                                       group=self.gid).observe(lag)
        self.primary.slo.on_quorum_ack(self.gid, lag, now_ns=clock.now())

    # -- continuous operation ---------------------------------------------

    def install(self) -> None:
        """Pump automatically: synchronously after every sync commit
        (orchestrator commit hook) and on the checkpoint cadence for
        async commits (timer, like ``ReplicationLink.install``)."""
        if self._installed:
            return
        self._installed = True
        self.primary.commit_hooks.append(self._on_commit)
        loop = self.primary.machine.loop

        def pump_tick() -> None:
            if not self._installed or not self.group.attached:
                return
            self.pump()
            self._timer = loop.call_after(self.group.period_ns,
                                          pump_tick)

        self._timer = loop.call_after(
            self.group.period_ns + self.group.period_ns // 2, pump_tick)

    def _on_commit(self, group: ConsistencyGroup, info: Any) -> None:
        if group.group_id == self.gid:
            self.pump()

    def stop(self) -> None:
        """Cease pumping (nodes keep what they have)."""
        self._installed = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        try:
            self.primary.commit_hooks.remove(self._on_commit)
        except ValueError:
            pass

    # -- membership / outages ----------------------------------------------

    def node_down(self, node_id: int, reason: str = "operator") -> None:
        """Power-fail one node (its media survives for a reboot)."""
        node = self.nodes[node_id]
        if node.down:
            return
        node.crash()
        events.emit(self._clock().now(), events.NODE_DOWN,
                    group=self.gid, node=node_id, az=node.az,
                    reason=reason)
        telemetry.registry().counter("sls.cluster.node_down",
                                     group=self.gid).add(1)

    def node_up(self, node_id: int) -> None:
        """Reboot one node; it rejoins with whatever its media held."""
        node = self.nodes[node_id]
        if not node.down:
            return
        node.reboot()
        self.links[node_id].dst_sls = node.sls
        self.health[node_id] = PeerHealth()
        events.emit(self._clock().now(), events.NODE_UP,
                    group=self.gid, node=node_id, az=node.az,
                    applied=node.applied_max)

    def az_down(self, az: int, reason: str = "az-outage") -> List[int]:
        """Power-fail every node in one availability zone."""
        downed = [node.node_id for node in self.nodes
                  if node.az == az and not node.down]
        for node_id in downed:
            self.node_down(node_id, reason=reason)
        return downed

    def az_up(self, az: int) -> List[int]:
        """Reboot every node in one availability zone."""
        raised = [node.node_id for node in self.nodes
                  if node.az == az and node.down]
        for node_id in raised:
            self.node_up(node_id)
        return raised

    # -- recovery ----------------------------------------------------------

    def recover(self, node_ids: Optional[List[int]] = None,
                reboot: bool = True) -> ClusterRecovery:
        """The primary is gone: settle the cluster on its
        quorum-durable state and restore the application from replica
        media.

        ``node_ids`` limits recovery to a subset of nodes (the rest
        count as unreachable); any read quorum suffices.  Reachable
        down nodes are rebooted first (their media survived).  The
        newest checkpoint whose visible copy count proves a write
        quorum becomes the watermark; every replica's tail beyond it
        is truncated — a checkpoint that never reached quorum is
        discarded everywhere, never partially visible.
        """
        selected = (self.nodes if node_ids is None
                    else [self.nodes[i] for i in node_ids])
        available: List[ClusterNode] = []
        for node in selected:
            if node.down:
                if not reboot:
                    continue
                node.reboot()
                self.links[node.node_id].dst_sls = node.sls
            available.append(node)
        if len(available) < self.read_quorum:
            raise QuorumLost(
                f"{len(available)} nodes reachable, read quorum is "
                f"{self.read_quorum}")
        # Copies are counted per (checkpoint, accepting epoch): two
        # nodes holding checkpoint 8 under different epochs hold
        # *different histories*, and only the epoch variant that
        # proves a quorum is authoritative.
        counts: Dict[Tuple[int, int], int] = {}
        for node in available:
            for ckpt in node.applied:
                pair = (ckpt, node.applied_epoch.get(ckpt, 0))
                counts[pair] = counts.get(pair, 0) + 1
        # With k members unreachable, a quorum-durable checkpoint (W
        # copies total) shows at least W - k copies here; quorum
        # intersection makes the threshold at least 1 for any read
        # quorum.  With every member visible this is exactly "W copies
        # on media" — the crash-schedule oracle.
        missing = self.n - len(available)
        threshold = max(1, self.write_quorum - missing)
        auth: Dict[int, int] = {}
        for (ckpt, epoch), have in counts.items():
            if have >= threshold:
                if ckpt not in auth or epoch > auth[ckpt]:
                    auth[ckpt] = epoch
        durable = max(auth, default=None)
        if durable is None:
            raise QuorumLost(
                f"no checkpoint reaches the quorum threshold "
                f"({threshold} of {len(available)} reachable copies)")
        truncated: List[Tuple[int, int]] = []
        for node in available:
            # Fence floor: the oldest local checkpoint that is either
            # beyond the watermark or a divergent epoch variant of an
            # authoritative one (sub-threshold copies with no
            # authoritative competitor are kept — conservative).
            bad = [c for c in node.applied
                   if c > durable
                   or node.applied_epoch.get(c, 0) != auth.get(
                       c, node.applied_epoch.get(c, 0))]
            if not bad:
                continue
            for ckpt in node.truncate_from(min(bad)):
                truncated.append((node.node_id, ckpt))
        if truncated:
            events.emit(self._clock().now(), events.TAIL_TRUNCATE,
                        group=self.gid, ckpt=durable,
                        discarded=len(truncated))
            telemetry.registry().counter(
                "sls.cluster.tail_truncated",
                group=self.gid).add(len(truncated))
        self.durable = durable
        donor = next(node for node in available
                     if durable in node.applied)
        result = donor.sls.restore(self.gid,
                                   ckpt_id=donor.applied[durable],
                                   periodic=False)
        return ClusterRecovery(durable, donor, result, truncated,
                               len(available))

    # -- epoch fencing / failover ------------------------------------------

    def bump_epoch(self, candidate: Optional[ClusterNode] = None
                   ) -> int:
        """Win a quorum epoch bump: every reachable voter durably
        promises (superblock commit on its own store) an epoch newer
        than any it has seen, so fencing survives crash + remount.

        ``candidate`` is the node driving the bump — reachability is
        judged from it (a promotion must win its quorum from where the
        new primary actually sits).  Raises
        :class:`~repro.errors.QuorumLost` below ``W`` reachable
        voters.  Deliberately does *not* adopt the new epoch into
        ``self.epoch``: the handle keeps shipping under its old epoch,
        which is exactly what makes a partitioned ex-primary's writes
        fenceable.
        """
        clock = self._clock()
        plan = self._plan()
        started = clock.now()
        origin = (candidate.node_id if candidate is not None
                  else faults.PRIMARY)
        voters: List[ClusterNode] = []
        proposal = self.epoch
        for node in self.up_nodes():
            if plan is not None and node is not candidate:
                if plan.is_cut(origin, node.node_id) \
                        or plan.is_cut(node.node_id, origin):
                    continue
            proposal = max(proposal, node.promised_epoch)
            voters.append(node)
        proposal += 1
        if len(voters) < self.write_quorum:
            raise QuorumLost(
                f"epoch bump needs a write quorum of "
                f"{self.write_quorum} reachable voters, only "
                f"{len(voters)} reachable")
        for node in voters:
            # One control message each way, then the voter's durable
            # promise (a superblock flip on its own store).
            clock.advance(2 * node.machine.nic.transfer_time(
                EPOCH_MSG_BYTES))
            node.sls.store.promise_cluster_epoch(proposal)
            if plan is not None:
                plan.on_repl(node.node_id, B_EPOCH)
        self.stats["epoch_bumps"] += 1
        bump_ns = clock.now() - started
        events.emit(clock.now(), events.EPOCH_BUMP, group=self.gid,
                    epoch=proposal, grants=len(voters),
                    bump_ns=bump_ns)
        telemetry.registry().histogram(
            "sls.cluster.epoch_bump_ns",
            group=self.gid).observe(bump_ns)
        self.primary.slo.on_epoch_bump(self.gid, bump_ns)
        return proposal

    def failover(self, force: bool = False,
                 force_data_loss: bool = False) -> RestoreResult:
        """Promote the best-caught-up reachable node to primary.

        Requires a read quorum of reachable nodes, an established
        durable watermark, and — while the incumbent primary is alive
        and its lease unexpired — refuses outright
        (:class:`~repro.errors.LeaseValid`): a partitioned-but-alive
        primary may still be acknowledging on its side of the cut.
        Delegates the stale check to :meth:`promote`.
        """
        up = self.up_nodes()
        if len(up) < self.read_quorum:
            raise QuorumLost(
                f"{len(up)} nodes up, read quorum is "
                f"{self.read_quorum}")
        if self.durable is None:
            raise SLSError("nothing was ever quorum-acknowledged")
        now = self._clock().now()
        incumbent_dead = self.primary.machine.kernel is None
        if (not force and not self.fenced and not incumbent_dead
                and now < self.lease_until):
            raise LeaseValid(
                f"primary lease valid for another "
                f"{self.lease_until - now}ns: a partitioned-but-alive "
                f"primary may still be acknowledging — wait for "
                f"expiry or force")
        candidate = max(
            up, key=lambda node: (node.applied_max is not None,
                                  node.applied_max or -1,
                                  -node.node_id))
        return self.promote(candidate.node_id, force=force,
                            force_data_loss=force_data_loss)

    def promote(self, node_id: int, force: bool = False,
                force_data_loss: bool = False) -> RestoreResult:
        """Promote one node; refuses a stale quorum view and fences
        the old epoch first.

        A node that never applied the quorum-durable watermark would
        silently roll back acknowledged state if promoted —
        :class:`~repro.errors.StaleReplica` unless *both* ``force``
        and ``force_data_loss`` are passed (``force`` alone never
        discards acknowledged checkpoints; the double flag is the
        operator signing off on the loss, event-logged as
        ``FORCED_PROMOTE`` with the checkpoint gap).  Before any
        restore, :meth:`bump_epoch` must win a quorum of durable
        epoch promises so the displaced primary's writes are fenced.
        The promoted node's own non-quorum tail is truncated so the
        new history never forks from unacknowledged writes.
        """
        node = self.nodes[node_id]
        if node.down:
            raise ClusterError(f"node {node_id} is down")
        durable = self.durable
        if durable is None:
            raise SLSError("nothing was ever quorum-acknowledged")
        forced_gap = 0
        if durable not in node.applied:
            if not force:
                raise StaleReplica(
                    f"node {node_id} applied up to {node.applied_max}, "
                    f"quorum watermark is {durable}: promoting it "
                    f"would roll back acknowledged state")
            target = node.applied_max
            if target is None:
                raise StaleReplica(
                    f"node {node_id} holds nothing to promote")
            if not force_data_loss:
                raise StaleReplica(
                    f"node {node_id} applied up to {target}, quorum "
                    f"watermark is {durable}: force alone will not "
                    f"discard {durable - target} acknowledged "
                    f"checkpoint(s) — pass force_data_loss to accept "
                    f"the loss")
            forced_gap = durable - target
            durable = target
        # Fence the old epoch before the new history starts: a write
        # quorum must durably promise the bumped epoch or promotion
        # refuses (QuorumLost) and changes nothing.
        self.bump_epoch(candidate=node)
        if forced_gap:
            self.stats["forced_promotes"] += 1
            events.emit(self._clock().now(), events.FORCED_PROMOTE,
                        group=self.gid, node=node_id, ckpt=durable,
                        watermark=self.durable, gap=forced_gap)
            telemetry.registry().counter(
                "sls.cluster.forced_promotes",
                group=self.gid).add(1)
            self.durable = durable
        started = node.machine.clock.now()
        node.truncate_above(durable)
        result = node.sls.restore(self.gid,
                                  ckpt_id=node.applied[durable],
                                  periodic=False)
        failover_ns = node.machine.clock.now() - started
        self.stats["failovers"] += 1
        events.emit(self._clock().now(), events.PROMOTE, group=self.gid,
                    node=node_id, ckpt=durable,
                    failover_ns=failover_ns)
        telemetry.registry().histogram(
            "sls.cluster.failover_ns",
            group=self.gid).observe(failover_ns)
        self.primary.slo.on_failover(self.gid, failover_ns)
        return result

    # -- repair ------------------------------------------------------------

    def repair(self, recon: Optional[ReconcilePlan] = None
               ) -> Dict[str, Any]:
        """Segment-parallel re-replication of every missing copy.

        Targets rebuild concurrently; within a target, segments
        stream sequentially from the surviving holders (round-robin
        across donors, manifest-checksum verified; a donor behind a
        partition cut is skipped for the next holder, and a segment
        no reachable donor can serve defers the whole target until a
        heal).  Wall time is the slowest target's queue; per-segment
        MTTR (repair start → segment landed) feeds the
        ``repair.segment_mttr`` histogram and SLO budget.  ``recon``
        (from :meth:`reconcile`) supplies locally retained segments
        that need not cross the wire.  Returns the repair report.
        """
        from .faults import InjectedNodeCrash
        clock = self._clock()
        registry = telemetry.registry()
        hist = registry.histogram("sls.cluster.repair.segment_mttr",
                                  group=self.gid)
        per_target_ns: Dict[int, int] = {}
        segments_done = 0
        ckpts_done = 0
        skipped = 0
        ckpts = sorted({ckpt for node in self.up_nodes()
                        for ckpt in node.applied})
        for ckpt in ckpts:
            holders = [node for node in self.up_nodes()
                       if ckpt in node.applied]
            if not holders:
                continue
            for target in list(self.up_nodes()):
                if ckpt in target.applied:
                    continue
                if not self._chain_ready(target, ckpt):
                    continue
                local = (recon.local.get((target.node_id, ckpt))
                         if recon is not None else None)
                try:
                    elapsed, nsegs = self._repair_one(
                        target, ckpt, holders,
                        per_target_ns.get(target.node_id, 0), hist,
                        local=local, recon=recon)
                except InjectedNodeCrash as exc:
                    self.node_down(exc.node, reason="fault")
                    continue
                except LinkDown:
                    skipped += 1
                    continue
                per_target_ns[target.node_id] = elapsed
                segments_done += nsegs
                ckpts_done += 1
                acks = self.acks.setdefault(ckpt, set())
                acks.add(target.node_id)
                self._maybe_advance(ckpt)
        wall_ns = max(per_target_ns.values(), default=0)
        clock.advance(wall_ns)
        report = {
            "checkpoints": ckpts_done,
            "segments": segments_done,
            "targets": len(per_target_ns),
            "skipped": skipped,
            "wall_ns": wall_ns,
            "mttr_p50_ns": hist.percentile(50),
            "mttr_max_ns": hist.percentile(100),
        }
        self.stats["segments_repaired"] += segments_done
        events.emit(clock.now(), events.REPAIR_DONE, group=self.gid,
                    **report)
        registry.counter("sls.cluster.segments_repaired",
                         group=self.gid).add(segments_done)
        return report

    def _chain_ready(self, target: ClusterNode, ckpt: int) -> bool:
        """Whether ``target`` holds the delta's baseline (repair walks
        checkpoints oldest-first, so earlier iterations fill it)."""
        for holder in self.up_nodes():
            if ckpt not in holder.applied:
                continue
            info = holder.sls.store.get_checkpoint(
                holder.applied[ckpt])
            if info.parent is None:
                return True
            break
        parents = [c for node in self.up_nodes()
                   for c in node.applied if c < ckpt]
        if not parents:
            return True
        return max(parents) in target.applied

    def _repair_one(self, target: ClusterNode, ckpt: int,
                    holders: List[ClusterNode], queue_ns: int,
                    hist: Any, local: Optional[Dict[int, bytes]] = None,
                    recon: Optional[ReconcilePlan] = None
                    ) -> Tuple[int, int]:
        """Rebuild one checkpoint's segments onto one target; returns
        the target's updated queue time and the segment count.
        ``local`` holds digest-matched segments already on the target
        (no wire crossing); raises :class:`~repro.errors.LinkDown`
        when some segment has no partition-reachable donor."""
        plan = self._plan()
        manifest, payloads = self._segments_from(holders, ckpt)
        ctx = manifest.trace_ctx
        labels: Dict[str, Any] = {"group": self.gid,
                                  "node": target.node_id, "ckpt": ckpt}
        if ctx is not None and ctx.tenant is not None:
            labels["tenant"] = ctx.tenant
        registry = telemetry.registry()
        repair_start = self._clock().now()
        gathered: Dict[int, bytes] = {}
        elapsed = queue_ns
        with tracing.use(ctx.resolve() if ctx is not None else None):
            for meta in manifest.segments:
                if plan is not None:
                    plan.on_repl(target.node_id, B_REPAIR)
                cached = (local.get(meta.index)
                          if local is not None else None)
                if cached is not None and len(cached) == meta.length:
                    # Digest-matched local copy: media write only.
                    meta.verify(cached)
                    gathered[meta.index] = cached
                    elapsed += SEGMENT_REBUILD_COST_NS
                    if recon is not None:
                        recon.local_segments += 1
                    hist.observe(elapsed)
                    self.primary.slo.on_repair_segment(self.gid,
                                                       elapsed)
                    continue
                donor = None
                delay = 0
                for shift in range(len(holders)):
                    cand = holders[(meta.index + shift) % len(holders)]
                    if plan is not None:
                        try:
                            delay = plan.on_deliver(cand.node_id,
                                                    target.node_id)
                        except LinkDown:
                            continue
                    donor = cand
                    break
                if donor is None:
                    raise LinkDown(
                        f"no donor for segment {meta.index} of "
                        f"checkpoint {ckpt} reachable from node "
                        f"{target.node_id}")
                payload = payloads[meta.index]
                meta.verify(payload)
                gathered[meta.index] = payload
                elapsed += (delay + target.machine.nic.transfer_time(
                    max(meta.length, 1)) + SEGMENT_REBUILD_COST_NS)
                self.account_transfer(donor.az, target.az, meta.length)
                if recon is not None:
                    recon.wire_segments += 1
                    recon.wire_bytes += meta.length
                hist.observe(elapsed)
                self.primary.slo.on_repair_segment(self.gid, elapsed)
            stream = assemble(manifest, gathered)
            epoch = max((h.applied_epoch.get(ckpt, 0)
                         for h in holders if ckpt in h.applied),
                        default=self.epoch)
            target.apply(ckpt, stream, epoch=epoch)
            registry.record_span("repl.repair", repair_start,
                                 self._clock().now(),
                                 segments=len(manifest.segments),
                                 **labels)
        target.shards[ckpt] = (manifest, payloads)
        events.emit(self._clock().now(), events.SEGMENT_REPAIRED,
                    group=self.gid, node=target.node_id, ckpt=ckpt,
                    segments=len(manifest.segments),
                    pgs=self.layout.npgs)
        return elapsed, len(manifest.segments)

    def _segments_from(self, holders: List[ClusterNode], ckpt: int
                       ) -> Tuple[ShardManifest, List[bytes]]:
        """A canonical shard set for one checkpoint, from any holder's
        volatile cache — or re-serialized from a holder's store when
        every cache died with its node."""
        for holder in holders:
            cached = holder.shards.get(ckpt)
            if cached is not None:
                return cached
        holder = holders[0]
        local = holder.applied[ckpt]
        info = holder.sls.store.get_checkpoint(local)
        stream = migration.send_checkpoint(holder.sls, self.gid,
                                           ckpt_id=local,
                                           since=info.parent)
        sharded = shard_stream(self.gid, ckpt, stream,
                               self.segment_bytes)
        holder.shards[ckpt] = sharded
        return sharded

    # -- anti-entropy reconciliation ---------------------------------------

    def _node_manifests(self, node: ClusterNode
                        ) -> Dict[int, ShardManifest]:
        """One node's manifests for everything it holds, from the
        volatile shard cache or re-serialized from its store."""
        out: Dict[int, ShardManifest] = {}
        for ckpt in list(node.applied):
            cached = node.shards.get(ckpt)
            if cached is None:
                local = node.applied[ckpt]
                info = node.sls.store.get_checkpoint(local)
                stream = migration.send_checkpoint(node.sls, self.gid,
                                                   ckpt_id=local,
                                                   since=info.parent)
                cached = shard_stream(self.gid, ckpt, stream,
                                      self.segment_bytes)
                node.shards[ckpt] = cached
            out[ckpt] = cached[0]
        return out

    def reconcile(self) -> Dict[str, Any]:
        """Heal-time anti-entropy: fence-truncate superseded minority
        tails, digest-diff every node against the canonical history,
        and feed :meth:`repair` exactly the segments that differ.

        Three passes over the up nodes:

        1. **Fence truncation** — any checkpoint accepted under an
           epoch older than the cluster's current promise and never
           quorum-acknowledged (or older than another holder's epoch
           for the same id) is a fenced write: discarded, never
           readable again.
        2. **Digest exchange** — each node's
           :class:`~repro.core.segments.DigestTree` is diffed against
           the canonical tree; locally intact segments of divergent
           checkpoints are stashed so only differing bytes cross the
           wire.
        3. **Differential repair** — :meth:`repair` runs with the
           stash; reconciliation spans join the originating
           distributed traces via the manifests' carried contexts.

        Closes the ``STALE_PRIMARY`` degraded spell when this handle
        was fenced (the fenced flag itself stays — a drained
        ex-primary does not silently resume).  Returns a report
        merging the repair report with the reconciliation accounting.
        """
        clock = self._clock()
        plan = self._plan()
        up = self.up_nodes()
        if not up:
            raise QuorumLost("no nodes reachable to reconcile")
        started = clock.now()
        current = max([self.epoch]
                      + [node.promised_epoch for node in up])
        durable = self.durable
        # Pass 1: fence-truncate superseded tails.  Authority per
        # checkpoint is the newest accepting epoch any up holder
        # records; a copy trailing it — or trailing the cluster epoch
        # beyond the durable watermark — is a fenced write.
        auth_epoch: Dict[int, int] = {}
        for node in up:
            for ckpt in node.applied:
                epoch = node.applied_epoch.get(ckpt, 0)
                auth_epoch[ckpt] = max(auth_epoch.get(ckpt, 0), epoch)
        fenced: List[Tuple[int, int]] = []
        for node in up:
            bad = [c for c in node.applied
                   if node.applied_epoch.get(c, 0) < auth_epoch[c]
                   or (node.applied_epoch.get(c, 0) < current
                       and (durable is None or c > durable))]
            if not bad:
                continue
            for ckpt in node.truncate_from(min(bad)):
                fenced.append((node.node_id, ckpt))
                self.acks.get(ckpt, set()).discard(node.node_id)
        # The fenced ex-primary's own store carries the same doomed
        # tail: drain it too, so nothing on any machine can resume
        # from a write that lost its quorum race.
        if self.fenced and durable is not None:
            chain = self.primary.store.checkpoints_for(self.gid)
            for info in reversed(chain):
                if info.ckpt_id <= durable:
                    break
                self.primary.store.truncate_checkpoint(info.ckpt_id)
                self._streams.pop(info.ckpt_id, None)
                fenced.append((faults.PRIMARY, info.ckpt_id))
        if fenced:
            events.emit(clock.now(), events.TAIL_TRUNCATE,
                        group=self.gid, ckpt=durable,
                        discarded=len(fenced), fenced=True)
            telemetry.registry().counter(
                "sls.cluster.tail_truncated",
                group=self.gid).add(len(fenced))
        # Pass 2: digest exchange against the canonical history — the
        # union of surviving checkpoints, each checkpoint's canonical
        # manifest elected by majority root-digest vote across its
        # holders (a single corrupted holder must never become
        # truth).
        surviving = sorted({ckpt for node in up
                            for ckpt in node.applied})
        by_node: Dict[int, Dict[int, ShardManifest]] = {
            node.node_id: self._node_manifests(node) for node in up}
        canonical_manifests: Dict[int, ShardManifest] = {}
        for ckpt in surviving:
            votes: Dict[int, int] = {}
            pick: Dict[int, ShardManifest] = {}
            for node in up:
                manifest = by_node[node.node_id].get(ckpt)
                if manifest is None:
                    continue
                root = DigestTree(self.layout,
                                  {ckpt: manifest}).roots[ckpt]
                votes[root] = votes.get(root, 0) + 1
                pick.setdefault(root, manifest)
            best = max(sorted(votes), key=lambda root: votes[root])
            canonical_manifests[ckpt] = pick[best]
        canonical = DigestTree(self.layout, canonical_manifests)
        recon = ReconcilePlan()
        divergent_truncated = 0
        for node in up:
            mine = DigestTree(self.layout, by_node[node.node_id])
            needed = mine.diff(canonical)
            divergent = [c for c in needed if c in node.applied]
            if divergent:
                # Bytes differ in place (e.g. media corruption): the
                # divergent checkpoint and everything above it must be
                # rebuilt — stash the digest-matched segments first so
                # only the differing ones cross the wire again.
                floor = min(divergent)
                for ckpt in sorted(node.applied):
                    if ckpt < floor:
                        continue
                    leaves = canonical.leaves.get(ckpt)
                    cached = node.shards.get(ckpt)
                    if leaves is None or cached is None:
                        continue
                    payloads = cached[1]
                    keep = {
                        index: payloads[index]
                        for index, leaf in leaves.items()
                        if index < len(payloads)
                        and mine.leaves.get(ckpt, {}).get(index) == leaf
                    }
                    if keep:
                        recon.local[(node.node_id, ckpt)] = keep
                for ckpt in node.truncate_from(floor):
                    divergent_truncated += 1
                    self.acks.get(ckpt, set()).discard(node.node_id)
            if plan is not None:
                plan.on_repl(node.node_id, B_RECONCILE)
        # Pass 3: differential repair fills every gap the diff found.
        report = self.repair(recon=recon)
        self.stats["reconciles"] += 1
        reconcile_ns = clock.now() - started
        ctx = None
        if canonical_manifests:
            newest = canonical_manifests[max(canonical_manifests)]
            ctx = newest.trace_ctx
        with tracing.use(ctx.resolve() if ctx is not None else None):
            labels: Dict[str, Any] = {"group": self.gid,
                                      "fenced": len(fenced),
                                      "bytes": recon.wire_bytes}
            if ctx is not None and ctx.tenant is not None:
                labels["tenant"] = ctx.tenant
            telemetry.registry().record_span(
                "repl.reconcile", started, clock.now(), **labels)
        events.emit(clock.now(), events.RECONCILE_DONE, group=self.gid,
                    epoch=current, fenced=len(fenced),
                    divergent=divergent_truncated,
                    wire_segments=recon.wire_segments,
                    local_segments=recon.local_segments,
                    bytes=recon.wire_bytes,
                    reconcile_ns=reconcile_ns)
        telemetry.registry().counter("sls.cluster.reconcile_bytes",
                                     group=self.gid).add(
                                         recon.wire_bytes)
        self.primary.slo.on_reconcile(self.gid, recon.wire_bytes)
        if self.fenced and self.group.health.degraded \
                and self.group.health.reason == REASON_STALE_PRIMARY:
            spell = self.group.health.exit(clock.now())
            self.primary.slo.on_degraded_exit(self.gid, clock.now())
            self.primary.slo.on_stale_primary(self.gid, spell)
        report.update({
            "fenced": len(fenced),
            "divergent": divergent_truncated,
            "wire_segments": recon.wire_segments,
            "local_segments": recon.local_segments,
            "reconcile_bytes": recon.wire_bytes,
            "reconcile_ns": reconcile_ns,
            "epoch": current,
        })
        return report

    # -- audit / reporting -------------------------------------------------

    def verify(self) -> Dict[str, Any]:
        """Full-replication and checksum audit over the up nodes."""
        up = self.up_nodes()
        ckpts = sorted({ckpt for node in up for ckpt in node.applied})
        copies = {ckpt: sum(1 for node in up if ckpt in node.applied)
                  for ckpt in ckpts}
        fully = all(have == len(up) for have in copies.values())
        verified = 0
        for node in up:
            for ckpt, (manifest, payloads) in node.shards.items():
                assemble(manifest, {meta.index: payloads[meta.index]
                                    for meta in manifest.segments})
                verified += len(manifest.segments)
        return {
            "checkpoints": len(ckpts),
            "copies": copies,
            "nodes_up": len(up),
            "fully_replicated": fully,
            "segments_verified": verified,
            "durable": self.durable,
        }

    def stall_reason(self) -> Optional[str]:
        """Why the durable watermark trails the committed chain, or
        None when replication is caught up (the ``sls cluster``
        nonzero-exit diagnostic)."""
        chain = self.primary.store.checkpoints_for(self.gid)
        if not chain:
            return None
        newest = chain[-1].ckpt_id
        if self.durable is not None and self.durable >= newest:
            return None
        have = len(self.acks.get(newest, ()))
        reason = (f"checkpoint {newest} has {have}/{self.write_quorum} "
                  f"acknowledgements (durable watermark: "
                  f"{self.durable})")
        if self.fenced:
            reason += "; primary is fenced (stale epoch)"
        elif self._lease_lost:
            reason += "; primary lease expired"
        down = [node.node_id for node in self.nodes if node.down]
        if down:
            reason += f"; nodes down: {down}"
        cuts = None
        plan = self._plan()
        if plan is not None:
            cuts = plan.cut_schedule()
        if cuts:
            reason += f"; network cuts: {len(cuts)}"
        return reason

    def status(self) -> Dict[str, Any]:
        """The ``sls cluster`` payload."""
        registry = telemetry.registry()
        rows = []
        for node, link, health in zip(self.nodes, self.links,
                                      self.health):
            rows.append({
                "node": node.node_id,
                "az": node.az,
                "state": ("down" if node.down
                          else ("degraded" if health.degraded
                                else "up")),
                "applied": node.applied_max,
                "epoch": (None if node.down else node.promised_epoch),
                "lag": (0 if self.durable is None
                        or node.applied_max is None
                        else max(0, len([c for c in self.acks
                                         if c <= self.durable
                                         and c not in node.applied]))),
                "streams": link.stats["streams"],
                "bytes": link.stats["bytes"],
            })
        return {
            "group": self.gid,
            "nodes": rows,
            "azs": self.azs,
            "write_quorum": self.write_quorum,
            "read_quorum": self.read_quorum,
            "durable": self.durable,
            "epoch": self.epoch,
            "lease_valid": (not self.fenced
                            and self._clock().now() < self.lease_until),
            "fenced": self.fenced,
            "stall": self.stall_reason(),
            "inter_az_bytes": self.inter_az_bytes,
            "inter_az_pretty": fmt_size(self.inter_az_bytes),
            "protection_groups": self.layout.npgs,
            "segment_bytes": self.segment_bytes,
            "quorum_lag_p50_ns": registry.histogram(
                "sls.cluster.quorum_lag",
                group=self.gid).percentile(50),
            "repair_mttr_p50_ns": registry.histogram(
                "sls.cluster.repair.segment_mttr",
                group=self.gid).percentile(50),
            "stats": dict(self.stats),
        }

    def __repr__(self) -> str:
        up = len(self.up_nodes())
        return (f"SLSCluster(group={self.gid}, {up}/{self.n} up, "
                f"W={self.write_quorum}/R={self.read_quorum}, "
                f"durable={self.durable})")
