"""Quorum-replicated SLS cluster: N segment copies across simulated
availability zones.

The single :class:`~repro.core.replication.ReplicationLink` gives
Aurora one standby; this module grows it into the cloud-Aurora
durability story (SNIPPETS.md snippets 2–3): every committed
checkpoint delta is sharded into segments
(:mod:`repro.core.segments`), shipped to ``N`` replica nodes spread
round-robin over ``azs`` availability zones, and acknowledged as
*durable* only once a **write quorum** (default 4 of 6) holds the
complete delta on media.  Recovery and reads need only a **read
quorum** (default 3 of 6): ``W + R > N`` guarantees every read quorum
intersects every write quorum, so any R survivors contain at least one
complete copy of everything ever acknowledged.

The protocol, made enumerable for the crash-schedule explorer by
:meth:`~repro.core.faults.FaultPlan.on_repl` boundaries:

* ``ship``    — the delta is about to leave the primary for a node.
* ``deliver`` — the stream reached the node, not yet on its media.
* ``apply``   — the node committed the delta (its superblock flipped);
  the copy now survives that node's power loss.
* ``ack``     — the primary registered the node's acknowledgement;
  quorum accounting advances here.
* ``repair``  — one segment was rebuilt onto a repair target.

Durability is defined by *media*, not bookkeeping: a checkpoint is
quorum-durable the instant the W-th node's apply commits.  Recovery
(:meth:`SLSCluster.recover`) reboots reachable nodes, counts complete
copies, picks the newest checkpoint whose copy count proves a write
quorum, truncates every replica's non-quorum tail
(:meth:`~repro.objstore.store.ObjectStore.truncate_checkpoint` — the
Aurora-style discard of writes that never reached quorum), and
restores from any holder.  Failover (:meth:`SLSCluster.failover`)
refuses to promote a node whose applied history trails the
quorum-durable watermark (:class:`~repro.errors.StaleReplica`).

Repair (:meth:`SLSCluster.repair`) is segment-parallel: targets
rebuild concurrently, each target's segments stream sequentially from
surviving holders (round-robin across donors), and per-segment MTTR —
the quantity that actually bounds durability — lands in the
``sls.cluster.repair.segment_mttr`` histogram and the SLO tracker.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..errors import ClusterError, QuorumLost, RetriesExhausted, SLSError, \
    StaleReplica
from ..machine import Machine
from ..units import USEC, fmt_size
from . import events, migration, telemetry, tracing
from .faults import FaultPlan
from .group import ConsistencyGroup
from .orchestrator import Orchestrator, load_aurora
from .replication import ReplicationLink
from .resilience import PeerHealth, RetryPolicy
from .restore import RestoreResult
from .segments import (DEFAULT_PROTECTION_GROUPS, DEFAULT_SEGMENT_BYTES,
                       ProtectionGroupLayout, ShardManifest, assemble,
                       shard_stream)

#: Replication/quorum boundary names (``FaultPlan.on_repl``).
B_SHIP = "ship"
B_DELIVER = "deliver"
B_APPLY = "apply"
B_ACK = "ack"
B_REPAIR = "repair"

#: Replica-checkpoint name prefix: ``repl-<primary ckpt id>``.  The
#: mapping from primary to node-local checkpoint ids must survive a
#: node reboot, and checkpoint names are the one piece of metadata
#: that already does.
REPL_NAME_PREFIX = "repl-"

#: Fixed per-segment rebuild overhead (scheduling + media write) on
#: top of the wire time — keeps segment MTTR nonzero even for tiny
#: simulated segments.
SEGMENT_REBUILD_COST_NS = 50 * USEC


class ClusterNode:
    """One replica node: its own machine, store, and volatile caches."""

    def __init__(self, node_id: int, az: int, group_id: int):
        self.node_id = node_id
        self.az = az
        self.group_id = group_id
        self.machine = Machine()
        self.sls: Orchestrator = load_aurora(self.machine)
        self.down = False
        #: Primary checkpoint id -> node-local checkpoint id, for
        #: every delta this node holds complete on media.
        self.applied: Dict[int, int] = {}
        #: Volatile segment cache: primary ckpt -> (manifest,
        #: payloads).  Dies with the node's power; repair falls back
        #: to re-serializing from the node's store.
        self.shards: Dict[int, Tuple[ShardManifest, List[bytes]]] = {}

    @property
    def applied_max(self) -> Optional[int]:
        """Newest primary checkpoint this node holds (None = none)."""
        return max(self.applied) if self.applied else None

    def apply(self, primary_ckpt: int, stream: bytes) -> int:
        """Commit one delta stream to this node's media."""
        local = migration.recv_checkpoint(
            self.sls, stream, name=f"{REPL_NAME_PREFIX}{primary_ckpt}")
        self.applied[primary_ckpt] = local
        return local

    def crash(self) -> None:
        """Power failure: volatile caches die, media survives."""
        if self.down:
            return
        self.machine.crash()
        self.down = True
        self.applied = {}
        self.shards = {}

    def reboot(self) -> None:
        """Bring the node back; recover its store and rediscover
        which primary checkpoints its media holds."""
        if not self.down:
            return
        self.machine.boot()
        self.sls = load_aurora(self.machine)
        self.down = False
        self.rescan()

    def wipe(self) -> None:
        """Total loss of the node's media: a blank replacement node
        takes over the slot (repair must rebuild everything)."""
        self.machine = Machine()
        self.sls = load_aurora(self.machine)
        self.down = False
        self.applied = {}
        self.shards = {}

    def rescan(self) -> None:
        """Rebuild the primary→local checkpoint map from the store
        (checkpoint names encode the primary id)."""
        self.applied = {}
        for info in self.sls.store.checkpoints_for(self.group_id):
            if not info.name.startswith(REPL_NAME_PREFIX):
                continue
            try:
                primary_ckpt = int(info.name[len(REPL_NAME_PREFIX):])
            except ValueError:
                continue
            self.applied[primary_ckpt] = info.ckpt_id

    def truncate_above(self, durable: int) -> List[int]:
        """Discard every local checkpoint newer than the quorum
        watermark (newest first — only childless checkpoints may be
        truncated).  Returns the primary ids discarded."""
        doomed = sorted((c for c in self.applied if c > durable),
                        reverse=True)
        for primary_ckpt in doomed:
            local = self.applied.pop(primary_ckpt)
            self.sls.store.truncate_checkpoint(local)
            self.shards.pop(primary_ckpt, None)
        return doomed

    def __repr__(self) -> str:
        state = "down" if self.down else f"applied<={self.applied_max}"
        return f"ClusterNode(#{self.node_id} az{self.az} {state})"


class SegmentedLink(ReplicationLink):
    """One primary→node leg of the cluster.

    Reuses :class:`ReplicationLink`'s retry policy, outage accounting
    (``down_since``), stats and events; shipping is overridden to go
    checkpoint-by-checkpoint through the cluster's canonical shard
    manifests, crossing the ``on_repl`` quorum boundaries.
    """

    def __init__(self, cluster: "SLSCluster", node: ClusterNode,
                 group: ConsistencyGroup):
        super().__init__(cluster.primary, node.sls, group)
        self.cluster = cluster
        self.node = node
        # A per-node seed keeps backoff jitter independent across legs.
        self.retry = RetryPolicy(
            cluster.primary.machine.clock,
            seed=0x11A6 ^ group.group_id ^ (node.node_id << 8),
            op=f"cluster.ship.n{node.node_id}")

    def _plan(self) -> Optional[FaultPlan]:
        plan: Optional[FaultPlan] = getattr(self.src_sls.machine,
                                            "fault_plan", None)
        return plan

    def _ship_ckpt(self, ckpt_id: int) -> None:
        """One connect + send + apply attempt for one checkpoint."""
        cluster = self.cluster
        node = self.node
        plan = self._plan()
        if plan is not None:
            plan.on_repl(node.node_id, B_SHIP)
            plan.on_link()
        manifest, payloads = cluster.shards_for(ckpt_id)
        ctx = manifest.trace_ctx
        registry = telemetry.registry()
        clock = self._clock()
        labels: Dict[str, Any] = {"group": self.group.group_id,
                                  "node": node.node_id, "ckpt": ckpt_id}
        if ctx is not None and ctx.tenant is not None:
            labels["tenant"] = ctx.tenant
        # Replica-side legs record into the originating checkpoint
        # trace (resolved from the shipped context) so one trace spans
        # primary → replicas; spans never advance the clock or touch
        # the fault plan, keeping crash schedules identical.
        with tracing.use(ctx.resolve() if ctx is not None else None):
            with registry.span(clock, "repl.ship", **labels):
                # The whole delta crosses the fabric to this node;
                # wire time is charged on the primary's clock like any
                # ``sls send``.
                wire = self.src_sls.machine.nic.send(manifest.total_bytes)
                self._clock().advance(wire)
            self.stats["streams"] += 1
            self.stats["bytes"] += manifest.total_bytes
            cluster.account_transfer(cluster.primary_az, node.az,
                                     manifest.total_bytes)
            if plan is not None:
                plan.on_repl(node.node_id, B_DELIVER)
            with registry.span(clock, "repl.deliver", **labels):
                stream = assemble(manifest,
                                  {meta.index: payloads[meta.index]
                                   for meta in manifest.segments})
            with registry.span(clock, "repl.apply", **labels):
                node.apply(ckpt_id, stream)
            node.shards[ckpt_id] = (manifest, payloads)
            if plan is not None:
                plan.on_repl(node.node_id, B_APPLY)

    def ship_checkpoint(self, ckpt_id: int) -> bool:
        """Ship one checkpoint to this node; True once it is on the
        node's media, False when the leg is down (the next pump round
        retries)."""
        now = self._clock().now()
        try:
            self.retry.run(lambda: self._ship_ckpt(ckpt_id))
        except RetriesExhausted as exc:
            if self.down_since is None:
                self.down_since = now
                self.stats["outages"] += 1
                events.emit(self._clock().now(), events.LINK_DOWN,
                            group=self.group.group_id,
                            node=self.node.node_id,
                            error=f"{type(exc).__name__}: {exc}")
                telemetry.registry().counter(
                    "sls.replication.outages",
                    group=self.group.group_id).add(1)
            return False
        self._mark_link_up()
        self.last_shipped = ckpt_id
        return True


class ClusterRecovery:
    """What :meth:`SLSCluster.recover` established."""

    def __init__(self, durable: int, donor: ClusterNode,
                 result: RestoreResult, truncated: List[Tuple[int, int]],
                 available: int):
        #: The quorum-durable primary checkpoint recovery settled on.
        self.durable = durable
        self.donor = donor
        self.result = result
        #: ``(node_id, primary_ckpt)`` pairs discarded as non-quorum
        #: tail.
        self.truncated = truncated
        self.available = available

    def __repr__(self) -> str:
        return (f"ClusterRecovery(ckpt={self.durable} "
                f"donor=#{self.donor.node_id} "
                f"truncated={len(self.truncated)})")


class SLSCluster:
    """The cluster control plane: quorum replication, recovery,
    failover and segment repair for one consistency group."""

    def __init__(self, primary: Orchestrator, group: ConsistencyGroup,
                 nodes: int = 6, azs: int = 3,
                 write_quorum: Optional[int] = None,
                 read_quorum: Optional[int] = None,
                 segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 npgs: int = DEFAULT_PROTECTION_GROUPS,
                 primary_az: int = 0):
        if nodes < 1:
            raise ClusterError(f"a cluster needs nodes, got {nodes}")
        if azs < 1 or azs > nodes:
            raise ClusterError(f"bad AZ count {azs} for {nodes} nodes")
        self.primary = primary
        self.group = group
        self.gid = group.group_id
        self.n = nodes
        self.azs = azs
        self.write_quorum = write_quorum or nodes // 2 + 1
        self.read_quorum = read_quorum or nodes - self.write_quorum + 1
        if self.write_quorum + self.read_quorum <= nodes:
            raise ClusterError(
                f"quorums must intersect: W={self.write_quorum} + "
                f"R={self.read_quorum} <= N={nodes}")
        if self.write_quorum > nodes:
            raise ClusterError(f"write quorum {self.write_quorum} "
                               f"exceeds cluster size {nodes}")
        self.primary_az = primary_az
        self.segment_bytes = segment_bytes
        self.layout = ProtectionGroupLayout(npgs)
        self.nodes: List[ClusterNode] = [
            ClusterNode(i, az=i % azs, group_id=self.gid)
            for i in range(nodes)]
        self.links: List[SegmentedLink] = [
            SegmentedLink(self, node, group) for node in self.nodes]
        self.health: List[PeerHealth] = [PeerHealth()
                                         for _ in range(nodes)]
        #: Quorum-durable watermark: newest primary checkpoint with a
        #: registered write quorum of acknowledgements.
        self.durable: Optional[int] = None
        self.acks: Dict[int, Set[int]] = {}
        self.inter_az_bytes = 0
        self.stats: Dict[str, int] = {
            "pumps": 0, "acks": 0, "failovers": 0,
            "segments_repaired": 0, "ckpts_replicated": 0}
        #: Canonical per-checkpoint shard cache (primary memory).
        self._streams: Dict[int, Tuple[ShardManifest, List[bytes]]] = {}
        self._commit_seen: Dict[int, int] = {}
        self._installed = False
        self._pumping = False
        self._timer: Any = None

    # -- plumbing ----------------------------------------------------------

    def _clock(self) -> Any:
        """The reference clock (the primary machine's — it keeps
        counting across crashes)."""
        return self.primary.machine.clock

    def _plan(self) -> Optional[FaultPlan]:
        return getattr(self.primary.machine, "fault_plan", None)

    def account_transfer(self, src_az: int, dst_az: int,
                         nbytes: int) -> None:
        """Byte accounting for one replication/repair transfer."""
        telemetry.registry().counter("sls.cluster.repl_bytes",
                                     group=self.gid).add(nbytes)
        if src_az != dst_az:
            self.inter_az_bytes += nbytes
            telemetry.registry().counter("sls.cluster.inter_az_bytes",
                                         group=self.gid).add(nbytes)

    def shards_for(self, ckpt_id: int
                   ) -> Tuple[ShardManifest, List[bytes]]:
        """The canonical sharded delta of one primary checkpoint
        (serialized once, memoized)."""
        cached = self._streams.get(ckpt_id)
        if cached is None:
            info = self.primary.store.get_checkpoint(ckpt_id)
            stream = migration.send_checkpoint(self.primary, self.gid,
                                               ckpt_id=ckpt_id,
                                               since=info.parent)
            cached = shard_stream(self.gid, ckpt_id, stream,
                                  self.segment_bytes)
            self._streams[ckpt_id] = cached
        if cached[0].trace_ctx is None:
            cached[0].trace_ctx = self._capture_ctx()
        return cached

    def _capture_ctx(self) -> Optional["tracing.TraceContext"]:
        """The trace context replication ships with a delta: the live
        checkpoint trace when one is open, else the group's newest
        finished checkpoint trace (the sync-commit hook runs *after*
        the trace scope closed, so the commit that triggered this pump
        is the ring's tail)."""
        ctx = tracing.TraceContext.capture(tenant=self.group.name)
        if ctx is not None:
            return ctx
        finished = tracing.tracer().traces(tracing.CHECKPOINT,
                                           group=self.gid)
        if finished:
            return tracing.TraceContext.capture(finished[-1],
                                                tenant=self.group.name)
        return None

    def up_nodes(self) -> List[ClusterNode]:
        return [node for node in self.nodes if not node.down]

    # -- the quorum pump ---------------------------------------------------

    def pump(self) -> Optional[int]:
        """Replicate every committed-but-unreplicated checkpoint to
        every reachable node, in order, advancing the durable
        watermark the moment a write quorum holds each one.  Returns
        the watermark.

        A node crash injected at a replication boundary
        (:class:`~repro.core.faults.InjectedNodeCrash`) downs that
        node and the pump carries on — the quorum, not any single
        node, is the availability unit.  An injected *primary* crash
        propagates to the harness.
        """
        if self._pumping:
            return self.durable
        self._pumping = True
        try:
            return self._pump()
        finally:
            self._pumping = False

    def _pump(self) -> Optional[int]:
        from .faults import InjectedNodeCrash
        self.stats["pumps"] += 1
        chain = self.primary.store.checkpoints_for(self.gid)
        clock = self._clock()
        for info in chain:
            ckpt = info.ckpt_id
            self._commit_seen.setdefault(ckpt, clock.now())
            acks = self.acks.setdefault(ckpt, set())
            for node, link, health in zip(self.nodes, self.links,
                                          self.health):
                if node.down:
                    continue
                if ckpt in node.applied:
                    # Already on this node's media (possibly
                    # rediscovered after a reboot): (re-)register.
                    if node.node_id not in acks:
                        acks.add(node.node_id)
                        self._maybe_advance(ckpt)
                    continue
                if info.parent is not None \
                        and info.parent in self.acks \
                        and info.parent not in node.applied:
                    # The node is missing this delta's baseline;
                    # earlier chain entries (or repair) must land
                    # first so its local chain stays well-parented.
                    continue
                if not health.should_attempt():
                    continue
                plan = self._plan()
                try:
                    shipped = link.ship_checkpoint(ckpt)
                    if shipped and plan is not None:
                        plan.on_repl(node.node_id, B_ACK)
                except InjectedNodeCrash as exc:
                    self.node_down(exc.node, reason="fault")
                    continue
                if shipped:
                    health.record_success()
                    acks.add(node.node_id)
                    self.stats["acks"] += 1
                    self._ack_span(ckpt, node)
                    self._maybe_advance(ckpt)
                else:
                    health.record_failure(clock.now())
        if chain and (self.durable is None
                      or self.durable < chain[-1].ckpt_id):
            newest = chain[-1].ckpt_id
            events.emit(clock.now(), events.QUORUM_STALL,
                        group=self.gid, ckpt=newest,
                        acks=len(self.acks.get(newest, ())),
                        needed=self.write_quorum)
            telemetry.registry().counter("sls.cluster.quorum_stalls",
                                         group=self.gid).add(1)
        return self.durable

    def _ack_span(self, ckpt: int, node: ClusterNode) -> None:
        """A zero-duration span marking the primary registering one
        node's acknowledgement, in the originating checkpoint trace."""
        cached = self._streams.get(ckpt)
        ctx = cached[0].trace_ctx if cached is not None else None
        labels: Dict[str, Any] = {"group": self.gid, "node": node.node_id,
                                  "ckpt": ckpt}
        if ctx is not None and ctx.tenant is not None:
            labels["tenant"] = ctx.tenant
        with tracing.use(ctx.resolve() if ctx is not None else None):
            now = self._clock().now()
            telemetry.registry().record_span("repl.ack", now, now,
                                             **labels)

    def _maybe_advance(self, ckpt: int) -> None:
        if len(self.acks.get(ckpt, ())) < self.write_quorum:
            return
        if self.durable is not None and ckpt <= self.durable:
            return
        clock = self._clock()
        self.durable = ckpt
        self.stats["ckpts_replicated"] += 1
        lag = clock.now() - self._commit_seen.get(ckpt, clock.now())
        events.emit(clock.now(), events.QUORUM_ACK, group=self.gid,
                    ckpt=ckpt, acks=len(self.acks[ckpt]),
                    lag_ns=lag, tenant=self.group.name)
        telemetry.registry().histogram("sls.cluster.quorum_lag",
                                       group=self.gid).observe(lag)
        self.primary.slo.on_quorum_ack(self.gid, lag, now_ns=clock.now())

    # -- continuous operation ---------------------------------------------

    def install(self) -> None:
        """Pump automatically: synchronously after every sync commit
        (orchestrator commit hook) and on the checkpoint cadence for
        async commits (timer, like ``ReplicationLink.install``)."""
        if self._installed:
            return
        self._installed = True
        self.primary.commit_hooks.append(self._on_commit)
        loop = self.primary.machine.loop

        def pump_tick() -> None:
            if not self._installed or not self.group.attached:
                return
            self.pump()
            self._timer = loop.call_after(self.group.period_ns,
                                          pump_tick)

        self._timer = loop.call_after(
            self.group.period_ns + self.group.period_ns // 2, pump_tick)

    def _on_commit(self, group: ConsistencyGroup, info: Any) -> None:
        if group.group_id == self.gid:
            self.pump()

    def stop(self) -> None:
        """Cease pumping (nodes keep what they have)."""
        self._installed = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        try:
            self.primary.commit_hooks.remove(self._on_commit)
        except ValueError:
            pass

    # -- membership / outages ----------------------------------------------

    def node_down(self, node_id: int, reason: str = "operator") -> None:
        """Power-fail one node (its media survives for a reboot)."""
        node = self.nodes[node_id]
        if node.down:
            return
        node.crash()
        events.emit(self._clock().now(), events.NODE_DOWN,
                    group=self.gid, node=node_id, az=node.az,
                    reason=reason)
        telemetry.registry().counter("sls.cluster.node_down",
                                     group=self.gid).add(1)

    def node_up(self, node_id: int) -> None:
        """Reboot one node; it rejoins with whatever its media held."""
        node = self.nodes[node_id]
        if not node.down:
            return
        node.reboot()
        self.links[node_id].dst_sls = node.sls
        self.health[node_id] = PeerHealth()
        events.emit(self._clock().now(), events.NODE_UP,
                    group=self.gid, node=node_id, az=node.az,
                    applied=node.applied_max)

    def az_down(self, az: int, reason: str = "az-outage") -> List[int]:
        """Power-fail every node in one availability zone."""
        downed = [node.node_id for node in self.nodes
                  if node.az == az and not node.down]
        for node_id in downed:
            self.node_down(node_id, reason=reason)
        return downed

    def az_up(self, az: int) -> List[int]:
        """Reboot every node in one availability zone."""
        raised = [node.node_id for node in self.nodes
                  if node.az == az and node.down]
        for node_id in raised:
            self.node_up(node_id)
        return raised

    # -- recovery ----------------------------------------------------------

    def recover(self, node_ids: Optional[List[int]] = None,
                reboot: bool = True) -> ClusterRecovery:
        """The primary is gone: settle the cluster on its
        quorum-durable state and restore the application from replica
        media.

        ``node_ids`` limits recovery to a subset of nodes (the rest
        count as unreachable); any read quorum suffices.  Reachable
        down nodes are rebooted first (their media survived).  The
        newest checkpoint whose visible copy count proves a write
        quorum becomes the watermark; every replica's tail beyond it
        is truncated — a checkpoint that never reached quorum is
        discarded everywhere, never partially visible.
        """
        selected = (self.nodes if node_ids is None
                    else [self.nodes[i] for i in node_ids])
        available: List[ClusterNode] = []
        for node in selected:
            if node.down:
                if not reboot:
                    continue
                node.reboot()
                self.links[node.node_id].dst_sls = node.sls
            available.append(node)
        if len(available) < self.read_quorum:
            raise QuorumLost(
                f"{len(available)} nodes reachable, read quorum is "
                f"{self.read_quorum}")
        counts: Dict[int, int] = {}
        for node in available:
            for ckpt in node.applied:
                counts[ckpt] = counts.get(ckpt, 0) + 1
        # With k members unreachable, a quorum-durable checkpoint (W
        # copies total) shows at least W - k copies here; quorum
        # intersection makes the threshold at least 1 for any read
        # quorum.  With every member visible this is exactly "W copies
        # on media" — the crash-schedule oracle.
        missing = self.n - len(available)
        threshold = max(1, self.write_quorum - missing)
        durable = max((ckpt for ckpt, have in counts.items()
                       if have >= threshold), default=None)
        if durable is None:
            raise QuorumLost(
                f"no checkpoint reaches the quorum threshold "
                f"({threshold} of {len(available)} reachable copies)")
        truncated: List[Tuple[int, int]] = []
        for node in available:
            for ckpt in node.truncate_above(durable):
                truncated.append((node.node_id, ckpt))
        if truncated:
            events.emit(self._clock().now(), events.TAIL_TRUNCATE,
                        group=self.gid, ckpt=durable,
                        discarded=len(truncated))
            telemetry.registry().counter(
                "sls.cluster.tail_truncated",
                group=self.gid).add(len(truncated))
        self.durable = durable
        donor = next(node for node in available
                     if durable in node.applied)
        result = donor.sls.restore(self.gid,
                                   ckpt_id=donor.applied[durable],
                                   periodic=False)
        return ClusterRecovery(durable, donor, result, truncated,
                               len(available))

    # -- failover ----------------------------------------------------------

    def failover(self, force: bool = False) -> RestoreResult:
        """Promote the best-caught-up reachable node to primary.

        Requires a read quorum of reachable nodes and an established
        durable watermark; delegates the stale check to
        :meth:`promote`.
        """
        up = self.up_nodes()
        if len(up) < self.read_quorum:
            raise QuorumLost(
                f"{len(up)} nodes up, read quorum is "
                f"{self.read_quorum}")
        if self.durable is None:
            raise SLSError("nothing was ever quorum-acknowledged")
        candidate = max(
            up, key=lambda node: (node.applied_max is not None,
                                  node.applied_max or -1,
                                  -node.node_id))
        return self.promote(candidate.node_id, force=force)

    def promote(self, node_id: int, force: bool = False) -> RestoreResult:
        """Promote one node; refuses a stale quorum view.

        A node that never applied the quorum-durable watermark would
        silently roll back acknowledged state if promoted —
        :class:`~repro.errors.StaleReplica` unless ``force`` (operator
        accepts the loss).  The promoted node's own non-quorum tail is
        truncated first so the new history never forks from
        unacknowledged writes.
        """
        node = self.nodes[node_id]
        if node.down:
            raise ClusterError(f"node {node_id} is down")
        durable = self.durable
        if durable is None:
            raise SLSError("nothing was ever quorum-acknowledged")
        if durable not in node.applied:
            if not force:
                raise StaleReplica(
                    f"node {node_id} applied up to {node.applied_max}, "
                    f"quorum watermark is {durable}: promoting it "
                    f"would roll back acknowledged state")
            target = node.applied_max
            if target is None:
                raise StaleReplica(
                    f"node {node_id} holds nothing to promote")
            durable = target
        started = node.machine.clock.now()
        node.truncate_above(durable)
        result = node.sls.restore(self.gid,
                                  ckpt_id=node.applied[durable],
                                  periodic=False)
        failover_ns = node.machine.clock.now() - started
        self.stats["failovers"] += 1
        events.emit(self._clock().now(), events.PROMOTE, group=self.gid,
                    node=node_id, ckpt=durable,
                    failover_ns=failover_ns)
        telemetry.registry().histogram(
            "sls.cluster.failover_ns",
            group=self.gid).observe(failover_ns)
        self.primary.slo.on_failover(self.gid, failover_ns)
        return result

    # -- repair ------------------------------------------------------------

    def repair(self) -> Dict[str, Any]:
        """Segment-parallel re-replication of every missing copy.

        Targets rebuild concurrently; within a target, segments
        stream sequentially from the surviving holders (round-robin
        across donors, manifest-checksum verified).  Wall time is the
        slowest target's queue; per-segment MTTR (repair start →
        segment landed) feeds the ``repair.segment_mttr`` histogram
        and SLO budget.  Returns the repair report.
        """
        from .faults import InjectedNodeCrash
        clock = self._clock()
        registry = telemetry.registry()
        hist = registry.histogram("sls.cluster.repair.segment_mttr",
                                  group=self.gid)
        per_target_ns: Dict[int, int] = {}
        segments_done = 0
        ckpts_done = 0
        ckpts = sorted({ckpt for node in self.up_nodes()
                        for ckpt in node.applied})
        for ckpt in ckpts:
            holders = [node for node in self.up_nodes()
                       if ckpt in node.applied]
            if not holders:
                continue
            for target in list(self.up_nodes()):
                if ckpt in target.applied:
                    continue
                if not self._chain_ready(target, ckpt):
                    continue
                try:
                    elapsed, nsegs = self._repair_one(
                        target, ckpt, holders,
                        per_target_ns.get(target.node_id, 0), hist)
                except InjectedNodeCrash as exc:
                    self.node_down(exc.node, reason="fault")
                    continue
                per_target_ns[target.node_id] = elapsed
                segments_done += nsegs
                ckpts_done += 1
                acks = self.acks.setdefault(ckpt, set())
                acks.add(target.node_id)
                self._maybe_advance(ckpt)
        wall_ns = max(per_target_ns.values(), default=0)
        clock.advance(wall_ns)
        report = {
            "checkpoints": ckpts_done,
            "segments": segments_done,
            "targets": len(per_target_ns),
            "wall_ns": wall_ns,
            "mttr_p50_ns": hist.percentile(50),
            "mttr_max_ns": hist.percentile(100),
        }
        self.stats["segments_repaired"] += segments_done
        events.emit(clock.now(), events.REPAIR_DONE, group=self.gid,
                    **report)
        registry.counter("sls.cluster.segments_repaired",
                         group=self.gid).add(segments_done)
        return report

    def _chain_ready(self, target: ClusterNode, ckpt: int) -> bool:
        """Whether ``target`` holds the delta's baseline (repair walks
        checkpoints oldest-first, so earlier iterations fill it)."""
        for holder in self.up_nodes():
            if ckpt not in holder.applied:
                continue
            info = holder.sls.store.get_checkpoint(
                holder.applied[ckpt])
            if info.parent is None:
                return True
            break
        parents = [c for node in self.up_nodes()
                   for c in node.applied if c < ckpt]
        if not parents:
            return True
        return max(parents) in target.applied

    def _repair_one(self, target: ClusterNode, ckpt: int,
                    holders: List[ClusterNode], queue_ns: int,
                    hist: Any) -> Tuple[int, int]:
        """Rebuild one checkpoint's segments onto one target; returns
        the target's updated queue time and the segment count."""
        plan = self._plan()
        manifest, payloads = self._segments_from(holders, ckpt)
        ctx = manifest.trace_ctx
        labels: Dict[str, Any] = {"group": self.gid,
                                  "node": target.node_id, "ckpt": ckpt}
        if ctx is not None and ctx.tenant is not None:
            labels["tenant"] = ctx.tenant
        registry = telemetry.registry()
        repair_start = self._clock().now()
        gathered: Dict[int, bytes] = {}
        elapsed = queue_ns
        with tracing.use(ctx.resolve() if ctx is not None else None):
            for meta in manifest.segments:
                if plan is not None:
                    plan.on_repl(target.node_id, B_REPAIR)
                donor = holders[meta.index % len(holders)]
                payload = payloads[meta.index]
                meta.verify(payload)
                gathered[meta.index] = payload
                elapsed += (target.machine.nic.transfer_time(
                    max(meta.length, 1)) + SEGMENT_REBUILD_COST_NS)
                self.account_transfer(donor.az, target.az, meta.length)
                hist.observe(elapsed)
                self.primary.slo.on_repair_segment(self.gid, elapsed)
            stream = assemble(manifest, gathered)
            target.apply(ckpt, stream)
            registry.record_span("repl.repair", repair_start,
                                 self._clock().now(),
                                 segments=len(manifest.segments),
                                 **labels)
        target.shards[ckpt] = (manifest, payloads)
        events.emit(self._clock().now(), events.SEGMENT_REPAIRED,
                    group=self.gid, node=target.node_id, ckpt=ckpt,
                    segments=len(manifest.segments),
                    pgs=self.layout.npgs)
        return elapsed, len(manifest.segments)

    def _segments_from(self, holders: List[ClusterNode], ckpt: int
                       ) -> Tuple[ShardManifest, List[bytes]]:
        """A canonical shard set for one checkpoint, from any holder's
        volatile cache — or re-serialized from a holder's store when
        every cache died with its node."""
        for holder in holders:
            cached = holder.shards.get(ckpt)
            if cached is not None:
                return cached
        holder = holders[0]
        local = holder.applied[ckpt]
        info = holder.sls.store.get_checkpoint(local)
        stream = migration.send_checkpoint(holder.sls, self.gid,
                                           ckpt_id=local,
                                           since=info.parent)
        sharded = shard_stream(self.gid, ckpt, stream,
                               self.segment_bytes)
        holder.shards[ckpt] = sharded
        return sharded

    # -- audit / reporting -------------------------------------------------

    def verify(self) -> Dict[str, Any]:
        """Full-replication and checksum audit over the up nodes."""
        up = self.up_nodes()
        ckpts = sorted({ckpt for node in up for ckpt in node.applied})
        copies = {ckpt: sum(1 for node in up if ckpt in node.applied)
                  for ckpt in ckpts}
        fully = all(have == len(up) for have in copies.values())
        verified = 0
        for node in up:
            for ckpt, (manifest, payloads) in node.shards.items():
                assemble(manifest, {meta.index: payloads[meta.index]
                                    for meta in manifest.segments})
                verified += len(manifest.segments)
        return {
            "checkpoints": len(ckpts),
            "copies": copies,
            "nodes_up": len(up),
            "fully_replicated": fully,
            "segments_verified": verified,
            "durable": self.durable,
        }

    def status(self) -> Dict[str, Any]:
        """The ``sls cluster`` payload."""
        registry = telemetry.registry()
        rows = []
        for node, link, health in zip(self.nodes, self.links,
                                      self.health):
            rows.append({
                "node": node.node_id,
                "az": node.az,
                "state": ("down" if node.down
                          else ("degraded" if health.degraded
                                else "up")),
                "applied": node.applied_max,
                "lag": (0 if self.durable is None
                        or node.applied_max is None
                        else max(0, len([c for c in self.acks
                                         if c <= self.durable
                                         and c not in node.applied]))),
                "streams": link.stats["streams"],
                "bytes": link.stats["bytes"],
            })
        return {
            "group": self.gid,
            "nodes": rows,
            "azs": self.azs,
            "write_quorum": self.write_quorum,
            "read_quorum": self.read_quorum,
            "durable": self.durable,
            "inter_az_bytes": self.inter_az_bytes,
            "inter_az_pretty": fmt_size(self.inter_az_bytes),
            "protection_groups": self.layout.npgs,
            "segment_bytes": self.segment_bytes,
            "quorum_lag_p50_ns": registry.histogram(
                "sls.cluster.quorum_lag",
                group=self.gid).percentile(50),
            "repair_mttr_p50_ns": registry.histogram(
                "sls.cluster.repair.segment_mttr",
                group=self.gid).percentile(50),
            "stats": dict(self.stats),
        }

    def __repr__(self) -> str:
        up = len(self.up_nodes())
        return (f"SLSCluster(group={self.gid}, {up}/{self.n} up, "
                f"W={self.write_quorum}/R={self.read_quorum}, "
                f"durable={self.durable})")
