"""The structured event log: what happened, when, on the sim clock.

Spans answer "how long"; events answer "what happened".  Every
operationally interesting state transition — a checkpoint starting,
committing or failing, an epoch floor advancing, a fault injection
firing, a GC reclaim, a scrub finding — lands in one process-wide
bounded :class:`EventLog` stamped with the simulated time at which it
occurred and the trace it belongs to (when one is active).

Emission is free on the simulated clock: an event records the
caller-supplied ``clock.now()`` and never advances anything, so
instrumented runs are timing-identical to uninstrumented ones — and
because the simulation is deterministic, so is the event log: two
identical runs produce byte-identical logs, which is what lets the
crash-schedule tests assert "this fault fired at exactly this
sim-instant".

``sls events`` prints the log; :func:`repro.core.telemetry.reset`
clears it (via the reset hook) together with the metric registry.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional

from . import telemetry

#: Event kinds.
CKPT_START = "checkpoint.start"
CKPT_COMMIT = "checkpoint.commit"
CKPT_FAIL = "checkpoint.fail"
CKPT_ABORT = "checkpoint.abort"
EPOCH_ADVANCE = "epoch.advance"
FAULT_INJECTED = "fault.injected"
GC_RECLAIM = "gc.reclaim"
SCRUB_FINDING = "scrub.finding"
RESTORE_DONE = "restore.done"
RETRY = "resilience.retry"
RETRY_EXHAUSTED = "resilience.exhausted"
READ_FALLBACK = "resilience.read_fallback"
REPAIR_APPLIED = "repair.applied"
DEGRADED_ENTER = "degraded.enter"
DEGRADED_EXIT = "degraded.exit"
GC_EMERGENCY = "gc.emergency"
LINK_DOWN = "replication.link_down"
LINK_UP = "replication.link_up"
FAILOVER = "replication.failover"
NODE_DOWN = "cluster.node_down"
NODE_UP = "cluster.node_up"
QUORUM_ACK = "cluster.quorum_ack"
QUORUM_STALL = "cluster.quorum_stall"
TAIL_TRUNCATE = "cluster.truncate"
PROMOTE = "cluster.promote"
SEGMENT_REPAIRED = "cluster.segment_repaired"
REPAIR_DONE = "cluster.repair_done"
FENCED_WRITE = "cluster.fenced_write"
EPOCH_BUMP = "cluster.epoch_bump"
LEASE_RENEW = "cluster.lease_renew"
LEASE_EXPIRE = "cluster.lease_expire"
STALE_PRIMARY = "cluster.stale_primary"
FORCED_PROMOTE = "cluster.forced_promote"
RECONCILE_DONE = "cluster.reconcile_done"
NET_PARTITION = "net.partition"
NET_HEAL = "net.heal"
FLEET_ADMIT = "fleet.admit"
FLEET_EVICT = "fleet.evict"
ADMISSION_REJECT = "fleet.admission_reject"
BACKPRESSURE = "fleet.backpressure"
DEADLINE_MISS = "fleet.deadline_miss"
SLO_ALERT = "slo.alert"


class Event:
    """One structured log entry."""

    __slots__ = ("time_ns", "kind", "fields", "trace_id")

    def __init__(self, time_ns: int, kind: str, fields: Dict[str, Any],
                 trace_id: Optional[int]):
        self.time_ns = time_ns
        self.kind = kind
        self.fields = fields
        self.trace_id = trace_id

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"time_ns": self.time_ns, "kind": self.kind,
                               "trace_id": self.trace_id}
        out.update(self.fields)
        return out

    def __repr__(self) -> str:
        return f"Event({self.time_ns}ns {self.kind} {self.fields})"


class EventLog:
    """Bounded, process-wide structured event ring."""

    #: Enough for a long benchmark run's recent history; evictions are
    #: counted in ``sls.telemetry.events_dropped``.
    CAPACITY = 4096

    def __init__(self, capacity: int = CAPACITY):
        self.events: Deque[Event] = deque(maxlen=capacity)

    def emit(self, time_ns: int, kind: str,
             **fields: Any) -> Optional[Event]:
        """Record one event (no-op while telemetry is disabled)."""
        registry = telemetry.registry()
        if not registry.enabled:
            return None
        active = registry.active_trace
        trace_id = getattr(active, "trace_id", None)
        event = Event(time_ns, kind, fields, trace_id)
        if len(self.events) == self.events.maxlen:
            registry.counter("sls.telemetry.events_dropped").add(1)
        self.events.append(event)
        registry.counter(f"sls.events.{kind}").add(1)
        return event

    def matching(self, kind: Optional[str] = None,
                 **fields: Any) -> List[Event]:
        """Events filtered by kind prefix and field subset."""
        out = []
        for event in self.events:
            if kind is not None and not event.kind.startswith(kind):
                continue
            if all(event.fields.get(k) == v for k, v in fields.items()):
                out.append(event)
        return out

    def reset(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)


_LOG = EventLog()
telemetry.on_reset(_LOG.reset)


def log() -> EventLog:
    """The process-wide event log."""
    return _LOG


def emit(time_ns: int, kind: str, **fields: Any) -> Optional[Event]:
    """Emit into the process-wide log."""
    return _LOG.emit(time_ns, kind, **fields)
