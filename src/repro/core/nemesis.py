"""Nemesis consistency harness: seeded partition campaigns against
the quorum cluster.

Each campaign builds a fresh 6-node/3-AZ cluster, drives a scripted
network-partition schedule (symmetric cuts, one-way drops, armed
mid-quorum installs, delay skew) through the cluster's delivery hooks,
heals, reconciles, and then checks two hard invariants against an
oracle of what was quorum-acknowledged:

* **No quorum-acked checkpoint is ever lost** — after the heal,
  recovery settles on exactly the oracle's last acknowledged
  checkpoint and restores byte-identical application state.
* **No fenced checkpoint is ever readable** — a checkpoint that only
  ever reached the minority side of a cut (or was written under a
  superseded epoch) appears on no node and can never be what recovery
  restores.

Campaigns are pure functions of their seed: the same seed replays the
same payloads, the same cut schedule, and the same verdict — which is
what lets CI pin three seeds and assert hard.  The ``sls nemesis`` CLI
fronts :func:`run_all`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import LeaseValid, QuorumLost
from ..machine import Machine
from ..units import MSEC, PAGE_SIZE
from .cluster import DEFAULT_LEASE_NS, SLSCluster
from .faults import PRIMARY, FaultPlan
from .orchestrator import Orchestrator, load_aurora

#: Campaign fixture geometry (a real quorum: W=4, R=3 of 6).
NODES = 6
AZS = 3
SEGMENT_BYTES = 512


class CampaignResult:
    """One campaign's verdict: violations are invariant breaches."""

    def __init__(self, name: str, seed: int) -> None:
        self.name = name
        self.seed = seed
        self.violations: List[str] = []
        self.details: Dict[str, Any] = {}

    @property
    def passed(self) -> bool:
        return not self.violations

    def as_dict(self) -> Dict[str, Any]:
        return {
            "campaign": self.name,
            "seed": self.seed,
            "passed": self.passed,
            "violations": list(self.violations),
            "details": dict(self.details),
        }

    def __repr__(self) -> str:
        verdict = "ok" if self.passed else "FAILED"
        return f"CampaignResult({self.name}@{self.seed}: {verdict})"


class NemesisFixture:
    """One primary with an attached service, its cluster, and an
    installed fault plan to carry the partition schedule."""

    def __init__(self, seed: int,
                 lease_ns: int = DEFAULT_LEASE_NS) -> None:
        self.seed = seed
        self.machine = Machine()
        self.sls: Orchestrator = load_aurora(self.machine)
        self.proc = self.machine.kernel.spawn("svc")
        self.addr = self.proc.vmspace.mmap(16 * PAGE_SIZE, name="heap")
        self.group = self.sls.attach(self.proc, name="svc",
                                     periodic=False)
        self.cluster = SLSCluster(self.sls, self.group, nodes=NODES,
                                  azs=AZS, segment_bytes=SEGMENT_BYTES,
                                  lease_ns=lease_ns)
        self.plan = FaultPlan(name=f"nemesis-{seed}", seed=seed)
        self.machine.set_fault_plan(self.plan)

    def commit(self, tag: str) -> Tuple[int, bytes]:
        """Write a seed-derived payload and sync-checkpoint it;
        returns ``(primary ckpt id, expected state bytes)``."""
        payload = (f"{tag}:{self.seed}".encode() * 7)[:96]
        self.proc.vmspace.write(self.addr, payload)
        self.proc.vmspace.write(self.addr + 3 * PAGE_SIZE,
                                tag.encode() + b":" + payload)
        result = self.sls.checkpoint(self.group, name=tag, sync=True)
        return int(result.info.ckpt_id), self.read(self.proc)

    def read(self, root: Any) -> bytes:
        return (root.vmspace.read(self.addr, 96) + b"|"
                + root.vmspace.read(self.addr + 3 * PAGE_SIZE, 100))

    def reinstall_plan(self) -> None:
        """A machine crash clears the fault plan; campaigns that keep
        partitioning after the primary dies re-install it."""
        self.machine.set_fault_plan(self.plan)


def _check_recovery(fx: NemesisFixture, result: CampaignResult,
                    expect_durable: int, expect_state: bytes,
                    fenced: List[int]) -> None:
    """The two hard invariants, checked by full recovery."""
    for node in fx.cluster.nodes:
        for ckpt in fenced:
            if ckpt in node.applied:
                result.violations.append(
                    f"fenced checkpoint {ckpt} readable on node "
                    f"{node.node_id}")
    if fx.machine.kernel is not None:
        fx.machine.crash()
    try:
        recovery = fx.cluster.recover()
    except Exception as exc:  # noqa: BLE001 - verdict, not control flow
        result.violations.append(
            f"recovery failed after heal: {type(exc).__name__}: {exc}")
        return
    result.details["recovered_durable"] = recovery.durable
    if recovery.durable != expect_durable:
        result.violations.append(
            f"recovery settled on checkpoint {recovery.durable}, "
            f"oracle's last quorum-acked is {expect_durable}")
    if recovery.durable in fenced:
        result.violations.append(
            f"recovery restored fenced checkpoint {recovery.durable}")
    got = fx.read(recovery.result.root)
    if got != expect_state:
        result.violations.append(
            "recovered state diverges from the oracle's last "
            "quorum-acked state")


def _campaign_majority_away(seed: int) -> CampaignResult:
    """Partition the write-quorum majority away from the primary: the
    watermark must stall, and the heal must deliver everything."""
    result = CampaignResult("majority-away", seed)
    fx = NemesisFixture(seed)
    v1, _ = fx.commit("v1")
    assert fx.cluster.pump() == v1
    fx.plan.partition([PRIMARY], [2, 3, 4, 5])
    v2, state2 = fx.commit("v2")
    durable = fx.cluster.pump()
    result.details["stalled_at"] = durable
    if durable != v1:
        result.violations.append(
            f"watermark advanced to {durable} with only a minority "
            f"reachable")
    stall = fx.cluster.stall_reason()
    result.details["stall_reason"] = stall
    if stall is None:
        result.violations.append("no stall reason while quorum-stalled")
    fx.plan.heal()
    if fx.cluster.pump() != v2:
        result.violations.append(
            "heal did not let the stalled checkpoint reach quorum")
    _check_recovery(fx, result, v2, state2, fenced=[])
    return result


def _campaign_primary_isolated(seed: int) -> CampaignResult:
    """One-way isolate the primary (nothing returns to it): lease
    expires, failover fences the old epoch, the ex-primary's divergent
    tail is fenced and reconciled away."""
    result = CampaignResult("primary-isolated", seed)
    fx = NemesisFixture(seed)
    v1, state1 = fx.commit("v1")
    assert fx.cluster.pump() == v1
    # Every node→primary direction drops: deltas still land on node
    # media, but no ack (and no lease grant) ever returns.
    fx.plan.asym_partition(list(range(NODES)), [PRIMARY])
    v2, _ = fx.commit("v2")
    if fx.cluster.pump() != v1:
        result.violations.append(
            "watermark advanced although no acknowledgement could "
            "return to the primary")
    # The incumbent is alive and (briefly) holds a valid lease:
    # failover must refuse until the lease runs out.
    premature: Optional[str] = None
    if fx.machine.clock.now() < fx.cluster.lease_until:
        try:
            fx.cluster.failover()
            premature = "failover succeeded under a live lease"
        except LeaseValid:
            pass
        if premature:
            result.violations.append(premature)
    fx.machine.clock.advance(2 * fx.cluster.lease_ns)
    fx.cluster.pump()  # lease expiry fires here (B_LEASE boundary)
    fx.cluster.failover()
    result.details["epoch_bumps"] = fx.cluster.stats["epoch_bumps"]
    # The still-isolated ex-primary keeps committing; on heal its next
    # ship must be fenced, not applied.
    v3, _ = fx.commit("v3")
    fx.cluster.pump()
    fenced_writes = fx.cluster.stats["fenced_writes"]
    result.details["fenced_writes"] = fenced_writes
    if fenced_writes == 0:
        result.violations.append(
            "displaced primary's writes were never fenced")
    if not fx.cluster.fenced:
        result.violations.append(
            "displaced primary did not drain into stale-primary mode")
    fx.plan.heal()
    report = fx.cluster.reconcile()
    result.details["reconcile"] = {
        "fenced": report["fenced"],
        "reconcile_bytes": report["reconcile_bytes"],
    }
    _check_recovery(fx, result, v1, state1, fenced=[v2, v3])
    return result


def _campaign_ack_path_cut(seed: int) -> CampaignResult:
    """Arm a partial cut of the ack directions mid-quorum: copies land
    on media but earn no credit until the heal re-registers them."""
    result = CampaignResult("ack-path-cut", seed)
    fx = NemesisFixture(seed)
    v1, _ = fx.commit("v1")
    assert fx.cluster.pump() == v1
    # Install once the second node of the next pump has applied: acks
    # from nodes 2..5 then drop, leaving 2 < W credits.
    arm_at = len(fx.plan.repl_log) + 6
    fx.plan.partial_partition([(n, PRIMARY) for n in (2, 3, 4, 5)],
                              at_repl=arm_at)
    v2, state2 = fx.commit("v2")
    durable = fx.cluster.pump()
    result.details["stalled_at"] = durable
    if durable != v1:
        result.violations.append(
            "watermark advanced on acks that never crossed the cut")
    on_media = sum(1 for node in fx.cluster.nodes
                   if v2 in node.applied)
    result.details["copies_on_media"] = on_media
    if on_media < fx.cluster.write_quorum:
        result.violations.append(
            f"only {on_media} copies landed; the ship direction was "
            f"never cut")
    fx.plan.heal()
    if fx.cluster.pump() != v2:
        result.violations.append(
            "heal did not re-register the on-media copies")
    _check_recovery(fx, result, v2, state2, fenced=[])
    return result


def _campaign_partition_during_failover(seed: int) -> CampaignResult:
    """Partition the candidate's side below W during failover: the
    epoch bump must refuse, and nothing may change until the heal."""
    result = CampaignResult("partition-during-failover", seed)
    fx = NemesisFixture(seed)
    v1, state1 = fx.commit("v1")
    assert fx.cluster.pump() == v1
    fx.machine.crash()  # the primary dies outright
    fx.reinstall_plan()
    fx.plan.partition([0, 1], [2, 3, 4, 5])
    try:
        fx.cluster.failover()
        result.violations.append(
            "failover won an epoch bump without a write quorum")
    except QuorumLost:
        pass
    promised = max(node.promised_epoch for node in fx.cluster.nodes)
    if promised > 1:
        result.violations.append(
            f"a failed epoch bump left a durable promise ({promised})")
    fx.plan.heal()
    fx.cluster.failover()
    result.details["epoch_bumps"] = fx.cluster.stats["epoch_bumps"]
    if max(node.promised_epoch for node in fx.cluster.nodes) < 2:
        result.violations.append(
            "post-heal failover did not durably bump the epoch")
    _check_recovery(fx, result, v1, state1, fenced=[])
    return result


def _campaign_asym_flap_repair(seed: int) -> CampaignResult:
    """Flap one-way cuts and delay skew across repair: donor fallback
    must route around unreachable holders and still converge."""
    result = CampaignResult("asym-flap-repair", seed)
    fx = NemesisFixture(seed)
    v1, _ = fx.commit("v1")
    v2, state2 = fx.commit("v2")
    assert fx.cluster.pump() == v2
    # A blank replacement node takes over slot 5.
    wiped = fx.cluster.nodes[5]
    wiped.wipe()
    fx.cluster.links[5].dst_sls = wiped.sls
    for acks in fx.cluster.acks.values():
        acks.discard(5)
    # Donors 0 and 1 cannot reach the target; donor 2 is slow.
    fx.plan.asym_partition([0, 1], [5])
    fx.plan.delay_link(2, 5, 2 * MSEC)
    report = fx.cluster.repair()
    result.details["repair"] = {
        "checkpoints": report["checkpoints"],
        "segments": report["segments"],
        "skipped": report["skipped"],
    }
    if report["checkpoints"] != 2:
        result.violations.append(
            f"repair rebuilt {report['checkpoints']} checkpoints "
            f"through the flap, expected 2")
    fx.plan.heal()
    audit = fx.cluster.verify()
    if not audit["fully_replicated"]:
        result.violations.append(
            "cluster not fully replicated after repair + heal")
    _check_recovery(fx, result, v2, state2, fenced=[])
    return result


#: Campaign registry, in documentation order.
CAMPAIGNS: Dict[str, Callable[[int], CampaignResult]] = {
    "majority-away": _campaign_majority_away,
    "primary-isolated": _campaign_primary_isolated,
    "ack-path-cut": _campaign_ack_path_cut,
    "partition-during-failover": _campaign_partition_during_failover,
    "asym-flap-repair": _campaign_asym_flap_repair,
}


def run_campaign(name: str, seed: int) -> CampaignResult:
    """Run one named campaign at one seed."""
    try:
        campaign = CAMPAIGNS[name]
    except KeyError:
        raise ValueError(
            f"unknown campaign {name!r} (have: "
            f"{', '.join(sorted(CAMPAIGNS))})") from None
    return campaign(seed)


def run_all(seed: int,
            names: Optional[List[str]] = None) -> List[CampaignResult]:
    """Run every campaign (or the named subset) at one seed."""
    return [run_campaign(name, seed)
            for name in (names or list(CAMPAIGNS))]
