"""Retry/backoff policy and degraded-mode health state for the
self-healing storage path.

Aurora promises persistence as an always-on OS service: the 100 Hz
checkpoint loop should survive a device hiccup the way a real kernel
survives a SCSI retry, not die on the first ``EIO``.  This module is
the policy half of that promise:

* :class:`RetryPolicy` retries *retryable* failures
  (:class:`~repro.errors.TransientDeviceError` from the simulated
  NVMe array, :class:`~repro.errors.LinkDown` from the replication
  link) with bounded attempts, exponential backoff on the simulated
  clock, and deterministic jitter from a seeded RNG.  When attempts or
  the per-operation deadline run out it raises
  :class:`~repro.errors.RetriesExhausted` carrying the last error.
  Every retry and every exhaustion lands in the structured event log
  and the metric registry; backoff waits are recorded as
  ``resilience.backoff`` spans so traces show where the time went.
* :class:`GroupHealth` is the per-consistency-group degraded-mode
  state machine the orchestrator drives: ``ok`` → ``degraded`` on
  ENOSPC (memory-only checkpoints + emergency GC) or on
  :data:`DEVICE_FAILURE_THRESHOLD` consecutive exhausted checkpoints
  (widened checkpoint interval), and back to ``ok`` when a probe
  checkpoint succeeds.  Transition timestamps feed the ``sls slo``
  degraded-time budget.

Determinism: backoff delays are a pure function of the policy seed
and the attempt sequence, and they advance the *simulated* clock, so
a run with retries is exactly as reproducible as one without.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Tuple, Type, TypeVar

from ..errors import LinkDown, RetriesExhausted, TransientDeviceError
from ..units import MSEC, USEC
from . import events as sls_events
from . import telemetry

T = TypeVar("T")

#: Failures a retry may cure; everything else propagates immediately.
RETRYABLE: Tuple[Type[Exception], ...] = (TransientDeviceError, LinkDown)

#: Default policy: five attempts, 50 us first backoff doubling to a
#: 2 ms cap, all inside a 20 ms per-operation deadline (two checkpoint
#: periods — a storage op slower than that has missed its slot anyway).
DEFAULT_MAX_ATTEMPTS = 5
DEFAULT_BASE_BACKOFF_NS = 50 * USEC
DEFAULT_MAX_BACKOFF_NS = 2 * MSEC
DEFAULT_DEADLINE_NS = 20 * MSEC

#: Health states and degradation reasons.
HEALTH_OK = "ok"
HEALTH_DEGRADED = "degraded"
REASON_ENOSPC = "enospc"
REASON_DEVICE = "device"
#: A fenced ex-primary draining after a newer membership epoch won.
REASON_STALE_PRIMARY = "stale_primary"

#: Consecutive exhausted checkpoints before the group degrades.
DEVICE_FAILURE_THRESHOLD = 3
#: Checkpoint-interval multiplier while degraded for device errors.
WIDEN_FACTOR = 4
#: While degraded for ENOSPC, try a real (disk) checkpoint every Nth
#: tick as the recovery probe; the rest stay memory-only.  This is the
#: *default* cadence: each consistency group carries its own
#: ``probe_every`` (``sls attach --probe-every``, shown by
#: ``sls fleet``) so a tenant on a slow-to-recover store can probe
#: less aggressively than its neighbours.
DEFAULT_PROBE_EVERY = 5
#: Backward-compatible alias for the pre-fleet name.
PROBE_EVERY = DEFAULT_PROBE_EVERY


class _ClockLike:
    """Structural stand-in for :class:`repro.hw.clock.SimClock`."""

    def now(self) -> int:  # pragma: no cover - protocol only
        raise NotImplementedError

    def advance(self, delta_ns: int) -> int:  # pragma: no cover
        raise NotImplementedError


class RetryPolicy:
    """Bounded, deterministic retry with sim-clock backoff."""

    def __init__(self, clock: _ClockLike, *,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 base_backoff_ns: int = DEFAULT_BASE_BACKOFF_NS,
                 max_backoff_ns: int = DEFAULT_MAX_BACKOFF_NS,
                 deadline_ns: int = DEFAULT_DEADLINE_NS,
                 seed: int = 0, op: str = "io"):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.clock = clock
        self.max_attempts = max_attempts
        self.base_backoff_ns = base_backoff_ns
        self.max_backoff_ns = max_backoff_ns
        self.deadline_ns = deadline_ns
        self.op = op
        self._rng = random.Random(seed)

    def backoff_ns(self, attempt: int) -> int:
        """Delay before retry number ``attempt`` (1-based): exponential
        with full deterministic jitter, capped at ``max_backoff_ns``."""
        base = min(self.max_backoff_ns,
                   self.base_backoff_ns << (attempt - 1))
        return base + self._rng.randrange(base // 2 + 1)

    def run(self, fn: Callable[[], T], *, op: Optional[str] = None) -> T:
        """Call ``fn`` until it succeeds, a non-retryable error
        propagates, or attempts/deadline run out
        (:class:`~repro.errors.RetriesExhausted`)."""
        op = op or self.op
        started = self.clock.now()
        attempt = 0
        while True:
            try:
                return fn()
            except RETRYABLE as exc:
                attempt += 1
                now = self.clock.now()
                registry = telemetry.registry()
                out_of_attempts = attempt >= self.max_attempts
                out_of_time = now - started >= self.deadline_ns
                if out_of_attempts or out_of_time:
                    sls_events.emit(now, sls_events.RETRY_EXHAUSTED,
                                    op=op, attempts=attempt,
                                    error=type(exc).__name__)
                    registry.counter("sls.resilience.exhausted",
                                     op=op).add(1)
                    why = ("deadline" if out_of_time else
                           f"{self.max_attempts} attempts")
                    raise RetriesExhausted(
                        f"{op}: gave up after {why}: {exc}",
                        last_error=exc) from exc
                delay = self.backoff_ns(attempt)
                # Never back off past the deadline: the final attempt
                # happens while the operation still has a chance.
                delay = min(delay, started + self.deadline_ns - now)
                sls_events.emit(now, sls_events.RETRY, op=op,
                                attempt=attempt, backoff_ns=delay,
                                error=type(exc).__name__)
                registry.counter("sls.resilience.retries", op=op).add(1)
                if delay > 0:
                    self.clock.advance(delay)
                    registry.record_span("resilience.backoff", now,
                                         now + delay, op=op,
                                         attempt=attempt)


#: Consecutive failed ships before a cluster peer is considered
#: degraded (the pump stops hammering it every round).
PEER_FAILURE_THRESHOLD = 2
#: While a peer is degraded, probe it every Nth pump round.
PEER_PROBE_EVERY = 4


class PeerHealth:
    """Per-cluster-node health as seen by the replication pump.

    Mirrors :class:`GroupHealth` but for a *remote* failure domain: a
    node whose ships keep exhausting their retries degrades, and a
    degraded node is only probed every :data:`PEER_PROBE_EVERY` pump
    rounds instead of dragging every round through a full retry
    budget.  Any successful ship restores it to ``ok``.
    """

    __slots__ = ("state", "consecutive_failures", "rounds",
                 "degraded_since")

    def __init__(self) -> None:
        self.state = HEALTH_OK
        self.consecutive_failures = 0
        #: Pump rounds seen while degraded (drives the probe cadence).
        self.rounds = 0
        self.degraded_since: Optional[int] = None

    @property
    def degraded(self) -> bool:
        return self.state == HEALTH_DEGRADED

    def record_failure(self, now_ns: int) -> bool:
        """One exhausted ship; returns True when this tipped the peer
        into degraded."""
        self.consecutive_failures += 1
        if (not self.degraded
                and self.consecutive_failures >= PEER_FAILURE_THRESHOLD):
            self.state = HEALTH_DEGRADED
            self.degraded_since = now_ns
            self.rounds = 0
            return True
        return False

    def record_success(self) -> bool:
        """One good ship; returns True when the peer just recovered."""
        recovered = self.degraded
        self.state = HEALTH_OK
        self.consecutive_failures = 0
        self.rounds = 0
        self.degraded_since = None
        return recovered

    def should_attempt(self) -> bool:
        """Whether the pump should ship to this peer this round."""
        if not self.degraded:
            return True
        self.rounds += 1
        return self.rounds % PEER_PROBE_EVERY == 0

    def __repr__(self) -> str:
        if not self.degraded:
            return "PeerHealth(ok)"
        return (f"PeerHealth(degraded, "
                f"{self.consecutive_failures} failures)")


class GroupHealth:
    """Degraded-mode state for one consistency group.

    The orchestrator owns the transitions; this object just keeps
    them honest (no double-enter, spell accounting for the SLO feed).
    """

    __slots__ = ("state", "reason", "entered_ns", "ticks",
                 "consecutive_failures")

    def __init__(self) -> None:
        self.state = HEALTH_OK
        self.reason: Optional[str] = None
        #: Sim-instant the current degraded spell began.
        self.entered_ns: Optional[int] = None
        #: Degraded ticks seen this spell (drives probe cadence).
        self.ticks = 0
        #: Exhausted periodic checkpoints since the last success.
        self.consecutive_failures = 0

    @property
    def degraded(self) -> bool:
        return self.state == HEALTH_DEGRADED

    def enter(self, reason: str, now_ns: int) -> None:
        if self.degraded:
            self.reason = reason
            return
        self.state = HEALTH_DEGRADED
        self.reason = reason
        self.entered_ns = now_ns
        self.ticks = 0

    def exit(self, now_ns: int) -> int:
        """Leave degraded mode; returns the spell length in ns."""
        spell = now_ns - (self.entered_ns or now_ns)
        self.state = HEALTH_OK
        self.reason = None
        self.entered_ns = None
        self.ticks = 0
        self.consecutive_failures = 0
        return spell

    def __repr__(self) -> str:
        if not self.degraded:
            return "GroupHealth(ok)"
        return (f"GroupHealth(degraded/{self.reason}, "
                f"{self.ticks} ticks)")
