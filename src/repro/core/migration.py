"""``sls send`` / ``sls recv``: application migration between machines.

A checkpoint is serialized into a self-contained stream (records +
page payloads) and imported into another machine's object store as a
fresh checkpoint, where a normal restore resumes the application —
the transparent-migration building block of §1.  Incremental streams
carry only the deltas since a baseline the receiver already holds,
which is the pre-copy primitive live migration is built from.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import serde
from ..errors import RestoreError, SLSError
from ..hw.memory import Page
from ..units import PAGE_SIZE

STREAM_MAGIC = "aurora-stream-v1"


def _encode_pages(page_locs, store) -> dict:
    """Page payloads for the stream: seeds for synthetic pages, bytes
    otherwise."""
    out: Dict[str, dict] = {}
    for oid, locators in page_locs.items():
        obj_pages = {}
        for pindex, locator in locators.items():
            if locator.kind == "syn":
                obj_pages[str(pindex)] = {"seed": locator.seed}
            else:
                page = store.fetch_page(locator)
                obj_pages[str(pindex)] = {"data": page.realize()}
        out[str(oid)] = obj_pages
    return out


def send_checkpoint(sls, group_id: int, ckpt_id: Optional[int] = None,
                    since: Optional[int] = None) -> bytes:
    """Serialize a checkpoint into a migration stream.

    ``since`` produces an *incremental* stream: only the deltas of
    checkpoints newer than that id (the receiver must already hold the
    baseline).  Without it the stream carries the full merged view.
    """
    store = sls.store
    if ckpt_id is None:
        chain = store.checkpoints_for(group_id, include_partial=True)
        if not chain:
            raise SLSError(f"group {group_id} has nothing to send")
        ckpt_id = chain[-1].ckpt_id

    if since is None:
        record_extents, page_locs = store.merged_view(ckpt_id)
    else:
        record_extents, page_locs = {}, {}
        for info in store.parent_chain(ckpt_id):
            if info.ckpt_id <= since:
                break
            for oid, extent in info.object_records.items():
                record_extents.setdefault(oid, extent)
            for oid, page_map in info.pages.items():
                target = page_locs.setdefault(oid, {})
                for pindex, locator in page_map.items():
                    target.setdefault(pindex, locator)

    records = {}
    for oid, extent in record_extents.items():
        _oid, otype, state = store.read_object_record(extent, oid=oid)
        records[str(oid)] = [otype, state]

    stream = serde.dumps({
        "magic": STREAM_MAGIC,
        "group_id": group_id,
        "ckpt_id": ckpt_id,
        "since": since,
        "records": records,
        "pages": _encode_pages(page_locs, store),
    })
    # Charge the wire time on the sender's clock.
    sls.machine.clock.advance(sls.machine.nic.send(len(stream)))
    return stream


def recv_checkpoint(sls, stream: bytes, name: str = "recv") -> int:
    """Import a migration stream; returns the new local checkpoint id.

    Full streams create a new baseline; incremental streams chain onto
    the group's newest local checkpoint.  ``name`` labels the imported
    checkpoint; cluster replicas encode the primary's checkpoint id in
    it so the mapping survives a replica reboot.
    """
    document = serde.loads(stream)
    if document.get("magic") != STREAM_MAGIC:
        raise RestoreError("not an Aurora migration stream")
    store = sls.store
    group_id = document["group_id"]
    parent = None
    if document["since"] is not None:
        chain = store.checkpoints_for(group_id, include_partial=True)
        if not chain:
            raise RestoreError("incremental stream without a local "
                               "baseline")
        parent = chain[-1].ckpt_id
    txn = store.begin_checkpoint(group_id, name=name, parent=parent)
    for oid_str, (otype, state) in document["records"].items():
        txn.put_object(int(oid_str), otype, state)
    for oid_str, obj_pages in document["pages"].items():
        pages = {}
        for pindex_str, payload in obj_pages.items():
            if "seed" in payload:
                pages[int(pindex_str)] = Page(seed=payload["seed"])
            else:
                pages[int(pindex_str)] = Page(data=payload["data"])
        txn.put_pages(int(oid_str), pages)
    info = store.commit(txn, sync=True)
    return info.ckpt_id


def migrate(src_sls, dst_sls, group, rounds: int = 2):
    """Pre-copy live migration: iterative incremental streams, then a
    final stop-and-copy round, then restore on the destination.

    Returns the destination RestoreResult.
    """
    group_id = group.group_id
    src_sls.checkpoint(group, name="migrate-base", full=True, sync=True)
    baseline = group.last_complete_id
    stream = send_checkpoint(src_sls, group_id, ckpt_id=baseline)
    recv_checkpoint(dst_sls, stream)
    last_sent = baseline

    for _round in range(max(rounds - 1, 0)):
        src_sls.checkpoint(group, name="migrate-delta", sync=True)
        delta_id = group.last_complete_id
        if delta_id == last_sent:
            break
        stream = send_checkpoint(src_sls, group_id, ckpt_id=delta_id,
                                 since=last_sent)
        recv_checkpoint(dst_sls, stream)
        last_sent = delta_id

    # Final round: stop the source for good.
    src_sls.checkpoint(group, name="migrate-final", sync=True)
    final_id = group.last_complete_id
    if final_id != last_sent:
        stream = send_checkpoint(src_sls, group_id, ckpt_id=final_id,
                                 since=last_sent)
        recv_checkpoint(dst_sls, stream)
    for proc in list(group.processes):
        group.remove_process(proc)
        proc.exit(0)
    src_sls.groups.pop(group_id, None)
    if group.timer is not None:
        group.timer.cancel()
        group.timer = None
    return dst_sls.restore(group_id)
