"""The ``sls`` command line interface (Table 2).

The persistent thing between invocations is — as on a real Aurora
machine — the *disk*: an image file holding the simulated NVMe
array's contents.  Each command boots a fresh machine against the
image, recovers the object store, performs its operation, and writes
the array back.  Because applications here are simulated processes,
``sls spawn`` and ``sls run`` exist to create and advance a demo
workload that the Table 2 verbs can then operate on.

    sls init /tmp/aurora.img
    sls spawn /tmp/aurora.img myapp --memory-kib 256
    sls run /tmp/aurora.img 2 --millis 50
    sls ps /tmp/aurora.img
    sls checkpoint /tmp/aurora.img 2 --name before-upgrade
    sls restore /tmp/aurora.img 2
    sls scrub /tmp/aurora.img
    sls diff /tmp/aurora.img 2
    sls dump /tmp/aurora.img 2 -o core.elf
    sls send /tmp/aurora.img 2 -o app.stream
    sls recv /tmp/other.img app.stream
"""

from __future__ import annotations

import argparse
import pickle
import sys
from typing import Optional, Tuple

from ..errors import StoreError
from ..machine import Machine
from ..units import KiB, MSEC, PAGE_SIZE, fmt_size, fmt_time
from . import migration
from .coredump import dump_process

IMAGE_VERSION = 1


def _save_image(machine: Machine, path: str) -> None:
    # Let queued device IO and the commit events riding on it land.
    # (A plain drain() would spin forever on periodic checkpoint
    # timers, which are volatile and not part of the image anyway.)
    for _ in range(8):
        deadline = max((dev._busy_until
                        for dev in machine.storage.devices), default=0)
        if deadline <= machine.clock.now():
            break
        machine.loop.run_until(deadline)
    machine.storage.poll()
    image = {
        "version": IMAGE_VERSION,
        "clock_ns": machine.clock.now(),
        "devices": [dict(dev._extents) for dev in machine.storage.devices],
    }
    with open(path, "wb") as handle:
        pickle.dump(image, handle)


def _boot_from_image(path: str) -> Machine:
    with open(path, "rb") as handle:
        image = pickle.load(handle)
    if image.get("version") != IMAGE_VERSION:
        raise SystemExit(f"unsupported image version in {path}")
    machine = Machine(start_ns=image["clock_ns"])
    for device, extents in zip(machine.storage.devices, image["devices"]):
        device._extents.update(extents)
    return machine


def _load(path: str) -> Tuple[Machine, object]:
    from .orchestrator import load_aurora

    machine = _boot_from_image(path)
    sls = load_aurora(machine)
    return machine, sls


# -- commands ------------------------------------------------------------------------


def cmd_init(args) -> int:
    """``sls init``: format a fresh Aurora image."""
    from .orchestrator import load_aurora

    machine = Machine()
    load_aurora(machine)
    _save_image(machine, args.image)
    print(f"initialized Aurora image at {args.image}")
    return 0


def cmd_spawn(args) -> int:
    """``sls spawn``: create, attach and checkpoint a demo app."""
    machine, sls = _load(args.image)
    kernel = machine.kernel
    proc = kernel.spawn(args.name)
    nbytes = args.memory_kib * KiB
    addr = proc.vmspace.mmap(nbytes, name="heap")
    proc.vmspace.fill(addr, nbytes // PAGE_SIZE, seed=0xC0DE)
    proc.vmspace.write(addr, f"{args.name}:step0".encode().ljust(64, b"\x00"))
    proc.vmspace.write(addr + 64, b"0".ljust(8, b"\x00"))
    group = sls.attach(proc, name=args.name,
                       period_ns=args.period_ms * MSEC, periodic=False)
    sls.checkpoint(group, name="spawn", full=True, sync=True)
    _save_image(machine, args.image)
    print(f"spawned {args.name!r} as group {group.group_id} "
          f"({fmt_size(nbytes)} resident)")
    return 0


def cmd_ps(args) -> int:
    """``sls ps``: list applications in the store."""
    _machine, sls = _load(args.image)
    rows = sls.ps()
    if not rows:
        print("no applications in the store")
        return 0
    print(f"{'GROUP':>5}  {'NAME':<16} {'CKPTS':>5}  {'LATEST':>6}")
    for row in rows:
        print(f"{row['group_id']:>5}  {row['name']:<16} "
              f"{row['checkpoints']:>5}  {row['latest_ckpt']:>6}")
    return 0


def _restore_group(sls, group_id: int, lazy: bool = False):
    result = sls.restore(group_id, lazy=lazy, periodic=False)
    return result


def cmd_run(args) -> int:
    """``sls run``: restore, do work with checkpoints, save."""
    machine, sls = _load(args.image)
    result = _restore_group(sls, args.group)
    group = result.group
    proc = result.root
    heap = next(e for e in proc.vmspace.map if e.name == "heap")
    addr = heap.start_page * PAGE_SIZE
    step = int(proc.vmspace.read(addr + 64, 8).rstrip(b"\x00") or b"0")
    period = group.period_ns
    deadline = machine.clock.now() + args.millis * MSEC
    while machine.clock.now() < deadline:
        step += 1
        proc.vmspace.write(addr, f"{group.name}:step{step}".encode())
        proc.vmspace.write(addr + 64, str(step).encode())
        proc.vmspace.touch(addr + 2 * PAGE_SIZE,
                           min(8, heap.npages - 2), seed=step)
        machine.run_for(period)
        if not group.flush_in_progress:
            sls.checkpoint(group, sync=True)
    _save_image(machine, args.image)
    print(f"ran group {args.group} for {args.millis} ms "
          f"(now at step {step}, "
          f"{group.stats['checkpoints']} checkpoints)")
    return 0


def _measure(args):
    """Shared measurement loop for the telemetry commands: restore the
    group and run ``args.checkpoints`` synchronous checkpoints on its
    cadence.  Telemetry is in-process (not part of the disk image), so
    every observability command re-runs the workload; the image is
    left untouched.
    """
    machine, sls = _load(args.image)
    result = _restore_group(sls, args.group)
    group = result.group
    for _ in range(args.checkpoints):
        machine.run_for(group.period_ns)
        sls.checkpoint(group, sync=True)
    return machine, sls, group


def cmd_stat(args) -> int:
    """``sls stat``: per-group per-stage checkpoint breakdown."""
    from . import telemetry
    from .pipeline import STAGE_ORDER, STOP_STAGES

    _machine, _sls, group = _measure(args)

    registry = telemetry.registry()
    order = {stage: index for index, stage in enumerate(STAGE_ORDER)}
    rows = sorted(registry.stage_rows(group.group_id),
                  key=lambda row: order.get(row["stage"], len(order)))
    print(f"group {group.group_id} ({group.name}): "
          f"{group.stats['checkpoints']} checkpoint(s) measured")
    print(f"{'STAGE':<10} {'KIND':<8} {'COUNT':>5} {'TOTAL':>12} "
          f"{'MEAN':>12} {'P50':>12} {'P95':>12} {'P99':>12} {'MAX':>12}")
    for row in rows:
        kind = "stop" if row["stage"] in STOP_STAGES else "overlap"
        print(f"{row['stage']:<10} {kind:<8} {row['count']:>5} "
              f"{fmt_time(row['total_ns']):>12} "
              f"{fmt_time(int(row['mean_ns'])):>12} "
              f"{fmt_time(row['p50_ns']):>12} "
              f"{fmt_time(row['p95_ns']):>12} "
              f"{fmt_time(row['p99_ns']):>12} "
              f"{fmt_time(row['max_ns']):>12}")
    checkpoints = max(group.stats["checkpoints"], 1)
    print(f"stop time: mean "
          f"{fmt_time(group.stats['stop_ns_total'] // checkpoints)}, "
          f"max {fmt_time(group.stats['stop_ns_max'])}; "
          f"{fmt_size(group.stats['bytes_flushed'])} flushed")
    # Throughput over the measured window (checkpoints x period), so
    # scale runs are legible straight from the CLI.
    elapsed_s = checkpoints * group.period_ns / 1e9
    if elapsed_s > 0:
        print(f"throughput: "
              f"{group.stats['pages_flushed'] / elapsed_s:,.0f} pages/s, "
              f"{group.stats['records_written'] / elapsed_s:,.0f} records/s "
              f"({group.stats['pages_flushed']} pages, "
              f"{group.stats['records_written']} records over "
              f"{elapsed_s:.2f}s simulated)")
    dropped = registry.value("sls.telemetry.spans_dropped")
    print(f"span ring: {len(registry.spans)} retained, "
          f"{dropped} dropped")
    return 0


def cmd_trace(args) -> int:
    """``sls trace``: export causal operation traces.

    Runs the measurement loop and exports the finished traces as a
    Chrome ``trace_event`` document (``--chrome``, Perfetto-loadable)
    and/or prints a per-checkpoint critical-path summary.
    """
    import json

    from . import tracing

    _machine, _sls, group = _measure(args)

    traces = tracing.tracer().traces(group=group.group_id)
    if args.chrome:
        doc = tracing.chrome_trace(traces)
        tracing.validate_chrome_trace(doc)
        with open(args.chrome, "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
        print(f"wrote {len(doc['traceEvents'])} trace events to "
              f"{args.chrome}")
    ckpts = [t for t in traces if t.kind == tracing.CHECKPOINT]
    complete = sum(1 for t in ckpts if t.complete)
    print(f"group {group.group_id}: {len(ckpts)} checkpoint trace(s), "
          f"{complete} complete")
    for trace_obj in ckpts[-args.show:]:
        coverage = tracing.child_coverage(trace_obj)
        state = "complete" if trace_obj.complete else "INCOMPLETE"
        print(f"  trace #{trace_obj.trace_id} [{state}] "
              f"{fmt_time(trace_obj.duration_ns())} wall, "
              f"{len(trace_obj.spans)} span(s), "
              f"{coverage:.0%} stage coverage")
        for row in tracing.critical_path(trace_obj):
            if row["duration_ns"] == 0:
                continue
            print(f"    {row['name']:<18} {fmt_time(row['duration_ns']):>12} "
                  f"(self {fmt_time(row['self_ns'])})")
    return 0


def cmd_metrics(args) -> int:
    """``sls metrics``: registry export (Prometheus text or JSON)."""
    import json

    from . import telemetry, tracing

    _measure(args)
    if args.format == "prom":
        payload = tracing.prometheus_text(telemetry.registry())
    else:
        payload = json.dumps(tracing.metrics_json(telemetry.registry()),
                             indent=2) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload)
        print(f"wrote metrics to {args.output}")
    else:
        sys.stdout.write(payload)
    return 0


def cmd_events(args) -> int:
    """``sls events``: the structured event log of the measurement run."""
    from . import events as events_mod
    from . import telemetry

    _measure(args)
    log = events_mod.log()
    registry = telemetry.registry()
    dropped = registry.value("sls.telemetry.events_dropped")
    traces_dropped = registry.value("sls.telemetry.traces_dropped")
    entries = list(log)
    if args.kind:
        entries = [e for e in entries if e.kind.startswith(args.kind)]
    if args.since is not None:
        entries = [e for e in entries if e.time_ns >= args.since]
    shown = entries[-args.limit:] if args.limit else entries
    print(f"events: {len(log)} retained, events_dropped={dropped}, "
          f"traces_dropped={traces_dropped}")
    print(f"{'TIME':>14}  {'TRACE':>6}  {'KIND':<18} FIELDS")
    if dropped:
        # The ring wrapped: history older than the listing was
        # evicted; mark the discontinuity explicitly.
        print(f"{'...':>14}  {'-':>6}  {'(gap)':<18} "
              f"{dropped} earlier event(s) evicted by ring wrap")
    for event in shown:
        trace = event.trace_id if event.trace_id is not None else "-"
        fields = " ".join(f"{k}={v}" for k, v in event.fields.items()
                          if v is not None)
        print(f"{fmt_time(event.time_ns):>14}  {trace:>6}  "
              f"{event.kind:<18} {fields}")
    print(f"{len(shown)} of {len(log)} event(s) in the log")
    return 0


def cmd_cluster(args) -> int:
    """``sls cluster``: run a quorum-replication campaign and report.

    Boots the image, attaches an N-node / k-AZ quorum cluster to the
    group, advances it through a fixed number of checkpoints (each
    pumped to quorum), optionally fails one AZ mid-run and repairs it
    afterwards, and prints the per-node status table plus quorum and
    repair summaries.  With ``--failover`` the primary is crashed at
    the end and the best standby promoted.
    """
    from . import telemetry
    from .cluster import SLSCluster

    machine, sls = _load(args.image)
    result = _restore_group(sls, args.group)
    group = result.group
    proc = result.root
    heap = next(e for e in proc.vmspace.map if e.name == "heap")
    addr = heap.start_page * PAGE_SIZE
    cluster = SLSCluster(sls, group, nodes=args.nodes, azs=args.azs,
                         segment_bytes=args.segment_bytes)
    outage_at = (args.checkpoints // 2
                 if args.az_outage is not None else -1)
    for step in range(args.checkpoints):
        if step == outage_at:
            downed = cluster.az_down(args.az_outage)
            print(f"AZ {args.az_outage} outage at checkpoint {step}: "
                  f"nodes {downed} down")
        proc.vmspace.write(addr, f"cluster:step{step}".encode())
        machine.run_for(group.period_ns)
        sls.checkpoint(group, sync=True)
        cluster.pump()
    if args.az_outage is not None:
        raised = cluster.az_up(args.az_outage)
        print(f"AZ {args.az_outage} healed: nodes {raised} rejoin")
        if args.repair:
            report = cluster.repair()
            print(f"repair: {report['segments']} segment(s) onto "
                  f"{report['targets']} node(s) in "
                  f"{fmt_time(report['wall_ns'])} "
                  f"(segment MTTR p50 {fmt_time(report['mttr_p50_ns'])}"
                  f", max {fmt_time(report['mttr_max_ns'])})")

    status = cluster.status()
    print(f"group {status['group']}: {args.nodes} node(s) in "
          f"{status['azs']} AZ(s), write quorum "
          f"{status['write_quorum']}, read quorum "
          f"{status['read_quorum']}")
    print(f"{'NODE':>4} {'AZ':>3} {'STATE':<9} {'APPLIED':>8} "
          f"{'LAG':>4} {'STREAMS':>8} {'BYTES':>10}")
    for row in status["nodes"]:
        applied = row["applied"] if row["applied"] is not None else "-"
        print(f"{row['node']:>4} {row['az']:>3} {row['state']:<9} "
              f"{applied:>8} {row['lag']:>4} {row['streams']:>8} "
              f"{fmt_size(row['bytes']):>10}")
    print(f"durable watermark: checkpoint {status['durable']}; "
          f"quorum lag p50 {fmt_time(status['quorum_lag_p50_ns'])}; "
          f"inter-AZ traffic {status['inter_az_pretty']}")
    stall = cluster.stall_reason()

    if args.failover:
        machine.crash()
        cluster.failover(force=args.force,
                         force_data_loss=args.force_data_loss)
        failover_ns = telemetry.registry().histogram(
            "sls.cluster.failover_ns",
            group=group.group_id).max
        print(f"primary crashed; standby promoted at checkpoint "
              f"{cluster.durable} in {fmt_time(failover_ns)}")
        return 0
    _save_image(machine, args.image)
    if stall is not None:
        print(f"quorum stalled: {stall}")
        return 1
    return 0


def cmd_nemesis(args) -> int:
    """``sls nemesis``: seeded partition campaigns against the quorum
    cluster.

    Runs the nemesis harness's scripted campaigns — majority cut away,
    isolated primary displaced and fenced, ack path severed,
    partition during failover, asymmetric flap with repair — each at
    the given seed, and checks the two hard invariants after every
    one: no quorum-acknowledged checkpoint is ever lost, and no
    fenced (minority-side) checkpoint is ever readable again.  Needs
    no image: every campaign boots its own cluster.  Exit status 1
    when any invariant is violated.
    """
    import json

    from . import nemesis as nemesis_mod

    if args.list:
        for name in sorted(nemesis_mod.CAMPAIGNS):
            print(name)
        return 0
    names = args.campaign or sorted(nemesis_mod.CAMPAIGNS)
    for name in names:
        if name not in nemesis_mod.CAMPAIGNS:
            print(f"unknown campaign {name!r} (have: "
                  f"{', '.join(sorted(nemesis_mod.CAMPAIGNS))})")
            return 2
    results = nemesis_mod.run_all(args.seed, names=names)
    for result in results:
        status = "ok" if result.passed else "INVARIANT VIOLATED"
        details = " ".join(f"{key}={value}" for key, value
                           in sorted(result.details.items()))
        print(f"{result.name:<28} seed={result.seed} {status}"
              f"{'  ' + details if details else ''}")
        for violation in result.violations:
            print(f"  ! {violation}")
    failed = [result for result in results if not result.passed]
    print(f"{len(results) - len(failed)}/{len(results)} campaign(s) "
          f"passed at seed {args.seed}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump({"seed": args.seed,
                       "campaigns": [r.as_dict() for r in results]},
                      handle, indent=2)
        print(f"wrote campaign results to {args.json}")
    return 1 if failed else 0


def cmd_slo(args) -> int:
    """``sls slo``: RPO-lag / stop-time budget compliance report."""
    from . import slo as slo_mod
    from ..units import MSEC as _MSEC

    # Install the budgets before the measurement run so violations are
    # counted against them.
    targets = slo_mod.SLOTargets(rpo_ns=int(args.rpo_ms * _MSEC),
                                 stop_ns=int(args.stop_ms * _MSEC),
                                 degraded_ns=int(args.degraded_ms * _MSEC))
    machine, sls = _load(args.image)
    sls.slo.targets = targets
    result = _restore_group(sls, args.group)
    group = result.group
    for _ in range(args.checkpoints):
        machine.run_for(group.period_ns)
        sls.checkpoint(group, sync=True)

    rows = sls.slo.report(group.group_id)
    if not rows:
        print(f"group {args.group}: no commits observed")
        return 1
    for row in rows:
        print(f"group {row['group']}: {row['commits']} durable commit(s); "
              f"targets rpo<{fmt_time(row['rpo_target_ns'])} "
              f"stop<{fmt_time(row['stop_target_ns'])}")
        for series in ("rpo_lag", "stop", "e2e", "quorum_lag",
                       "failover", "repair_mttr", "epoch_bump",
                       "stale_primary"):
            s = row[series]
            if s["count"] == 0 and series in ("quorum_lag", "failover",
                                              "repair_mttr",
                                              "epoch_bump",
                                              "stale_primary"):
                continue  # no cluster attached to this run
            print(f"  {series:<11} n={s['count']:<4} "
                  f"p50 {fmt_time(s['p50']):>12} "
                  f"p95 {fmt_time(s['p95']):>12} "
                  f"p99 {fmt_time(s['p99']):>12} "
                  f"max {fmt_time(s['max']):>12}")
        recon = row["reconcile_bytes"]
        if recon["count"]:
            print(f"  reconcile   n={recon['count']:<4} "
                  f"p50 {fmt_size(int(recon['p50'])):>12} "
                  f"max {fmt_size(recon['max']):>12} "
                  f"budget {fmt_size(row['reconcile_target_bytes']):>12}")
        print(f"  degraded n={row['degraded_spells']:<4} "
              f"total {fmt_time(row['degraded_total_ns']):>12} "
              f"budget {fmt_time(row['degraded_target_ns']):>12}"
              f"{' (open spell)' if row['degraded_open'] else ''}")
        print(f"  violations: {row['rpo_violations']} rpo, "
              f"{row['stop_violations']} stop, "
              f"{row['degraded_violations']} degraded, "
              f"{row['epoch_bump_violations']} epoch-bump, "
              f"{row['reconcile_violations']} reconcile, "
              f"{row['stale_primary_violations']} stale-primary")
    print("critical path (mean self time per checkpoint stage):")
    for row in slo_mod.critical_path_summary(group.group_id):
        if row["self_ns"] == 0:
            continue
        print(f"  {row['name']:<18} {fmt_time(row['mean_self_ns']):>12} "
              f"x{row['count']}")
    return 0


def cmd_fleet(args) -> int:
    """``sls fleet``: the fleet control plane's per-tenant table.

    Boots the image, spawns ``--tenants`` synthetic applications with
    mixed periods through fleet admission control, drives them for
    ``--millis`` of simulated time, and prints each tenant's scheduler
    state: effective period, demand share, deadline misses, degraded
    state and probe cadence, plus the fleet summary (capacity,
    aggregate demand, Jain fairness over p99 RPO lag).  The image is
    not modified.
    """
    from . import slo as slo_mod

    machine, sls = _load(args.image)
    kernel = machine.kernel
    periods = [10, 25, 50]
    groups = []
    for index in range(args.tenants):
        proc = kernel.spawn(f"tenant{index}")
        nbytes = 32 * KiB
        addr = proc.vmspace.mmap(nbytes, name="heap")
        proc.vmspace.fill(addr, nbytes // PAGE_SIZE, seed=index)
        period_ms = periods[index % len(periods)]
        group = sls.attach(proc, name=f"tenant{index}",
                           period_ns=period_ms * MSEC,
                           rpo_budget_ns=4 * period_ms * MSEC,
                           probe_every=args.probe_every)
        groups.append((proc, addr, group))
    deadline = machine.clock.now() + args.millis * MSEC
    step = 0
    while machine.clock.now() < deadline:
        step += 1
        for proc, addr, group in groups:
            proc.vmspace.write(addr, f"{group.name}:{step}".encode())
        machine.run_for(5 * MSEC)

    rows = sls.fleet.report()
    print(f"{'GROUP':>5}  {'NAME':<10} {'PERIOD':>8} {'EFFECTIVE':>9} "
          f"{'DEMAND':>10} {'SHARE':>6} {'CKPTS':>5} {'MISS':>4} "
          f"{'SKIP':>4} {'DEGRADED':<8} {'PROBE':>5} {'P99 RPO':>12}")
    for row in rows:
        state = sls.slo.groups.get(row["group"])
        p99 = (slo_mod.percentile_exact(state.rpo_lag.values, 99)
               if state is not None else 0)
        print(f"{row['group']:>5}  {row['name']:<10} "
              f"{fmt_time(row['period_ns']):>8} "
              f"{fmt_time(row['effective_period_ns']):>9} "
              f"{fmt_size(row['demand_bps']):>8}/s "
              f"{row['demand_share'] * 100:>5.1f}% "
              f"{row['checkpoints']:>5} {row['deadline_misses']:>4} "
              f"{row['flush_skips']:>4} {row['degraded'] or '-':<8} "
              f"{row['probe_every']:>5} {fmt_time(p99):>12}")
    summary = sls.fleet.summary()
    fairness = summary["fairness"]
    print(f"fleet: {summary['tenants']} tenant(s), demand "
          f"{fmt_size(summary['aggregate_demand_bps'])}/s of "
          f"{fmt_size(summary['capacity_bps'])}/s "
          f"({summary['bandwidth_util'] * 100:.1f}% bandwidth, "
          f"{summary['time_util'] * 100:.1f}% time), "
          f"{summary['deadline_misses']} deadline miss(es), "
          f"{summary['admission_rejects']} reject(s), "
          f"{summary['backpressure_widens']} widen(s)")
    print(f"fairness: Jain {fairness['jain']:.3f} over "
          f"{fairness['groups']} tenant(s), p99 RPO lag "
          f"{fmt_time(fairness['p99_rpo_min_ns'])} .. "
          f"{fmt_time(fairness['p99_rpo_max_ns'])}")
    return 0


def cmd_scrub(args) -> int:
    """``sls scrub``: offline integrity walk over the store.

    Exit status 0 when the store is clean, 1 when any invariant is
    violated (corrupt record, dangling pointer, refcount drift,
    overgrown shadow chain).  Without ``--repair`` the image is never
    modified; with it, mechanically fixable findings (damaged
    superblock slot, stale refcounts, free-list overlaps, overgrown
    shadow chains) are repaired in place, the image is rewritten, and
    a re-scrub decides the exit status.
    """
    from ..objstore.scrub import scrub
    from ..objstore.store import ObjectStore
    from .orchestrator import load_aurora

    # A store too corrupt to mount must still produce a report (the
    # scrubber reads the raw device), so don't go through _load.
    machine = _boot_from_image(args.image)
    sls = None
    try:
        sls = load_aurora(machine)
        store = sls.store
    except StoreError:
        store = ObjectStore(machine)
    report = scrub(store, sls=sls)
    print(f"scrub of {args.image}: generation {report.generation}, "
          f"{report.superblocks_valid} valid superblock(s), "
          f"{report.checkpoints_scanned} checkpoint(s), "
          f"{report.records_verified} record(s), "
          f"{report.page_extents_verified} page extent(s)")
    if report.ok:
        print("store is clean")
        return 0
    print(f"{len(report.findings)} finding(s):")
    for finding in report.findings:
        where = (f" [ckpt {finding.ckpt_id}]"
                 if finding.ckpt_id is not None else "")
        print(f"  {finding.kind}{where}: {finding.detail}")
    if not getattr(args, "repair", False):
        return 1

    from ..objstore.repair import repair

    fixes = repair(store, report, sls=sls)
    print(f"repair: {fixes.applied} fix(es) applied, "
          f"{len(fixes.skipped)} skipped")
    for action in fixes.actions:
        print(f"  + {action.kind}: {action.detail}")
    for action in fixes.skipped:
        print(f"  - skipped {action.kind}: {action.detail}")
    _save_image(machine, args.image)
    recheck = scrub(store, sls=sls)
    if recheck.ok:
        print("re-scrub: store is clean")
        return 0
    print(f"re-scrub: {len(recheck.findings)} finding(s) remain:")
    for finding in recheck.findings:
        print(f"  {finding.kind}: {finding.detail}")
    return 1


def cmd_blackbox(args) -> int:
    """``sls blackbox``: recover the flight recorder of a (possibly
    crashed, possibly unmountable) image and print the timeline
    leading up to the crash.

    The recorder rides the commit protocol — the newest valid
    superblock anchors the snapshot taken just before its own flip —
    so the reconstruction needs no mount and works on stores whose
    catalog is too damaged for ``load_aurora``.  Exit status 1 when
    the image predates the recorder (no anchor in any superblock).
    """
    from ..objstore.store import ObjectStore
    from . import flightrec
    from .orchestrator import load_aurora

    machine = _boot_from_image(args.image)
    try:
        sls = load_aurora(machine)
        store = sls.store
    except StoreError:
        store = ObjectStore(machine)
    box = flightrec.blackbox(store)
    if box is None:
        print(f"{args.image}: no flight recorder snapshot found")
        return 1
    snap = box.snapshot
    print(f"black box of {args.image}: generation {box.generation}, "
          f"snapshot at {fmt_time(snap.get('time_ns', 0))}, "
          f"{len(box.events)} event(s), "
          f"{len(snap.get('spans') or [])} span(s), "
          f"{len(snap.get('slo') or [])} tenant(s)")
    print(f"ring: {snap.get('events_retained', 0)} retained, "
          f"events_dropped={snap.get('events_dropped', 0)}, "
          f"traces_dropped={snap.get('traces_dropped', 0)}")
    for row in snap.get("slo") or []:
        print(f"  tenant {row.get('tenant') or row.get('group')}: "
              f"{row.get('commits', 0)} commit(s), "
              f"rpo_burn={row.get('rpo_burn_milli', 0)}m "
              f"quorum_burn={row.get('quorum_burn_milli', 0)}m "
              f"degraded={'open' if row.get('degraded_open') else '-'}")
    limit = args.limit
    timeline = box.timeline()
    shown = timeline[-limit:] if limit else timeline
    print(f"{'TIME':>14}  {'TRACE':>6}  {'KIND':<24} FIELDS")
    for row in shown:
        trace = row.get("trace_id")
        fields = " ".join(f"{k}={v}"
                          for k, v in (row.get("fields") or {}).items()
                          if v is not None)
        marker = " *" if row.get("synthetic") else ""
        print(f"{fmt_time(row['time_ns']):>14}  "
              f"{trace if trace is not None else '-':>6}  "
              f"{row['kind']:<24} {fields}{marker}")
    last = box.last_durable
    if last is not None:
        fields = last.get("fields") or {}
        print(f"last durable commit: group {fields.get('group', '?')} "
              f"ckpt {fields.get('ckpt', '?')}"
              + (f" ({fields['name']})" if fields.get("name") else "")
              + f" at {fmt_time(last['time_ns'])}")
    else:
        print("last durable commit: none recorded")
    return 0


def cmd_top(args) -> int:
    """``sls top``: fleet drill-down — per-tenant SLO burn rates,
    quorum lag, degraded state and recent burn-rate alerts.

    Drives ``--tenants`` synthetic applications through fleet
    admission for ``--millis`` of simulated time (like ``sls fleet``)
    and prints the SLO tracker's live burn-rate view: the fast-burn
    column is the recent-window budget consumption in milli-units
    (1000m = consuming exactly the budget; alerts fire at 2000m).
    The image is not modified.
    """
    from . import events as events_mod

    machine, sls = _load(args.image)
    kernel = machine.kernel
    periods = [10, 25, 50]
    groups = []
    for index in range(args.tenants):
        proc = kernel.spawn(f"tenant{index}")
        nbytes = 32 * KiB
        addr = proc.vmspace.mmap(nbytes, name="heap")
        proc.vmspace.fill(addr, nbytes // PAGE_SIZE, seed=index)
        period_ms = periods[index % len(periods)]
        group = sls.attach(proc, name=f"tenant{index}",
                           period_ns=period_ms * MSEC,
                           rpo_budget_ns=4 * period_ms * MSEC)
        groups.append((proc, addr, group))
    deadline = machine.clock.now() + args.millis * MSEC
    step = 0
    while machine.clock.now() < deadline:
        step += 1
        for proc, addr, group in groups:
            proc.vmspace.write(addr, f"{group.name}:{step}".encode())
        machine.run_for(5 * MSEC)

    fleet_rows = {row["group"]: row for row in sls.fleet.report()}
    print(f"{'GROUP':>5}  {'TENANT':<10} {'CKPTS':>5} "
          f"{'RPO BURN':>8} {'QUORUM BURN':>11} {'P99 QLAG':>10} "
          f"{'RECONCILE':>9} {'STALE':>9} "
          f"{'DEGRADED':<8} {'MISS':>4} {'ALERTS':>6}")
    for row in sls.slo.report():
        fleet = fleet_rows.get(row["group"], {})
        qlag = row["quorum_lag"]
        recon = row["reconcile_bytes"]
        stale = row["stale_primary"]
        print(f"{row['group']:>5}  {row['tenant'] or '-':<10} "
              f"{row['commits']:>5} "
              f"{row['rpo_burn_milli']:>7}m "
              f"{row['quorum_burn_milli']:>10}m "
              f"{fmt_time(qlag['p99']):>10} "
              f"{fmt_size(recon['max']) if recon['count'] else '-':>9} "
              f"{fmt_time(stale['max']) if stale['count'] else '-':>9} "
              f"{fleet.get('degraded') or '-':<8} "
              f"{fleet.get('deadline_misses', 0):>4} "
              f"{row['alerts']:>6}")
    alerts = events_mod.log().matching(kind=events_mod.SLO_ALERT)
    print(f"{len(alerts)} burn-rate alert(s)")
    for event in alerts[-args.limit:] if args.limit else alerts:
        fields = event.fields
        print(f"  {fmt_time(event.time_ns):>14}  "
              f"tenant {fields.get('tenant') or fields.get('group')} "
              f"{fields.get('budget')} burn {fields.get('burn_milli')}m "
              f"(threshold {fields.get('threshold_milli')}m)")
    return 0


def cmd_checkpoint(args) -> int:
    """``sls checkpoint``: take a named full checkpoint."""
    machine, sls = _load(args.image)
    result = _restore_group(sls, args.group)
    res = sls.checkpoint(result.group, name=args.name or "",
                         full=True, sync=True)
    _save_image(machine, args.image)
    print(f"checkpoint {res.info.ckpt_id} of group {args.group} "
          f"(stop time {fmt_time(res.stop_ns)})")
    return 0


def cmd_restore(args) -> int:
    """``sls restore``: restore and report (image unchanged)."""
    _machine, sls = _load(args.image)
    result = sls.restore(args.group, ckpt_id=args.ckpt,
                         lazy=args.lazy, periodic=False)
    proc = result.root
    print(f"restored group {args.group} from checkpoint "
          f"{result.ckpt_id}: {len(result.processes)} process(es), "
          f"root pid {proc.pid} (local {proc.local_pid}), "
          f"{result.pages_restored} pages eager / "
          f"{result.pages_lazy} lazy, in {fmt_time(result.elapsed_ns)}")
    return 0


def cmd_history(args) -> int:
    """``sls history``: list an app's checkpoints."""
    _machine, sls = _load(args.image)
    chain = sls.store.checkpoints_for(args.group, include_partial=True)
    if not chain:
        print(f"group {args.group} has no checkpoints")
        return 1
    print(f"{'CKPT':>6}  {'NAME':<16} {'KIND':<8} {'TIME':>12}  {'DATA':>10}")
    for info in chain:
        kind = "partial" if info.partial else "full"
        print(f"{info.ckpt_id:>6}  {(info.name or '-'):<16} {kind:<8} "
              f"{fmt_time(info.time_ns):>12}  "
              f"{fmt_size(info.data_bytes):>10}")
    return 0


def cmd_suspend(args) -> int:
    """``sls suspend``: final checkpoint, tear the app down."""
    machine, sls = _load(args.image)
    result = _restore_group(sls, args.group)
    ckpt_id = sls.suspend(result.group)
    _save_image(machine, args.image)
    print(f"suspended group {args.group} into checkpoint {ckpt_id}")
    return 0


def cmd_resume(args) -> int:
    """``sls resume``: bring a suspended app back."""
    machine, sls = _load(args.image)
    result = sls.restore(args.group, periodic=False)
    _save_image(machine, args.image)
    print(f"resumed group {args.group}: root pid {result.root.pid}")
    return 0


def cmd_dump(args) -> int:
    """``sls dump``: write an ELF core of the restored state."""
    _machine, sls = _load(args.image)
    result = _restore_group(sls, args.group)
    info = sls.store.get_checkpoint(result.ckpt_id)
    core = dump_process(result.root)
    with open(args.output, "wb") as handle:
        handle.write(core)
    print(f"wrote {fmt_size(len(core))} ELF core to {args.output}")
    print(f"source checkpoint {info.ckpt_id}: "
          f"{len(info.object_records)} record(s) in delta, "
          f"{info.records_skipped} skipped as unchanged")
    return 0


def cmd_diff(args) -> int:
    """``sls diff``: what changed between two checkpoints.

    Compares the merged (restorable) views at the two checkpoints:
    object records added, re-written, or deleted, and how many page
    locators changed.  Defaults to the group's last two checkpoints —
    the observability hook for incremental checkpoint deltas.
    """
    _machine, sls = _load(args.image)
    store = sls.store
    chain = store.checkpoints_for(args.group, include_partial=True)
    ids = [info.ckpt_id for info in chain]
    if args.ckpt_a is not None:
        ckpt_a = args.ckpt_a
    elif len(ids) >= 2:
        ckpt_a = ids[-2]
    else:
        print(f"group {args.group} needs two checkpoints to diff "
              f"(has {len(ids)})")
        return 1
    ckpt_b = args.ckpt_b if args.ckpt_b is not None else ids[-1]

    records_a, pages_a = store.merged_view(ckpt_a)
    records_b, pages_b = store.merged_view(ckpt_b)
    added = sorted(set(records_b) - set(records_a))
    deleted = sorted(set(records_a) - set(records_b))
    rewritten = sorted(oid for oid in records_b
                       if oid in records_a
                       and records_b[oid] != records_a[oid])

    pages_changed = 0
    for oid in set(pages_a) | set(pages_b):
        map_a = pages_a.get(oid, {})
        map_b = pages_b.get(oid, {})
        for pindex in set(map_a) | set(map_b):
            loc_a = map_a.get(pindex)
            loc_b = map_b.get(pindex)
            if (loc_a is None) != (loc_b is None) \
                    or (loc_a is not None and loc_b is not None
                        and loc_a.encode() != loc_b.encode()):
                pages_changed += 1

    print(f"diff of group {args.group}: checkpoint {ckpt_a} -> {ckpt_b}")
    print(f"  records: {len(rewritten)} rewritten, {len(added)} added, "
          f"{len(deleted)} deleted ({len(records_b)} live)")
    print(f"  pages:   {pages_changed} changed")

    def _fmt(oids) -> str:
        head = ", ".join(str(oid) for oid in oids[:12])
        return head + (", ..." if len(oids) > 12 else "")

    if rewritten:
        print(f"  rewritten oids: {_fmt(rewritten)}")
    if added:
        print(f"  added oids:     {_fmt(added)}")
    if deleted:
        print(f"  deleted oids:   {_fmt(deleted)}")
    return 0


def cmd_send(args) -> int:
    """``sls send``: serialize an app into a stream file."""
    _machine, sls = _load(args.image)
    stream = migration.send_checkpoint(sls, args.group)
    with open(args.output, "wb") as handle:
        handle.write(stream)
    print(f"serialized group {args.group} into {args.output} "
          f"({fmt_size(len(stream))})")
    return 0


def cmd_recv(args) -> int:
    """``sls recv``: import a stream into another image."""
    machine, sls = _load(args.image)
    with open(args.stream, "rb") as handle:
        stream = handle.read()
    ckpt_id = migration.recv_checkpoint(sls, stream)
    _save_image(machine, args.image)
    print(f"received checkpoint {ckpt_id} into {args.image}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The sls argument parser (Table 2's verbs)."""
    parser = argparse.ArgumentParser(
        prog="sls", description="Aurora single level store CLI (simulated)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("init", help="format a new Aurora image")
    p.add_argument("image")
    p.set_defaults(func=cmd_init)

    p = sub.add_parser("spawn", help="create and attach a demo app")
    p.add_argument("image")
    p.add_argument("name")
    p.add_argument("--memory-kib", type=int, default=256)
    p.add_argument("--period-ms", type=int, default=10)
    p.set_defaults(func=cmd_spawn)

    p = sub.add_parser("ps", help="list applications in Aurora")
    p.add_argument("image")
    p.set_defaults(func=cmd_ps)

    p = sub.add_parser("run", help="advance an app with checkpoints")
    p.add_argument("image")
    p.add_argument("group", type=int)
    p.add_argument("--millis", type=int, default=100)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("checkpoint", help="take a named checkpoint")
    p.add_argument("image")
    p.add_argument("group", type=int)
    p.add_argument("--name")
    p.set_defaults(func=cmd_checkpoint)

    p = sub.add_parser("stat", help="per-stage checkpoint telemetry")
    p.add_argument("image")
    p.add_argument("group", type=int)
    p.add_argument("--checkpoints", type=int, default=3,
                   help="measurement checkpoints to run (default 3)")
    p.set_defaults(func=cmd_stat)

    p = sub.add_parser("scrub", help="verify store integrity offline")
    p.add_argument("image")
    p.add_argument("--repair", action="store_true",
                   help="apply mechanical fixes, rewrite the image, "
                        "and re-scrub")
    p.set_defaults(func=cmd_scrub)

    p = sub.add_parser("trace", help="export causal checkpoint traces")
    p.add_argument("image")
    p.add_argument("group", type=int)
    p.add_argument("--checkpoints", type=int, default=20,
                   help="measurement checkpoints to run (default 20)")
    p.add_argument("--chrome", metavar="PATH",
                   help="write a Chrome trace_event JSON document")
    p.add_argument("--show", type=int, default=3,
                   help="checkpoint traces to summarize (default 3)")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("metrics", help="export telemetry metrics")
    p.add_argument("image")
    p.add_argument("group", type=int)
    p.add_argument("--checkpoints", type=int, default=10,
                   help="measurement checkpoints to run (default 10)")
    p.add_argument("--format", choices=("prom", "json"), default="prom")
    p.add_argument("-o", "--output")
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser("events", help="structured event log of a run")
    p.add_argument("image")
    p.add_argument("group", type=int)
    p.add_argument("--checkpoints", type=int, default=10,
                   help="measurement checkpoints to run (default 10)")
    p.add_argument("--limit", type=int, default=0,
                   help="only show the newest N events")
    p.add_argument("--kind", default=None,
                   help="only events whose kind has this prefix")
    p.add_argument("--since", type=int, default=None, metavar="NS",
                   help="only events at or after this sim time (ns)")
    p.set_defaults(func=cmd_events)

    p = sub.add_parser("blackbox",
                       help="recover a crashed image's flight recorder")
    p.add_argument("image")
    p.add_argument("--limit", type=int, default=0,
                   help="only show the newest N timeline rows")
    p.set_defaults(func=cmd_blackbox)

    p = sub.add_parser("top", help="per-tenant SLO burn-rate table")
    p.add_argument("image")
    p.add_argument("--tenants", type=int, default=4,
                   help="synthetic tenants to admit (default 4)")
    p.add_argument("--millis", type=int, default=400,
                   help="simulated milliseconds to run (default 400)")
    p.add_argument("--limit", type=int, default=0,
                   help="only show the newest N alerts")
    p.set_defaults(func=cmd_top)

    p = sub.add_parser("cluster", help="quorum-replicated cluster status")
    p.add_argument("image")
    p.add_argument("group", type=int)
    p.add_argument("--nodes", type=int, default=6,
                   help="replica nodes (default 6)")
    p.add_argument("--azs", type=int, default=3,
                   help="availability zones (default 3)")
    p.add_argument("--checkpoints", type=int, default=10,
                   help="checkpoints to run and replicate (default 10)")
    p.add_argument("--segment-bytes", type=int, default=4 * KiB,
                   help="segment size for sharded streams")
    p.add_argument("--az-outage", type=int, default=None, metavar="AZ",
                   help="fail this AZ halfway through the run")
    p.add_argument("--repair", action="store_true",
                   help="segment-repair rejoining nodes after the outage")
    p.add_argument("--failover", action="store_true",
                   help="crash the primary at the end and promote a "
                        "standby (image is left untouched)")
    p.add_argument("--force", action="store_true",
                   help="failover even while the primary's lease is "
                        "still valid")
    p.add_argument("--force-data-loss", action="store_true",
                   help="with --force: allow promoting a node behind "
                        "the quorum watermark, discarding acknowledged "
                        "checkpoints")
    p.set_defaults(func=cmd_cluster)

    p = sub.add_parser("nemesis",
                       help="seeded partition campaigns with hard "
                            "consistency invariants")
    p.add_argument("--seed", type=int, default=7,
                   help="campaign seed (default 7)")
    p.add_argument("--campaign", action="append", metavar="NAME",
                   help="run only this campaign (repeatable; "
                        "default: all)")
    p.add_argument("--list", action="store_true",
                   help="list campaign names and exit")
    p.add_argument("--json", metavar="PATH",
                   help="write campaign results as JSON")
    p.set_defaults(func=cmd_nemesis)

    p = sub.add_parser("slo", help="RPO / stop-time SLO compliance")
    p.add_argument("image")
    p.add_argument("group", type=int)
    p.add_argument("--checkpoints", type=int, default=50,
                   help="measurement checkpoints to run (default 50)")
    p.add_argument("--rpo-ms", type=float, default=10.0,
                   help="recovery-point budget in ms (default 10)")
    p.add_argument("--stop-ms", type=float, default=1.0,
                   help="stop-time budget in ms (default 1)")
    p.add_argument("--degraded-ms", type=float, default=50.0,
                   help="cumulative degraded-time budget in ms "
                        "(default 50)")
    p.set_defaults(func=cmd_slo)

    p = sub.add_parser("fleet", help="fleet scheduler per-tenant table")
    p.add_argument("image")
    p.add_argument("--tenants", type=int, default=8,
                   help="synthetic tenants to admit (default 8)")
    p.add_argument("--millis", type=int, default=200,
                   help="simulated run length in ms (default 200)")
    p.add_argument("--probe-every", type=int, default=None,
                   help="degraded disk-probe cadence (default: "
                        "per-group DEFAULT_PROBE_EVERY)")
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser("restore", help="restore an application")
    p.add_argument("image")
    p.add_argument("group", type=int)
    p.add_argument("--ckpt", type=int)
    p.add_argument("--lazy", action="store_true")
    p.set_defaults(func=cmd_restore)

    p = sub.add_parser("history", help="list an app's checkpoints")
    p.add_argument("image")
    p.add_argument("group", type=int)
    p.set_defaults(func=cmd_history)

    p = sub.add_parser("suspend", help="suspend an app into the store")
    p.add_argument("image")
    p.add_argument("group", type=int)
    p.set_defaults(func=cmd_suspend)

    p = sub.add_parser("resume", help="resume a suspended app")
    p.add_argument("image")
    p.add_argument("group", type=int)
    p.set_defaults(func=cmd_resume)

    p = sub.add_parser("diff", help="changes between two checkpoints")
    p.add_argument("image")
    p.add_argument("group", type=int)
    p.add_argument("ckpt_a", type=int, nargs="?",
                   help="older checkpoint (default: second newest)")
    p.add_argument("ckpt_b", type=int, nargs="?",
                   help="newer checkpoint (default: newest)")
    p.set_defaults(func=cmd_diff)

    p = sub.add_parser("dump", help="write an ELF coredump")
    p.add_argument("image")
    p.add_argument("group", type=int)
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(func=cmd_dump)

    p = sub.add_parser("send", help="serialize an app to a stream")
    p.add_argument("image")
    p.add_argument("group", type=int)
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(func=cmd_send)

    p = sub.add_parser("recv", help="import an app stream")
    p.add_argument("image")
    p.add_argument("stream")
    p.set_defaults(func=cmd_recv)

    return parser


def main(argv: Optional[list] = None) -> int:
    """Entry point for the ``sls`` console script."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
