"""Calibrated cost model for the Aurora reproduction.

Every constant that turns a simulated operation into elapsed
nanoseconds lives here, together with the paper evidence it was
calibrated against.  The reproduction's *mechanisms* (shadow chains,
object serialization, store layout) are real implementations; this
module is the single place where the substituted hardware (MMU, NVMe
array, NIC) is reduced to numbers.

Calibration sources
-------------------
* **Table 4** — per-POSIX-object checkpoint/restore microbenchmarks.
* **Table 5** — stop time vs. dirty-set size for the three checkpoint
  modes.  The incremental column is linear with slope ≈ 22.6 ns/page
  ("checkpoint stop time scales linearly with the dirty set, because of
  the linear time needed to mark pages copy-on-write in the x86 page
  tables"), intercept ≈ 180 µs.  The journal column gives the
  synchronous write path: 4 KiB in 28 µs, 1 GiB in 417.2 ms →
  ≈ 26 µs latency + ≈ 2.57 GiB/s sustained single-stream bandwidth.
* **Table 6** — full restores insert pages at ≈ 230 ns/page
  (e.g. firefox: 198 MiB = 50 688 pages × 230 ns ≈ 11.7 ms of the
  12.4 ms total).
* **Table 7** — Aurora flushes a 500 MiB checkpoint in 97.6 ms →
  ≈ 5.4 GiB/s aggregate asynchronous bandwidth on the 4-device stripe;
  CRIU copies memory at ≈ 3.2 µs/page and writes its image at
  ≈ 1.4 GiB/s; Redis forks a 500 MiB heap in ≈ 8 ms → ≈ 60 ns/page of
  COW setup, and serializes+writes RDB at ≈ 1.7 GiB/s.
* **§9 setup** — dual Xeon Silver 4116 (24 cores), 96 GiB RAM, 4×
  Optane 900P striped at 64 KiB, 10 GbE client network.
"""

from __future__ import annotations

from ..units import GiB, KiB, MiB, PAGE_SIZE, USEC, MSEC, NSEC

# ---------------------------------------------------------------------------
# Machine configuration (paper §9, first paragraph)
# ---------------------------------------------------------------------------

#: Dual Intel Xeon Silver 4116: 2 sockets x 12 cores.
NCPUS = 24

#: 96 GiB of RAM.
PHYSMEM_BYTES = 96 * GiB

#: Four Optane 900P devices, striped at 64 KiB.
NVME_DEVICES = 4

# ---------------------------------------------------------------------------
# CPU / MMU primitives
# ---------------------------------------------------------------------------

#: Cost for a core to send an IPI (FreeBSD smp_rendezvous-style).
IPI_SEND = 2 * USEC

#: Additional wait per target core acknowledging the IPI.
IPI_ACK_PER_CORE = 400 * NSEC

#: Base latency of a TLB shootdown broadcast.
TLB_SHOOTDOWN_BASE = 4 * USEC

#: Per-page INVLPG cost, up to the full-flush threshold.
TLB_INVLPG_PER_PAGE = 120 * NSEC

#: Beyond this many pages real kernels issue a full flush instead of a
#: per-page loop, capping the per-page term.
TLB_FULL_FLUSH_THRESHOLD_PAGES = 64

#: Marking one PTE copy-on-write during system shadowing.
#: Table 5's incremental slope is ~22.6 ns per dirty page TOTAL, and
#: each checkpoint both collapses the previous shadow (~10 ns/page,
#: below) and write-protects the new dirty set — so the marking itself
#: is ~12 ns/PTE.
COW_MARK_PER_PAGE = 12 * NSEC

#: A soft fault: translation missing but the page is resident at depth
#: 0 (fault entry/exit + PTE install, no copy).
SOFT_FAULT = 250 * NSEC

#: Resolving a COW fault: allocate page, copy 4 KiB, update PTE.
#: (~1.1 us: a 4 KiB memcpy at ~10 GiB/s plus fault entry/exit.)
COW_FAULT = 1100 * NSEC

#: Walking one extra level of a shadow chain during a fault.
SHADOW_CHAIN_HOP = 150 * NSEC

#: Moving one page between VM objects during a collapse: a queue
#: unlink + radix insert (pages move by reference, nothing is copied),
#: so collapse + next-checkpoint marking together reproduce Table 5's
#: ~23 ns/page slope.
COLLAPSE_PAGE_MOVE = 10 * NSEC

#: Fixed cost of one collapse operation (locking, object teardown).
COLLAPSE_BASE = 2 * USEC

#: Inserting one page into a VM object at restore time (Table 6:
#: ~230 ns/page reproduces the full-restore rows).
RESTORE_PAGE_INSERT = 230 * NSEC

#: Lazily faulting a page from the store at first touch after a lazy
#: restore (device read latency amortized over read-ahead).
LAZY_FAULT_PER_PAGE = 2 * USEC

#: Fixed user/kernel crossing cost of any system call.
SYSCALL_OVERHEAD = 300 * NSEC

# ---------------------------------------------------------------------------
# Quiesce (paper §5.1 "Quiescing Processes")
# ---------------------------------------------------------------------------

#: Scheduler bookkeeping to park one thread at the syscall boundary.
QUIESCE_PER_THREAD = 1 * USEC

#: Mean residual time of a non-sleeping syscall the quiesce must wait
#: out ("system calls that do not sleep have very low execution
#: times").
QUIESCE_SYSCALL_RESIDUAL = 2 * USEC

#: Rewinding the PC of a sleeping syscall for transparent restart.
QUIESCE_SYSCALL_RESTART = 800 * NSEC

#: Resuming the group after the checkpoint's synchronous phase.
RESUME_PER_THREAD = 700 * NSEC

# ---------------------------------------------------------------------------
# Per-POSIX-object checkpoint/restore costs (Table 4)
# ---------------------------------------------------------------------------
# Table 4 measures the serialize/recreate path for each object type.
# "Most POSIX objects are small and typically involve one lock and
# pointer chasing, which incurs cache misses."  Each entry is
# (base checkpoint ns, base restore ns); variable terms are charged by
# the serializers (e.g. kqueue events, SysV namespace scan).

CKPT_PIPE = 1700 * NSEC            # Table 4: 1.7 us
RESTORE_PIPE = 2600 * NSEC         # Table 4: 2.6 us

CKPT_PTY = 3100 * NSEC             # Table 4: 3.1 us
RESTORE_PTY = 30200 * NSEC         # Table 4: 30.2 us (devfs locks)

CKPT_SHM_POSIX = 4500 * NSEC       # Table 4: 4.5 us (includes shadowing)
RESTORE_SHM_POSIX = 3800 * NSEC    # Table 4: 3.8 us

CKPT_SHM_SYSV_BASE = 2900 * NSEC   # residual after namespace scan
CKPT_SHM_SYSV_SCAN_PER_SLOT = 94 * NSEC  # scanning the global SysV table
SYSV_NAMESPACE_SLOTS = 128         # shminfo.shmmni-style table size
                                   # 2.9us + 128*94ns ~= 14.9 us (Table 4)
RESTORE_SHM_SYSV = 2800 * NSEC     # Table 4: 2.8 us

CKPT_SOCKET = 1800 * NSEC          # Table 4: 1.8 us
RESTORE_SOCKET = 3600 * NSEC       # Table 4: 3.6 us

CKPT_VNODE = 1700 * NSEC           # Table 4: 1.7 us (inode ref, no namei)
RESTORE_VNODE = 2000 * NSEC        # Table 4: 2.0 us

CKPT_KQUEUE_BASE = 1500 * NSEC     # kqueue header
CKPT_KEVENT_EACH = 33 * NSEC       # lock+serialize one knote:
                                   # 1.5us + 1024*33ns ~= 35.2 us (Table 4)
RESTORE_KQUEUE = 2700 * NSEC       # Table 4: 2.7 us

CKPT_FILE_DESC = 300 * NSEC        # per-fd table entry walk
RESTORE_FILE_DESC = 350 * NSEC

CKPT_PROC_BASE = 4 * USEC          # proc struct, credentials, sessions
RESTORE_PROC_BASE = 30 * USEC      # fork-like recreation + PID plumbing
CKPT_THREAD = 1500 * NSEC          # registers off kernel stack + FPU
RESTORE_THREAD = 4 * USEC
CKPT_VMOBJECT = 2 * USEC           # per VM object: lock + metadata
RESTORE_VMOBJECT = 12 * USEC       # recreate object + map entries
CKPT_VMENTRY = 400 * NSEC          # per map entry serialization

#: Fixed orchestration cost of one full/incremental checkpoint
#: (barrier setup, object-table swizzle, store transaction begin).
#: Table 5's incremental intercept (185 us) minus the single test
#: process's object costs leaves ~150 us of orchestration.
CKPT_ORCH_BASE = 150 * USEC

#: Fixed cost of an atomic single-region checkpoint (sls_memckpt):
#: Table 5 shows a ~75-80 us intercept — no quiesce, no OS-state walk.
CKPT_ATOMIC_BASE = 72 * USEC

# ---------------------------------------------------------------------------
# Storage (4x Optane 900P, 64 KiB stripe)
# ---------------------------------------------------------------------------

#: Completion latency of one NVMe write command (Optane: ~10 us).
NVME_WRITE_LATENCY = 10 * USEC

#: Completion latency of one NVMe read command.
NVME_READ_LATENCY = 8 * USEC

#: Per-device sustained write bandwidth.  4 devices striped reproduce
#: Table 7's 500 MiB flush in 97.6 ms (~5.4 GiB/s aggregate).
NVME_WRITE_BW = int(1.35 * GiB)    # bytes/second, per device

#: Per-device sustained read bandwidth (Optane 900P reads ~2.5 GiB/s).
NVME_READ_BW = int(2.5 * GiB)

#: Synchronous single-stream write bandwidth (queue depth 1) — the
#: journal path.  Table 5: 1 GiB journal write in 417.2 ms ->
#: ~2.57 GiB/s, and 4 KiB in 28 us -> ~26 us latency + transfer.
SYNC_WRITE_LATENCY = 26 * USEC
SYNC_WRITE_BW = int(2.57 * GiB)

# ---------------------------------------------------------------------------
# Object store software path
# ---------------------------------------------------------------------------

#: CPU cost to allocate an extent and update the object btree.
STORE_ALLOC_EXTENT = 900 * NSEC

#: CPU cost to stage one record into the write buffer.
STORE_RECORD_STAGE = 500 * NSEC

#: Writing the checkpoint's commit record (superblock slot update).
STORE_COMMIT = 12 * USEC

#: Aurora FS: creating a file currently takes a global lock (§9.1
#: "File creation in Aurora is unoptimized") — slower than either
#: baseline's create path (Figure 3c).
SLSFS_CREATE_GLOBAL_LOCK = 25 * USEC

#: Aurora FS fsync is a no-op (checkpoint consistency).
SLSFS_FSYNC = 300 * NSEC

# ---------------------------------------------------------------------------
# Baseline filesystems (Figure 3 calibration)
# ---------------------------------------------------------------------------
# These model metadata-update strategy costs per operation; data
# transfer costs come from the shared device model.

#: ZFS: COW indirect-block tree update per block write.
ZFS_COW_TREE_UPDATE = 14 * USEC
#: ZFS: fletcher4/sha256 checksum per 64 KiB block (when enabled).
ZFS_CHECKSUM_PER_64K = 14 * USEC
#: ZFS: intent-log record for an fsync.
ZFS_ZIL_COMMIT = 90 * USEC
#: ZFS: file creation (dnode allocation + dir ZAP update).
ZFS_CREATE = 18 * USEC

#: FFS: cylinder-group bitmap + inode update per block.
FFS_BLOCK_UPDATE = 2500 * NSEC
#: FFS: fragment-optimized small write (sub-block).
FFS_FRAG_WRITE = 1200 * NSEC
#: FFS: SU+J journal record for namespace ops.
FFS_SUJ_RECORD = 5 * USEC
#: FFS: fsync must flush the inode + data synchronously.
FFS_FSYNC = 60 * USEC
#: FFS: file creation.
FFS_CREATE = 11 * USEC

#: Aurora object store per-block metadata update (simple mappings:
#: "Aurora's simpler metadata updates are designed to reduce the
#: latency of periodic checkpoints").
SLSFS_BLOCK_UPDATE = 1800 * NSEC

# ---------------------------------------------------------------------------
# CRIU baseline (Tables 1 and 7)
# ---------------------------------------------------------------------------

#: Fixed cost: ptrace attach, parasite code injection per process.
CRIU_ATTACH_PER_PROC = 5 * MSEC

#: Querying one kernel object through /proc + netlink interfaces.
CRIU_QUERY_PER_OBJECT = 50 * USEC

#: Scanning /proc/pid/pagemap to find resident pages (per page).
CRIU_PAGEMAP_SCAN_PER_PAGE = 340 * NSEC

#: Copying one page out via process_vm_readv + pipe splice.
#: Table 1: 413 ms for 128 000 pages -> ~3.2 us/page.
CRIU_PAGE_COPY = 3200 * NSEC

#: Image write bandwidth (single-threaded, buffered, no fsync).
#: Table 1: 500 MB in 350 ms -> ~1.43 GiB/s.
CRIU_IMAGE_WRITE_BW = int(1.43 * GiB)

#: Cross-referencing shared resources between processes (per pair of
#: candidate objects compared during sharing inference).
CRIU_SHARING_INFERENCE = 6 * USEC

# ---------------------------------------------------------------------------
# Redis RDB baseline (Table 7)
# ---------------------------------------------------------------------------

#: fork() COW setup per mapped page (page-table copy + wrprotect).
#: Table 7: ~8 ms stop for 128 000 pages -> ~60 ns/page.
FORK_COW_SETUP_PER_PAGE = 60 * NSEC

#: Serializing one key/value pair into RDB format (CPU).
RDB_SERIALIZE_PER_KEY = 900 * NSEC

#: RDB child write bandwidth (serialize + buffered write):
#: Table 7: 500 MiB in ~300 ms -> ~1.7 GiB/s.
RDB_WRITE_BW = int(1.7 * GiB)

# ---------------------------------------------------------------------------
# Network (10 GbE, Figures 4/5)
# ---------------------------------------------------------------------------

#: One-way wire+stack latency for a small request on the 10 GbE LAN.
NET_RTT = 60 * USEC

#: NIC bandwidth in bytes/second.
NET_BW = int(10 * GiB / 8)

# ---------------------------------------------------------------------------
# Application service costs (Figures 4/5/6 calibration)
# ---------------------------------------------------------------------------

#: Memcached per-request CPU cost across its worker pool.  Baseline
#: peak ~1.1 M ops/s over 12 threads -> ~0.9 us of whole-machine time
#: per op once pipelining is accounted for.
MEMCACHED_OP_CPU = 850 * NSEC

#: RocksDB: memtable (skiplist) insert/lookup CPU.
ROCKSDB_MEMTABLE_OP = 320 * NSEC

#: RocksDB: encoding a WAL record.
ROCKSDB_WAL_ENCODE = 250 * NSEC

#: RocksDB: buffered (non-sync) WAL append to the page cache.
ROCKSDB_WAL_BUFFERED_APPEND = 600 * NSEC

#: Redis: per-op CPU cost (dict update).
REDIS_OP_CPU = 500 * NSEC
