"""System shadowing (§6) — Aurora's memory-tracking mechanism.

At every checkpoint, each writable VM object reachable from the
consistency group gets one fresh shadow:

* every map entry (in every member process) and every shared-memory
  descriptor backmap is repointed to the shadow, so sharing semantics
  survive — the thing ``fork``'s COW cannot do;
* the pages the application dirtied since the last checkpoint sit in
  the now-frozen previous top, which is flushed to the store
  *concurrently* with execution;
* the dirtied PTEs are write-protected (cost linear in the dirty set —
  Table 5's slope) and the TLB is shot down.

Chains are eagerly bounded: once a frozen shadow's flush completes, the
next checkpoint collapses it into its parent — in the *reversed*
direction (shadow pages move down), so the cost is proportional to the
small dirty set rather than the parent's full resident set.  The
classic forward direction is kept for the ablation benchmark.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..errors import InvalidArgument
from ..hw.memory import Page
from ..kernel.vm.vmobject import DEVICE, VNODE, VMObject
from ..objstore.oid import CLASS_MEMORY
from . import costs, telemetry
from .group import ConsistencyGroup, ObjectTrack
from .runs import page_runs

REVERSE = "reverse"   # Aurora's optimized direction (§6)
FORWARD = "forward"   # classic Mach/FreeBSD direction (ablation)
NONE = "none"         # never collapse: chains grow (ablation)


class FlushItem:
    """One logical object's contribution to a checkpoint flush.

    ``pages`` is the newest-wins merged dirty set; :meth:`runs` views
    it as contiguous ``(start_pindex, count)`` slabs, which is what the
    store's batched extent staging consumes.
    """

    __slots__ = ("oid", "record", "pages", "_runs")

    def __init__(self, oid: int, record: Dict[str, Any],
                 pages: Dict[int, Page]) -> None:
        self.oid = oid
        self.record = record
        self.pages = pages
        self._runs: Optional[List[Tuple[int, int]]] = None

    def runs(self) -> List[Tuple[int, int]]:
        """Contiguous page-index runs of the dirty set (cached)."""
        if self._runs is None:
            self._runs = page_runs(self.pages)
        return self._runs


def _chain_segment(top: VMObject) -> List[VMObject]:
    """``top``'s chain segment, newest first.

    Stops (exclusive) at the first object that belongs to a
    *different* logical object — its content is persisted under its
    own OID and linked via ``backing_oid``.
    """
    segment: List[VMObject] = []
    for obj in top.chain():
        if obj is not top and obj.sls_oid not in (None, top.sls_oid):
            break
        if obj.backing_offset != 0:
            raise InvalidArgument("system shadowing assumes offset-0 chains")
        segment.append(obj)
    return segment


def merged_chain_pages(top: VMObject) -> Dict[int, Page]:
    """Newest-wins pages of ``top``'s chain segment.

    Merges bottom-up with one C-speed ``dict.update`` per chain object
    (later = newer = wins), so a full-checkpoint merge over a
    million-page object costs a few dict bulk-copies instead of a
    million ``setdefault`` probes.
    """
    segment = _chain_segment(top)
    pages: Dict[int, Page] = {}
    for obj in reversed(segment):
        pages.update(obj.pages)
    return pages


def merged_chain_pages_legacy(top: VMObject) -> Dict[int, Page]:
    """The original top-down per-page ``setdefault`` merge.

    Executable specification for the equivalence property suite and
    the scale benchmark's pre-columnar baseline.
    """
    pages: Dict[int, Page] = {}
    for obj in top.chain():
        if obj is not top and obj.sls_oid not in (None, top.sls_oid):
            break
        if obj.backing_offset != 0:
            raise InvalidArgument("system shadowing assumes offset-0 chains")
        for pindex, page in obj.pages.items():
            pages.setdefault(pindex, page)
    return pages


def chain_backing_oid(top: VMObject) -> Optional[int]:
    """OID of the tracked object this chain segment bottoms out on."""
    for obj in top.chain():
        if obj is not top and obj.sls_oid not in (None, top.sls_oid):
            return obj.sls_oid
    return None


def object_record(top: VMObject) -> Dict[str, Any]:
    """The vmobject metadata document persisted per checkpoint."""
    return {
        "size_pages": top.size_pages,
        "kind": top.kind,
        "name": top.name,
        "backing_oid": chain_backing_oid(top),
    }


class ShadowEngine:
    """Per-orchestrator shadowing state and operations."""

    def __init__(self, kernel: Any, store: Any,
                 collapse_direction: str = REVERSE) -> None:
        self.kernel = kernel
        self.store = store
        if collapse_direction not in (REVERSE, FORWARD, NONE):
            raise InvalidArgument(f"bad direction {collapse_direction}")
        self.collapse_direction = collapse_direction
        #: Benchmark baseline switch: route merges and collapses
        #: through the per-page legacy implementations so the columnar
        #: speedup can be measured against the original data path.
        #: Simulated costs are identical either way; only wall-clock
        #: differs.
        self.legacy_hot_path = False
        self.stats = telemetry.StatsView(
            "sls.shadow",
            keys=("shadows_created", "collapses", "collapse_pages_moved",
                  "ptes_downgraded", "tlb_shootdowns", "dirty_runs"))

    # -- collapse ---------------------------------------------------------------

    def _chain_child_of(self, track: ObjectTrack,
                        frozen: VMObject) -> Optional[VMObject]:
        obj = track.active
        while obj is not None and obj.backing is not frozen:
            obj = obj.backing
        return obj

    def collapse_completed(self, group: ConsistencyGroup) -> int:
        """Collapse every flushed frozen shadow (start of a checkpoint).

        Returns total pages moved (the operation's cost driver).
        """
        total_moved = 0
        if self.collapse_direction == NONE:
            # Ablation: leave every flushed shadow in the chain.  The
            # shadow pass clears the track slots itself; fault paths
            # pay for the growing chains.
            return 0
        for track in group.tracks.values():
            frozen = track.frozen
            if frozen is None or not track.flushed:
                continue
            if frozen.backing is None:
                # The frozen object is the chain's base; nothing below
                # to merge into — it simply stays as the base.
                track.frozen = None
                track.flushed = False
                continue
            if frozen.shadow_count != 1:
                # A privately faulted (fork-COW) shadow still hangs off
                # this object; collapsing would orphan it.  Defer.
                continue
            child = self._chain_child_of(track, frozen)
            assert child is not None, "frozen shadow not in its own chain"
            if self.collapse_direction == REVERSE:
                moved = self._collapse_reverse(frozen, child)
            else:
                moved = self._collapse_forward(frozen, child)
            self.kernel.clock.advance(
                costs.COLLAPSE_BASE + moved * costs.COLLAPSE_PAGE_MOVE)
            self.stats["collapses"] += 1
            self.stats["collapse_pages_moved"] += moved
            total_moved += moved
            track.frozen = None
            track.flushed = False
        return total_moved

    def _collapse_reverse(self, frozen: VMObject, child: VMObject) -> int:
        """Aurora's direction: frozen's few pages move *down* into the
        parent; cost ∝ dirty set."""
        if self.legacy_hot_path:
            parent, moved = frozen.collapse_into_parent_legacy()
        else:
            parent, moved = frozen.collapse_into_parent()
        # Repoint the child over the departed middle object, adopting
        # the reference collapse_into_parent() took for us.
        frozen.shadow_count -= 1
        child.backing = parent
        parent.shadow_count += 1
        frozen.unref()  # drop the child's old backing reference
        return moved

    def _collapse_forward(self, frozen: VMObject, child: VMObject) -> int:
        """Classic direction: the parent's (large) resident set moves
        *up* into the frozen shadow, which then becomes the chain's
        base; cost ∝ parent resident count ("the original collapse
        operation inserts the parent's pages into the shadow", §6)."""
        frozen.frozen = False  # it becomes the (mutable) chain base
        return frozen.collapse_forward()

    # -- the shadow pass ----------------------------------------------------------

    def _group_tops(self, group: ConsistencyGroup) -> List[VMObject]:
        seen: Set[int] = set()
        tops: List[VMObject] = []
        for proc in group.persistent_processes():
            for entry in proc.vmspace.map:
                if not entry.writable() or entry.sls_excluded:
                    continue
                obj = entry.vmobject
                if obj.kind in (DEVICE, VNODE):
                    # Devices are never persisted; file-backed shared
                    # mappings are persisted by the Aurora FS (§6).
                    continue
                if obj.kid not in seen:
                    seen.add(obj.kid)
                    tops.append(obj)
        return tops

    def _repoint_entries(self, group: ConsistencyGroup, old: VMObject,
                         new: VMObject) -> int:
        """Repoint every reference to ``old`` onto ``new``; returns the
        number of PTEs write-protected."""
        downgraded = 0
        for proc in group.processes:
            if proc.state != "running":
                continue
            for entry in proc.vmspace.entries_for_object(old):
                entry.set_object(new)
                downgraded += proc.vmspace.pmap.write_protect_range(
                    entry.start_page, entry.npages)
        segment = self.kernel.shm_backmap.get(old.kid)
        if segment is not None:
            segment.replace_object(new)
        return downgraded

    def shadow_group(self, group: ConsistencyGroup,
                     full: bool = False) -> List[FlushItem]:
        """The synchronous (stop-time) part of memory checkpointing.

        Creates the system shadows, repoints entries/descriptors,
        write-protects the dirty PTEs and shoots down the TLB.  Returns
        the flush items whose pages the orchestrator hands to the
        store asynchronously.
        """
        kernel = self.kernel
        items: List[FlushItem] = []
        total_downgraded = 0
        for top in self._group_tops(group):
            if top.sls_oid is None:
                oid = group.oid_for(top, self.store, CLASS_MEMORY)
                top.sls_oid = oid
                track = ObjectTrack(oid, top)
                group.tracks[oid] = track
            else:
                track = group.tracks[top.sls_oid]
                if track.active is not top:
                    # An entry faulted privately and its shadow became
                    # the new top for that entry while the old active
                    # still exists elsewhere; treat as new logical obj.
                    oid = self.store.alloc_oid(CLASS_MEMORY)
                    top.sls_oid = oid
                    track = ObjectTrack(oid, top)
                    group.tracks[oid] = track
            if track.frozen is not None:
                if not track.flushed:
                    raise InvalidArgument(
                        "previous checkpoint still flushing; the "
                        "orchestrator must wait before shadowing again (§7)")
                # Flushed but its collapse was deferred (a private
                # fork shadow still hangs off it): leave it embedded
                # in the chain and carry on.
                track.frozen = None
                track.flushed = False

            if track.new or full:
                dirty = merged_chain_pages_legacy(top) if self.legacy_hot_path \
                    else merged_chain_pages(top)
            else:
                dirty = dict(top.pages)
            record = object_record(top)

            # Per-object cost: locking + metadata serialization.  The
            # number of address-space objects is the dominant stop-time
            # factor for complex applications (§9.4).
            kernel.clock.advance(costs.CKPT_VMOBJECT)
            shadow = top.shadow(name=f"sys:{top.name}")
            shadow.sls_oid = track.oid
            self.stats["shadows_created"] += 1
            downgraded = self._repoint_entries(group, top, shadow)
            total_downgraded += downgraded
            kernel.clock.advance(len(dirty) * costs.COW_MARK_PER_PAGE)

            top.frozen = True
            track.frozen = top
            track.active = shadow
            track.flushed = False
            track.new = False
            item = FlushItem(track.oid, record, dirty)
            self.stats["dirty_runs"] += len(item.runs())
            items.append(item)

        if total_downgraded or items:
            ncores = min(len(list(group.all_threads())), len(kernel.cpus))
            kernel.cpus.tlb_shootdown(ncores, max(total_downgraded, 1))
            self.stats["tlb_shootdowns"] += 1
            self.stats["ptes_downgraded"] += total_downgraded
        return items

    def mark_flushed(self, group: ConsistencyGroup) -> None:
        """Called when a checkpoint's flush completes: frozen shadows
        become collapsible at the next checkpoint (§6)."""
        for track in group.tracks.values():
            if track.frozen is not None:
                track.flushed = True
