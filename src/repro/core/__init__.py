"""Aurora's core: orchestrator, system shadowing, API, CLI, cost model.

Only :mod:`repro.core.costs` is imported eagerly — the hardware layer
needs the cost constants, and importing the orchestrator here would
create an import cycle (orchestrator → kernel → hw → core.costs).
The heavier submodules are re-exported lazily.
"""

from . import costs

__all__ = [
    "costs",
    "ConsistencyGroup",
    "Orchestrator",
    "AuroraAPI",
]

_LAZY = {
    "ConsistencyGroup": ("repro.core.group", "ConsistencyGroup"),
    "Orchestrator": ("repro.core.orchestrator", "Orchestrator"),
    "AuroraAPI": ("repro.core.api", "AuroraAPI"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, attr)
