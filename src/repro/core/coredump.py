"""``sls dump``: extract a checkpoint as an ELF-style core image (§3).

Produces a structurally valid ELF64 container: an ELF header, one
PT_NOTE segment carrying NT_PRSTATUS-like notes per thread, and one
PT_LOAD segment per mapped region with the region's memory contents.
It is not loadable on real x86-64 (the substrate is simulated), but
the layout is faithful enough that the parser in the test suite — and
any curious reader with ``readelf``-shaped expectations — can walk it.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from ..errors import RestoreError
from ..units import PAGE_SIZE

ELF_MAGIC = b"\x7fELF"
ELFCLASS64 = 2
ELFDATA2LSB = 1
ET_CORE = 4
EM_X86_64 = 62
PT_LOAD = 1
PT_NOTE = 4

_EHDR = struct.Struct("<4sBBBB8xHHIQQQIHHHHHH")
_PHDR = struct.Struct("<IIQQQQQQ")
_NHDR = struct.Struct("<III")

NT_PRSTATUS = 1


def _align4(n: int) -> int:
    return (n + 3) & ~3


def _note(name: bytes, ntype: int, desc: bytes) -> bytes:
    name_z = name + b"\x00"
    out = _NHDR.pack(len(name_z), len(desc), ntype)
    out += name_z.ljust(_align4(len(name_z)), b"\x00")
    out += desc.ljust(_align4(len(desc)), b"\x00")
    return out


def _prstatus(thread) -> bytes:
    """A compact register-dump note (pid, tid, then the GP registers
    in a fixed order)."""
    regs = thread.cpu_state.regs
    ordered = [regs[name] for name in sorted(regs)]
    return struct.pack(f"<II{len(ordered)}Q", thread.proc.local_pid,
                       thread.local_tid, *ordered)


def dump_process(proc) -> bytes:
    """Serialize one process's live state as an ELF64 core image."""
    # Collect notes.
    notes = b""
    for thread in proc.threads:
        notes += _note(b"CORE", NT_PRSTATUS, _prstatus(thread))

    # Collect loadable segments (skip device mappings).
    segments: List[Tuple[int, bytes]] = []
    for entry in proc.vmspace.map:
        if entry.vmobject.kind == "device":
            continue
        content = bytearray()
        for i in range(entry.npages):
            page = entry.vmobject.visible_page(entry.pindex_of(
                entry.start_page + i))
            content += page.realize() if page is not None \
                else b"\x00" * PAGE_SIZE
        segments.append((entry.start_page * PAGE_SIZE, bytes(content)))

    phnum = 1 + len(segments)
    ehsize = _EHDR.size
    phoff = ehsize
    data_off = phoff + phnum * _PHDR.size

    # Layout: notes first, then each segment.
    phdrs = b""
    body = b""
    note_off = data_off
    phdrs += _PHDR.pack(PT_NOTE, 0, note_off, 0, 0, len(notes),
                        len(notes), 4)
    body += notes
    cursor = note_off + len(notes)
    for vaddr, content in segments:
        phdrs += _PHDR.pack(PT_LOAD, 0x6, cursor, vaddr, vaddr,
                            len(content), len(content), PAGE_SIZE)
        body += content
        cursor += len(content)

    ehdr = _EHDR.pack(ELF_MAGIC, ELFCLASS64, ELFDATA2LSB, 1, 0,
                      ET_CORE, EM_X86_64, 1, 0, phoff, 0, 0,
                      ehsize, _PHDR.size, phnum, 0, 0, 0)
    return ehdr + phdrs + body


def parse_core(data: bytes) -> dict:
    """Parse a core produced by :func:`dump_process` (tests use this)."""
    if data[:4] != ELF_MAGIC:
        raise RestoreError("not an ELF image")
    fields = _EHDR.unpack_from(data, 0)
    e_type, _machine = fields[5], fields[6]
    phoff, phnum = fields[9], fields[14]
    if e_type != ET_CORE:
        raise RestoreError("not a core file")
    segments = []
    notes = []
    for index in range(phnum):
        p_type, _flags, off, vaddr, _paddr, filesz, _memsz, _align = \
            _PHDR.unpack_from(data, phoff + index * _PHDR.size)
        blob = data[off:off + filesz]
        if p_type == PT_LOAD:
            segments.append({"vaddr": vaddr, "data": blob})
        elif p_type == PT_NOTE:
            cursor = 0
            while cursor + _NHDR.size <= len(blob):
                namesz, descsz, ntype = _NHDR.unpack_from(blob, cursor)
                cursor += _NHDR.size
                name = blob[cursor:cursor + namesz - 1]
                cursor += _align4(namesz)
                desc = blob[cursor:cursor + descsz]
                cursor += _align4(descsz)
                notes.append({"name": name, "type": ntype, "desc": desc})
    return {"segments": segments, "notes": notes}
