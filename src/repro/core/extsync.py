"""External synchrony (§3, §4).

Outgoing communication from a consistency group is buffered until the
computation that produced it is persistent: a message sent between
checkpoints N and N+1 is released when checkpoint N+1 *commits*.  Reads
and anything on an fd marked with ``sls_fdctl(..., nosync)`` bypass the
buffer (§3's read-only-connection optimization).

The paper's artifact lists external synchrony as in-progress (§8
Limitations); the evaluation benchmarks therefore run with it
disabled, but the mechanism is implemented and measured by the
ablation benchmark.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from . import telemetry


class BufferedSend:
    """One withheld outgoing message."""

    __slots__ = ("sent_at", "nbytes", "on_release", "released_at")

    def __init__(self, sent_at: int, nbytes: int,
                 on_release: Optional[Callable[[int], None]] = None):
        self.sent_at = sent_at
        self.nbytes = nbytes
        self.on_release = on_release
        self.released_at: Optional[int] = None


class ExternalSynchrony:
    """Per-orchestrator buffering of externally visible output."""

    def __init__(self, kernel):
        self.kernel = kernel
        #: group_id -> sends not yet sealed to a checkpoint.
        self._open: Dict[int, List[BufferedSend]] = {}
        #: ckpt_id -> sends awaiting that checkpoint's completion.
        self._sealed: Dict[int, List[BufferedSend]] = {}
        self.stats = telemetry.StatsView(
            "sls.extsync",
            keys=("buffered", "released", "bypassed", "delay_ns_total"))

    def buffer_send(self, group, nbytes: int,
                    on_release: Optional[Callable[[int], None]] = None,
                    nosync: bool = False) -> Optional[BufferedSend]:
        """Register an outgoing message.

        Returns None (released immediately) when the group does not
        use external synchrony or the descriptor suppressed it.
        """
        if nosync or not group.external_synchrony:
            self.stats["bypassed"] += 1
            if on_release is not None:
                on_release(self.kernel.clock.now())
            return None
        send = BufferedSend(self.kernel.clock.now(), nbytes, on_release)
        self._open.setdefault(group.group_id, []).append(send)
        self.stats["buffered"] += 1
        return send

    def seal(self, group, ckpt_id: int) -> int:
        """Checkpoint quiesce: everything sent so far rides on this
        checkpoint.  Returns the number of sends sealed."""
        sends = self._open.pop(group.group_id, [])
        if sends:
            self._sealed.setdefault(ckpt_id, []).extend(sends)
        return len(sends)

    def unseal(self, group, ckpt_id: int) -> int:
        """Checkpoint rolled back: its sealed sends were never made
        durable, so they return to the group's open buffer and ride on
        the next checkpoint instead of leaking in ``_sealed`` forever.
        Returns the number of sends moved back."""
        sends = self._sealed.pop(ckpt_id, [])
        if sends:
            self._open.setdefault(group.group_id, [])[:0] = sends
        return len(sends)

    def release(self, ckpt_id: int) -> int:
        """Checkpoint committed: let its messages leave the machine."""
        now = self.kernel.clock.now()
        sends = self._sealed.pop(ckpt_id, [])
        for send in sends:
            send.released_at = now
            self.stats["released"] += 1
            self.stats["delay_ns_total"] += now - send.sent_at
            if send.on_release is not None:
                send.on_release(now)
        return len(sends)

    def pending_for(self, group) -> int:
        """Sends still withheld for this group (open + sealed)."""
        open_count = len(self._open.get(group.group_id, []))
        sealed = sum(len(v) for v in self._sealed.values())
        return open_count + sealed

    def drop_group(self, group) -> None:
        """Detach: forget the group's unsealed sends."""
        self._open.pop(group.group_id, None)
