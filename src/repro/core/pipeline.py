"""The staged checkpoint pipeline (§4.1).

The paper's checkpoint sequence —

    quiesce → collapse flushed shadows → system shadowing →
    serialize POSIX objects → seal → resume → asynchronous flush →
    commit

— is expressed as an ordered list of :class:`Stage` objects sharing a
:class:`CheckpointContext`.  Stages up to and including *resume* are
**stop-time** stages (the application is parked at the user/kernel
boundary); *flush* and *commit* are **overlap** stages that run
concurrently with execution.  Stop time versus overlap time is derived
from the stage trace instead of hand-threaded ``t_*`` variables, and
:class:`CheckpointResult` is a view over that trace.

The :class:`Txn` protocol is the formal transaction interface both
:class:`~repro.objstore.store.CheckpointTxn` and the in-memory
:class:`MemTxn` implement, so the mem-mode (stop-time measurement)
path is no longer a duck-type.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Protocol, runtime_checkable

from ..errors import SLSError
from ..hw.memory import Page
from ..objstore import records
from ..units import PAGE_SIZE
from . import costs, events, telemetry
from .quiesce import quiesce_group, resume_group
from .serialize import CheckpointSerializer

#: Checkpoint target modes.
MODE_DISK = "disk"   # full pipeline, flushed to the object store
MODE_MEM = "mem"     # stop-time measurement only, nothing flushed


@runtime_checkable
class Txn(Protocol):
    """What the pipeline requires of a checkpoint transaction."""

    info: Any

    def put_object(self, oid: int, otype: str, state: Any) -> None:
        """Stage one serialized object record."""

    def put_pages(self, oid: int, pages: Dict[int, Page]) -> None:
        """Stage dirty pages for a memory/file object."""

    def staged_bytes(self) -> int:
        """Bytes this transaction would write (records + pages)."""


class MemTxn:
    """In-memory transaction for non-flushed (mem-mode) checkpoints.

    Implements :class:`Txn` with the same record-staging cost model as
    the store transaction, but nothing ever reaches the device.
    """

    class _Info:
        ckpt_id = -1
        data_bytes = 0
        live_oids = None
        records_skipped = 0

    def __init__(self, store):
        self.store = store
        self.info = self._Info()
        self.records: Dict[int, bytes] = {}
        self.pages: Dict[int, Dict[int, Page]] = {}

    def put_object(self, oid: int, otype: str, state: Any) -> None:
        self.store.clock.advance(costs.STORE_RECORD_STAGE)
        self.records[oid] = records.encode_object(oid, otype, state)

    def put_pages(self, oid: int, pages: Dict[int, Page]) -> None:
        if not pages:
            return
        self.pages.setdefault(oid, {}).update(pages)

    def staged_bytes(self) -> int:
        total = sum(len(data) for data in self.records.values())
        total += sum(len(pages) * PAGE_SIZE
                     for pages in self.pages.values())
        return total


class StageTrace:
    """One stage's slot in a checkpoint's trace."""

    __slots__ = ("name", "start_ns", "end_ns", "overlap")

    def __init__(self, name: str, start_ns: int, end_ns: int,
                 overlap: bool):
        self.name = name
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.overlap = overlap

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def __repr__(self) -> str:
        kind = "overlap" if self.overlap else "stop"
        return (f"StageTrace({self.name}[{kind}] "
                f"{self.duration_ns} ns)")


class CheckpointContext:
    """Everything the stages share while one checkpoint runs."""

    def __init__(self, sls, group, name: str = "", full: bool = False,
                 sync: bool = False, mode: str = MODE_DISK):
        self.sls = sls
        self.machine = sls.machine
        self.kernel = sls.kernel
        self.clock = sls.kernel.clock
        self.store = sls.store
        self.shadow = sls.shadow
        self.extsync = sls.extsync
        self.slsfs = sls.slsfs
        self.group = group
        self.name = name
        self.full = full
        self.sync = sync
        self.mode = mode
        #: Filled in by the stages.
        self.quiesce_report = None
        self.collapse_moved = 0
        self.txn: Optional[Txn] = None
        self.flush_items: List = []
        self.info = None
        self.trace: List[StageTrace] = []
        #: Incremental-serialization accounting (filled by Serialize).
        self.records_written = 0
        self.records_skipped = 0
        #: Epoch floor to install once this checkpoint's commit is
        #: submitted (Flush); None until Serialize snapshots it.
        self.new_epoch_floor: Optional[int] = None

    def stop_time_ns(self) -> int:
        """Elapsed time across the stop-time stages recorded so far."""
        stop = [t for t in self.trace if not t.overlap]
        if not stop:
            return 0
        return stop[-1].end_ns - stop[0].start_ns


class Stage:
    """One step of the checkpoint pipeline."""

    name = "stage"
    #: False: contributes to application stop time.  True: runs
    #: concurrently with execution (after resume).
    overlap = False

    def run(self, ctx: CheckpointContext) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Stage {self.name}>"


class Quiesce(Stage):
    """Park every group thread at the user/kernel boundary (§5.1)."""

    name = "quiesce"

    def run(self, ctx: CheckpointContext) -> None:
        ctx.quiesce_report = quiesce_group(ctx.kernel, ctx.group)


class CollapseFlushed(Stage):
    """Collapse frozen shadows whose flush completed (§6)."""

    name = "collapse"

    def run(self, ctx: CheckpointContext) -> None:
        ctx.collapse_moved = ctx.shadow.collapse_completed(ctx.group)


class Shadow(Stage):
    """Open the transaction and take the system shadows (§6)."""

    name = "shadow"

    def run(self, ctx: CheckpointContext) -> None:
        if ctx.mode == MODE_MEM:
            ctx.txn = MemTxn(ctx.store)
        else:
            ctx.txn = ctx.store.begin_checkpoint(
                ctx.group.group_id, name=ctx.name,
                parent=ctx.group.last_ckpt_id)
        ctx.flush_items = ctx.shadow.shadow_group(ctx.group,
                                                  full=ctx.full)


class Serialize(Stage):
    """Serialize the POSIX object graph into the transaction (§5)."""

    name = "serialize"

    def run(self, ctx: CheckpointContext) -> None:
        # Incremental serialization: skip records unchanged since the
        # group's epoch floor.  ``full=True`` (and the first checkpoint
        # of a chain, floor None) serializes everything.
        floor = None if ctx.full else ctx.group.ckpt_epoch
        # A clean object may only be skipped when the parent chain can
        # still resolve its record; without that set (legacy chains,
        # a GC'd parent) incremental skipping is disabled for safety.
        prior_live = None
        if floor is not None and ctx.group.last_ckpt_id is not None:
            try:
                prior_live = ctx.store.effective_live_oids(
                    ctx.group.last_ckpt_id)
            except SLSError:
                prior_live = None
        serializer = CheckpointSerializer(ctx.kernel, ctx.group,
                                          ctx.store, ctx.txn,
                                          epoch_floor=floor,
                                          prior_live=prior_live)
        serializer.serialize_all()
        live = set(serializer.live_oids)
        for item in ctx.flush_items:
            ctx.txn.put_object(item.oid, "vmobject", item.record)
            ctx.txn.put_pages(item.oid, item.pages)
            live.add(item.oid)
        # Every tracked memory object stays live while its track
        # exists, whether or not it was dirtied this period.
        live.update(ctx.group.tracks.keys())
        ctx.records_written = (serializer.records_written +
                               len(ctx.flush_items))
        ctx.records_skipped = serializer.records_skipped
        ctx.txn.info.live_oids = live
        ctx.txn.info.records_skipped = ctx.records_skipped
        if ctx.mode == MODE_DISK:
            # Snapshot the epoch under quiescence; Flush installs it as
            # the group's floor only once the commit is submitted, so a
            # failed flush never loses dirty state.
            ctx.new_epoch_floor = ctx.kernel.dirty_epoch
            ctx.kernel.dirty_epoch += 1
        ctx.clock.advance(costs.CKPT_ORCH_BASE if ctx.mode == MODE_DISK
                          else costs.CKPT_ATOMIC_BASE)


class Seal(Stage):
    """Tie buffered external output to this checkpoint (§3)."""

    name = "seal"

    def run(self, ctx: CheckpointContext) -> None:
        if ctx.mode == MODE_DISK:
            ctx.extsync.seal(ctx.group, ctx.txn.info.ckpt_id)


class Resume(Stage):
    """Release the parked threads; stop time ends here."""

    name = "resume"

    def run(self, ctx: CheckpointContext) -> None:
        resume_group(ctx.kernel, ctx.group)


class Flush(Stage):
    """Kick off the asynchronous flush (overlaps execution, §4.1).

    Mem mode has nothing to flush: the shadows are immediately
    collapsible.  Disk mode hands the transaction to the store, which
    submits the data writes now and finalizes the commit (metadata +
    superblock flip) when they land.
    """

    name = "flush"
    overlap = True

    def run(self, ctx: CheckpointContext) -> None:
        group = ctx.group
        if ctx.mode == MODE_MEM:
            ctx.shadow.mark_flushed(group)
            return
        group.flush_in_progress = True
        kernel, store, shadow = ctx.kernel, ctx.store, ctx.shadow
        extsync = ctx.extsync
        # Quiesce start: the instant whose application state this
        # checkpoint captures (the SLO tracker's recovery-point
        # reference).
        capture_ns = ctx.trace[0].start_ns if ctx.trace else kernel.clock.now()
        slo_tracker = getattr(ctx.sls, "slo", None)

        def on_complete(info):
            group.flush_in_progress = False
            group.last_complete_id = info.ckpt_id
            # A flush may outlive a detach; the commit still lands in
            # the store (history is kept), but a detached group's SLO
            # series must not absorb the orphan's samples.
            if slo_tracker is not None and group.attached:
                slo_tracker.on_commit(group.group_id, info.ckpt_id,
                                      capture_ns, kernel.clock.now())
            shadow.mark_flushed(group)
            extsync.release(info.ckpt_id)
            if group.history_limit is not None:
                store.retain_last(group.group_id, group.history_limit)
            if kernel.pageout.memory_pressure():
                # Freshly flushed pages are clean: reclaim them
                # without IO (§6 Memory Overcommitment).
                objects = []
                for track in group.tracks.values():
                    objects.extend(track.active.chain())
                kernel.pageout.run_pageout(objects, store=store)

        prev_epoch = group.ckpt_epoch
        txn = ctx.txn

        def on_failure(exc):
            # An async flush died after submission (retries exhausted
            # during finalize): the store already aborted the txn; the
            # orchestrator unwinds the group-level state.
            ctx.sls.rollback_failed_checkpoint(group, txn,
                                               prev_epoch=prev_epoch,
                                               error=exc)

        ctx.info = store.commit(ctx.txn, sync=ctx.sync,
                                on_complete=on_complete,
                                on_failure=on_failure)
        group.last_ckpt_id = ctx.info.ckpt_id
        if ctx.new_epoch_floor is not None:
            # The commit was accepted (no ENOSPC / injected fault on
            # submission): subsequent checkpoints may skip objects
            # unchanged since this epoch.
            group.ckpt_epoch = ctx.new_epoch_floor
            events.emit(ctx.clock.now(), events.EPOCH_ADVANCE,
                        group=group.group_id, epoch=ctx.new_epoch_floor,
                        ckpt=ctx.info.ckpt_id)


class Commit(Stage):
    """Co-commit dependent state on the checkpoint cadence (§5.2).

    The store's own metadata commit rides the event loop (it fires
    when the flush's data writes land); this stage commits file-system
    state alongside so file data stays checkpoint-consistent.
    """

    name = "commit"
    overlap = True

    def run(self, ctx: CheckpointContext) -> None:
        if ctx.mode == MODE_DISK and ctx.slsfs is not None \
                and ctx.slsfs.has_dirty():
            ctx.slsfs.checkpoint(sync=ctx.sync)


#: The paper's §4.1 pipeline, in order.
DEFAULT_STAGES = (Quiesce(), CollapseFlushed(), Shadow(), Serialize(),
                  Seal(), Resume(), Flush(), Commit())

#: Canonical stage-name order (used by ``sls stat`` and benchmarks).
STAGE_ORDER = tuple(stage.name for stage in DEFAULT_STAGES)

#: Names of the stages that contribute to application stop time.
STOP_STAGES = tuple(s.name for s in DEFAULT_STAGES if not s.overlap)


class CheckpointResult:
    """Timing view over one checkpoint's stage trace.

    Benchmarks read the derived ``stop_ns`` / ``quiesce_ns`` /
    ``shadow_ns`` / ``serialize_ns`` fields; :meth:`stage_ns` exposes
    any stage's duration directly.  Results built outside the pipeline
    (``sls_memckpt``) carry no trace and fill the fields by hand.
    """

    def __init__(self, info, mode: str,
                 stages: Optional[List[StageTrace]] = None):
        self.info = info
        self.mode = mode
        self.stages: List[StageTrace] = list(stages or [])
        self.stop_ns = 0
        self.quiesce_ns = 0
        self.shadow_ns = 0
        self.serialize_ns = 0
        self.pages_flushed = 0
        self.bytes_staged = 0
        #: Object records staged vs. skipped as unchanged (incremental
        #: kernel-state checkpoints).
        self.records_written = 0
        self.records_skipped = 0

    @classmethod
    def from_context(cls, ctx: CheckpointContext) -> "CheckpointResult":
        result = cls(ctx.txn.info if ctx.mode == MODE_DISK else None,
                     ctx.mode, ctx.trace)
        result.quiesce_ns = result.stage_ns("quiesce")
        # The shadow phase of the old monolith spanned collapse +
        # shadow creation; keep the field's meaning stable.
        result.shadow_ns = (result.stage_ns("collapse") +
                            result.stage_ns("shadow"))
        result.serialize_ns = result.stage_ns("serialize")
        result.stop_ns = ctx.stop_time_ns()
        result.pages_flushed = sum(len(item.pages)
                                   for item in ctx.flush_items)
        result.bytes_staged = ctx.txn.staged_bytes()
        result.records_written = ctx.records_written
        result.records_skipped = ctx.records_skipped
        return result

    def stage_ns(self, name: str) -> int:
        """Total duration of the named stage (0 when absent)."""
        return sum(t.duration_ns for t in self.stages if t.name == name)

    def stop_time_ns(self) -> int:
        """Stop time derived from the stage trace."""
        stop = [t for t in self.stages if not t.overlap]
        if not stop:
            return self.stop_ns
        return stop[-1].end_ns - stop[0].start_ns

    def overlap_ns(self) -> int:
        """Time spent in the overlap (flush/commit) stages.  For an
        asynchronous checkpoint this is only the submission cost; a
        ``sync=True`` checkpoint shows the full flush-to-durable
        time."""
        return sum(t.duration_ns for t in self.stages if t.overlap)

    def __repr__(self) -> str:
        from ..units import fmt_time
        ckpt = self.info.ckpt_id if self.info is not None else "-"
        return (f"CheckpointResult(id={ckpt}, mode={self.mode}, "
                f"stop={fmt_time(self.stop_ns)}, "
                f"{self.pages_flushed} pages)")


class CheckpointPipeline:
    """Runs the ordered stage list and records per-stage spans."""

    def __init__(self, stages=DEFAULT_STAGES,
                 registry: Optional[telemetry.TelemetryRegistry] = None):
        self.stages: List[Stage] = list(stages)
        self.telemetry = registry or telemetry.registry()

    def run(self, ctx: CheckpointContext) -> CheckpointResult:
        clock = ctx.clock
        # The fault plan sees every stage boundary: "before" each
        # stage plus "after" the last one — N+1 crash points per
        # checkpoint, enumerable by the crash-schedule explorer.
        plan = getattr(ctx.machine, "fault_plan", None)
        last = len(self.stages) - 1
        for index, stage in enumerate(self.stages):
            if plan is not None:
                plan.on_stage(stage.name, "before")
            # Open the stage span as a context so serializer / store /
            # device spans recorded inside nest under it in the
            # checkpoint's trace tree (span close records into the same
            # ``ckpt.<stage>`` histogram as before).
            span = self.telemetry.span(clock, f"ckpt.{stage.name}",
                                       group=ctx.group.group_id)
            with span:
                stage.run(ctx)
            ctx.trace.append(StageTrace(stage.name, span.start_ns,
                                        clock.now(), stage.overlap))
            if plan is not None and index == last:
                plan.on_stage(stage.name, "after")
        return CheckpointResult.from_context(ctx)
