"""The fleet control plane: EDF checkpoint scheduling for thousands
of consistency groups.

Before this module every :class:`~repro.core.group.ConsistencyGroup`
armed its own independent ``call_after`` timer, so co-scheduled
tenants collided on the NVMe bandwidth model, one tenant's ENOSPC
spiral could widen everyone's cadence, and nothing refused new
attachments when the store saturated.  The :class:`FleetScheduler`
replaces all of that with one control plane:

* **A single EDF queue.**  Every periodic group carries a deadline
  (``last dispatch + effective period``); the scheduler arms exactly
  one event-loop timer at the *earliest* deadline and dispatches due
  groups earliest-deadline-first.  Admission staggers initial phases
  with a van der Corput (bit-reversal) sequence so deadlines spread
  across the period instead of detonating together.
* **Admission control.**  A group is admitted only while aggregate
  demand fits the store: Σ ``dirty_bytes/period`` must stay under the
  measured NVMe write bandwidth (``costs.NVME_WRITE_BW`` ×
  ``costs.NVME_DEVICES``), and Σ ``service/period`` — the sim-time a
  dispatch occupies the control plane — must stay under the time
  budget.  Over-budget attaches are refused (``ADMISSION_REJECT``)
  or auto-widened (``BACKPRESSURE``), per policy.
* **Backpressure, offender-pays.**  Demand estimates are EWMAs of
  observed dirty bytes and service time; when measured aggregate
  demand outgrows capacity the scheduler stretches the *largest*
  tenant's period (never the fleet's), and relaxes it again once
  demand subsides.
* **Per-tenant degraded isolation.**  The degraded tick (memory-only
  checkpoints + every-``probe_every``-th disk probe for ENOSPC, a
  ``WIDEN_FACTOR`` widened interval for device trouble) runs per
  group; a degraded ENOSPC tenant writes nothing to the store, so its
  booked bandwidth demand drops to zero and its neighbours keep their
  cadence.  The paper's §7 invariant — a slow store bounds checkpoint
  *frequency*, never correctness — therefore holds per tenant.

Crash consistency: the scheduler reports its decision points
(admission, EDF dispatch, backpressure widen) to the machine's
:class:`~repro.core.faults.FaultPlan` as ``fleet`` boundaries, so the
crash-schedule explorer can power-fail the control plane anywhere and
prove every tenant restores to its last durable checkpoint.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..errors import AdmissionRejected, NoSpace, RetriesExhausted, StoreFull
from ..units import SEC, USEC
from . import costs, events, resilience, telemetry
from .group import ConsistencyGroup
from .pipeline import MODE_MEM

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .orchestrator import Orchestrator

__all__ = ["ADMIT_REJECT", "ADMIT_WIDEN", "FleetScheduler", "FleetTimer"]

#: Admission policies: refuse an infeasible attach outright, or
#: stretch the newcomer's period until it fits.
ADMIT_REJECT = "reject"
ADMIT_WIDEN = "widen"

#: Fraction of the aggregate NVMe write bandwidth admission may book.
BANDWIDTH_UTIL_CAP = 0.8
#: Fraction of sim-time the checkpoint control plane may book
#: (Σ service/period); checkpoints serialize on the machine, so this
#: is the EDF schedulability bound with headroom.
TIME_UTIL_CAP = 0.8
#: Aggregate store write bandwidth (bytes/second) admission bills
#: against: the measured per-device rate across the stripe.
CAPACITY_BYTES_PER_SEC = costs.NVME_WRITE_BW * costs.NVME_DEVICES

#: Conservative per-dispatch service estimate before the first
#: measurement (orchestration base plus capture work).
ADMIT_SERVICE_NS = 300 * USEC

#: Backpressure may stretch one tenant's period by at most this much.
MAX_WIDEN_FACTOR = 64
#: A relaxation (halving a widened period) must leave aggregate
#: demand below this fraction of each cap, or it would oscillate.
RELAX_MARGIN = 0.75

#: Dispatch later than ``period / MISS_SLACK_DIV`` past the EDF
#: deadline counts as a deadline miss (per-group override:
#: ``group.miss_slack_ns``).
MISS_SLACK_DIV = 4

#: The backpressure controller recomputes aggregate demand every Nth
#: dispatch (the aggregates are O(tenants); at thousands of tenants
#: running them per dispatch would cost more than the checkpoints).
BACKPRESSURE_CHECK_EVERY = 8


def van_der_corput(index: int) -> float:
    """Base-2 van der Corput value in [0, 1): bit-reversed ``index``.

    Successive admissions land at 0.5, 0.25, 0.75, 0.125, ... of the
    period — maximally spread without any shared state beyond a
    counter, and deterministic.
    """
    frac, denom = 0.0, 1.0
    while index:
        denom *= 2.0
        frac += (index & 1) / denom
        index >>= 1
    return frac


class FleetTimer:
    """The scheduling handle stored as ``group.timer``.

    Pre-fleet code (suspend, restore, migration, benchmarks) cancels
    a group's periodic chain via ``group.timer.cancel()``; this object
    keeps that contract — cancelling it evicts the group from the EDF
    queue.
    """

    __slots__ = ("_fleet", "_group", "cancelled")

    def __init__(self, fleet: "FleetScheduler", group: ConsistencyGroup):
        self._fleet = fleet
        self._group = group
        self.cancelled = False

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        self._fleet._evict(self._group)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "armed"
        return f"FleetTimer(group={self._group.group_id}, {state})"


class _Entry:
    """One admitted group's slot in the EDF queue."""

    __slots__ = ("group", "deadline_ns", "cancelled")

    def __init__(self, group: ConsistencyGroup):
        self.group = group
        self.deadline_ns = 0
        self.cancelled = False


class FleetScheduler:
    """Fleet-wide EDF checkpoint scheduler with admission control."""

    def __init__(self, sls: "Orchestrator") -> None:
        self.sls = sls
        self.machine = sls.machine
        self.clock = sls.kernel.clock
        self.telemetry = telemetry.registry()
        #: EDF queue: ``(deadline, seq, group_id)`` with lazy deletion
        #: (a popped tuple is stale unless it matches the entry's
        #: current deadline).
        self._heap: List[Tuple[int, int, int]] = []
        self._entries: Dict[int, _Entry] = {}
        self._seq = 0
        #: Lifetime admissions; drives the van der Corput stagger.
        self._admissions = 0
        #: Lifetime dispatches; paces the backpressure controller.
        self._dispatch_count = 0
        #: Fleet-wide deadline misses, and how many the backpressure
        #: controller has already reacted to.  Misses are the ground
        #: truth the EWMA estimates cannot see (async flush completions
        #: consume machine time that never shows up in per-dispatch
        #: service observations).
        self._miss_total = 0
        self._miss_seen = 0
        #: The one armed event-loop timer (earliest deadline), and the
        #: instant it is armed for.
        self._armed: Optional[Any] = None
        self._armed_for: Optional[int] = None

    # -- admission ---------------------------------------------------------

    def admit(self, group: ConsistencyGroup,
              demand_bytes_per_sec: Optional[int] = None,
              policy: str = ADMIT_WIDEN) -> FleetTimer:
        """Admission-test ``group`` and enter it into the EDF queue.

        ``demand_bytes_per_sec`` seeds the demand estimate (else the
        group starts with whatever EWMA it already carries, or zero —
        a blank tenant is admitted on the service-time test alone and
        the estimate catches up after its first checkpoints).
        """
        if policy not in (ADMIT_REJECT, ADMIT_WIDEN):
            raise ValueError(f"bad admission policy {policy!r}")
        now = self.clock.now()
        if demand_bytes_per_sec is not None:
            group.demand_bytes_per_ckpt = (
                demand_bytes_per_sec * group.period_ns // SEC)
        self._fault_boundary(group.group_id, "admit")
        widen = self._admission_widen(group)
        if widen > 1:
            if policy == ADMIT_REJECT or widen > MAX_WIDEN_FACTOR:
                events.emit(now, events.ADMISSION_REJECT,
                            group=group.group_id, tenant=group.name,
                            demand_bps=self._demand_bps(group),
                            aggregate_bps=self.aggregate_demand_bps(),
                            capacity_bps=self.capacity_bps())
                self.telemetry.counter("sls.fleet.admission_rejects").add(1)
                raise AdmissionRejected(
                    f"group {group.group_id} ({group.name}): admitting "
                    f"would exceed store capacity "
                    f"(aggregate {self.aggregate_demand_bps()} B/s + "
                    f"{self._demand_bps(group)} B/s > "
                    f"{self.capacity_bps()} B/s, or time utilization "
                    f"over {TIME_UTIL_CAP})")
            group.backpressure_factor = widen
            events.emit(now, events.BACKPRESSURE, group=group.group_id,
                        tenant=group.name, action="admit_widen", factor=widen,
                        effective_period_ns=self.effective_period(group))
            self.telemetry.counter("sls.fleet.backpressure_widens",
                                   group=group.group_id).add(1)
        entry = _Entry(group)
        self._entries[group.group_id] = entry
        timer = FleetTimer(self, group)
        group.timer = timer
        period = self.effective_period(group)
        # Stagger: admission k takes phase vdc(k) of its own period,
        # with vdc(0) = 0 — the first tenant keeps the legacy
        # ``now + period`` first tick, later tenants spread out.
        phase = int(van_der_corput(self._admissions) * period)
        self._admissions += 1
        self._set_deadline(entry, now + period + phase)
        self._register_budgets(group)
        events.emit(now, events.FLEET_ADMIT, group=group.group_id,
                    tenant=group.name, period_ns=group.period_ns, factor=group.backpressure_factor,
                    phase_ns=phase)
        self.telemetry.counter("sls.fleet.admitted").add(1)
        self._rearm()
        return timer

    def _register_budgets(self, group: ConsistencyGroup) -> None:
        """Install the tenant's explicit SLO budgets, if any."""
        overrides: Dict[str, int] = {}
        if group.rpo_budget_ns is not None:
            overrides["rpo_ns"] = group.rpo_budget_ns
        if group.stop_budget_ns is not None:
            overrides["stop_ns"] = group.stop_budget_ns
        if overrides:
            self.sls.slo.set_group_targets(group.group_id, **overrides)

    def _admission_widen(self, group: ConsistencyGroup) -> int:
        """Smallest power-of-two widen factor that makes the fleet
        (incumbents + candidate) feasible; ``2 * MAX_WIDEN_FACTOR``
        when even the widest period does not fit."""
        bw_used = self.aggregate_demand_bps()
        util_used = self.aggregate_time_util()
        widen = 1
        while widen <= MAX_WIDEN_FACTOR:
            period = group.period_ns * widen
            if group.health.degraded \
                    and group.health.reason == resilience.REASON_DEVICE:
                period *= resilience.WIDEN_FACTOR
            bw = (0 if self._memory_only(group)
                  else group.demand_bytes_per_ckpt * SEC // period)
            service = group.service_ns_est or ADMIT_SERVICE_NS
            if (bw_used + bw <= self.capacity_bps()
                    and util_used + service / period <= TIME_UTIL_CAP):
                return widen
            widen *= 2
        return widen

    def _evict(self, group: ConsistencyGroup) -> None:
        entry = self._entries.pop(group.group_id, None)
        if entry is None:
            return
        entry.cancelled = True
        events.emit(self.clock.now(), events.FLEET_EVICT,
                    group=group.group_id, tenant=group.name)
        self._rearm()

    # -- demand accounting -------------------------------------------------

    @staticmethod
    def capacity_bps() -> int:
        """Bandwidth admission may book (measured rate × headroom)."""
        return int(CAPACITY_BYTES_PER_SEC * BANDWIDTH_UTIL_CAP)

    @staticmethod
    def _memory_only(group: ConsistencyGroup) -> bool:
        """Degraded-ENOSPC tenants checkpoint to memory only: they
        consume no store bandwidth until their probe succeeds."""
        return (group.health.degraded
                and group.health.reason == resilience.REASON_ENOSPC)

    def effective_period(self, group: ConsistencyGroup) -> int:
        """Requested period × backpressure widen × degraded widen."""
        period = group.period_ns * group.backpressure_factor
        if group.health.degraded \
                and group.health.reason == resilience.REASON_DEVICE:
            period *= resilience.WIDEN_FACTOR
        return period

    def _demand_bps(self, group: ConsistencyGroup) -> int:
        if self._memory_only(group):
            return 0
        return (group.demand_bytes_per_ckpt * SEC
                // self.effective_period(group))

    def _time_util(self, group: ConsistencyGroup) -> float:
        service = group.service_ns_est or ADMIT_SERVICE_NS
        return service / self.effective_period(group)

    def aggregate_demand_bps(self) -> int:
        """Σ dirty_bytes/period over admitted, store-writing tenants."""
        return sum(self._demand_bps(entry.group)
                   for entry in self._entries.values()
                   if not entry.cancelled)

    def aggregate_time_util(self) -> float:
        """Σ service/period over admitted tenants."""
        return sum(self._time_util(entry.group)
                   for entry in self._entries.values()
                   if not entry.cancelled)

    # -- the EDF queue -----------------------------------------------------

    def _set_deadline(self, entry: _Entry, when_ns: int) -> None:
        entry.deadline_ns = when_ns
        self._seq += 1
        heapq.heappush(self._heap, (when_ns, self._seq,
                                    entry.group.group_id))

    def _next_deadline(self) -> Optional[int]:
        """Earliest live deadline (popping stale heap tuples)."""
        while self._heap:
            when, _, gid = self._heap[0]
            entry = self._entries.get(gid)
            if entry is None or entry.cancelled \
                    or entry.deadline_ns != when:
                heapq.heappop(self._heap)
                continue
            return when
        return None

    def next_deadline(self) -> Optional[int]:
        """Public view of the earliest live deadline (``sls fleet``)."""
        return self._next_deadline()

    def _rearm(self) -> None:
        """Keep exactly one loop timer armed at the earliest deadline;
        disarm entirely when the queue is empty (so a drained loop
        goes idle — nothing periodic survives the last eviction)."""
        deadline = self._next_deadline()
        if deadline is None:
            if self._armed is not None:
                self._armed.cancel()
                self._armed = None
                self._armed_for = None
            return
        if (self._armed is not None and not self._armed.cancelled
                and self._armed_for == deadline):
            return
        if self._armed is not None:
            self._armed.cancel()
        when = max(deadline, self.clock.now())
        self._armed = self.machine.loop.call_at(when, self._fire)
        self._armed_for = deadline

    def _fire(self) -> None:
        """The armed timer fired: dispatch every due group in EDF
        order.  Dispatches advance the sim clock, which may push
        further deadlines into the past; the loop absorbs them here,
        still earliest-first, instead of re-arming per group."""
        self._armed = None
        self._armed_for = None
        try:
            while True:
                deadline = self._next_deadline()
                if deadline is None or deadline > self.clock.now():
                    break
                # The head tuple is live (validated above): dispatch it.
                _, _, gid = heapq.heappop(self._heap)
                self._dispatch(self._entries[gid], deadline)
        finally:
            self._rearm()

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self, entry: _Entry, deadline: int) -> None:
        """One EDF dispatch: miss accounting, the periodic checkpoint
        (or degraded tick), demand observation, backpressure, and the
        next deadline."""
        group = entry.group
        if not group.attached or group.suspended:
            # The chain dies quietly, exactly like the pre-fleet
            # per-group timer did.
            self._evict(group)
            return
        self._fault_boundary(group.group_id, "dispatch")
        start_ns = self.clock.now()
        group.dispatches += 1
        self.telemetry.counter("sls.fleet.dispatches",
                               group=group.group_id).add(1)
        lateness = start_ns - deadline
        slack = (group.miss_slack_ns if group.miss_slack_ns is not None
                 else self.effective_period(group) // MISS_SLACK_DIV)
        if lateness > slack:
            group.deadline_misses += 1
            self._miss_total += 1
            self.telemetry.counter("sls.fleet.deadline_misses",
                                   group=group.group_id).add(1)
            events.emit(start_ns, events.DEADLINE_MISS,
                        group=group.group_id, tenant=group.name,
                        lateness_ns=lateness,
                        slack_ns=slack)
        if group.flush_in_progress:
            # A flush overrunning the period delays the next
            # checkpoint rather than piling up (§7).
            group.flush_skips += 1
            self.telemetry.counter("sls.fleet.flush_skips",
                                   group=group.group_id).add(1)
        else:
            bytes_before = group.stats["bytes_flushed"]
            self._periodic_checkpoint(group)
            self._observe(group, start_ns, bytes_before)
            self._dispatch_count += 1
            if self._dispatch_count % BACKPRESSURE_CHECK_EVERY == 0:
                self._backpressure_check()
        if (group.timer is not None and not group.timer.cancelled
                and group.attached and not group.suspended):
            self._set_deadline(entry, self.clock.now()
                               + self.effective_period(group))

    def _periodic_checkpoint(self, group: ConsistencyGroup) -> None:
        """One periodic tick: checkpoint, absorbing storage failures
        into the group's own degraded-mode state machine instead of
        unwinding into the event loop.  Injected power failures still
        propagate — a dying host does not degrade gracefully."""
        sls = self.sls
        health = group.health
        if health.degraded:
            self._degraded_tick(group)
            return
        try:
            sls.checkpoint(group)
            health.consecutive_failures = 0
        except (StoreFull, NoSpace) as exc:
            sls._enter_degraded(group, resilience.REASON_ENOSPC, exc)
            sls._emergency_gc(group)
            # Keep the cadence alive with a memory-only checkpoint:
            # bounded stop times, no store writes.
            sls.checkpoint(group, mode=MODE_MEM)
        except RetriesExhausted as exc:
            health.consecutive_failures += 1
            if (health.consecutive_failures
                    >= resilience.DEVICE_FAILURE_THRESHOLD):
                sls._enter_degraded(group, resilience.REASON_DEVICE, exc)

    def _degraded_tick(self, group: ConsistencyGroup) -> None:
        sls = self.sls
        health = group.health
        health.ticks += 1
        if health.reason == resilience.REASON_ENOSPC:
            # Memory-only checkpoints with a periodic disk probe at
            # the tenant's own cadence; the probe is full so
            # everything captured only in memory since degrading
            # becomes durable the moment space allows.
            if health.ticks % group.probe_every == 0:
                try:
                    sls.checkpoint(group, name="probe", full=True,
                                   sync=True)
                    sls._exit_degraded(group)
                    return
                except (StoreFull, NoSpace, RetriesExhausted):
                    sls._emergency_gc(group)
            sls.checkpoint(group, mode=MODE_MEM)
            return
        # Device trouble: the widened-interval tick *is* the probe.
        try:
            sls.checkpoint(group, name="probe", full=True, sync=True)
            sls._exit_degraded(group)
        except RetriesExhausted:
            health.consecutive_failures += 1
        except (StoreFull, NoSpace) as exc:
            sls._enter_degraded(group, resilience.REASON_ENOSPC, exc)
            sls._emergency_gc(group)

    def _observe(self, group: ConsistencyGroup, start_ns: int,
                 bytes_before: int) -> None:
        """Fold one dispatch into the EWMA demand/service estimates
        (new = 3/4 old + 1/4 observed)."""
        service = self.clock.now() - start_ns
        if group.service_ns_est:
            group.service_ns_est = (3 * group.service_ns_est
                                    + service) // 4
        else:
            group.service_ns_est = service
        written = group.stats["bytes_flushed"] - bytes_before
        if written > 0:
            if group.demand_bytes_per_ckpt:
                group.demand_bytes_per_ckpt = (
                    3 * group.demand_bytes_per_ckpt + written) // 4
            else:
                group.demand_bytes_per_ckpt = written

    def _backpressure_check(self) -> None:
        """Measured aggregate demand outgrew capacity: stretch the
        largest tenant's period (offender pays) until the fleet fits
        again; relax a widened tenant when demand subsides."""
        now = self.clock.now()
        missed = self._miss_total - self._miss_seen
        self._miss_seen = self._miss_total
        rounds = 0
        while rounds < 32:
            over_bw = self.aggregate_demand_bps() > self.capacity_bps()
            over_time = self.aggregate_time_util() > TIME_UTIL_CAP
            # Deadlines slipping while the estimates claim headroom
            # means the estimates are wrong, not the deadlines: widen
            # once per check on the observed-lateness signal alone.
            over_lateness = missed > 0 and rounds == 0
            if not over_bw and not over_time and not over_lateness:
                break
            offender = self._largest_tenant()
            if (offender is None
                    or offender.backpressure_factor >= MAX_WIDEN_FACTOR):
                break
            self._fault_boundary(offender.group_id, "widen")
            offender.backpressure_factor *= 2
            events.emit(now, events.BACKPRESSURE,
                        group=offender.group_id, tenant=offender.name,
                        action="widen",
                        factor=offender.backpressure_factor,
                        effective_period_ns=self.effective_period(offender))
            self.telemetry.counter("sls.fleet.backpressure_widens",
                                   group=offender.group_id).add(1)
            rounds += 1
        if rounds:
            return
        # Relaxation: one tenant per dispatch, only while deadlines are
        # holding, and only when halving its factor leaves clear margin
        # (no oscillation).
        if missed:
            return
        for entry in self._entries.values():
            group = entry.group
            if entry.cancelled or group.backpressure_factor <= 1:
                continue
            halved = group.backpressure_factor // 2
            saved = group.backpressure_factor
            group.backpressure_factor = halved
            fits = (self.aggregate_demand_bps()
                    <= self.capacity_bps() * RELAX_MARGIN
                    and self.aggregate_time_util()
                    <= TIME_UTIL_CAP * RELAX_MARGIN)
            if not fits:
                group.backpressure_factor = saved
                continue
            events.emit(now, events.BACKPRESSURE, group=group.group_id,
                        tenant=group.name, action="relax", factor=halved,
                        effective_period_ns=self.effective_period(group))
            break

    def _largest_tenant(self) -> Optional[ConsistencyGroup]:
        """The admitted group contributing the largest share of the
        binding resource."""
        best: Optional[ConsistencyGroup] = None
        best_share = -1.0
        for entry in self._entries.values():
            if entry.cancelled:
                continue
            group = entry.group
            share = max(self._demand_bps(group)
                        / max(1, self.capacity_bps()),
                        self._time_util(group) / TIME_UTIL_CAP)
            if share > best_share:
                best, best_share = group, share
        return best

    # -- fault boundaries --------------------------------------------------

    def _fault_boundary(self, group_id: int, boundary: str) -> None:
        plan = getattr(self.machine, "fault_plan", None)
        if plan is not None:
            plan.on_fleet(group_id, boundary)

    # -- reporting ---------------------------------------------------------

    def report(self) -> List[Dict[str, Any]]:
        """Per-tenant scheduler rows (the ``sls fleet`` payload)."""
        rows: List[Dict[str, Any]] = []
        aggregate = max(1, self.aggregate_demand_bps())
        for gid in sorted(self._entries):
            entry = self._entries[gid]
            group = entry.group
            health = group.health
            demand = self._demand_bps(group)
            rows.append({
                "group": gid,
                "name": group.name,
                "period_ns": group.period_ns,
                "effective_period_ns": self.effective_period(group),
                "backpressure_factor": group.backpressure_factor,
                "demand_bps": demand,
                "demand_share": demand / aggregate,
                "service_ns_est": group.service_ns_est or ADMIT_SERVICE_NS,
                "dispatches": group.dispatches,
                "checkpoints": group.stats["checkpoints"],
                "deadline_misses": group.deadline_misses,
                "flush_skips": group.flush_skips,
                "degraded": health.reason if health.degraded else "",
                "probe_every": group.probe_every,
                "deadline_ns": entry.deadline_ns,
            })
        return rows

    def summary(self) -> Dict[str, Any]:
        """Fleet-wide scheduler summary (capacity, demand, fairness)."""
        registry = self.telemetry
        periods = {gid: entry.group.period_ns
                   for gid, entry in self._entries.items()}
        fairness = self.sls.slo.fleet_fairness(sorted(self._entries),
                                               normalize=periods)
        return {
            "tenants": len(self._entries),
            "capacity_bps": self.capacity_bps(),
            "aggregate_demand_bps": self.aggregate_demand_bps(),
            "bandwidth_util": (self.aggregate_demand_bps()
                               / max(1, self.capacity_bps())),
            "time_util": self.aggregate_time_util(),
            "time_util_cap": TIME_UTIL_CAP,
            "deadline_misses": registry.value("sls.fleet.deadline_misses"),
            "admission_rejects": registry.value(
                "sls.fleet.admission_rejects"),
            "backpressure_widens": registry.value(
                "sls.fleet.backpressure_widens"),
            "fairness": fairness,
            "next_deadline_ns": self._next_deadline(),
        }
