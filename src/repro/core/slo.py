"""RPO and stop-time SLO tracking for the continuous checkpoint loop.

Aurora's headline numbers — 100 Hz continuous checkpointing with
millisecond persistence and sub-millisecond stop times (§6) — are
service level objectives.  The :class:`SLOTracker` turns them into
monitored budgets:

* **Recovery-point lag** — the worst-case data loss were power to fail
  just before a commit lands: the sim-time between a checkpoint's
  durable commit and the *capture instant* (quiesce start) of the
  previous durable checkpoint.  At a steady 100 Hz with async flushes
  this hovers around one period plus the flush latency; the default
  budget is 10 ms (one period).
* **Stop time** — the quiesce→resume window of each checkpoint;
  budget 1 ms (§4.1's "a millisecond or less").
* **End-to-end latency** — capture instant to durable commit of the
  same checkpoint (the "continuous persistence lag" of §6).

Samples are exact (per-checkpoint values, not histogram buckets), so
``sls slo``'s max/p50/p99 can be cross-checked against the known
commit schedule of a deterministic run — which a test does.  Budget
violations are counted per group in ``sls.slo.violations`` counters.

The tracker is fed by the orchestrator (stop time after each pipeline
run, commit data from the store's completion callback) and never
advances the simulated clock.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..units import MSEC, SEC
from . import events as events_mod
from . import telemetry, tracing

#: Default budgets: one 100 Hz period of recovery-point lag, and the
#: paper's sub-millisecond stop time.
DEFAULT_RPO_NS = 10 * MSEC
DEFAULT_STOP_NS = 1 * MSEC
#: Degraded-mode time budget: cumulative time a group may spend in
#: degraded mode (memory-only checkpoints / widened interval) before
#: it counts as an SLO violation — five normal checkpoint periods.
DEFAULT_DEGRADED_NS = 50 * MSEC
#: Cluster budgets: commit→write-quorum lag (two checkpoint periods),
#: failover (promote + restore on the new primary), and per-segment
#: repair MTTR — the Aurora ~10 s segment-repair window that bounds
#: durability.
DEFAULT_QUORUM_NS = 20 * MSEC
DEFAULT_FAILOVER_NS = 1 * SEC
DEFAULT_REPAIR_SEGMENT_NS = 10 * SEC
#: Fencing / reconciliation budgets: winning a quorum epoch bump (a
#: round of small control messages plus one superblock flip per
#: voter), bytes a single heal-time reconciliation may move (the
#: digest exchange should keep this near the real divergence, not the
#: history size), and the time a fenced ex-primary may sit in the
#: stale-primary degraded mode before reconciliation retires it.
DEFAULT_EPOCH_BUMP_NS = 100 * MSEC
DEFAULT_RECONCILE_BYTES = 4 * 1024 * 1024
DEFAULT_STALE_PRIMARY_NS = 1 * SEC

#: Exact samples kept per series (oldest dropped beyond this).
SAMPLE_CAPACITY = 65536

#: Burn-rate alerting: the recent window of samples the rate is
#: computed over, the minimum samples before alerting (a single bad
#: first commit is noise, not a burn), and the edge-trigger threshold
#: in milli-units (2000 = consuming budget at 2x the sustainable
#: rate — the classic "fast burn" page).
BURN_WINDOW = 32
BURN_MIN_SAMPLES = 4
BURN_ALERT_MILLI = 2000


def percentile_exact(values: List[int], p: float) -> int:
    """Nearest-rank percentile over exact samples (0 when empty)."""
    if not values:
        return 0
    ordered = sorted(values)
    rank = max(1, int(len(ordered) * p / 100.0 + 0.9999))
    return ordered[min(rank, len(ordered)) - 1]


class SLOTargets:
    """Configurable budgets."""

    __slots__ = ("rpo_ns", "stop_ns", "degraded_ns", "quorum_ns",
                 "failover_ns", "repair_segment_ns", "epoch_bump_ns",
                 "reconcile_bytes", "stale_primary_ns")

    def __init__(self, rpo_ns: int = DEFAULT_RPO_NS,
                 stop_ns: int = DEFAULT_STOP_NS,
                 degraded_ns: int = DEFAULT_DEGRADED_NS,
                 quorum_ns: int = DEFAULT_QUORUM_NS,
                 failover_ns: int = DEFAULT_FAILOVER_NS,
                 repair_segment_ns: int = DEFAULT_REPAIR_SEGMENT_NS,
                 epoch_bump_ns: int = DEFAULT_EPOCH_BUMP_NS,
                 reconcile_bytes: int = DEFAULT_RECONCILE_BYTES,
                 stale_primary_ns: int = DEFAULT_STALE_PRIMARY_NS):
        self.rpo_ns = rpo_ns
        self.stop_ns = stop_ns
        self.degraded_ns = degraded_ns
        self.quorum_ns = quorum_ns
        self.failover_ns = failover_ns
        self.repair_segment_ns = repair_segment_ns
        self.epoch_bump_ns = epoch_bump_ns
        self.reconcile_bytes = reconcile_bytes
        self.stale_primary_ns = stale_primary_ns

    def replace(self, **overrides: int) -> "SLOTargets":
        """A copy with the given budgets overridden."""
        fields = {name: getattr(self, name) for name in self.__slots__}
        for name, value in overrides.items():
            if name not in fields:
                raise TypeError(f"unknown SLO budget {name!r}")
            fields[name] = value
        return SLOTargets(**fields)

    def __repr__(self) -> str:
        return (f"SLOTargets(rpo={self.rpo_ns}ns, stop={self.stop_ns}ns, "
                f"degraded={self.degraded_ns}ns, "
                f"quorum={self.quorum_ns}ns)")


class _Series:
    """One bounded exact-sample series."""

    __slots__ = ("values", "dropped")

    def __init__(self) -> None:
        self.values: List[int] = []
        self.dropped = 0

    def add(self, value: int) -> None:
        if len(self.values) >= SAMPLE_CAPACITY:
            self.values.pop(0)
            self.dropped += 1
        self.values.append(value)

    def summary(self) -> Dict[str, int]:
        values = self.values
        return {
            "count": len(values),
            "max": max(values) if values else 0,
            "p50": percentile_exact(values, 50),
            "p95": percentile_exact(values, 95),
            "p99": percentile_exact(values, 99),
        }


class _GroupSLO:
    """Per-consistency-group SLO state."""

    def __init__(self, group_id: int):
        self.group_id = group_id
        self.rpo_lag = _Series()
        self.stop = _Series()
        self.e2e = _Series()
        #: Capture instant of the newest durable checkpoint.
        self.last_durable_capture: Optional[int] = None
        self.commits = 0
        #: Degraded-mode spells: per-spell lengths, cumulative total,
        #: and the start of the still-open spell (if any).
        self.degraded = _Series()
        self.degraded_total_ns = 0
        self.degraded_since: Optional[int] = None
        #: Cluster series: commit→quorum-ack lag, failover durations,
        #: per-segment repair MTTR.
        self.quorum_lag = _Series()
        self.failover = _Series()
        self.repair_mttr = _Series()
        #: Fencing series: quorum epoch-bump latency, bytes moved per
        #: heal-time reconciliation, and stale-primary degraded spells.
        self.epoch_bump = _Series()
        self.reconcile_bytes = _Series()
        self.stale_primary = _Series()


class SLOTracker:
    """Derives RPO/stop-time/latency SLO compliance from the feed the
    orchestrator provides."""

    def __init__(self, targets: Optional[SLOTargets] = None):
        self.targets = targets or SLOTargets()
        self.groups: Dict[int, _GroupSLO] = {}
        #: Per-tenant budget overrides (fleet-admitted groups with
        #: explicit budgets land here; everyone else inherits
        #: ``self.targets``).
        self.group_targets: Dict[int, SLOTargets] = {}
        #: Tenant attribution: group id -> tenant name, threaded in by
        #: the orchestrator at attach time so alerts and reports carry
        #: who, not just which group.
        self.tenant_names: Dict[int, str] = {}
        #: Edge-trigger state per (group, budget): True while burning
        #: over threshold, so an alert fires once per excursion.
        self._burning: Dict[tuple, bool] = {}

    def set_group_targets(self, group_id: int, **overrides: int) -> None:
        """Install per-tenant budgets for one group (merged over the
        tracker-wide defaults)."""
        self.group_targets[group_id] = self.targets.replace(**overrides)

    def targets_for(self, group_id: int) -> SLOTargets:
        """The budgets in force for one group."""
        return self.group_targets.get(group_id, self.targets)

    def _group(self, group_id: int) -> _GroupSLO:
        state = self.groups.get(group_id)
        if state is None:
            state = _GroupSLO(group_id)
            self.groups[group_id] = state
        return state

    def _violate(self, group_id: int, budget: str) -> None:
        telemetry.registry().counter("sls.slo.violations",
                                     group=group_id,
                                     budget=budget).add(1)

    # -- burn-rate alerting -------------------------------------------------------

    def _burn_series(self, group_id: int, budget: str) -> tuple:
        state = self._group(group_id)
        targets = self.targets_for(group_id)
        table = {"rpo": (state.rpo_lag, targets.rpo_ns),
                 "stop": (state.stop, targets.stop_ns),
                 "quorum": (state.quorum_lag, targets.quorum_ns)}
        if budget not in table:
            raise ValueError(f"no burn rate for budget {budget!r}")
        return table[budget]

    def burn_rate_milli(self, group_id: int, budget: str,
                        window: int = BURN_WINDOW) -> int:
        """Budget consumption rate over the recent sample window, in
        milli-units: 1000 means the tenant consumes its budget exactly
        as fast as it accrues; 2000 burns it at twice the sustainable
        rate.  0 with no samples."""
        series, target = self._burn_series(group_id, budget)
        recent = series.values[-window:]
        if not recent or target <= 0:
            return 0
        return sum(recent) * 1000 // (len(recent) * target)

    def _check_burn(self, group_id: int, budget: str,
                    now_ns: int) -> None:
        """Edge-triggered burn-rate alert: emits one ``slo.alert``
        event when a budget's recent burn crosses the threshold, and
        re-arms once it drops back under."""
        series, _target = self._burn_series(group_id, budget)
        if len(series.values) < BURN_MIN_SAMPLES:
            return
        burn = self.burn_rate_milli(group_id, budget)
        key = (group_id, budget)
        burning = burn >= BURN_ALERT_MILLI
        if burning and not self._burning.get(key, False):
            events_mod.emit(now_ns, events_mod.SLO_ALERT,
                            group=group_id,
                            tenant=self.tenant_names.get(group_id),
                            budget=budget, burn_milli=burn,
                            threshold_milli=BURN_ALERT_MILLI,
                            window=min(len(series.values), BURN_WINDOW))
            telemetry.registry().counter("sls.slo.alerts",
                                         group=group_id,
                                         budget=budget).add(1)
        self._burning[key] = burning

    def alerts(self, group_id: int, budget: str) -> int:
        return telemetry.registry().value("sls.slo.alerts",
                                          group=group_id, budget=budget)

    # -- the orchestrator feed ----------------------------------------------------

    def on_stop_time(self, group_id: int, stop_ns: int) -> None:
        """One checkpoint's quiesce→resume window closed."""
        state = self._group(group_id)
        state.stop.add(stop_ns)
        if stop_ns > self.targets_for(group_id).stop_ns:
            self._violate(group_id, "stop")

    def on_commit(self, group_id: int, ckpt_id: int,
                  capture_ns: int, commit_ns: int) -> None:
        """A checkpoint became durable.

        ``capture_ns`` is the checkpoint's quiesce-start instant (the
        state it made durable is the state *as of* that time).
        """
        state = self._group(group_id)
        prev = state.last_durable_capture
        # Worst-case loss just before this commit landed: everything
        # since the previous durable capture.  The first commit of a
        # chain has no predecessor; its own capture bounds the lag.
        lag = commit_ns - (prev if prev is not None else capture_ns)
        state.rpo_lag.add(lag)
        state.e2e.add(commit_ns - capture_ns)
        state.last_durable_capture = capture_ns
        state.commits += 1
        if lag > self.targets_for(group_id).rpo_ns:
            self._violate(group_id, "rpo")
        self._check_burn(group_id, "rpo", commit_ns)

    def on_degraded_enter(self, group_id: int, now_ns: int) -> None:
        """The group entered degraded mode; the spell clock starts."""
        state = self._group(group_id)
        if state.degraded_since is None:
            state.degraded_since = now_ns

    def on_degraded_exit(self, group_id: int, now_ns: int) -> None:
        """Probe succeeded: close the spell and charge the budget."""
        state = self._group(group_id)
        if state.degraded_since is None:
            return
        spell = now_ns - state.degraded_since
        state.degraded_since = None
        state.degraded.add(spell)
        budget = self.targets_for(group_id).degraded_ns
        was_over = state.degraded_total_ns - spell > budget
        state.degraded_total_ns += spell
        if state.degraded_total_ns > budget and not was_over:
            self._violate(group_id, "degraded")

    # -- the cluster feed ---------------------------------------------------------

    def on_quorum_ack(self, group_id: int, lag_ns: int,
                      now_ns: Optional[int] = None) -> None:
        """A checkpoint reached its write quorum ``lag_ns`` after the
        cluster first saw it committed."""
        state = self._group(group_id)
        state.quorum_lag.add(lag_ns)
        if lag_ns > self.targets_for(group_id).quorum_ns:
            self._violate(group_id, "quorum")
        if now_ns is None:
            now_ns = (state.last_durable_capture or 0) + lag_ns
        self._check_burn(group_id, "quorum", now_ns)

    def on_failover(self, group_id: int, failover_ns: int) -> None:
        """A standby node was promoted to primary."""
        state = self._group(group_id)
        state.failover.add(failover_ns)
        if failover_ns > self.targets_for(group_id).failover_ns:
            self._violate(group_id, "failover")

    def on_epoch_bump(self, group_id: int, bump_ns: int) -> None:
        """A quorum epoch bump (the fencing round of a failover or an
        operator promote) completed in ``bump_ns``."""
        state = self._group(group_id)
        state.epoch_bump.add(bump_ns)
        if bump_ns > self.targets_for(group_id).epoch_bump_ns:
            self._violate(group_id, "epoch_bump")

    def on_reconcile(self, group_id: int, nbytes: int) -> None:
        """One heal-time anti-entropy reconciliation moved ``nbytes``
        of differing segments across the wire."""
        state = self._group(group_id)
        state.reconcile_bytes.add(nbytes)
        if nbytes > self.targets_for(group_id).reconcile_bytes:
            self._violate(group_id, "reconcile")

    def on_stale_primary(self, group_id: int, spell_ns: int) -> None:
        """A fenced ex-primary's stale-primary degraded spell closed
        (reconciliation retired it) after ``spell_ns``."""
        state = self._group(group_id)
        state.stale_primary.add(spell_ns)
        if spell_ns > self.targets_for(group_id).stale_primary_ns:
            self._violate(group_id, "stale_primary")

    def on_repair_segment(self, group_id: int, mttr_ns: int) -> None:
        """One lost segment copy was rebuilt ``mttr_ns`` after repair
        began — the window in which a further fault could have lined
        up on the same data."""
        state = self._group(group_id)
        state.repair_mttr.add(mttr_ns)
        if mttr_ns > self.targets_for(group_id).repair_segment_ns:
            self._violate(group_id, "repair")

    def degraded_time_ns(self, group_id: int,
                         now_ns: Optional[int] = None) -> int:
        """Cumulative degraded time, including any open spell."""
        state = self._group(group_id)
        total = state.degraded_total_ns
        if state.degraded_since is not None and now_ns is not None:
            total += now_ns - state.degraded_since
        return total

    # -- reporting ---------------------------------------------------------------

    def fleet_fairness(self, group_ids: Optional[List[int]] = None,
                       normalize: Optional[Dict[int, int]] = None
                       ) -> Dict[str, Any]:
        """Fleet-wide fairness over per-tenant p99 RPO lag.

        Jain's index ``(Σx)² / (n·Σx²)`` is 1.0 when every tenant sees
        the same tail lag and approaches ``1/n`` when one tenant
        absorbs it all; the max/min ratio is the blunt companion
        number.  Groups without commits are excluded (they have no
        tail yet).

        ``normalize`` maps group id → divisor (typically the tenant's
        checkpoint period): a 50 ms tenant structurally carries 5× the
        raw lag of a 10 ms tenant, so a mixed fleet is compared on
        lag *per period* — equal multiples mean a fair scheduler.
        Raw-lag min/max are always reported alongside."""
        ids = sorted(self.groups) if group_ids is None else group_ids
        raw: List[int] = []
        scaled: List[float] = []
        for gid in ids:
            state = self.groups.get(gid)
            if state is None or not state.rpo_lag.values:
                continue
            p99 = percentile_exact(state.rpo_lag.values, 99)
            raw.append(p99)
            divisor = 1 if normalize is None else max(1, normalize.get(gid, 1))
            scaled.append(p99 / divisor)
        n = len(scaled)
        total = sum(scaled)
        sumsq = sum(x * x for x in scaled)
        jain = (total * total / (n * sumsq)) if sumsq else 1.0
        lo, hi = (min(scaled), max(scaled)) if scaled else (0.0, 0.0)
        ratio = (hi / lo) if lo else (1.0 if hi == 0 else float("inf"))
        return {
            "groups": n,
            "normalized": normalize is not None,
            "p99_rpo_min_ns": min(raw) if raw else 0,
            "p99_rpo_max_ns": max(raw) if raw else 0,
            "max_min_ratio": ratio,
            "jain": jain,
        }

    def violations(self, group_id: int, budget: str) -> int:
        return telemetry.registry().value("sls.slo.violations",
                                          group=group_id, budget=budget)

    def report(self, group_id: Optional[int] = None) -> List[Dict[str, Any]]:
        """Per-group SLO summary rows (the ``sls slo`` payload)."""
        rows = []
        for gid in sorted(self.groups):
            if group_id is not None and gid != group_id:
                continue
            state = self.groups[gid]
            targets = self.targets_for(gid)
            rows.append({
                "group": gid,
                "tenant": self.tenant_names.get(gid),
                "commits": state.commits,
                "rpo_burn_milli": self.burn_rate_milli(gid, "rpo"),
                "quorum_burn_milli": self.burn_rate_milli(gid, "quorum"),
                "alerts": (self.alerts(gid, "rpo")
                           + self.alerts(gid, "stop")
                           + self.alerts(gid, "quorum")),
                "rpo_lag": state.rpo_lag.summary(),
                "stop": state.stop.summary(),
                "e2e": state.e2e.summary(),
                "rpo_target_ns": targets.rpo_ns,
                "stop_target_ns": targets.stop_ns,
                "rpo_violations": self.violations(gid, "rpo"),
                "stop_violations": self.violations(gid, "stop"),
                "degraded_spells": len(state.degraded.values),
                "degraded_total_ns": state.degraded_total_ns,
                "degraded_open": state.degraded_since is not None,
                "degraded_target_ns": targets.degraded_ns,
                "degraded_violations": self.violations(gid, "degraded"),
                "quorum_lag": state.quorum_lag.summary(),
                "failover": state.failover.summary(),
                "repair_mttr": state.repair_mttr.summary(),
                "quorum_target_ns": targets.quorum_ns,
                "failover_target_ns": targets.failover_ns,
                "repair_target_ns": targets.repair_segment_ns,
                "quorum_violations": self.violations(gid, "quorum"),
                "failover_violations": self.violations(gid, "failover"),
                "repair_violations": self.violations(gid, "repair"),
                "epoch_bump": state.epoch_bump.summary(),
                "reconcile_bytes": state.reconcile_bytes.summary(),
                "stale_primary": state.stale_primary.summary(),
                "epoch_bump_target_ns": targets.epoch_bump_ns,
                "reconcile_target_bytes": targets.reconcile_bytes,
                "stale_primary_target_ns": targets.stale_primary_ns,
                "epoch_bump_violations": self.violations(gid, "epoch_bump"),
                "reconcile_violations": self.violations(gid, "reconcile"),
                "stale_primary_violations":
                    self.violations(gid, "stale_primary"),
            })
        return rows


def critical_path_summary(group_id: Optional[int] = None
                          ) -> List[Dict[str, Any]]:
    """Aggregate stage self-time decomposition over every finished
    checkpoint trace: where checkpoint wall time actually goes.

    Returns rows ``{name, count, total_ns, self_ns, mean_self_ns}``
    summed across the direct children of each checkpoint trace's root
    (the pipeline stages), ordered by total self time.
    """
    labels = {} if group_id is None else {"group": group_id}
    totals: Dict[str, Dict[str, int]] = {}
    for trace_obj in tracing.tracer().traces(tracing.CHECKPOINT, **labels):
        for row in tracing.critical_path(trace_obj):
            agg = totals.setdefault(row["name"],
                                    {"count": 0, "total_ns": 0,
                                     "self_ns": 0})
            agg["count"] += 1
            agg["total_ns"] += row["duration_ns"]
            agg["self_ns"] += row["self_ns"]
    rows = []
    for name, agg in totals.items():
        rows.append({
            "name": name,
            "count": agg["count"],
            "total_ns": agg["total_ns"],
            "self_ns": agg["self_ns"],
            "mean_self_ns": (agg["self_ns"] // agg["count"]
                             if agg["count"] else 0),
        })
    rows.sort(key=lambda row: -row["self_ns"])
    return rows
