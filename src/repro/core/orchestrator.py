"""The SLS orchestrator (§4.1): the module that makes POSIX persistent.

The orchestrator owns consistency groups and runs the checkpoint
pipeline defined in :mod:`.pipeline`:

    quiesce → collapse flushed shadows → system shadowing →
    serialize POSIX objects → seal → resume → asynchronous flush →
    commit

Only the stages before *resume* contribute to application stop time;
the flush overlaps execution thanks to the frozen system shadows.  A
new checkpoint is never initiated while the previous flush is in
flight (§7: a slow store bounds checkpoint frequency, never
correctness).  Per-stage timings land in the telemetry registry
(``sls stat`` reads them back).

``load_aurora`` is the module-load entry point: it formats or recovers
the object store, mounts the Aurora FS, and rebuilds the directory of
restorable applications after a crash.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import (InvalidArgument, MachineCrashed, NoSpace,
                      NoSuchCheckpoint, NotAttached, RetriesExhausted,
                      SLSError, StoreFull)
from ..kernel.fs.vfs import VFS
from ..objstore.oid import CLASS_GROUP, oid_serial
from ..objstore.store import ObjectStore
from ..slsfs.slsfs import SLSFS
from . import events, resilience, slo, telemetry, tracing
from .extsync import ExternalSynchrony
from .faults import InjectedCrash
from .fleet import ADMIT_WIDEN, FleetScheduler
from .group import ConsistencyGroup
from .pipeline import (MODE_DISK, MODE_MEM, CheckpointContext,
                       CheckpointPipeline, CheckpointResult)
from .restore import GroupRestorer, RestoreResult
from .shadowing import REVERSE, ShadowEngine

__all__ = ["MODE_DISK", "MODE_MEM", "CheckpointResult", "Orchestrator",
           "load_aurora"]


class Orchestrator:
    """The single level store control plane for one machine."""

    def __init__(self, machine, store: ObjectStore, slsfs: Optional[SLSFS],
                 default_period_ns: int = ConsistencyGroup.DEFAULT_PERIOD,
                 collapse_direction: str = REVERSE):
        self.machine = machine
        self.kernel = machine.kernel
        self.store = store
        self.slsfs = slsfs
        self.default_period_ns = default_period_ns
        self.shadow = ShadowEngine(self.kernel, store, collapse_direction)
        self.extsync = ExternalSynchrony(self.kernel)
        self.pipeline = CheckpointPipeline()
        self.telemetry = telemetry.registry()
        self.slo = slo.SLOTracker()
        # The flight recorder snapshots per-tenant SLO state through
        # the store it rides; give it the live tracker.
        store._slo_tracker = self.slo
        #: The fleet control plane: one EDF queue owns every periodic
        #: checkpoint (admission control, stagger, backpressure,
        #: per-tenant degraded ticks).
        self.fleet = FleetScheduler(self)
        self.groups: Dict[int, ConsistencyGroup] = {}
        #: Called with ``(group, info)`` after a disk checkpoint
        #: commits synchronously — the cluster pump's chance to
        #: replicate the commit before control returns to the caller.
        self.commit_hooks: List = []
        self.kernel.sls = self

    # -- attach / detach ---------------------------------------------------------------

    def attach(self, proc, name: str = "",
               period_ns: Optional[int] = None,
               external_synchrony: bool = False,
               periodic: bool = True,
               history_limit: Optional[int] = None,
               demand_bytes_per_sec: Optional[int] = None,
               admission: str = ADMIT_WIDEN,
               rpo_budget_ns: Optional[int] = None,
               stop_budget_ns: Optional[int] = None,
               probe_every: Optional[int] = None) -> ConsistencyGroup:
        """``sls attach``: put a process (and its tree) under Aurora.

        ``external_synchrony`` defaults off to mirror the paper's
        evaluated configuration (§8 Limitations); turning it on
        activates the buffer-until-commit path.  ``history_limit``
        bounds the retained execution history (old checkpoints are
        merged away WAFL-style after each commit).

        Periodic groups go through fleet admission control:
        ``demand_bytes_per_sec`` seeds the demand estimate and
        ``admission`` picks the over-capacity policy (``widen``
        stretches the newcomer's period; ``reject`` raises
        :class:`~repro.errors.AdmissionRejected` and leaves nothing
        attached).  ``rpo_budget_ns``/``stop_budget_ns`` install
        per-tenant SLO budgets; ``probe_every`` sets the degraded
        disk-probe cadence.
        """
        desc_oid = self.store.alloc_oid(CLASS_GROUP)
        group = ConsistencyGroup(oid_serial(desc_oid),
                                 name=name or proc.name,
                                 period_ns=period_ns or self.default_period_ns,
                                 external_synchrony=external_synchrony)
        group.desc_oid = desc_oid
        group.history_limit = history_limit
        group.rpo_budget_ns = rpo_budget_ns
        group.stop_budget_ns = stop_budget_ns
        if probe_every is not None:
            if probe_every < 1:
                raise InvalidArgument(f"bad probe cadence {probe_every}")
            group.probe_every = probe_every
        for member in proc.tree():
            group.add_process(member)
        self.groups[group.group_id] = group
        self.slo.tenant_names[group.group_id] = group.name
        if periodic:
            try:
                self.fleet.admit(group,
                                 demand_bytes_per_sec=demand_bytes_per_sec,
                                 policy=admission)
            except Exception:
                # A refused attach leaves no trace: the processes come
                # back out and the group never ran.
                for member in list(group.processes):
                    group.remove_process(member)
                group.attached = False
                self.groups.pop(group.group_id, None)
                raise
        return group

    def detach(self, group: ConsistencyGroup) -> None:
        """``sls detach``: stop persisting; history stays in the store."""
        if group.timer is not None:
            group.timer.cancel()
            group.timer = None
        group.attached = False
        for proc in list(group.processes):
            group.remove_process(proc)
        self.extsync.drop_group(group)
        self.groups.pop(group.group_id, None)

    def mark_ephemeral(self, proc) -> None:
        """``sls detach <pid>`` on one member: keep it in the group but
        stop persisting it (§3 ephemeral processes)."""
        if proc.sls_group is None:
            raise NotAttached(f"{proc} is not attached")
        proc.sls_ephemeral = True

    def group_of(self, proc) -> ConsistencyGroup:
        """The consistency group a process belongs to (or raises)."""
        if proc.sls_group is None:
            raise NotAttached(f"{proc} is not attached")
        return proc.sls_group

    # -- degraded-mode transitions (the fleet scheduler drives the
    # -- periodic ticks; see core/fleet.py) ----------------------------------------------

    def _enter_degraded(self, group: ConsistencyGroup, reason: str,
                        error: Optional[Exception] = None) -> None:
        health = group.health
        now = self.kernel.clock.now()
        if health.degraded:
            health.enter(reason, now)  # reason may change; spell continues
            return
        health.enter(reason, now)
        events.emit(now, events.DEGRADED_ENTER, group=group.group_id,
                    reason=reason,
                    error=(f"{type(error).__name__}: {error}"
                           if error is not None else None))
        self.telemetry.counter("sls.degraded.entries",
                               group=group.group_id, reason=reason).add(1)
        self.slo.on_degraded_enter(group.group_id, now)

    def _exit_degraded(self, group: ConsistencyGroup) -> None:
        health = group.health
        if not health.degraded:
            return
        now = self.kernel.clock.now()
        reason = health.reason
        spell = health.exit(now)
        events.emit(now, events.DEGRADED_EXIT, group=group.group_id,
                    reason=reason, spell_ns=spell)
        self.slo.on_degraded_exit(group.group_id, now)

    def _emergency_gc(self, group: ConsistencyGroup) -> int:
        """ENOSPC pressure valve: merge away the older half of the
        group's history (WAFL-style deletes free COW blocks)."""
        chain = self.store.checkpoints_for(group.group_id,
                                           include_partial=True)
        if not chain:
            return 0
        keep = max(1, len(chain) // 2)
        reclaimed = self.store.retain_last(group.group_id, keep)
        events.emit(self.kernel.clock.now(), events.GC_EMERGENCY,
                    group=group.group_id, reclaimed_bytes=reclaimed,
                    kept=keep)
        self.telemetry.counter("sls.gc.emergency_bytes",
                               group=group.group_id).add(reclaimed)
        return reclaimed

    # -- the checkpoint pipeline --------------------------------------------------------------

    def checkpoint(self, group: ConsistencyGroup, name: str = "",
                   full: bool = False, sync: bool = False,
                   mode: str = MODE_DISK) -> CheckpointResult:
        """Run the staged checkpoint pipeline on ``group``.

        Returns the :class:`CheckpointResult` view over the stage
        trace; per-stage spans are also recorded in the telemetry
        registry.
        """
        if mode not in (MODE_DISK, MODE_MEM):
            raise InvalidArgument(f"bad checkpoint mode {mode}")
        if group.flush_in_progress:
            if not sync:
                raise SLSError("previous checkpoint still flushing")
            self._await_flush(group)
        if mode == MODE_DISK and group.force_full_next:
            # A rolled-back checkpoint collapsed its dirty pages back
            # into the in-memory chain; only a full capture sees them.
            full = True
        ctx = CheckpointContext(self, group, name=name, full=full,
                                sync=sync, mode=mode)
        clock = self.kernel.clock
        with tracing.trace(clock, tracing.CHECKPOINT,
                           group=group.group_id, mode=mode,
                           tenant=group.name) as trace_obj:
            events.emit(clock.now(), events.CKPT_START,
                        group=group.group_id, mode=mode,
                        tenant=group.name)
            try:
                result = self.pipeline.run(ctx)
            except Exception as exc:
                events.emit(clock.now(), events.CKPT_FAIL,
                            group=group.group_id,
                            error=f"{type(exc).__name__}: {exc}")
                if not isinstance(exc, (InjectedCrash, MachineCrashed)):
                    # A storage failure, not a power failure: roll the
                    # group back to a clean pre-checkpoint state.
                    self.rollback_failed_checkpoint(
                        group, getattr(ctx, "txn", None))
                raise
            if mode == MODE_MEM and trace_obj is not None:
                # Nothing flushes: the pipeline's end is the mem-mode
                # checkpoint's terminal point.
                trace_obj.complete = True
        if mode == MODE_DISK:
            group.force_full_next = False
        self.slo.on_stop_time(group.group_id, result.stop_ns)

        group.stats["checkpoints"] += 1
        group.stats["stop_ns_total"] += result.stop_ns
        group.stats["stop_ns_max"] = max(group.stats["stop_ns_max"],
                                         result.stop_ns)
        if mode == MODE_DISK:
            group.stats["pages_flushed"] += result.pages_flushed
            group.stats["bytes_flushed"] += ctx.info.data_bytes
            group.stats["records_written"] += result.records_written
            if getattr(ctx.info, "complete", False):
                for hook in self.commit_hooks:
                    hook(group, ctx.info)
        return result

    #: Sentinel: "leave the group's epoch floor untouched".
    _KEEP_EPOCH = object()

    def rollback_failed_checkpoint(self, group: ConsistencyGroup, txn,
                                   prev_epoch=_KEEP_EPOCH,
                                   error: Optional[Exception] = None) -> None:
        """Unwind group state after a checkpoint failed without a
        crash.

        The store-level abort (freeing the transaction's blocks) has
        either already run or runs here; this method restores the
        *group* invariants so the next checkpoint can proceed: the
        flush gate reopens, sealed external output returns to the open
        buffer, the frozen shadows become collapsible (their content
        is still in memory — durability stays at the previous
        checkpoint), and the next disk checkpoint is forced full so
        the rolled-back dirty pages are not lost to incremental
        capture.  ``error`` is set on the async-flush path, where this
        method is also the failure notification that feeds the
        degraded-mode counters.
        """
        info = getattr(txn, "info", None)
        if info is not None:
            # MemTxn lacks commit/abort state: only real store
            # transactions have blocks to release.
            if (getattr(txn, "committed", False)
                    and not getattr(txn, "aborted", True)
                    and not getattr(info, "complete", False)):
                self.store.abort_checkpoint(txn)
            self.extsync.unseal(group, info.ckpt_id)
        group.flush_in_progress = False
        self.shadow.mark_flushed(group)
        group.force_full_next = True
        # The pipeline advanced last_ckpt_id at submit time; the
        # checkpoint never became durable, so the next one must parent
        # onto the last *complete* checkpoint, not the aborted id.
        group.last_ckpt_id = group.last_complete_id
        if prev_epoch is not self._KEEP_EPOCH:
            # The async path had already advanced the incremental
            # floor on submission; the data never became durable, so
            # the floor must come back down.
            group.ckpt_epoch = prev_epoch
        if error is None:
            return
        clock = self.kernel.clock
        events.emit(clock.now(), events.CKPT_FAIL, group=group.group_id,
                    error=f"{type(error).__name__}: {error}",
                    async_flush=True, detached=not group.attached)
        if not group.attached:
            # The flush outlived a detach: the store-level abort above
            # is all that may happen.  A detached group has no timer,
            # no fleet slot and no live SLO series — entering degraded
            # mode or running emergency GC for it would corrupt the
            # state of a tenant that no longer exists.
            return
        health = group.health
        if isinstance(error, (StoreFull, NoSpace)):
            self._enter_degraded(group, resilience.REASON_ENOSPC, error)
            self._emergency_gc(group)
        elif isinstance(error, RetriesExhausted):
            health.consecutive_failures += 1
            if (health.consecutive_failures
                    >= resilience.DEVICE_FAILURE_THRESHOLD):
                self._enter_degraded(group, resilience.REASON_DEVICE,
                                     error)

    def _await_flush(self, group: ConsistencyGroup) -> None:
        """Run the event loop just far enough for *this group's*
        in-flight flush to finalize.

        Unlike a full ``loop.drain()`` this neither waits on other
        groups' flushes nor trips over periodic checkpoint timers
        (which reschedule forever and would overflow the drain
        limit).  The wait is keyed on the store's pending commit for
        this group.
        """
        while group.flush_in_progress:
            deadline = self.store.pending_commit_deadline(group.group_id)
            if deadline is None:
                raise SLSError(
                    f"group {group.group_id} flush in flight but the "
                    f"store has no pending commit for it")
            self.machine.loop.run_until(deadline)

    def barrier(self, group: ConsistencyGroup) -> int:
        """Wait until the group's newest checkpoint is durable
        (sls_barrier); returns the checkpoint id."""
        if group.flush_in_progress:
            self._await_flush(group)
        if group.last_complete_id is None:
            raise SLSError("no checkpoint has completed yet")
        return group.last_complete_id

    # -- restore ---------------------------------------------------------------------------------

    def restorable_groups(self) -> List[int]:
        """Group ids with at least one complete checkpoint on disk."""
        found = set()
        for info in self.store.checkpoints.values():
            if info.complete and not info.partial \
                    and info.group_id != SLSFS.GROUP_ID:
                found.add(info.group_id)
        return sorted(found)

    def restore(self, group_id: int, ckpt_id: Optional[int] = None,
                lazy: bool = False, periodic: bool = True) -> RestoreResult:
        """``sls restore``: recreate an application from the store."""
        if ckpt_id is None:
            # Partial (sls_memckpt) checkpoints count: the merged view
            # composes them on top of the preceding full checkpoint.
            chain = self.store.checkpoints_for(group_id,
                                               include_partial=True)
            if not chain:
                raise NoSuchCheckpoint(f"group {group_id} has no complete "
                                       f"checkpoint")
            ckpt_id = chain[-1].ckpt_id
        restorer = GroupRestorer(self.kernel, self.store, self.slsfs)
        result = restorer.restore(ckpt_id, lazy=lazy)
        self.groups[result.group.group_id] = result.group
        if periodic:
            self.fleet.admit(result.group)
        return result

    # -- suspend / resume ----------------------------------------------------------------------------

    def suspend(self, group: ConsistencyGroup) -> int:
        """``sls suspend``: final checkpoint, then tear down the
        processes; the application lives on only in the store."""
        # Stop the periodic timer first so no tick fires while we wait
        # out an in-flight flush, then let that flush land before the
        # final full checkpoint opens its transaction.
        if group.timer is not None:
            group.timer.cancel()
            group.timer = None
        if group.flush_in_progress:
            self._await_flush(group)
        result = self.checkpoint(group, name="suspend", full=True,
                                 sync=True)
        for proc in list(group.processes):
            proc.exit(0)
        group.suspended = True
        self.groups.pop(group.group_id, None)
        return result.info.ckpt_id

    def resume(self, group_id: int, lazy: bool = False) -> RestoreResult:
        """``sls resume``: bring a suspended application back."""
        return self.restore(group_id, lazy=lazy)

    # -- listing --------------------------------------------------------------------------------------

    def history(self, group_id: int) -> List[dict]:
        """``sls history``: every retained checkpoint of one group."""
        return [{
            "ckpt_id": info.ckpt_id,
            "name": info.name,
            "time_ns": info.time_ns,
            "partial": info.partial,
            "data_bytes": info.data_bytes,
        } for info in self.store.checkpoints_for(group_id,
                                                 include_partial=True)]

    def ps(self) -> List[dict]:
        """``sls ps``: applications and checkpoints known to Aurora."""
        rows = []
        for group_id in self.restorable_groups():
            chain = self.store.checkpoints_for(group_id)
            live = self.groups.get(group_id)
            rows.append({
                "group_id": group_id,
                "name": live.name if live is not None
                else (chain[-1].name or f"group{group_id}"),
                "attached": live is not None and live.attached,
                "processes": len(live.processes) if live is not None else 0,
                "checkpoints": len(chain),
                "latest_ckpt": chain[-1].ckpt_id if chain else None,
            })
        return rows


def load_aurora(machine, checkpoint_period_ns: Optional[int] = None
                ) -> Orchestrator:
    """Format-or-recover the store, mount the Aurora FS, build the SLS."""
    kernel = machine.kernel
    store = ObjectStore(machine)
    recovered = store.mount()
    if not recovered:
        store.format()
    slsfs = SLSFS(kernel, store)
    if recovered:
        slsfs.recover()
    kernel.vfs = VFS(kernel, slsfs)
    period = checkpoint_period_ns or ConsistencyGroup.DEFAULT_PERIOD
    return Orchestrator(machine, store, slsfs, default_period_ns=period)
