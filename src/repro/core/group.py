"""Consistency groups (§3).

A consistency group is the unit of atomic persistence: a set of
processes checkpointed together, typically one application or
container.  External synchrony applies only to communication leaving
the group.  Processes forked by members join automatically; *ephemeral*
members participate in the group's lifetime but are not persisted — at
restore their parent receives SIGCHLD as if the child had exited (§3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..errors import AlreadyAttached, InvalidArgument
from ..kernel.proc.pid import IDVirtualization
from ..kernel.proc.process import Process
from ..units import MSEC
from . import telemetry
from .resilience import DEFAULT_PROBE_EVERY, GroupHealth


class ObjectTrack:
    """Shadow-cycle state of one logical (on-disk) VM object."""

    __slots__ = ("oid", "active", "frozen", "flushed", "new")

    def __init__(self, oid: int, active):
        self.oid = oid
        #: The live top of the chain (the shadow taking new writes).
        self.active = active
        #: The previous top, frozen while its pages flush to storage.
        self.frozen = None
        #: Whether the frozen shadow's flush has completed (it will be
        #: collapsed into its parent at the next checkpoint, §6).
        self.flushed = False
        #: True until the first checkpoint captures the base content.
        self.new = True


class ConsistencyGroup:
    """One atomically persisted set of processes."""

    #: Default checkpoint period: 100x per second (§3).
    DEFAULT_PERIOD = 10 * MSEC

    def __init__(self, group_id: int, name: str = "",
                 period_ns: int = DEFAULT_PERIOD,
                 external_synchrony: bool = True):
        self.group_id = group_id
        self.name = name or f"group{group_id}"
        self.period_ns = period_ns
        self.external_synchrony = external_synchrony
        self.processes: List[Process] = []
        #: Kernel object kid -> on-disk OID (the POSIX object map,
        #: §5.2: "a mapping of each object's address in the kernel to
        #: a 64-bit on-disk object identifier").
        self.oid_map: Dict[int, int] = {}
        #: Logical-object shadow cycles, keyed by OID.
        self.tracks: Dict[int, ObjectTrack] = {}
        #: Local (checkpoint-time) <-> global ID mapping after restore.
        self.idmap = IDVirtualization()
        #: The newest checkpoint ids.
        self.last_ckpt_id: Optional[int] = None
        self.last_complete_id: Optional[int] = None
        #: Kernel mutation epoch captured by the group's last flushed
        #: checkpoint: the serializer skips objects at or below this
        #: floor.  None until the first disk checkpoint commits (and
        #: again after restore), which forces a full serialization.
        self.ckpt_epoch: Optional[int] = None
        #: Members that exited since the previous checkpoint (their
        #: OIDs must stop being serialized).
        self.departed: Set[int] = set()
        #: Periodic checkpointing handle (orchestrator-owned).
        self.timer = None
        self.attached = True
        #: OID of the group's descriptor record in the store.
        self.desc_oid: Optional[int] = None
        #: Keep at most this many checkpoints of history (None =
        #: unlimited, "only limited by the available storage", §7).
        self.history_limit: Optional[int] = None
        #: True while a checkpoint's flush is still in flight; Aurora
        #: waits for it before initiating another checkpoint (§7).
        self.flush_in_progress = False
        self.suspended = False
        #: Degraded-mode state machine (orchestrator-driven).
        self.health = GroupHealth()
        #: Set when a checkpoint rolled back: the next disk checkpoint
        #: must be full, because the aborted checkpoint's dirty pages
        #: were collapsed back into the in-memory chain and an
        #: incremental capture would miss them.
        self.force_full_next = False
        #: Per-tenant degraded-probe cadence: while degraded for
        #: ENOSPC, every Nth tick is a disk probe (the rest stay
        #: memory-only).  Fleet-surfaced (``sls fleet``).
        self.probe_every = DEFAULT_PROBE_EVERY
        #: Fleet backpressure: the scheduler stretches an over-budget
        #: tenant's effective period by this factor (1 = as requested).
        self.backpressure_factor = 1
        #: EWMA demand/service estimates maintained by the fleet
        #: scheduler: dirty bytes a disk checkpoint writes, and the
        #: sim-time one dispatch occupies the control plane.  Zero
        #: until the first observation (the scheduler seeds admission
        #: with a conservative default).
        self.demand_bytes_per_ckpt = 0
        self.service_ns_est = 0
        #: Per-tenant SLO budgets; ``None`` inherits the tracker-wide
        #: defaults.  Registered with the SLO tracker at admission.
        self.rpo_budget_ns: Optional[int] = None
        self.stop_budget_ns: Optional[int] = None
        #: Deadline-miss slack: a dispatch later than this past its
        #: EDF deadline counts as a miss (``None`` = period / 4).
        self.miss_slack_ns: Optional[int] = None
        #: Fleet scheduling counters.
        self.dispatches = 0
        self.deadline_misses = 0
        self.flush_skips = 0
        #: Aggregate statistics for benchmarks — a view over telemetry
        #: counters, so the numbers are also queryable per group from
        #: the registry (``sls stat``).
        self.stats = telemetry.StatsView(
            "sls.group", labels={"group": group_id},
            keys=("checkpoints", "stop_ns_total", "stop_ns_max",
                  "pages_flushed", "bytes_flushed", "records_written"))

    # -- membership ----------------------------------------------------------------

    def add_process(self, proc: Process, ephemeral: bool = False) -> None:
        """Attach one process (optionally as an ephemeral member)."""
        if proc.sls_group is not None:
            raise AlreadyAttached(f"{proc} already in a group")
        proc.sls_group = self
        proc.sls_ephemeral = ephemeral
        self.processes.append(proc)

    def adopt(self, child: Process) -> None:
        """fork() inside the group: the child joins automatically."""
        if child.sls_group is self:
            return
        child.sls_group = self
        child.sls_ephemeral = False
        self.processes.append(child)

    def remove_process(self, proc: Process) -> None:
        """Detach a process from the group."""
        if proc in self.processes:
            self.processes.remove(proc)
        proc.sls_group = None

    def on_member_exit(self, proc: Process) -> None:
        """A member died: stop persisting it."""
        self.departed.add(proc.pid)
        self.remove_process(proc)

    def persistent_processes(self) -> List[Process]:
        """Running, non-ephemeral members."""
        return [p for p in self.processes if not p.sls_ephemeral
                and p.state == "running"]

    def all_threads(self):
        """Every thread of every running member."""
        for proc in self.processes:
            if proc.state != "running":
                continue
            for thread in proc.threads:
                yield thread

    # -- OID management -----------------------------------------------------------------

    def oid_for(self, kobj, store, obj_class: int) -> int:
        """Stable on-disk identity for a kernel object."""
        oid = self.oid_map.get(kobj.kid)
        if oid is None:
            oid = store.alloc_oid(obj_class)
            self.oid_map[kobj.kid] = oid
        return oid

    def __repr__(self) -> str:
        return (f"ConsistencyGroup(id={self.group_id}, {self.name!r}, "
                f"{len(self.processes)} procs, "
                f"period={self.period_ns // MSEC}ms)")
