"""A CRIU-style process-centric checkpointer (Tables 1 and 7).

This baseline checkpoints the *same* simulated kernel as Aurora, but
the way CRIU must on Linux: from the outside, through per-process
views, with no access to kernel object identity.

The architectural differences that produce the 100x stop-time gap:

1. **Per-process traversal.**  CRIU parasite-injects each process
   (ptrace attach), then queries every descriptor and mapping through
   /proc- and netlink-shaped interfaces — one round trip per object,
   instead of reading kernel structures in place.
2. **Sharing inference.**  Kernel identity is invisible, so CRIU
   compares the collected descriptors pairwise (kcmp-style) to decide
   what is shared, then deduplicates — work Aurora's first-class
   object model never does.
3. **Stop-the-world memory copy.**  Without system shadowing, the
   pages are copied out while every process stays frozen; the copy is
   the 413 ms of Table 1.  The image write happens after resume but is
   single-streamed and unsynchronized.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .. import serde
from ..core import costs
from ..units import PAGE_SIZE


class CRIUReport:
    """Timing breakdown matching Table 1's rows."""

    def __init__(self):
        self.os_state_ns = 0       # "OS State Copy"
        self.memory_copy_ns = 0    # "Memory Copy"
        self.io_write_ns = 0       # "IO Write" (post-resume)
        self.image_bytes = 0
        self.objects_queried = 0
        self.sharing_comparisons = 0
        self.pages_copied = 0

    @property
    def total_stop_ns(self) -> int:
        """The application is frozen for state + memory collection."""
        return self.os_state_ns + self.memory_copy_ns


class CRIUCheckpointer:
    """Checkpoint a process tree the process-centric way."""

    def __init__(self, kernel):
        self.kernel = kernel

    # -- collection ------------------------------------------------------------------

    def _collect_os_state(self, procs, report: CRIUReport) -> dict:
        """Walk /proc-style views of every process; infer sharing."""
        clock = self.kernel.clock
        image: Dict[str, list] = {"processes": []}
        descriptor_views: List[Tuple[int, int, object]] = []
        for proc in procs:
            clock.advance(costs.CRIU_ATTACH_PER_PROC)
            proc_view = {"pid": proc.pid, "name": proc.name,
                         "fds": [], "maps": [], "threads": len(proc.threads)}
            for fd, file in proc.fdtable.items():
                clock.advance(costs.CRIU_QUERY_PER_OBJECT)
                report.objects_queried += 1
                proc_view["fds"].append({"fd": fd, "ftype": file.ftype,
                                         "offset": file.offset})
                descriptor_views.append((proc.pid, fd, file))
            for entry in proc.vmspace.map:
                clock.advance(costs.CRIU_QUERY_PER_OBJECT)
                report.objects_queried += 1
                proc_view["maps"].append({
                    "start": entry.start_page, "npages": entry.npages,
                    "prot": entry.protection, "name": entry.name,
                })
                # Pagemap scan to find which pages are resident/dirty.
                clock.advance(entry.npages *
                              costs.CRIU_PAGEMAP_SCAN_PER_PAGE)
            image["processes"].append(proc_view)

        # Sharing inference: pairwise kcmp of collected descriptors.
        for i in range(len(descriptor_views)):
            for j in range(i + 1, len(descriptor_views)):
                clock.advance(costs.CRIU_SHARING_INFERENCE)
                report.sharing_comparisons += 1
        return image

    def _copy_memory(self, procs, report: CRIUReport) -> int:
        """Stop-the-world page copy (process_vm_readv + pipes)."""
        clock = self.kernel.clock
        pages = 0
        seen: Set[int] = set()
        for proc in procs:
            for entry in proc.vmspace.map:
                for obj in entry.vmobject.chain():
                    if obj.kid in seen:
                        continue
                    seen.add(obj.kid)
                    pages += obj.resident_count()
        clock.advance(pages * costs.CRIU_PAGE_COPY)
        report.pages_copied = pages
        return pages

    # -- the operation -----------------------------------------------------------------------

    def checkpoint(self, root_proc) -> CRIUReport:
        """Dump one process tree; returns the Table 1 breakdown.

        The tree is frozen for the whole of OS-state collection and
        memory copy; the image write happens after resume (and without
        a flush — Table 1's caption notes CRIU does not sync)."""
        report = CRIUReport()
        clock = self.kernel.clock
        procs = root_proc.tree()

        for proc in procs:
            proc.post_signal(17)  # SIGSTOP-style freeze

        t0 = clock.now()
        image = self._collect_os_state(procs, report)
        report.os_state_ns = clock.now() - t0

        t0 = clock.now()
        pages = self._copy_memory(procs, report)
        report.memory_copy_ns = clock.now() - t0

        for proc in procs:
            proc.post_signal(19)  # SIGCONT

        # Post-resume: single-threaded buffered image write.
        metadata = serde.dumps(image)
        report.image_bytes = len(metadata) + pages * PAGE_SIZE
        report.io_write_ns = (report.image_bytes * 1_000_000_000
                              // costs.CRIU_IMAGE_WRITE_BW)
        clock.advance(report.io_write_ns)
        return report
