"""Baseline systems the paper compares against: the CRIU-style
process-centric checkpointer (Tables 1 and 7)."""

from .criu import CRIUCheckpointer, CRIUReport

__all__ = ["CRIUCheckpointer", "CRIUReport"]
