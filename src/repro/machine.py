"""A simulated machine: clock, storage, and successive kernel boots.

The machine is the crash boundary.  ``crash()`` models a power failure:
in-flight device writes are torn away, every pending event dies, and
the kernel object graph becomes unreachable.  ``boot()`` then brings up
a *fresh* kernel against the same NVMe array — from which Aurora's
object store can recover the last complete checkpoint of every
application (the paper's core promise).

    machine = Machine()
    sls = load_aurora(machine)          # from repro.core.orchestrator
    ...
    machine.crash()
    machine.boot()
    sls = load_aurora(machine)          # recovers the store
    sls.restore(...)
"""

from __future__ import annotations

from typing import Optional

from .core import costs
from .errors import MachineCrashed
from .hw.clock import EventLoop, SimClock
from .hw.nic import NIC
from .hw.nvme import StripedArray
from .kernel.kernel import Kernel
from .units import GiB


class Machine:
    """One simulated server (defaults mirror the paper's testbed)."""

    def __init__(self, ram_bytes: int = costs.PHYSMEM_BYTES,
                 ncpus: int = costs.NCPUS,
                 storage_devices: int = costs.NVME_DEVICES,
                 capacity_per_device: int = 240 * GiB,
                 start_ns: int = 0):
        self.ram_bytes = ram_bytes
        self.ncpus = ncpus
        self.clock = SimClock(start_ns)
        self.loop = EventLoop(self.clock)
        self.storage = StripedArray(self.clock, storage_devices,
                                    capacity_per_device)
        self.nic = NIC(self.clock)
        self.boot_count = 0
        self.kernel: Optional[Kernel] = None
        #: Installed FaultPlan (crash-schedule exploration); volatile —
        #: a power failure clears it like everything else.
        self.fault_plan = None
        self.boot()

    def set_fault_plan(self, plan) -> None:
        """Install a :class:`~repro.core.faults.FaultPlan`.

        The plan observes (and may fail) every device write and every
        checkpoint pipeline stage boundary until the next crash.
        """
        self.fault_plan = plan
        if plan is not None:
            plan.clock = self.clock
        self.storage.fault_plan = plan

    def clear_fault_plan(self) -> None:
        """Remove the installed fault plan (no-op when absent)."""
        self.fault_plan = None
        self.storage.fault_plan = None

    def boot(self) -> Kernel:
        """Bring up a fresh kernel (volatile state starts empty)."""
        if self.kernel is not None and not self.kernel.crashed:
            raise MachineCrashed("machine is already running; crash() or "
                                 "shutdown() first")
        self.boot_count += 1
        # Simulated firmware + kernel boot time.
        self.clock.advance(2_000_000_000)
        self.kernel = Kernel(self, boot_id=self.boot_count)
        return self.kernel

    def crash(self) -> int:
        """Power failure: volatile state is gone, queued IO is torn.

        Returns the number of device writes lost in flight.
        """
        lost = self.storage.discard_inflight()
        self.clear_fault_plan()
        if self.kernel is not None:
            self.kernel.mark_crashed()
        self.kernel = None
        # Pending events (flush completions, checkpoint timers) die
        # with the power; the clock itself keeps counting.
        self.loop = EventLoop(self.clock)
        return lost

    def shutdown(self) -> None:
        """Clean shutdown: lets queued IO drain first."""
        self.loop.drain()
        pending = [done for device in self.storage.devices
                   for done, _off, _payload in device._inflight]
        if pending:
            self.clock.advance_to(max(pending))
        self.storage.poll()
        if self.kernel is not None:
            self.kernel.mark_crashed()
        self.kernel = None

    def running_kernel(self) -> Kernel:
        """The booted kernel; raises MachineCrashed when down."""
        if self.kernel is None:
            raise MachineCrashed("machine is not booted")
        return self.kernel

    def run_for(self, duration_ns: int) -> int:
        """Advance simulated time, executing scheduled events."""
        return self.loop.run_until(self.clock.now() + duration_ns)
