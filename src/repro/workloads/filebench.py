"""FileBench personalities (Fig. 3).

Drives any engine exposing the :class:`~repro.slsfs.fsbase.
BenchFilesystem` interface through the benchmarks the paper runs:

* random / sequential writes at 4 KiB and 64 KiB (Fig. 3a, 3b);
* ``createfiles`` and ``write+fsync`` metadata ops (Fig. 3c);
* the ``fileserver``, ``varmail`` and ``webserver`` simulated
  applications (Fig. 3d), with each personality's characteristic
  op mix (varmail is the fsync-heavy one Aurora wins).
"""

from __future__ import annotations

import random
from typing import Dict

from ..units import GiB, KiB, MiB, SEC


class FileBench:
    """One FileBench run against one engine."""

    def __init__(self, fs, seed: int = 11):
        self.fs = fs
        self.clock = fs.clock
        self.rng = random.Random(seed)

    # -- write microbenchmarks (Fig. 3a / 3b) --------------------------------------------

    def write_throughput(self, io_size: int, sequential: bool,
                         total_bytes: int = 512 * MiB) -> float:
        """GiB/s of write throughput at the given IO size."""
        file = self.fs.create("bigfile")
        file_span = 1 * GiB
        start = self.clock.now()
        offset = 0
        written = 0
        while written < total_bytes:
            if sequential:
                position = offset
                offset += io_size
            else:
                position = self.rng.randrange(0, file_span // io_size) \
                    * io_size
            self.fs.write(file, position, io_size, seed=written)
            written += io_size
        self.fs.drain()
        elapsed = self.clock.now() - start
        return written / (1 << 30) / (elapsed / 1e9)

    # -- metadata microbenchmarks (Fig. 3c) --------------------------------------------------

    def createfiles(self, count: int = 20_000) -> float:
        """File creations per second."""
        start = self.clock.now()
        for index in range(count):
            self.fs.create(f"dir{index % 64}/file{index}")
        self.fs.drain()
        elapsed = self.clock.now() - start
        return count / (elapsed / 1e9)

    def write_fsync(self, io_size: int, count: int = 10_000) -> float:
        """write+fsync pairs per second."""
        file = self.fs.create("synced")
        start = self.clock.now()
        for index in range(count):
            self.fs.write(file, index * io_size, io_size, seed=index)
            self.fs.fsync(file)
        self.fs.drain()
        elapsed = self.clock.now() - start
        return count / (elapsed / 1e9)

    # -- application personalities (Fig. 3d) ----------------------------------------------------

    def _mixed_run(self, mix: Dict[str, float], nops: int,
                   io_size: int) -> float:
        """Run ``nops`` drawn from an op mix; returns ops/second."""
        files = [self.fs.create(f"set/file{i}") for i in range(128)]
        ops = list(mix)
        weights = [mix[op] for op in ops]
        start = self.clock.now()
        for index in range(nops):
            op = self.rng.choices(ops, weights)[0]
            file = files[index % len(files)]
            if op == "create":
                self.fs.create(f"churn/f{index}")
            elif op == "write":
                self.fs.write(file, 0, io_size, seed=index)
            elif op == "append":
                self.fs.write(file, file.size, io_size, seed=index)
            elif op == "fsync":
                self.fs.fsync(file)
            elif op == "read":
                # Reads are cache hits in all engines (hot set); model
                # the common cost: a memcpy's worth of CPU.
                self.clock.advance(2_000)
            elif op == "stat":
                self.clock.advance(800)
        self.fs.drain()
        elapsed = self.clock.now() - start
        return nops / (elapsed / 1e9)

    def fileserver(self, nops: int = 50_000) -> float:
        """Fileserver: create/write/append/read/delete, no fsync."""
        return self._mixed_run(
            {"create": 0.08, "write": 0.25, "append": 0.17,
             "read": 0.40, "stat": 0.10},
            nops, io_size=64 * KiB)

    def varmail(self, nops: int = 50_000) -> float:
        """Varmail: mail-server pattern — every delivery fsyncs."""
        return self._mixed_run(
            {"create": 0.12, "append": 0.25, "fsync": 0.25,
             "read": 0.28, "stat": 0.10},
            nops, io_size=16 * KiB)

    def webserver(self, nops: int = 50_000) -> float:
        """Webserver: read-dominated with a log append."""
        return self._mixed_run(
            {"read": 0.85, "append": 0.10, "stat": 0.05},
            nops, io_size=8 * KiB)
