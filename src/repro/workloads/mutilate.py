"""Mutilate-style load generation for Memcached (Figs. 4 and 5).

The paper drives Memcached with Mutilate running the Facebook "ETC"
workload from four client machines (12 threads x 12 connections each)
plus a latency-measurement agent.  Two modes matter:

* :meth:`Mutilate.max_throughput` — closed loop, all 576 connections
  saturating the server (Figure 4);
* :meth:`Mutilate.pegged` — open loop at a fixed offered rate
  (Figure 5's 120 k ops/s).
"""

from __future__ import annotations

from typing import Optional

from ..apps.memcached import LoadStats, MemcachedServer
from ..units import SEC


class Mutilate:
    """A load-generator agent bound to one server."""

    #: 4 load machines x 12 threads x 12 connections (§9.5).
    DEFAULT_CONNECTIONS = 576

    def __init__(self, machine, server: MemcachedServer,
                 connections: int = DEFAULT_CONNECTIONS):
        self.machine = machine
        self.server = server
        self.connections = connections

    def max_throughput(self, duration_ns: int = 1 * SEC) -> LoadStats:
        """Closed-loop saturation run (Figure 4)."""
        return self.server.run_closed_loop(self.machine,
                                           self.connections, duration_ns)

    def pegged(self, rate_ops: float, duration_ns: int = 1 * SEC
               ) -> LoadStats:
        """Open-loop fixed-rate run (Figure 5: 120 k ops/s ≈ 15% of
        peak)."""
        return self.server.run_open_loop(self.machine, rate_ops,
                                         duration_ns)
