"""Workload generators driving the evaluation applications:
FileBench personalities (Fig. 3), a Mutilate-style Memcached load
generator (Figs. 4–5), and the Prefix_dist RocksDB mix (Fig. 6)."""

from .filebench import FileBench
from .mutilate import Mutilate
from .prefix_dist import PrefixDistWorkload

__all__ = ["FileBench", "Mutilate", "PrefixDistWorkload"]
