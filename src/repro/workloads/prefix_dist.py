"""The Prefix_dist workload (Fig. 6).

Models the Facebook "prefix_dist" trace characterization (Cao et al.,
FAST '20) the paper uses: keys grouped under hot prefixes with a
power-law popularity, small values, and a GET-heavy mix with a
substantial PUT stream.  Deterministic per seed.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Tuple

OP_GET = "get"
OP_PUT = "put"


class PrefixDistWorkload:
    """Generator of (op, key, value) triples."""

    def __init__(self, seed: int = 42, nprefixes: int = 32,
                 keys_per_prefix: int = 4096, value_size: int = 256,
                 get_ratio: float = 0.5):
        self.rng = random.Random(seed)
        self.nprefixes = nprefixes
        self.keys_per_prefix = keys_per_prefix
        self.value_size = value_size
        self.get_ratio = get_ratio
        # Power-law popularity over prefixes (hotter at the front).
        weights = [1.0 / (rank + 1) ** 1.2 for rank in range(nprefixes)]
        total = sum(weights)
        self._cumulative: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cumulative.append(acc)

    def _pick_prefix(self) -> int:
        point = self.rng.random()
        for index, bound in enumerate(self._cumulative):
            if point <= bound:
                return index
        return self.nprefixes - 1

    def next_key(self) -> bytes:
        """Draw a key: power-law prefix + uniform serial."""
        prefix = self._pick_prefix()
        serial = self.rng.randrange(self.keys_per_prefix)
        return f"p{prefix:04d}:k{serial:08d}".encode()

    def next_value(self) -> bytes:
        # Values are synthetic but content-bearing (the first bytes
        # identify the writer for read-back verification).
        """Draw a value of the configured size (tagged for readback)."""
        header = f"v{self.rng.randrange(1 << 30):08x}".encode()
        return header.ljust(self.value_size, b".")

    def ops(self, count: int) -> Iterator[Tuple[str, bytes, bytes]]:
        """Yield ``count`` (op, key, value) triples from the mix."""
        for _ in range(count):
            key = self.next_key()
            if self.rng.random() < self.get_ratio:
                yield OP_GET, key, b""
            else:
                yield OP_PUT, key, self.next_value()
