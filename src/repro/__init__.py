"""Aurora single level store — a faithful simulated reproduction.

Reproduction of *The Aurora Single Level Store Operating System*
(Tsalapatis, Hancock, Barnes, Mashtizadeh — SOSP 2021) as a
deterministic discrete-time simulation: a FreeBSD-like kernel
substrate, the Aurora SLS orchestrator with system shadowing, a COW
object store, the Aurora file system, and the paper's full evaluation
(CRIU and Redis-RDB baselines, Memcached, RocksDB, FileBench).

Quickstart::

    from repro import Machine, load_aurora

    machine = Machine()
    sls = load_aurora(machine)
    proc = machine.kernel.spawn("app")
    group = sls.attach(proc)
    ...                      # run the app; Aurora checkpoints at 100 Hz
    machine.crash()          # power failure
    machine.boot()
    sls = load_aurora(machine)
    proc = sls.restore(group.group_id)   # picks up where it left off

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured results.
"""

from .machine import Machine
from .errors import ReproError, KernelError, SLSError, StoreError
from .units import KiB, MiB, GiB, PAGE_SIZE, USEC, MSEC, SEC

__version__ = "1.0.0"

__all__ = [
    "Machine",
    "load_aurora",
    "AuroraAPI",
    "ReproError",
    "KernelError",
    "SLSError",
    "StoreError",
    "KiB", "MiB", "GiB", "PAGE_SIZE", "USEC", "MSEC", "SEC",
    "__version__",
]


def __getattr__(name):
    if name == "AuroraAPI":
        from .core.api import AuroraAPI

        return AuroraAPI
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def load_aurora(machine, checkpoint_period_ns=None):
    """Load the Aurora modules on a booted machine.

    Formats the object store on first use, or recovers it (finding the
    last complete checkpoint of every consistency group) if the array
    already holds one.  Returns the SLS orchestrator.
    """
    from .core.orchestrator import load_aurora as _load

    return _load(machine, checkpoint_period_ns=checkpoint_period_ns)
