"""The Aurora file system (§5.2 "File System", §9.1).

A namespace into the single level store:

* file data lives in vnode VM objects and is flushed into object-store
  checkpoints on the same cadence as application checkpoints — so
  ``fsync`` is a no-op (*checkpoint consistency*), which is why Aurora
  wins FileBench's varmail personality;
* vnodes are identified by inode number (checkpoints store just the
  reference — no namei/name-cache walk in the stop path);
* *hidden link counts*: a file that is unlinked but still open — or
  referenced by any checkpoint — is never reclaimed, fixing the
  anonymous-file edge case that breaks restore on conventional
  filesystems;
* file creation currently takes a global lock (the paper's §9.1 calls
  this out as unoptimized; Figure 3c shows the cost, so we keep it).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..core import costs, telemetry
from ..errors import NoSuchCheckpoint, RestoreError
from ..kernel.fs.filesystem import Filesystem
from ..kernel.fs.vnode import Vnode, VDIR, VREG
from ..objstore.oid import CLASS_FILE, make_oid
from ..units import PAGE_SIZE, pages_of

#: Reserved OID for the namespace record (top serial, never allocated).
NAMESPACE_OID = make_oid(CLASS_FILE, (1 << 56) - 1)


class SLSFS(Filesystem):
    """The Aurora filesystem, mounted over an object store."""

    fs_type = "slsfs"
    #: Reserved store group id for filesystem checkpoints.  App group
    #: ids come from OID serials, which start at 1 — 0 never collides.
    GROUP_ID = 0

    def __init__(self, kernel, store):
        self.store = store
        #: inode -> on-disk OID (stable across the file's lifetime).
        self.inode_oids: Dict[int, int] = {}
        #: inodes whose data changed since the last FS checkpoint.
        self._dirty_inodes: Set[int] = set()
        #: inode -> set of dirty page indexes.
        self._dirty_pages: Dict[int, Set[int]] = {}
        #: inodes present in at least one checkpoint (the hidden link
        #: count: these are never reclaimed).
        self._persisted_inodes: Set[int] = set()
        self.last_ckpt_id: Optional[int] = None
        super().__init__(kernel, "slsfs")

    # -- filesystem hooks ---------------------------------------------------------

    def on_create(self, vnode: Vnode) -> None:
        # File creation is unoptimized: a global lock (§9.1).
        """Charge the (global-lock) create path and allocate the OID."""
        self.kernel.clock.advance(costs.SLSFS_CREATE_GLOBAL_LOCK)
        if vnode.inode not in self.inode_oids:
            self.inode_oids[vnode.inode] = self.store.alloc_oid(CLASS_FILE)
        self._dirty_inodes.add(vnode.inode)

    def on_data_write(self, vnode: Vnode, offset: int, nbytes: int) -> None:
        """Charge per-block mapping updates; track the dirty range."""
        first = offset // PAGE_SIZE
        last = (offset + max(nbytes, 1) - 1) // PAGE_SIZE
        nblocks = last - first + 1
        self.kernel.clock.advance(nblocks * costs.SLSFS_BLOCK_UPDATE)
        self._dirty_inodes.add(vnode.inode)
        self._dirty_pages.setdefault(vnode.inode, set()).update(
            range(first, last + 1))

    def on_fsync(self, vnode: Vnode) -> None:
        # Checkpoint consistency: fsync is a no-op (§5.2).
        """No-op under checkpoint consistency (still a syscall)."""
        self.kernel.clock.advance(costs.SLSFS_FSYNC)

    def on_unlink(self, vnode: Vnode) -> None:
        """Namespace change: include it in the next FS checkpoint."""
        self._dirty_inodes.add(vnode.inode)

    def forget_vnode(self, vnode: Vnode) -> None:
        """Reclamation override: the hidden link count.

        A vnode referenced by the store (it has been checkpointed)
        survives having zero filesystem links and zero open files —
        that is what lets an application using an anonymous file be
        restored (§5.2)."""
        if vnode.inode in self._persisted_inodes:
            return
        super().forget_vnode(vnode)

    def oid_of(self, vnode: Vnode) -> int:
        """Stable on-disk OID for a vnode (allocated on first use)."""
        oid = self.inode_oids.get(vnode.inode)
        if oid is None:
            oid = self.store.alloc_oid(CLASS_FILE)
            self.inode_oids[vnode.inode] = oid
        return oid

    def has_dirty(self) -> bool:
        """True when namespace or file data changed since the last FS checkpoint."""
        return bool(self._dirty_inodes)

    # -- checkpointing ---------------------------------------------------------------

    def _namespace_record(self) -> dict:
        inodes = {}
        for inode, vnode in list(self._vnodes.items()):
            inodes[str(inode)] = {
                "vtype": vnode.vtype,
                "size": vnode.size,
                "link_count": vnode.link_count,
                "entries": {name: child
                            for name, child in vnode.entries.items()},
                "oid": self.oid_of(vnode),
            }
        return {"inodes": inodes, "next_inode": self._next_inode}

    def checkpoint(self, sync: bool = False):
        """Flush namespace + dirty file data as one FS checkpoint.

        Called by the orchestrator on the group-checkpoint cadence so
        that file state commits atomically alongside application
        state (checkpoint consistency)."""
        registry = telemetry.registry()
        registry.counter("sls.fs.checkpoints").add(1)
        registry.counter("sls.fs.dirty_inodes").add(len(self._dirty_inodes))
        txn = self.store.begin_checkpoint(self.GROUP_ID, name="slsfs",
                                          parent=self.last_ckpt_id)
        txn.put_object(NAMESPACE_OID, "slsfs-namespace",
                       self._namespace_record())
        for inode in sorted(self._dirty_inodes):
            vnode = self._vnodes.get(inode)
            if vnode is None or vnode.vmobject is None:
                continue
            oid = self.oid_of(vnode)
            dirty = self._dirty_pages.get(inode)
            if dirty is None:
                pages = dict(vnode.vmobject.pages)
            else:
                pages = {pindex: vnode.vmobject.pages[pindex]
                         for pindex in dirty
                         if pindex in vnode.vmobject.pages}
            txn.put_pages(oid, pages)
            self._persisted_inodes.add(inode)
        self._dirty_inodes.clear()
        self._dirty_pages.clear()
        info = self.store.commit(txn, sync=sync)
        self.last_ckpt_id = info.ckpt_id
        return info

    # -- recovery -----------------------------------------------------------------------

    def recover(self) -> bool:
        """Rebuild the filesystem from its latest complete checkpoint.

        Returns True when a checkpoint was found.  Data is restored
        eagerly (mount-time cost proportional to FS size)."""
        latest = self.store.find_latest_complete(self.GROUP_ID)
        if latest is None:
            return False
        record_extents, page_locs = self.store.merged_view(latest.ckpt_id)
        if NAMESPACE_OID not in record_extents:
            raise RestoreError("slsfs checkpoint lacks a namespace record")
        _oid, otype, namespace = self.store.read_object_record(
            record_extents[NAMESPACE_OID], oid=NAMESPACE_OID)
        if otype != "slsfs-namespace":
            raise RestoreError(f"unexpected record type {otype}")

        self._vnodes.clear()
        self.inode_oids.clear()
        self._next_inode = namespace["next_inode"]
        for inode_str, info in namespace["inodes"].items():
            inode = int(inode_str)
            vnode = Vnode(self.kernel, self, inode, info["vtype"])
            vnode.size = info["size"]
            vnode.link_count = info["link_count"]
            vnode.entries = {name: child
                             for name, child in info["entries"].items()}
            self._vnodes[inode] = vnode
            self.inode_oids[inode] = info["oid"]
            self._persisted_inodes.add(inode)
            if vnode.vmobject is not None:
                vnode.vmobject.grow(pages_of(info["size"]))
                vnode.vmobject.sls_oid = info["oid"]
                for pindex, locator in page_locs.get(info["oid"],
                                                     {}).items():
                    vnode.vmobject.insert_page(
                        pindex, self.store.fetch_page(locator))
        self.root = self._vnodes[1]
        self.last_ckpt_id = latest.ckpt_id
        self.kernel.vfs.invalidate_cache()
        return True

    # -- application-restore support -------------------------------------------------------

    def vnode_for_restore(self, inode: int, oid: int,
                          state: dict) -> Vnode:
        """Find (or resurrect) the vnode an application checkpoint
        references by inode number."""
        vnode = self._vnodes.get(inode)
        if vnode is not None:
            return vnode
        # Anonymous file whose namespace entry is long gone: the
        # hidden link count (store reference) lets us resurrect it.
        latest = self.store.find_latest_complete(self.GROUP_ID)
        if latest is None:
            raise RestoreError(f"no FS checkpoint holds inode {inode}")
        _records, page_locs = self.store.merged_view(latest.ckpt_id)
        vnode = Vnode(self.kernel, self, inode, state["vtype"])
        vnode.size = state["size"]
        vnode.link_count = 0
        self._vnodes[inode] = vnode
        self.inode_oids[inode] = oid
        self._persisted_inodes.add(inode)
        if vnode.vmobject is not None:
            vnode.vmobject.grow(pages_of(state["size"]))
            for pindex, locator in page_locs.get(oid, {}).items():
                vnode.vmobject.insert_page(pindex,
                                           self.store.fetch_page(locator))
        return vnode
