"""The Aurora filesystem as a FileBench engine (Figure 3).

Same interface as the ZFS/FFS engines, with Aurora's cost profile:
simple per-block mapping updates (the store's metadata is designed for
low-latency periodic checkpoints), a *global-lock* file creation path
(unoptimized, per §9.1), and a no-op ``fsync`` (checkpoint
consistency).  Dirty data reaches the device through the 10 ms
checkpoint cadence; the engine charges the periodic commit cost so
sustained throughput includes it.
"""

from __future__ import annotations

from ..core import costs
from ..units import MSEC
from .fsbase import BenchFile, BenchFilesystem, FS_BLOCK


class AuroraFSModel(BenchFilesystem):
    """Aurora object-store-backed filesystem engine."""

    name = "aurora"

    def __init__(self, machine, checkpoint_period_ns: int = 10 * MSEC):
        super().__init__(machine)
        self.checkpoint_period_ns = checkpoint_period_ns
        self._next_commit = self.clock.now() + checkpoint_period_ns
        self.commits = 0

    def _maybe_commit(self) -> None:
        """Charge the periodic checkpoint commit when its time comes."""
        while self.clock.now() >= self._next_commit:
            self.clock.advance(costs.STORE_COMMIT)
            self._next_commit += self.checkpoint_period_ns
            self.commits += 1

    def _create_cost(self) -> int:
        return costs.SLSFS_CREATE_GLOBAL_LOCK

    def _write_cost(self, nblocks: int, nbytes: int) -> int:
        self._maybe_commit()
        return nblocks * costs.SLSFS_BLOCK_UPDATE

    def _fsync(self, file: BenchFile) -> None:
        # Checkpoint consistency: fsync is a no-op (§5.2); data becomes
        # durable at the next 10 ms checkpoint instead.
        self.clock.advance(costs.SLSFS_FSYNC)
        self._maybe_commit()

    def drain(self) -> None:
        """Wait out queued IO, charging periodic commits crossed."""
        super().drain()
        # Waiting out the queued IO spans checkpoint periods too.
        self._maybe_commit()
