"""FFS (+SU+J) baseline engine for the FileBench comparison (Figure 3).

Models the FFS profile the paper measures:

* an optimized small-write path using *fragments*: sub-block writes
  avoid a full block's metadata churn and delay allocation so
  fragments can be promoted to full blocks before IO — the reason FFS
  wins the 4 KiB bars of Figure 3(b) (§9.1);
* cheap in-place block updates (cylinder-group bitmaps, no COW tree);
* soft updates + journaling (SU+J) for namespace operations;
* a real ``fsync``: the inode and data must reach the device
  synchronously, slower than Aurora's no-op but simpler than ZFS's
  ZIL machinery.
"""

from __future__ import annotations

from ..core import costs
from .fsbase import BenchFile, BenchFilesystem, FS_BLOCK


class FFSModel(BenchFilesystem):
    """FFS-like engine with soft updates + journaling."""

    name = "ffs"

    def _create_cost(self) -> int:
        # Inode allocation + directory update, journaled by SU+J.
        return costs.FFS_CREATE + costs.FFS_SUJ_RECORD

    def _write_cost(self, nblocks: int, nbytes: int) -> int:
        if nbytes < FS_BLOCK:
            # The fragment path: delayed allocation, no bitmap churn.
            return costs.FFS_FRAG_WRITE
        return nblocks * costs.FFS_BLOCK_UPDATE

    def _fsync(self, file: BenchFile) -> None:
        self.clock.advance(costs.FFS_FSYNC)
        self.device.write(self._alloc_blocks(FS_BLOCK), b"inode+data",
                          sync=True)
