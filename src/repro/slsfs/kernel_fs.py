"""A mountable FFS-like filesystem for baseline (non-Aurora) machines.

The unmodified RocksDB, Redis and CRIU experiments run on a machine
with a conventional filesystem whose ``fsync`` actually costs
something.  This class plugs the FFS cost profile into the kernel's
VFS hook points so baseline applications pay realistic metadata and
sync costs, while file *data* still lives in vnode VM objects (and is
volatile across crashes, as on a real machine whose dirty page cache
dies with the power)."""

from __future__ import annotations

from ..core import costs
from ..kernel.fs.filesystem import Filesystem
from ..kernel.fs.vnode import Vnode
from ..units import PAGE_SIZE


class FFSKernelFilesystem(Filesystem):
    """Kernel-mounted FFS model (SU+J): real fsync costs."""

    fs_type = "ffs"

    def __init__(self, kernel, machine):
        super().__init__(kernel, "ffs")
        self.machine = machine
        self._sync_cursor = 128 * 1024 * 1024  # scratch area for syncs

    def on_create(self, vnode: Vnode) -> None:
        """FFS create: inode allocation + SU+J journal record."""
        self.kernel.clock.advance(costs.FFS_CREATE + costs.FFS_SUJ_RECORD)

    def on_data_write(self, vnode: Vnode, offset: int, nbytes: int) -> None:
        """FFS write costs: fragment path for sub-block writes."""
        if nbytes < 64 * 1024:
            self.kernel.clock.advance(costs.FFS_FRAG_WRITE)
        else:
            nblocks = (nbytes + 64 * 1024 - 1) // (64 * 1024)
            self.kernel.clock.advance(nblocks * costs.FFS_BLOCK_UPDATE)

    def on_fsync(self, vnode: Vnode) -> None:
        """Synchronously push the inode + dirty data to the device."""
        self.kernel.clock.advance(costs.FFS_FSYNC)
        dirty_bytes = max(vnode.size, PAGE_SIZE)
        # Queue-depth-1 write of the dirty tail (modeled as one page
        # plus inode block for the common small-append case).
        self.machine.storage.write(self._sync_cursor,
                                   b"\x00" * min(dirty_bytes, PAGE_SIZE),
                                   sync=True)
        self._sync_cursor += 64 * 1024
        if self._sync_cursor > 4 * 1024 * 1024 * 1024:
            self._sync_cursor = 128 * 1024 * 1024


def mount_ffs(machine) -> FFSKernelFilesystem:
    """Replace a machine's root filesystem with the FFS model."""
    from ..kernel.fs.vfs import VFS

    kernel = machine.kernel
    fs = FFSKernelFilesystem(kernel, machine)
    kernel.vfs = VFS(kernel, fs)
    return fs
