"""Common machinery for the FileBench filesystem engines (Figure 3).

Each engine models one metadata-update strategy over the same striped
NVMe array: what differs between ZFS, FFS and the Aurora FS in
Figure 3 is the per-operation CPU/metadata cost and the synchronous
behaviour of ``fsync`` — the data path (stripe fan-out, device
bandwidth) is shared.  The engines are driven directly by the
FileBench workload generator; the *Aurora* engine additionally models
the 10 ms checkpoint cadence of the object store backing it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core import costs
from ..errors import NoSuchFile
from ..hw.nvme import StripedArray, synthetic_payload
from ..units import KiB, STRIPE_SIZE

#: All engines use the paper's 64 KiB filesystem block size.
FS_BLOCK = 64 * KiB


class BenchFile:
    """A file handle inside a bench filesystem."""

    __slots__ = ("name", "size", "first_block")

    def __init__(self, name: str, first_block: int):
        self.name = name
        self.size = 0
        self.first_block = first_block


class BenchFilesystem:
    """Base engine: block allocation + device IO + stat counters."""

    name = "basefs"

    def __init__(self, machine):
        self.machine = machine
        self.clock = machine.clock
        self.device: StripedArray = machine.storage
        self.files: Dict[str, BenchFile] = {}
        self._cursor = 2 * STRIPE_SIZE  # skip the superblock area
        self.stats = {"creates": 0, "writes": 0, "fsyncs": 0,
                      "bytes_written": 0}

    # -- hooks implemented per engine ------------------------------------------------

    def _create_cost(self) -> int:
        raise NotImplementedError

    def _write_cost(self, nblocks: int, nbytes: int) -> int:
        """CPU/metadata nanoseconds charged per write call."""
        raise NotImplementedError

    def _fsync(self, file: BenchFile) -> None:
        raise NotImplementedError

    # -- operations -----------------------------------------------------------------------

    def _alloc_blocks(self, nbytes: int) -> int:
        offset = self._cursor
        blocks = (nbytes + FS_BLOCK - 1) // FS_BLOCK
        self._cursor += blocks * FS_BLOCK
        if self._cursor >= self.device.capacity:
            self._cursor = 2 * STRIPE_SIZE  # recycle (bench datasets loop)
        return offset

    def create(self, name: str) -> BenchFile:
        """Create a file: engine-specific metadata cost + allocation."""
        self.clock.advance(self._create_cost())
        file = BenchFile(name, self._alloc_blocks(FS_BLOCK))
        self.files[name] = file
        self.stats["creates"] += 1
        return file

    def lookup(self, name: str) -> BenchFile:
        """Find an existing file handle by name."""
        try:
            return self.files[name]
        except KeyError:
            raise NoSuchFile(name)

    def write(self, file: BenchFile, offset: int, nbytes: int,
              seed: int = 0) -> None:
        """Write ``nbytes`` at ``offset`` (data content is synthetic)."""
        nblocks = (nbytes + FS_BLOCK - 1) // FS_BLOCK
        self.clock.advance(self._write_cost(nblocks, nbytes))
        # Data IO: one device command per stripe-unit chunk so large
        # writes fan out across the array.
        base = self._alloc_blocks(nbytes)  # COW/new allocation per write
        remaining = nbytes
        chunk_off = base
        while remaining > 0:
            chunk = min(remaining, STRIPE_SIZE)
            self.device.submit_write(chunk_off,
                                     synthetic_payload(seed, chunk))
            chunk_off += chunk
            remaining -= chunk
        file.size = max(file.size, offset + nbytes)
        self.stats["writes"] += 1
        self.stats["bytes_written"] += nbytes

    def fsync(self, file: BenchFile) -> None:
        """Engine-specific synchronous flush of one file."""
        self._fsync(file)
        self.stats["fsyncs"] += 1

    def drain(self) -> None:
        """Wait for queued IO (end of a benchmark phase)."""
        deadline = max((dev._busy_until for dev in self.device.devices),
                       default=self.clock.now())
        self.clock.advance_to(deadline)
        self.device.poll()
