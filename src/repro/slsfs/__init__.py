"""File systems: the Aurora FS plus the ZFS/FFS baseline engines used
by the FileBench comparison (Figure 3)."""

from .slsfs import SLSFS
from .baseline_zfs import ZFSModel
from .baseline_ffs import FFSModel
from .aurora_bench import AuroraFSModel
from .kernel_fs import FFSKernelFilesystem, mount_ffs

__all__ = ["SLSFS", "ZFSModel", "FFSModel", "AuroraFSModel",
           "FFSKernelFilesystem", "mount_ffs"]
