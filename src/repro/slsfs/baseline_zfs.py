"""ZFS baseline engine for the FileBench comparison (Figure 3).

Models what makes ZFS's profile in the paper:

* every write COWs through the indirect-block tree (dnode → indirect
  → data), a per-write metadata cost that hits small writes hardest —
  "ZFS is slower than Aurora in both configurations because Aurora's
  simpler metadata updates are designed to reduce the latency of
  periodic checkpoints" (§9.1);
* optional checksumming (fletcher/sha) adds a per-block CPU cost —
  the ZFS+CSUM bars;
* ``fsync`` commits through the ZFS intent log (ZIL): faster than a
  full transaction-group commit but "slower than FFS and Aurora
  because its COW mechanism generates complex changes to file system
  state" (§9.1).
"""

from __future__ import annotations

from ..core import costs
from .fsbase import BenchFile, BenchFilesystem, FS_BLOCK


class ZFSModel(BenchFilesystem):
    """ZFS-like engine; ``checksums`` selects the +CSUM variant."""

    def __init__(self, machine, checksums: bool = False):
        super().__init__(machine)
        self.checksums = checksums
        self.name = "zfs+csum" if checksums else "zfs"

    def _create_cost(self) -> int:
        # dnode allocation + directory ZAP update.
        return costs.ZFS_CREATE

    def _write_cost(self, nblocks: int, nbytes: int) -> int:
        # COW indirect-tree update per write, plus per-block checksums.
        cost = costs.ZFS_COW_TREE_UPDATE
        if self.checksums:
            cost += nblocks * costs.ZFS_CHECKSUM_PER_64K
        return cost

    def _fsync(self, file: BenchFile) -> None:
        # ZIL record: a synchronous log write (queue-depth-1 latency)
        # plus the cost of assembling the intent-log entry.
        self.clock.advance(costs.ZFS_ZIL_COMMIT)
        self.device.write(self._alloc_blocks(FS_BLOCK), b"zil-record",
                          sync=True)
