"""Exception hierarchy for the Aurora reproduction.

The simulated kernel reports POSIX-style failures with
:class:`KernelError` subclasses carrying an errno-like name, while the
single level store and object store have their own failure domains.
Keeping the hierarchy in one module lets callers catch at whatever
granularity they need (``except ReproError`` at the top level, or
``except BadFileDescriptor`` in a test).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


# --- kernel / POSIX -------------------------------------------------------


class KernelError(ReproError):
    """A simulated system call failed.

    ``errno_name`` mirrors the POSIX errno the real kernel would return
    so tests can assert on it without string matching.
    """

    errno_name = "EINVAL"

    def __init__(self, message: str = ""):
        super().__init__(message or self.errno_name)


class BadFileDescriptor(KernelError):
    """EBADF: the fd is not open in the calling process."""
    errno_name = "EBADF"


class NoSuchFile(KernelError):
    """ENOENT: no such file, key, or named object."""
    errno_name = "ENOENT"


class FileExists(KernelError):
    """EEXIST: the name already exists."""
    errno_name = "EEXIST"


class NotADirectory(KernelError):
    """ENOTDIR: a path component is not a directory."""
    errno_name = "ENOTDIR"


class IsADirectory(KernelError):
    """EISDIR: data operation attempted on a directory."""
    errno_name = "EISDIR"


class DirectoryNotEmpty(KernelError):
    """ENOTEMPTY: directory removal with entries present."""
    errno_name = "ENOTEMPTY"


class NoSuchProcess(KernelError):
    """ESRCH: no process with that pid."""
    errno_name = "ESRCH"


class PermissionDenied(KernelError):
    """EPERM: the operation is not permitted."""
    errno_name = "EPERM"


class InvalidArgument(KernelError):
    """EINVAL: a malformed or out-of-range argument."""
    errno_name = "EINVAL"


class WouldBlock(KernelError):
    """EAGAIN: the operation would block (buffers full/empty)."""
    errno_name = "EAGAIN"


class BrokenPipe(KernelError):
    """EPIPE: writing to a pipe with no readers."""
    errno_name = "EPIPE"


class NotConnected(KernelError):
    """ENOTCONN: socket operation without a peer."""
    errno_name = "ENOTCONN"


class ConnectionRefused(KernelError):
    """ECONNREFUSED: no listener at the destination."""
    errno_name = "ECONNREFUSED"


class AddressInUse(KernelError):
    """EADDRINUSE: the address/port is already bound."""
    errno_name = "EADDRINUSE"


class SegmentationFault(KernelError):
    """Access to an unmapped or protection-violating address."""

    errno_name = "SIGSEGV"


class NoSpace(KernelError):
    """ENOSPC: the backing object (journal, device) is full."""
    errno_name = "ENOSPC"


class Interrupted(KernelError):
    """EINTR: the call was interrupted (never leaks past quiesce)."""
    errno_name = "EINTR"


# --- single level store ---------------------------------------------------


class SLSError(ReproError):
    """Base class for Aurora single-level-store failures."""


class NotAttached(SLSError):
    """Operation requires the process to be in a consistency group."""


class AlreadyAttached(SLSError):
    """Process is already part of a consistency group."""


class NoSuchCheckpoint(SLSError):
    """Requested checkpoint id does not exist in the store."""


class RestoreError(SLSError):
    """A restore could not recreate the application."""


class AdmissionRejected(SLSError):
    """The fleet scheduler refused to admit a consistency group:
    admitting it would push aggregate checkpoint demand past the
    store's measured throughput (``sls attach`` with the ``reject``
    admission policy)."""


# --- cluster replication ---------------------------------------------------


class ClusterError(SLSError):
    """Base class for quorum-cluster failures."""


class QuorumLost(ClusterError):
    """Fewer nodes are reachable than the read quorum requires."""


class StaleReplica(ClusterError):
    """A node whose applied history trails the quorum-durable
    watermark was asked to take over; promoting it would silently
    roll back acknowledged state."""


class SegmentCorrupt(ClusterError):
    """A replicated segment failed checksum or completeness checks."""


class StaleEpoch(ClusterError):
    """A ship/apply/ack carried a membership epoch older than the
    receiving node's durably promised epoch: the write was fenced.
    Not retryable — the sender's primaryship is over, and it must
    drain into the stale-primary degraded mode, not retry."""

    def __init__(self, message: str = "", epoch: int = 0) -> None:
        super().__init__(message)
        #: The newer epoch the rejecting node has promised.
        self.epoch = epoch


class LeaseValid(ClusterError):
    """Failover was refused because the incumbent primary still holds
    an unexpired sim-clock lease — promoting now could fork history
    while the incumbent is merely partitioned, not dead."""


# --- object store ----------------------------------------------------------


class StoreError(ReproError):
    """Base class for object-store failures."""


class StoreFull(StoreError):
    """The backing device has no free extents."""


class CorruptRecord(StoreError):
    """A record failed checksum or decode validation."""


class NoSuchObject(StoreError):
    """Object id is not present in the store."""


# --- simulated hardware ----------------------------------------------------


class HardwareError(ReproError):
    """Base class for simulated-device failures."""


class DeviceFull(HardwareError):
    """Write past the end of a simulated device."""


class TransientDeviceError(HardwareError):
    """A device command failed in a way that may succeed on retry.

    Raised by the fault layer for *transient* and *intermittent*
    faults; :mod:`repro.core.resilience` retries these with backoff.
    Everything else a device raises is considered fatal.
    """


class LinkDown(HardwareError):
    """A replication link flapped; reconnecting may succeed."""


class RetriesExhausted(HardwareError):
    """A retry policy gave up: attempts or deadline exceeded.

    ``last_error`` carries the final transient failure so callers can
    distinguish device trouble from link trouble.
    """

    def __init__(self, message: str = "",
                 last_error: "Exception | None" = None):
        super().__init__(message)
        self.last_error = last_error


class MachineCrashed(ReproError):
    """Raised when code touches a kernel that has been crashed."""
