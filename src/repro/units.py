"""Size and time units used throughout the simulator.

All simulated time in the repository is expressed as *integer
nanoseconds* on a :class:`repro.hw.clock.SimClock`.  Integer time keeps
the simulation deterministic: there is no floating point drift, so the
same seed always produces the same checkpoint boundaries, the same
latency histograms and the same on-disk images.

Sizes are plain integers in bytes.  The constants below exist so that
cost-model code reads like the paper ("a 64 KiB stripe", "a 4 KiB
journal write") instead of like arithmetic.
"""

from __future__ import annotations

# --- sizes ----------------------------------------------------------------

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

#: Page size of the simulated MMU (x86-64 base pages, as in the paper).
PAGE_SIZE = 4 * KiB

#: Stripe unit of the simulated NVMe array (paper: "four Intel Optane
#: 900P PCIe NVMe devices striped at 64 KiB").
STRIPE_SIZE = 64 * KiB

# --- time -----------------------------------------------------------------

NSEC = 1
USEC = 1000 * NSEC
MSEC = 1000 * USEC
SEC = 1000 * MSEC


def pages_of(nbytes: int) -> int:
    """Number of pages needed to hold ``nbytes`` (rounded up)."""
    if nbytes < 0:
        raise ValueError("byte count must be non-negative")
    return (nbytes + PAGE_SIZE - 1) // PAGE_SIZE


def fmt_size(nbytes: int) -> str:
    """Human readable size, e.g. ``fmt_size(5 * MiB) == '5.0 MiB'``."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {unit}"
        value /= 1024
    raise AssertionError("unreachable")


def fmt_time(ns: int) -> str:
    """Human readable duration, e.g. ``fmt_time(4_000_000) == '4.00 ms'``."""
    if ns < USEC:
        return f"{ns} ns"
    if ns < MSEC:
        return f"{ns / USEC:.2f} us"
    if ns < SEC:
        return f"{ns / MSEC:.2f} ms"
    return f"{ns / SEC:.3f} s"
