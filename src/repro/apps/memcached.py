"""A Memcached-like key-value cache server (Figures 4 and 5).

The benchmark-facing surface simulates the server at batch granularity
on the simulated clock: every operation costs CPU, and — the part that
matters for Aurora — every operation *dirties* item/LRU pages, so after
each checkpoint write-protects the address space, the first touch of
each hot page takes a real COW fault through the shadow chain.  The
interplay of (stop time + post-checkpoint fault storm + page-dirtying
saturation within a period) is exactly what shapes Figures 4 and 5.

Two load modes mirror Mutilate's:

* closed loop (fixed outstanding requests — 4 machines x 12 threads x
  12 connections in the paper) for the max-throughput experiment;
* open loop (fixed offered rate, FIFO queue) for the pegged-120k
  latency experiment.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core import costs
from ..errors import NoSuchFile
from ..units import MiB, MSEC, PAGE_SIZE, USEC, pages_of


class LoadStats:
    """Result of one load run."""

    def __init__(self):
        self.duration_ns = 0
        self.completed_ops = 0
        self.latency_avg_ns = 0
        self.latency_p95_ns = 0
        self.samples: List[int] = []

    @property
    def throughput(self) -> float:
        """Operations per second."""
        if self.duration_ns == 0:
            return 0.0
        return self.completed_ops * 1e9 / self.duration_ns

    def finish(self) -> "LoadStats":
        """Compute the latency aggregates from the samples."""
        if self.samples:
            ordered = sorted(self.samples)
            self.latency_avg_ns = sum(ordered) // len(ordered)
            self.latency_p95_ns = ordered[min(len(ordered) - 1,
                                              (len(ordered) * 95) // 100)]
        return self


class MemcachedServer:
    """One memcached instance as a simulated process."""

    #: Distinct pages dirtied per operation.  GETs bump LRU pointers in
    #: the item header, SETs write values; with ~4 items per page and a
    #: skewed key distribution, ops hit an already-dirty page ~45% of
    #: the time (calibrated against Figure 4's 10 ms point).
    PAGES_PER_OP = 0.55

    #: Post-checkpoint degradation window: after the shootdown, the
    #: TLB and caches are cold and the dirtied set re-faults; request
    #: service runs inflated for ~this long per flushed dirty page.
    #: This is Figure 5's worst-case mechanism — bigger periods
    #: accumulate bigger dirty sets, so their post-checkpoint windows
    #: are longer and the average latency at low utilization *rises*
    #: with the period (paper: 157 us baseline -> 607 us at 100 ms).
    REFILL_NS_PER_PAGE = 1200
    #: Service-time multiplier inside the degradation window.  At
    #: 120 k ops/s this pushes service past the interarrival gap, so a
    #: queue builds for the length of the window and drains after —
    #: the compounding that makes larger periods (larger dirty sets,
    #: longer windows) hurt the average more.
    DEGRADED_FACTOR = 18

    def __init__(self, kernel, name: str = "memcached",
                 nthreads: int = 12, hot_bytes: int = 32 * MiB):
        self.kernel = kernel
        self.proc = kernel.spawn(name)
        for _ in range(nthreads - 1):
            self.proc.add_thread()
        self.hot_pages = pages_of(hot_bytes)
        self.heap = self.proc.vmspace.mmap(
            2 * hot_bytes, name="slab-arena")
        # Warm cache: the hot item set is resident after warmup.
        self.proc.vmspace.fill(self.heap, self.hot_pages, seed=0x3C)
        self._touch_cursor = 0
        self._touch_seed = 1
        self._page_debt = 0.0  # fractional PAGES_PER_OP accumulator
        self._degraded_until = 0
        self._seen_checkpoints = 0
        self._seen_pages_flushed = 0
        #: Small-scale real data for correctness tests.
        self.items: Dict[str, bytes] = {}

    # -- correctness-scale data path -------------------------------------------------

    def set(self, key: str, value: bytes) -> None:
        """Store an item (dirties its page, as the slab write would)."""
        self.kernel.clock.advance(costs.MEMCACHED_OP_CPU)
        self.items[key] = value
        self._dirty_pages(1)

    def get(self, key: str) -> bytes:
        """Fetch an item (the LRU bump dirties its header page)."""
        self.kernel.clock.advance(costs.MEMCACHED_OP_CPU)
        try:
            value = self.items[key]
        except KeyError:
            raise NoSuchFile(key)
        self._dirty_pages(1)  # LRU bump writes the item header
        return value

    # -- load-scale machinery -------------------------------------------------------------

    def _dirty_pages(self, npages: int) -> int:
        """Touch the next ``npages`` of the hot set (round robin).

        Re-touching a page that is still writable this period is free;
        the first touch after a checkpoint takes the COW fault.  That
        is precisely memcached's LRU/header write behaviour under
        system shadowing.
        """
        space = self.proc.vmspace
        faults = 0
        remaining = min(npages, self.hot_pages)
        while remaining > 0:
            run = min(remaining, self.hot_pages - self._touch_cursor)
            faults += space.touch(
                self.heap + self._touch_cursor * PAGE_SIZE, run,
                seed=self._touch_seed)
            self._touch_cursor = (self._touch_cursor + run) % self.hot_pages
            self._touch_seed += run
            remaining -= run
        return faults

    def _service_ns(self, nops: int) -> int:
        """CPU time for ``nops``, accounting for the post-checkpoint
        TLB/cache refill window."""
        group = self.proc.sls_group
        now = self.kernel.clock.now()
        if group is not None:
            ckpts = group.stats["checkpoints"]
            if ckpts != self._seen_checkpoints:
                self._seen_checkpoints = ckpts
                total = group.stats["pages_flushed"]
                dirty = min(total - self._seen_pages_flushed,
                            self.hot_pages)
                self._seen_pages_flushed = total
                window = min(dirty * self.REFILL_NS_PER_PAGE,
                             group.period_ns)
                self._degraded_until = now + window
        if now < self._degraded_until:
            return nops * costs.MEMCACHED_OP_CPU * self.DEGRADED_FACTOR
        return nops * costs.MEMCACHED_OP_CPU

    def _dirty_for_ops(self, nops: int) -> int:
        """Dirty the pages ``nops`` operations touch."""
        self._page_debt += nops * self.PAGES_PER_OP
        npages = int(self._page_debt)
        self._page_debt -= npages
        return self._dirty_pages(npages)

    def run_closed_loop(self, machine, outstanding: int, duration_ns: int,
                        batch_ops: int = 512) -> LoadStats:
        """Mutilate at max throughput: ``outstanding`` requests always
        in flight.  Latency via Little's law per batch, so batches
        containing a checkpoint stop produce the tail."""
        clock = machine.clock
        stats = LoadStats()
        start = clock.now()
        end = start + duration_ns
        while clock.now() < end:
            machine.loop.run_pending()  # periodic checkpoints fire here
            t0 = clock.now()
            # At saturation the post-checkpoint convoys reorder work
            # rather than destroy it: the throughput cost of a
            # checkpoint is the stop time plus the COW fault storm,
            # both charged through the clock already.  The refill
            # window below is a latency effect (see run_open_loop).
            clock.advance(batch_ops * costs.MEMCACHED_OP_CPU)
            self._dirty_for_ops(batch_ops)
            machine.loop.run_pending()
            elapsed = clock.now() - t0
            stats.completed_ops += batch_ops
            # Little's law: mean residence = outstanding / rate.
            per_op = elapsed // batch_ops
            stats.samples.append(costs.NET_RTT + outstanding * per_op)
        stats.duration_ns = clock.now() - start
        return stats.finish()

    def run_open_loop(self, machine, offered_rate: float, duration_ns: int,
                      batch_ops: int = 64) -> LoadStats:
        """Mutilate pegged at a fixed rate: arrivals are scheduled at
        1/rate spacing; ops queue FIFO while the server is busy (or
        stopped for a checkpoint)."""
        clock = machine.clock
        stats = LoadStats()
        start = clock.now()
        end = start + duration_ns
        interarrival = int(1e9 / offered_rate)
        arrived = 0       # index of next arrival to admit
        completed = 0
        total_arrivals = duration_ns // interarrival
        while clock.now() < end:
            machine.loop.run_pending()
            now = clock.now()
            arrived = min((now - start) // interarrival + 1,
                          total_arrivals)
            available = arrived - completed
            if available <= 0:
                if arrived >= total_arrivals:
                    break  # every op arrived and completed
                # Idle until the next arrival (letting checkpoint
                # timers fire on the way).
                next_arrival = start + arrived * interarrival
                deadline = min(max(next_arrival, now + 1), end)
                machine.loop.run_until(deadline)
                continue
            n = min(available, batch_ops)
            clock.advance(self._service_ns(n))
            self._dirty_for_ops(n)
            machine.loop.run_pending()
            done_at = clock.now()
            # FIFO latency for every op in this batch (delayed ops
            # drain in large batches; sampling them sparsely would
            # bias the average toward the uncongested path).
            for index in range(completed, completed + n):
                arrival = start + index * interarrival
                service = costs.MEMCACHED_OP_CPU
                latency = max(done_at - arrival, service) + costs.NET_RTT
                stats.samples.append(latency)
            completed += n
            stats.completed_ops += n
        stats.duration_ns = clock.now() - start
        return stats.finish()
