"""A Redis-like key-value store with fork-based RDB persistence.

Used by Tables 1 and 7: a 500 MiB instance checkpointed by CRIU, by
Redis's own RDB mechanism (BGSAVE forks; the child serializes the
keyspace while the parent keeps serving through COW), and by Aurora.
The data path is real — keys live in pages of the process heap, BGSAVE
uses the simulated kernel's actual ``fork`` (so its stop time *is* the
COW setup cost of §Table 7), and the serializer walks the keyspace.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core import costs
from ..errors import InvalidArgument, NoSuchFile
from ..units import MiB, PAGE_SIZE, pages_of


class RDBReport:
    """Timing of one RDB save."""

    def __init__(self):
        self.fork_stop_ns = 0      # parent stop time (BGSAVE)
        self.serialize_ns = 0      # child CPU serializing key/values
        self.io_write_ns = 0       # child writing the RDB file
        self.total_ns = 0
        self.keys = 0
        self.bytes_written = 0


class RedisServer:
    """One Redis instance running as a simulated process."""

    #: Keyspace hash-table pages per MiB of values (item headers, the
    #: main dict, expires dict...).
    OVERHEAD_RATIO = 0.06

    def __init__(self, kernel, name: str = "redis",
                 heap_bytes: int = 64 * MiB):
        self.kernel = kernel
        self.proc = kernel.spawn(name)
        self.heap_pages = pages_of(heap_bytes)
        self.heap = self.proc.vmspace.mmap(heap_bytes, name="redis-heap")
        #: Small-scale real data (correctness tests).
        self.data: Dict[str, bytes] = {}
        #: key -> (heap offset, length) for real-data keys.
        self._layout: Dict[str, Tuple[int, int]] = {}
        self._heap_cursor = 0
        #: Benchmark-scale synthetic keyspace.
        self.synthetic_keys = 0
        self.synthetic_value_size = 0
        self._filled_pages = 0

    # -- data path -----------------------------------------------------------------

    def set(self, key: str, value: bytes) -> None:
        """SET: store the value in heap pages (real bytes)."""
        self.kernel.clock.advance(costs.REDIS_OP_CPU)
        offset = self._heap_cursor
        if offset + len(value) > self.heap_pages * PAGE_SIZE:
            raise InvalidArgument("redis heap full")
        self.proc.vmspace.write(self.heap + offset, value)
        self._heap_cursor += max(len(value), 16)
        self.data[key] = value
        self._layout[key] = (offset, len(value))

    def get(self, key: str) -> bytes:
        """GET: read the value bytes back out of the heap."""
        self.kernel.clock.advance(costs.REDIS_OP_CPU)
        layout = self._layout.get(key)
        if layout is None:
            raise NoSuchFile(key)
        offset, length = layout
        return self.proc.vmspace.read(self.heap + offset, length)

    def populate_synthetic(self, total_bytes: int,
                           value_size: int = 4096) -> int:
        """Fill the instance to ``total_bytes`` resident (benchmarks).

        Returns the number of keys.  Pages are installed synthetically
        (content is a function of the seed) so a 500 MiB instance
        costs no real memory.
        """
        npages = pages_of(int(total_bytes * (1 + self.OVERHEAD_RATIO)))
        if npages > self.heap_pages:
            raise InvalidArgument("heap too small for the dataset")
        self.proc.vmspace.fill(self.heap, npages, seed=0x4ED1)
        self._filled_pages = npages
        self.synthetic_keys = total_bytes // value_size
        self.synthetic_value_size = value_size
        return self.synthetic_keys

    def resident_pages(self) -> int:
        """Pages resident in the server's address space."""
        return self.proc.vmspace.resident_pages()

    def key_count(self) -> int:
        """Total keys (synthetic + real)."""
        return self.synthetic_keys + len(self.data)

    def dataset_bytes(self) -> int:
        """Logical dataset size in bytes."""
        synthetic = self.synthetic_keys * self.synthetic_value_size
        real = sum(len(v) for v in self.data.values())
        return synthetic + real

    # -- RDB persistence ----------------------------------------------------------------

    def _serialize_keyspace_ns(self) -> int:
        return self.key_count() * costs.RDB_SERIALIZE_PER_KEY

    def _write_rdb_ns(self, nbytes: int) -> int:
        return (nbytes * 1_000_000_000) // costs.RDB_WRITE_BW

    def bgsave(self) -> RDBReport:
        """BGSAVE: fork, then the child serializes and writes.

        The parent's stop time is the fork itself (page-table COW
        setup — Table 7's 8 ms for 500 MiB); serialization and IO
        happen in the child, concurrent with the parent serving.
        """
        report = RDBReport()
        clock = self.kernel.clock
        t0 = clock.now()
        child = self.kernel.fork(self.proc, name="redis-bgsave")
        report.fork_stop_ns = clock.now() - t0

        report.keys = self.key_count()
        report.bytes_written = self.dataset_bytes()
        report.serialize_ns = self._serialize_keyspace_ns()
        report.io_write_ns = self._write_rdb_ns(report.bytes_written)
        # The child runs concurrently; its wall time is serialize+IO.
        report.total_ns = report.fork_stop_ns + report.serialize_ns \
            + report.io_write_ns
        child.exit(0)
        self.proc.reap(child)
        return report

    def save(self) -> RDBReport:
        """SAVE: blocking variant — the server stops for the duration."""
        report = RDBReport()
        report.keys = self.key_count()
        report.bytes_written = self.dataset_bytes()
        report.serialize_ns = self._serialize_keyspace_ns()
        report.io_write_ns = self._write_rdb_ns(report.bytes_written)
        report.fork_stop_ns = 0
        report.total_ns = report.serialize_ns + report.io_write_ns
        self.kernel.clock.advance(report.total_ns)
        return report
