"""Evaluation applications: the workloads of the paper's §9.

* :mod:`repro.apps.redis` — key-value store with fork-based RDB
  persistence (Tables 1 and 7).
* :mod:`repro.apps.memcached` — the transparent-persistence server of
  Figures 4 and 5.
* :mod:`repro.apps.rocksdb` — a real LSM-tree store plus the Aurora
  port that replaces its persistence layer (Figure 6).
* :mod:`repro.apps.synthetic` — firefox/mosh/pillow/tomcat/vim process
  profiles (Table 6).
"""

from .redis import RedisServer
from .memcached import MemcachedServer
from .synthetic import PROFILES, SyntheticApp

__all__ = ["RedisServer", "MemcachedServer", "SyntheticApp", "PROFILES"]
