"""Synthetic application profiles for Table 6.

Table 6 measures how *OS-state complexity* — not application logic —
drives checkpoint stop times and restore times: "vim and pillow have
small memory footprints, but complex OS state including hundreds of
address space objects."  Each profile below reconstructs that state
shape: resident set size, number of VM map entries/objects, thread
count, process count and descriptor mix, taken from the paper's
description of each application.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..units import KiB, MiB, PAGE_SIZE, pages_of


@dataclass
class AppProfile:
    """State-shape description of one application."""

    name: str
    resident_bytes: int
    #: Number of separate writable anonymous regions (address space
    #: objects): libraries' data segments, arenas, JIT regions, stacks.
    vm_regions: int
    nthreads: int
    nprocs: int
    #: Descriptor mix: (kind, count) with kind in
    #: {file, socket, pipe, kqueue, pty, shm}.
    fds: Tuple[Tuple[str, int], ...] = ()
    #: Fraction of the resident set the app dirties between idle-state
    #: checkpoints (Table 6 measures mostly idle applications).
    idle_dirty_fraction: float = 0.002


#: Profiles matching Table 6's applications.  Sizes come straight from
#: the table; structural counts follow each application's nature
#: (firefox: multiprocess browser; tomcat: JVM with many threads;
#: pillow/vim: small-footprint but fragmented address spaces; mosh: a
#: lean network client).
PROFILES: Dict[str, AppProfile] = {
    "firefox": AppProfile(
        name="firefox", resident_bytes=198 * MiB, vm_regions=320,
        nthreads=60, nprocs=4,
        fds=(("file", 40), ("socket", 48), ("pipe", 24), ("kqueue", 4),
             ("shm", 8)),
    ),
    "mosh": AppProfile(
        name="mosh", resident_bytes=24 * MiB, vm_regions=40,
        nthreads=4, nprocs=1,
        fds=(("file", 6), ("socket", 2), ("pty", 1)),
    ),
    "pillow": AppProfile(
        name="pillow", resident_bytes=75 * MiB, vm_regions=220,
        nthreads=4, nprocs=1,
        fds=(("file", 16),),
    ),
    "tomcat": AppProfile(
        name="tomcat", resident_bytes=197 * MiB, vm_regions=420,
        nthreads=220, nprocs=1,
        fds=(("file", 60), ("socket", 40), ("pipe", 8), ("kqueue", 2)),
    ),
    "vim": AppProfile(
        name="vim", resident_bytes=48 * MiB, vm_regions=180,
        nthreads=2, nprocs=1,
        fds=(("file", 10), ("pty", 1)),
    ),
}


class SyntheticApp:
    """A running instance built from a profile."""

    def __init__(self, kernel, profile: AppProfile):
        self.kernel = kernel
        self.profile = profile
        self.procs = []
        self.regions: List[Tuple[object, int, int]] = []  # (proc, addr, np)
        self._build()

    def _build(self) -> None:
        profile = self.profile
        root = self.kernel.spawn(profile.name)
        self.procs.append(root)
        for index in range(profile.nprocs - 1):
            self.procs.append(
                self.kernel.fork(root, name=f"{profile.name}-{index}"))

        # Spread the resident set over the profile's regions, across
        # its processes.
        total_pages = pages_of(profile.resident_bytes)
        regions_per_proc = max(profile.vm_regions // profile.nprocs, 1)
        pages_left = total_pages
        regions_left = profile.vm_regions
        seed = 0x5A9
        for proc in self.procs:
            for _ in range(regions_per_proc):
                if regions_left <= 0:
                    break
                npages = max(pages_left // regions_left, 1)
                addr = proc.vmspace.mmap(npages * PAGE_SIZE,
                                         name=f"region{regions_left}")
                proc.vmspace.fill(addr, npages, seed=seed)
                seed += npages
                self.regions.append((proc, addr, npages))
                pages_left -= npages
                regions_left -= 1

        # Threads (beyond each process's first).
        threads_left = profile.nthreads - len(self.procs)
        while threads_left > 0:
            for proc in self.procs:
                if threads_left <= 0:
                    break
                proc.add_thread()
                threads_left -= 1

        # Descriptors.
        for kind, count in profile.fds:
            for index in range(count):
                self._open_fd(root, kind, index)

    def _open_fd(self, proc, kind: str, index: int) -> None:
        kernel = self.kernel
        if kind == "file":
            path = f"/{self.profile.name}-file{index}"
            kernel.open(proc, path, flags=0x40 | 0x2)
        elif kind == "socket":
            kernel.tcp_socket(proc)
        elif kind == "pipe":
            kernel.pipe(proc)
        elif kind == "kqueue":
            kernel.kqueue(proc)
        elif kind == "pty":
            kernel.open_pty(proc)
        elif kind == "shm":
            fd = kernel.shm_open(proc, f"/{self.profile.name}-shm{index}",
                                 64 * KiB)
            kernel.shm_mmap(proc, fd)

    @property
    def root(self):
        """The profile's root process."""
        return self.procs[0]

    def idle_tick(self, seed: int) -> int:
        """Dirty the small working set an idle app touches between
        checkpoints; returns pages dirtied."""
        budget = max(int(pages_of(self.profile.resident_bytes)
                         * self.profile.idle_dirty_fraction), 1)
        dirtied = 0
        for proc, addr, npages in self.regions:
            if dirtied >= budget:
                break
            run = min(npages, budget - dirtied)
            proc.vmspace.touch(addr, run, seed=seed + dirtied)
            dirtied += run
        return dirtied

    def resident_pages(self) -> int:
        """Total resident pages across the app's processes."""
        seen = 0
        for proc in self.procs:
            seen += proc.vmspace.resident_pages()
        return seen
