"""The RocksDB facade: memtable + WAL + LSM tree.

Configurations map to the paper's Figure 6 bars:

* ``DBOptions(wal=False)`` — the ephemeral baseline (no persistence);
  also the configuration run under Aurora's transparent 10 ms
  checkpoints (Aurora-100Hz).
* ``DBOptions(wal=True, sync=False)`` — builtin WAL, buffered.
* ``DBOptions(wal=True, sync=True)`` — builtin WAL with fsync per
  write group (full persistence).

Writes land in the memtable (touching arena pages of the owning
process, so transparent checkpointing sees real dirty sets); the WAL
lives on the kernel filesystem, whose fsync cost profile is whatever
filesystem the machine mounts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ...core import costs
from ...units import MiB, PAGE_SIZE
from .compaction import LevelSet
from .memtable import MemTable
from .wal import WALWriter


@dataclass
class DBOptions:
    """Tunables selecting the Figure 6 configuration."""
    wal: bool = True
    sync: bool = False
    #: Flush threshold; the paper sizes it to hold the whole dataset.
    memtable_bytes: int = 256 * MiB
    group_commit_size: int = 32


class RocksDB:
    """One database instance owned by a simulated process."""

    def __init__(self, kernel, proc, directory: str = "/rocksdb",
                 options: Optional[DBOptions] = None):
        self.kernel = kernel
        self.proc = proc
        self.options = options or DBOptions()
        self.directory = directory
        if not kernel.vfs.exists(directory):
            kernel.mkdir(proc, directory)
        self.memtable = MemTable(seed=1)
        self.immutable: Optional[MemTable] = None
        self.levels = LevelSet(kernel, proc, directory)
        self.wal: Optional[WALWriter] = None
        if self.options.wal:
            self.wal = WALWriter(kernel, proc, f"{directory}/wal.log",
                                 self.options.group_commit_size)
        # Memtable arena: a real mapped region so writes dirty pages.
        self.arena = proc.vmspace.mmap(self.options.memtable_bytes,
                                       name="memtable-arena")
        self.arena_pages = self.options.memtable_bytes // PAGE_SIZE
        self._arena_cursor = 0
        self._node_rng = random.Random(7)
        self.stats = {"puts": 0, "gets": 0, "flushes": 0}

    # -- arena dirtying -----------------------------------------------------------------

    def _touch_arena(self, nbytes: int) -> None:
        """Advance the arena tail (value + node storage) and dirty an
        existing skiplist-node page: the write pattern transparent
        checkpointing must track."""
        space = self.proc.vmspace
        if self._arena_cursor + nbytes >= self.arena_pages * PAGE_SIZE:
            self._arena_cursor = 0
        start_page = self._arena_cursor // PAGE_SIZE
        self._arena_cursor += nbytes
        end_page = self._arena_cursor // PAGE_SIZE
        space.touch(self.arena + start_page * PAGE_SIZE,
                    max(end_page - start_page, 1), seed=start_page)
        if start_page > 8:
            # Interior node updates (skiplist level pointers + index
            # node) on random pages of the already-filled region.
            for _ in range(2):
                node_page = self._node_rng.randrange(0, start_page)
                space.touch(self.arena + node_page * PAGE_SIZE, 1,
                            seed=node_page)

    def preload(self, nbytes: int) -> None:
        """Pre-populate the memtable arena (the paper sizes the
        memtable to hold the whole database in memory, so benchmark
        runs start against an already-loaded arena)."""
        npages = min(nbytes // PAGE_SIZE, self.arena_pages - 1)
        self.proc.vmspace.fill(self.arena, npages, seed=0xDB)
        self._arena_cursor = npages * PAGE_SIZE

    # -- the data path ------------------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        """Write: optional WAL append + memtable insert + arena dirtying."""
        self.kernel.clock.advance(costs.ROCKSDB_MEMTABLE_OP)
        if self.wal is not None:
            self.kernel.clock.advance(costs.ROCKSDB_WAL_ENCODE +
                                      costs.ROCKSDB_WAL_BUFFERED_APPEND)
            self.wal.append(key, value, sync=self.options.sync)
        self.memtable.put(key, value)
        self._touch_arena(len(key) + len(value)
                          + MemTable.ENTRY_OVERHEAD)
        self.stats["puts"] += 1
        if self.memtable.approximate_bytes >= self.options.memtable_bytes:
            self.flush_memtable()

    def delete(self, key: bytes) -> None:
        """Tombstone write."""
        self.kernel.clock.advance(costs.ROCKSDB_MEMTABLE_OP)
        if self.wal is not None:
            self.wal.append(key, b"", sync=self.options.sync)
        self.memtable.delete(key)
        self._touch_arena(len(key) + MemTable.ENTRY_OVERHEAD)

    def get(self, key: bytes) -> Optional[bytes]:
        """Read: memtable, immutable memtable, then the LSM tree."""
        self.kernel.clock.advance(costs.ROCKSDB_MEMTABLE_OP)
        self.stats["gets"] += 1
        found, value = self.memtable.get(key)
        if found:
            return value
        if self.immutable is not None:
            found, value = self.immutable.get(key)
            if found:
                return value
        found, value = self.levels.get(key)
        return value if found else None

    # -- flush / compaction ----------------------------------------------------------------------

    def flush_memtable(self) -> None:
        """Write the memtable as an L0 SSTable and reset the WAL."""
        entries = list(self.memtable.entries())
        if not entries:
            return
        self.immutable = self.memtable
        self.memtable = MemTable(seed=self.stats["flushes"] + 2)
        self.levels.add_l0(entries)
        self.immutable = None
        if self.wal is not None:
            self.wal.reset()
        self._arena_cursor = 0
        self.stats["flushes"] += 1
        self.levels.maybe_compact()

    # -- recovery ------------------------------------------------------------------------------------

    def recover(self) -> int:
        """Post-restart: replay the WAL into a fresh memtable.

        Returns the number of records replayed.  (SSTable discovery is
        the caller's job in this reproduction; the paper's experiment
        never flushes, so the WAL is the whole story.)"""
        if self.wal is None:
            return 0
        records = self.wal.replay()
        for key, value in records:
            if value == b"":
                self.memtable.delete(key)
            else:
                self.memtable.put(key, value)
        return len(records)
