"""The memtable: a real probabilistic skiplist.

RocksDB buffers writes in a skiplist-backed memtable; in the Aurora
port the memtable *is* the database, persisted by the SLS.  The
skiplist is deterministic (seeded coin flips) so benchmark runs are
reproducible.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple

#: Tombstone marker for deletions (distinct from any real value).
TOMBSTONE = object()

MAX_LEVEL = 12
P = 0.25


class _Node:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: Optional[bytes], value, level: int):
        self.key = key
        self.value = value
        self.forward: List[Optional["_Node"]] = [None] * level


class SkipList:
    """Sorted map from bytes keys to values, O(log n) expected."""

    def __init__(self, seed: int = 0):
        self._head = _Node(None, None, MAX_LEVEL)
        self._level = 1
        self._rng = random.Random(seed)
        self._count = 0

    def _random_level(self) -> int:
        level = 1
        while level < MAX_LEVEL and self._rng.random() < P:
            level += 1
        return level

    def _find_predecessors(self, key: bytes) -> List[_Node]:
        preds = [self._head] * MAX_LEVEL
        node = self._head
        for level in range(self._level - 1, -1, -1):
            while (node.forward[level] is not None
                   and node.forward[level].key < key):
                node = node.forward[level]
            preds[level] = node
        return preds

    def insert(self, key: bytes, value) -> bool:
        """Insert or update; returns True when the key was new."""
        preds = self._find_predecessors(key)
        candidate = preds[0].forward[0]
        if candidate is not None and candidate.key == key:
            candidate.value = value
            return False
        level = self._random_level()
        if level > self._level:
            self._level = level
        node = _Node(key, value, level)
        for i in range(level):
            node.forward[i] = preds[i].forward[i]
            preds[i].forward[i] = node
        self._count += 1
        return True

    def get(self, key: bytes):
        """The value for ``key``, or None when absent."""
        node = self._head
        for level in range(self._level - 1, -1, -1):
            while (node.forward[level] is not None
                   and node.forward[level].key < key):
                node = node.forward[level]
        node = node.forward[0]
        if node is not None and node.key == key:
            return node.value
        return None

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Tuple[bytes, object]]:
        node = self._head.forward[0]
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]


class MemTable:
    """Skiplist + size accounting + tombstones."""

    #: Per-entry bookkeeping bytes (node, pointers, sequence number).
    ENTRY_OVERHEAD = 24

    def __init__(self, seed: int = 0):
        self._list = SkipList(seed)
        self.approximate_bytes = 0

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or update; size accounting included."""
        if self._list.insert(key, value):
            self.approximate_bytes += (len(key) + len(value)
                                       + self.ENTRY_OVERHEAD)
        else:
            self.approximate_bytes += len(value)

    def delete(self, key: bytes) -> None:
        """Insert a tombstone."""
        if self._list.insert(key, TOMBSTONE):
            self.approximate_bytes += len(key) + self.ENTRY_OVERHEAD

    def get(self, key: bytes) -> Tuple[bool, Optional[bytes]]:
        """Returns (found, value); found with value None = tombstone."""
        value = self._list.get(key)
        if value is None:
            return False, None
        if value is TOMBSTONE:
            return True, None
        return True, value

    def __len__(self) -> int:
        return len(self._list)

    def entries(self) -> Iterator[Tuple[bytes, Optional[bytes]]]:
        """Sorted entries; tombstones yielded as (key, None)."""
        for key, value in self._list:
            yield key, (None if value is TOMBSTONE else value)
