"""A RocksDB-like LSM key-value store, plus the Aurora port (§9.6).

The baseline (:class:`~repro.apps.rocksdb.db.RocksDB`) is a real LSM
implementation: skiplist memtable, CRC-framed write-ahead log on the
kernel filesystem, block-structured SSTables with bloom filters, and
leveled compaction.  The port
(:class:`~repro.apps.rocksdb.aurora_db.AuroraRocksDB`) is the paper's
109-line rewrite: the LSM tree and WAL are *deleted* — Aurora persists
the memtable, and ``sls_journal`` replaces the WAL.
"""

from .memtable import MemTable, SkipList
from .db import RocksDB, DBOptions
from .aurora_db import AuroraRocksDB

__all__ = ["MemTable", "SkipList", "RocksDB", "DBOptions", "AuroraRocksDB"]
