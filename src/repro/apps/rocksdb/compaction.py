"""Leveled compaction.

L0 holds possibly-overlapping memtable flushes; L1+ are sorted,
non-overlapping runs whose total size grows by 10x per level.  When a
level exceeds its budget, its tables are merged with the overlapping
tables of the next level into fresh tables (newest version of each key
wins; tombstones are dropped at the bottom level).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from ...units import MiB
from .sstable import SSTable

#: L0 flush count that triggers compaction into L1.
L0_COMPACTION_TRIGGER = 4
#: L1 size budget; each deeper level is 10x larger.
L1_BUDGET = 8 * MiB
LEVEL_MULTIPLIER = 10
MAX_LEVEL = 4


def merge_entries(sources: List[List[Tuple[bytes, Optional[bytes]]]],
                  drop_tombstones: bool
                  ) -> List[Tuple[bytes, Optional[bytes]]]:
    """k-way merge; earlier sources are newer and win on ties."""
    merged: List[Tuple[bytes, Optional[bytes]]] = []
    heap = []
    for source_index, entries in enumerate(sources):
        if entries:
            heap.append((entries[0][0], source_index, 0))
    heapq.heapify(heap)
    last_key: Optional[bytes] = None
    while heap:
        key, source_index, pos = heapq.heappop(heap)
        entries = sources[source_index]
        value = entries[pos][1]
        is_duplicate = key == last_key
        if not is_duplicate:
            # Among equal keys the smallest source_index (newest) pops
            # first because of tuple ordering.
            if value is not None or not drop_tombstones:
                merged.append((key, value))
            last_key = key
        if pos + 1 < len(entries):
            heapq.heappush(heap, (entries[pos + 1][0], source_index,
                                  pos + 1))
    return merged


class LevelSet:
    """The LSM tree's on-disk structure: tables per level."""

    def __init__(self, kernel, proc, directory: str):
        self.kernel = kernel
        self.proc = proc
        self.directory = directory
        self.levels: Dict[int, List[SSTable]] = {i: []
                                                 for i in range(MAX_LEVEL + 1)}
        self._file_counter = 0
        self.compactions = 0

    def _next_path(self) -> str:
        self._file_counter += 1
        return f"{self.directory}/{self._file_counter:06d}.sst"

    def table_size(self, table: SSTable) -> int:
        """On-disk bytes of one table."""
        return self.kernel.vfs.namei(table.path).size

    def level_bytes(self, level: int) -> int:
        """Total bytes at one level."""
        return sum(self.table_size(t) for t in self.levels[level])

    def add_l0(self, entries: List[Tuple[bytes, Optional[bytes]]]) -> SSTable:
        """Write a memtable flush as a new L0 table."""
        table = SSTable.build(self.kernel, self.proc, self._next_path(),
                              entries)
        self.levels[0].insert(0, table)  # newest first
        return table

    # -- reads ---------------------------------------------------------------------

    def get(self, key: bytes) -> Tuple[bool, Optional[bytes]]:
        """LSM read path: L0 newest-first, then binary levels."""
        for table in self.levels[0]:          # newest first
            found, value = table.get(key)
            if found:
                return True, value
        for level in range(1, MAX_LEVEL + 1):
            for table in self.levels[level]:
                if table.smallest <= key <= table.largest:
                    found, value = table.get(key)
                    if found:
                        return True, value
                    break  # non-overlapping: only one candidate
        return False, None

    # -- compaction -------------------------------------------------------------------------

    def maybe_compact(self) -> int:
        """Run compactions until every level is within budget.

        Returns the number of compactions performed."""
        ran = 0
        if len(self.levels[0]) >= L0_COMPACTION_TRIGGER:
            self._compact_level(0)
            ran += 1
        budget = L1_BUDGET
        for level in range(1, MAX_LEVEL):
            if self.level_bytes(level) > budget:
                self._compact_level(level)
                ran += 1
            budget *= LEVEL_MULTIPLIER
        return ran

    def _compact_level(self, level: int) -> None:
        source_tables = list(self.levels[level])
        target = level + 1
        overlapping = [t for t in self.levels[target]
                       if any(t.overlaps(s) for s in source_tables)]
        sources = [t.entries() for t in source_tables] \
            + [t.entries() for t in overlapping]
        drop = target == MAX_LEVEL
        merged = merge_entries(sources, drop_tombstones=drop)
        self.levels[level] = []
        self.levels[target] = [t for t in self.levels[target]
                               if t not in overlapping]
        # Write the merged run as ~budget-sized tables.
        chunk: List[Tuple[bytes, Optional[bytes]]] = []
        chunk_bytes = 0
        for key, value in merged:
            chunk.append((key, value))
            chunk_bytes += len(key) + (len(value) if value else 0)
            if chunk_bytes >= 2 * MiB:
                self.levels[target].append(
                    SSTable.build(self.kernel, self.proc,
                                  self._next_path(), chunk))
                chunk, chunk_bytes = [], 0
        if chunk:
            self.levels[target].append(
                SSTable.build(self.kernel, self.proc, self._next_path(),
                              chunk))
        self.levels[target].sort(key=lambda t: t.smallest)
        # Delete the input files.
        for table in source_tables + overlapping:
            self.kernel.vfs.unlink(table.path)
        self.compactions += 1

    def total_tables(self) -> int:
        """Tables across all levels."""
        return sum(len(tables) for tables in self.levels.values())
