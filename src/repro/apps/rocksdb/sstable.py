"""SSTables: immutable sorted runs with block index and bloom filter.

Each table is a real file on the kernel filesystem: 4 KiB data blocks
of serde-encoded entries, an index of (first key -> block offset), and
a bloom filter over the keys.  Reads pay the bloom check, an index
bisect and one block read — the standard LSM read path the Aurora port
gets to delete entirely.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Optional, Tuple

from ... import serde
from ...units import KiB

BLOCK_SIZE = 4 * KiB
BLOOM_BITS_PER_KEY = 10
BLOOM_HASHES = 6


class BloomFilter:
    """A classic k-hash bloom filter over byte keys."""

    def __init__(self, nkeys: int, bits: Optional[bytearray] = None):
        self.nbits = max(nkeys * BLOOM_BITS_PER_KEY, 64)
        self.bits = bits if bits is not None \
            else bytearray((self.nbits + 7) // 8)
        if bits is not None:
            self.nbits = len(bits) * 8

    def _positions(self, key: bytes) -> Iterable[int]:
        digest = hashlib.sha256(key).digest()
        for i in range(BLOOM_HASHES):
            chunk = digest[i * 4:(i + 1) * 4]
            yield int.from_bytes(chunk, "little") % self.nbits

    def add(self, key: bytes) -> None:
        """Set the filter bits for one key."""
        for pos in self._positions(key):
            self.bits[pos // 8] |= 1 << (pos % 8)

    def maybe_contains(self, key: bytes) -> bool:
        """Possibly-present test (no false negatives)."""
        return all(self.bits[pos // 8] & (1 << (pos % 8))
                   for pos in self._positions(key))


class SSTable:
    """One immutable sorted table backed by a kernel file."""

    def __init__(self, kernel, proc, path: str, smallest: bytes,
                 largest: bytes, index: List[Tuple[bytes, int, int]],
                 bloom: BloomFilter, nkeys: int):
        self.kernel = kernel
        self.proc = proc
        self.path = path
        self.smallest = smallest
        self.largest = largest
        #: (first_key, file_offset, length) per data block.
        self.index = index
        self.bloom = bloom
        self.nkeys = nkeys

    # -- building -----------------------------------------------------------------

    @classmethod
    def build(cls, kernel, proc, path: str,
              entries: List[Tuple[bytes, Optional[bytes]]]) -> "SSTable":
        """Write a table from sorted (key, value-or-tombstone) pairs."""
        from ...kernel.fs.file import O_CREAT, O_RDWR

        if not entries:
            raise ValueError("cannot build an empty SSTable")
        fd = kernel.open(proc, path, O_CREAT | O_RDWR)
        bloom = BloomFilter(len(entries))
        index: List[Tuple[bytes, int, int]] = []
        offset = 0
        block: List[list] = []
        block_first: Optional[bytes] = None
        block_bytes = 0

        def flush_block():
            nonlocal offset, block, block_first, block_bytes
            if not block:
                return
            payload = serde.dumps(block)
            kernel.write(proc, fd, payload)
            index.append((block_first, offset, len(payload)))
            offset += len(payload)
            block = []
            block_first = None
            block_bytes = 0

        for key, value in entries:
            bloom.add(key)
            if block_first is None:
                block_first = key
            block.append([key, value])
            block_bytes += len(key) + (len(value) if value else 0) + 16
            if block_bytes >= BLOCK_SIZE:
                flush_block()
        flush_block()
        # Footer: index + bloom (kept in memory too, as table metadata
        # cached by the table reader).
        footer = serde.dumps({
            "index": [[k, off, length] for k, off, length in index],
            "bloom": bytes(bloom.bits),
            "nkeys": len(entries),
            "smallest": entries[0][0],
            "largest": entries[-1][0],
        })
        kernel.write(proc, fd, footer)
        kernel.close(proc, fd)
        return cls(kernel, proc, path, entries[0][0], entries[-1][0],
                   index, bloom, len(entries))

    @classmethod
    def open(cls, kernel, proc, path: str) -> "SSTable":
        """Re-open a table after restart: parse the footer."""
        from ...kernel.fs.file import O_RDWR

        fd = kernel.open(proc, path, O_RDWR)
        vnode = proc.fdtable.get(fd).vnode
        raw = vnode.read(0, vnode.size)
        kernel.close(proc, fd)
        # The footer is the last serde document; scan block index from
        # the end by re-decoding progressively (documents are framed).
        # Simpler: blocks were written first; decode the footer by
        # finding the final frame via its header length field.
        footer = cls._last_document(raw)
        index = [(entry[0], entry[1], entry[2])
                 for entry in footer["index"]]
        bloom = BloomFilter(1, bits=bytearray(footer["bloom"]))
        return cls(kernel, proc, path, footer["smallest"],
                   footer["largest"], index, bloom, footer["nkeys"])

    @staticmethod
    def _last_document(raw: bytes) -> dict:
        offset = 0
        last = None
        header = len(serde.MAGIC) + 1 + 16
        import struct as _struct
        while offset + header <= len(raw):
            body_len = _struct.unpack_from(">Q", raw,
                                           offset + header - 8)[0]
            end = offset + header + body_len
            last = raw[offset:end]
            offset = end
        if last is None:
            raise ValueError("no footer found")
        return serde.loads(last)

    # -- reads --------------------------------------------------------------------------

    def maybe_contains(self, key: bytes) -> bool:
        """Possibly-present test (no false negatives)."""
        return self.bloom.maybe_contains(key)

    def get(self, key: bytes) -> Tuple[bool, Optional[bytes]]:
        """Returns (found, value); found+None means tombstone."""
        if not self.index or not self.maybe_contains(key):
            return False, None
        firsts = [entry[0] for entry in self.index]
        pos = bisect.bisect_right(firsts, key) - 1
        if pos < 0:
            return False, None
        _first, offset, length = self.index[pos]
        from ...kernel.fs.file import O_RDWR
        fd = self.kernel.open(self.proc, self.path, O_RDWR)
        self.kernel.lseek(self.proc, fd, offset)
        payload = self.kernel.read(self.proc, fd, length)
        self.kernel.close(self.proc, fd)
        for entry_key, value in serde.loads(payload):
            if entry_key == key:
                return True, value
        return False, None

    def entries(self) -> List[Tuple[bytes, Optional[bytes]]]:
        """All entries, in order (compaction input)."""
        from ...kernel.fs.file import O_RDWR
        out: List[Tuple[bytes, Optional[bytes]]] = []
        fd = self.kernel.open(self.proc, self.path, O_RDWR)
        for _first, offset, length in self.index:
            self.kernel.lseek(self.proc, fd, offset)
            payload = self.kernel.read(self.proc, fd, length)
            out.extend((k, v) for k, v in serde.loads(payload))
        self.kernel.close(self.proc, fd)
        return out

    def overlaps(self, other: "SSTable") -> bool:
        """True when key ranges intersect."""
        return not (self.largest < other.smallest
                    or other.largest < self.smallest)
