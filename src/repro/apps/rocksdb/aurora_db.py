"""The Aurora RocksDB port (§9.6): 81k lines of persistence code
replaced by ~109.

What the paper's modified RocksDB does — and this class reproduces:

* the log-structured merge tree and its SSTables are **gone**: the
  memtable holds the whole database and Aurora persists it;
* the write-ahead log becomes an ``sls_journal`` region: every write
  (group) is one synchronous, non-COW journal append (~28 µs for
  4 KiB) before the acknowledgement;
* when the journal fills, the application triggers an Aurora
  checkpoint and truncates the journal — after which the journal's
  contents are redundant with the checkpoint.

Recovery = restore the checkpoint via Aurora, then replay the journal
tail into the memtable.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ...core import costs
from ...core.api import AuroraAPI
from ...units import MiB, PAGE_SIZE
from .memtable import MemTable
from .wal import decode_records, encode_record


class AuroraRocksDB:
    """RocksDB with its persistence layer replaced by the Aurora API."""

    def __init__(self, kernel, proc, api: AuroraAPI,
                 journal_bytes: int = 16 * MiB,
                 memtable_bytes: int = 256 * MiB,
                 group_commit_size: int = 32):
        self.kernel = kernel
        self.proc = proc
        self.api = api
        self.memtable = MemTable(seed=1)
        self.journal = api.sls_journal_open(journal_bytes)
        self.journal_capacity = journal_bytes
        self.group_commit_size = group_commit_size
        self._group: List[bytes] = []
        self._group_bytes = 0
        self.arena = proc.vmspace.mmap(memtable_bytes,
                                       name="memtable-arena")
        self.arena_pages = memtable_bytes // PAGE_SIZE
        self._arena_cursor = 0
        self._node_rng = random.Random(7)
        self.stats = {"puts": 0, "gets": 0, "journal_appends": 0,
                      "checkpoints": 0}

    # -- arena dirtying (same pattern as the baseline) ---------------------------------

    def _touch_arena(self, nbytes: int) -> None:
        space = self.proc.vmspace
        if self._arena_cursor + nbytes >= self.arena_pages * PAGE_SIZE:
            self._arena_cursor = 0
        start_page = self._arena_cursor // PAGE_SIZE
        self._arena_cursor += nbytes
        end_page = self._arena_cursor // PAGE_SIZE
        space.touch(self.arena + start_page * PAGE_SIZE,
                    max(end_page - start_page, 1), seed=start_page)
        if start_page > 8:
            for _ in range(2):
                node_page = self._node_rng.randrange(0, start_page)
                space.touch(self.arena + node_page * PAGE_SIZE, 1,
                            seed=node_page)

    def preload(self, nbytes: int) -> None:
        """Pre-populate the memtable arena (see RocksDB.preload)."""
        from ...units import PAGE_SIZE as _PS
        npages = min(nbytes // _PS, self.arena_pages - 1)
        self.proc.vmspace.fill(self.arena, npages, seed=0xDB)
        self._arena_cursor = npages * _PS

    # -- data path -------------------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        """Write: journal (group-committed, synchronous) + memtable."""
        self.kernel.clock.advance(costs.ROCKSDB_MEMTABLE_OP +
                                  costs.ROCKSDB_WAL_ENCODE)
        self._group.append(encode_record(key, value))
        self._group_bytes += len(key) + len(value) + 16
        if len(self._group) >= self.group_commit_size:
            self._commit_group()
        self.memtable.put(key, value)
        self._touch_arena(len(key) + len(value) + MemTable.ENTRY_OVERHEAD)
        self.stats["puts"] += 1

    def _commit_group(self) -> None:
        if not self._group:
            return
        payload = b"".join(self._group)
        self._group = []
        self._group_bytes = 0
        if self._journal_nearly_full(len(payload)):
            self._rollover()
        self.journal.append(payload)
        self.stats["journal_appends"] += 1

    def _journal_nearly_full(self, nbytes: int) -> bool:
        from ...objstore.journal import SLOT_SIZE
        slots_needed = (nbytes + 512) // SLOT_SIZE + 2
        return self.journal.head_slot + slots_needed >= self.journal.nslots

    def _rollover(self) -> None:
        """Journal full: checkpoint via Aurora, then clear the WAL.

        The write that trips this waits for the checkpoint — the
        paper's explanation of the port's 99.9th-percentile tail."""
        self.api.sls_checkpoint(sync=True)
        self.journal.truncate()
        self.stats["checkpoints"] += 1

    def flush(self) -> None:
        """Group-commit any buffered records to the journal."""
        self._commit_group()

    def get(self, key: bytes) -> Optional[bytes]:
        """Reads never touch storage: the memtable is the database."""
        self.kernel.clock.advance(costs.ROCKSDB_MEMTABLE_OP)
        self.stats["gets"] += 1
        _found, value = self.memtable.get(key)
        return value

    def delete(self, key: bytes) -> None:
        """Tombstone write (an empty-value put)."""
        self.put(key, b"")

    # -- recovery ------------------------------------------------------------------------------

    @classmethod
    def recover(cls, kernel, proc, api: AuroraAPI, journal,
                memtable: Optional[MemTable] = None) -> "AuroraRocksDB":
        """After an Aurora restore: replay the journal tail.

        The restored process memory already holds the memtable as of
        the last checkpoint; journal records newer than it are
        replayed on top."""
        db = cls.__new__(cls)
        db.kernel = kernel
        db.proc = proc
        db.api = api
        db.memtable = memtable if memtable is not None else MemTable(seed=1)
        db.journal = journal
        db.journal_capacity = journal.capacity
        db.group_commit_size = 32
        db._group = []
        db._group_bytes = 0
        db.arena = None
        db.arena_pages = 0
        db._arena_cursor = 0
        db._node_rng = random.Random(7)
        db.stats = {"puts": 0, "gets": 0, "journal_appends": 0,
                    "checkpoints": 0}
        for chunk in journal.replay():
            for key, value in decode_records(chunk):
                db.memtable.put(key, value)
        return db
