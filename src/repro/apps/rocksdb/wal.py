"""RocksDB's write-ahead log over the kernel filesystem.

CRC-framed records appended to a regular file.  ``sync=True`` issues
an ``fsync`` after the append — whose cost depends entirely on the
mounted filesystem (the crux of Figure 6: FFS pays a real flush, the
Aurora port replaces this file with ``sls_journal``).  Group commit is
modeled: concurrent writers share one fsync per batch, as RocksDB's
write group leader does.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Tuple

from ...errors import CorruptRecord

_HDR = struct.Struct("<II")  # crc32, length


def encode_record(key: bytes, value: bytes) -> bytes:
    """CRC-framed wire form of one (key, value)."""
    body = struct.pack("<I", len(key)) + key + value
    return _HDR.pack(zlib.crc32(body), len(body)) + body


def decode_records(data: bytes) -> List[Tuple[bytes, bytes]]:
    """Replay a WAL file; stops at the first torn/corrupt record."""
    out = []
    offset = 0
    while offset + _HDR.size <= len(data):
        crc, length = _HDR.unpack_from(data, offset)
        body = data[offset + _HDR.size:offset + _HDR.size + length]
        if len(body) != length or zlib.crc32(body) != crc:
            break
        (klen,) = struct.unpack_from("<I", body, 0)
        key = body[4:4 + klen]
        value = body[4 + klen:]
        out.append((key, value))
        offset += _HDR.size + length
    return out


class WALWriter:
    """Append-only log on one open file descriptor."""

    def __init__(self, kernel, proc, path: str,
                 group_commit_size: int = 32):
        from ...kernel.fs.file import O_CREAT, O_RDWR, O_APPEND

        self.kernel = kernel
        self.proc = proc
        self.path = path
        self.fd = kernel.open(proc, path, O_CREAT | O_RDWR | O_APPEND)
        self.group_commit_size = group_commit_size
        self._pending_in_group = 0
        #: Library-side buffer: buffered (non-sync) appends batch into
        #: page-sized kernel writes, as RocksDB's log writer does.
        self._buffer = bytearray()
        self.appends = 0
        self.syncs = 0

    def _drain_buffer(self) -> None:
        if self._buffer:
            self.kernel.write(self.proc, self.fd, bytes(self._buffer))
            self._buffer.clear()

    def append(self, key: bytes, value: bytes, sync: bool) -> None:
        """Append one record (buffered; fsync per sync write group)."""
        record = encode_record(key, value)
        self._buffer += record
        self.appends += 1
        if len(self._buffer) >= 4096:
            self._drain_buffer()
        if sync:
            # Group commit: one fsync per group_commit_size writers.
            self._pending_in_group += 1
            if self._pending_in_group >= self.group_commit_size:
                self._drain_buffer()
                self.kernel.fsync(self.proc, self.fd)
                self.syncs += 1
                self._pending_in_group = 0

    def flush(self) -> None:
        """Drain the library buffer and fsync any pending group."""
        self._drain_buffer()
        if self._pending_in_group:
            self.kernel.fsync(self.proc, self.fd)
            self.syncs += 1
            self._pending_in_group = 0

    def size(self) -> int:
        """Log bytes, including the not-yet-drained buffer."""
        return self.proc.fdtable.get(self.fd).vnode.size \
            + len(self._buffer)

    def replay(self) -> List[Tuple[bytes, bytes]]:
        """Replay the *durable* part of the log (a crash loses the
        library buffer — that is the No Sync configuration's deal)."""
        vnode = self.proc.fdtable.get(self.fd).vnode
        return decode_records(vnode.read(0, vnode.size))

    def reset(self) -> None:
        """Truncate after a memtable flush made the log obsolete."""
        self.proc.fdtable.get(self.fd).vnode.truncate(0)
        self.proc.fdtable.get(self.fd).offset = 0
        self._pending_in_group = 0
        self._buffer.clear()
