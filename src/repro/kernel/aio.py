"""Asynchronous IO tracking (§5.3 "Asynchronous IO").

Aurora quiesces in-flight AIOs at checkpoint time: file-system *writes*
are not recorded — the checkpoint simply isn't marked complete until
they land — while *reads* are recorded in the checkpoint so the restore
path reissues them.  Failed AIOs update the checkpoint with their
status.  The queue below models exactly those three behaviours.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from ..errors import InvalidArgument
from .kobject import KObject

AIO_READ = "read"
AIO_WRITE = "write"

PENDING = "pending"
DONE = "done"
FAILED = "failed"


class AIORequest:
    """One in-flight asynchronous IO."""

    __slots__ = ("aio_id", "op", "file", "offset", "length", "status",
                 "error", "completion_time")

    def __init__(self, aio_id: int, op: str, file, offset: int, length: int):
        if op not in (AIO_READ, AIO_WRITE):
            raise InvalidArgument(f"bad AIO op {op}")
        self.aio_id = aio_id
        self.op = op
        self.file = file
        self.offset = offset
        self.length = length
        self.status = PENDING
        self.error: Optional[str] = None
        self.completion_time: Optional[int] = None


class AIOQueue:
    """Per-kernel registry of asynchronous IOs."""

    def __init__(self, kernel):
        self.kernel = kernel
        self._ids = itertools.count(1)
        self.inflight: Dict[int, AIORequest] = {}
        self.completed: List[AIORequest] = []

    def submit(self, op: str, file, offset: int, length: int,
               duration_ns: int = 50_000) -> AIORequest:
        """Queue an asynchronous IO; completes via the event loop."""
        request = AIORequest(next(self._ids), op, file, offset, length)
        self.inflight[request.aio_id] = request
        request.completion_time = self.kernel.clock.now() + duration_ns
        self.kernel.loop.call_after(duration_ns,
                                    lambda r=request: self._complete(r))
        return request

    def _complete(self, request: AIORequest, error: Optional[str] = None) -> None:
        if request.aio_id not in self.inflight:
            return
        del self.inflight[request.aio_id]
        request.status = FAILED if error else DONE
        request.error = error
        self.completed.append(request)

    def fail(self, request: AIORequest, error: str) -> None:
        """Force-fail an in-flight AIO (used by failure-injection tests;
        the checkpoint must record the failure status, §5.3)."""
        self._complete(request, error=error)

    def quiesce(self) -> dict:
        """Checkpoint-time treatment of in-flight AIOs.

        Returns the serializable AIO state: pending *reads* (to be
        reissued on restore) and the set of pending *write* ids the
        orchestrator must wait on before marking the checkpoint
        complete.
        """
        pending_reads = []
        pending_write_ids = []
        for request in self.inflight.values():
            if request.op == AIO_READ:
                pending_reads.append({
                    "op": request.op,
                    "offset": request.offset,
                    "length": request.length,
                })
            else:
                pending_write_ids.append(request.aio_id)
        failed = [{"op": r.op, "offset": r.offset, "error": r.error}
                  for r in self.completed if r.status == FAILED]
        return {
            "reads": pending_reads,
            "write_barrier": pending_write_ids,
            "failed": failed,
        }

    def writes_drained(self, write_ids: List[int]) -> bool:
        """True when none of ``write_ids`` is still in flight."""
        return all(wid not in self.inflight for wid in write_ids)
