"""Socket buffers: the byte queues checkpointed with every socket."""

from __future__ import annotations

from typing import Optional

from ...errors import WouldBlock
from ...units import KiB

DEFAULT_SOCKBUF = 64 * KiB


class SockBuf:
    """A bounded byte queue (one direction of a socket).

    ``owner`` is the socket the buffer belongs to; mutations stamp its
    dirty epoch so an incremental checkpoint re-serializes the socket
    whenever either direction's queue changed.
    """

    def __init__(self, capacity: int = DEFAULT_SOCKBUF, owner=None):
        self.capacity = capacity
        self.data = bytearray()
        self.owner = owner

    def _dirty(self) -> None:
        if self.owner is not None:
            self.owner.mark_dirty()

    def append(self, payload: bytes) -> int:
        """Queue bytes up to the free space; EAGAIN when full."""
        space = self.capacity - len(self.data)
        if space <= 0:
            raise WouldBlock("socket buffer full")
        accepted = payload[:space]
        self.data += accepted
        self._dirty()
        return len(accepted)

    def take(self, nbytes: int) -> bytes:
        """Dequeue up to ``nbytes``."""
        out = bytes(self.data[:nbytes])
        del self.data[:nbytes]
        if out:
            self._dirty()
        return out

    def __len__(self) -> int:
        return len(self.data)

    def snapshot(self) -> bytes:
        """Checkpointable buffer contents."""
        return bytes(self.data)

    def restore(self, data: bytes) -> None:
        """Reload buffer contents from a checkpoint."""
        self.data = bytearray(data)
        self._dirty()
