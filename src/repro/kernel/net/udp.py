"""UDP sockets.

Checkpointed state per §5.3: address, port, options and the socket
buffer (as queued datagrams)."""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...errors import AddressInUse, WouldBlock
from ...units import KiB
from ..kobject import KObject


class Datagram:
    """One queued datagram: source address + payload."""
    __slots__ = ("source", "payload")

    def __init__(self, source: Tuple[str, int], payload: bytes):
        self.source = source
        self.payload = payload


class UDPSocket(KObject):
    """A UDP endpoint with a datagram receive queue."""

    obj_type = "udpsock"

    def __init__(self, kernel):
        super().__init__(kernel)
        self.laddr: Optional[str] = None
        self.lport: Optional[int] = None
        self.options = {"SO_RCVBUF": 64 * KiB, "SO_REUSEADDR": 0}
        self.rcvqueue: List[Datagram] = []
        self.rcvbytes = 0

    def bind(self, addr: str, port: int) -> None:
        """Claim a local (address, port) for receiving."""
        key = ("udp", addr, port)
        bindings = self.kernel.port_bindings
        if key in bindings and not self.options["SO_REUSEADDR"]:
            raise AddressInUse(f"udp {addr}:{port}")
        bindings[key] = self
        self.laddr = addr
        self.lport = port
        self.mark_dirty()

    def enqueue(self, source: Tuple[str, int], payload: bytes) -> bool:
        """Datagram arrival; silently dropped when the buffer is full
        (UDP semantics)."""
        if self.rcvbytes + len(payload) > self.options["SO_RCVBUF"]:
            return False
        self.rcvqueue.append(Datagram(source, payload))
        self.rcvbytes += len(payload)
        self.mark_dirty()
        return True

    def recvfrom(self) -> Tuple[bytes, Tuple[str, int]]:
        """Pop the oldest datagram: (payload, source)."""
        if not self.rcvqueue:
            raise WouldBlock("no datagrams")
        dgram = self.rcvqueue.pop(0)
        self.rcvbytes -= len(dgram.payload)
        self.mark_dirty()
        return dgram.payload, dgram.source

    def destroy(self) -> None:
        """Release the port binding."""
        if self.lport is not None:
            self.kernel.port_bindings.pop(("udp", self.laddr, self.lport),
                                          None)
