"""TCP sockets.

Aurora checkpoints listening sockets *without* their accept queue —
to a client this looks like a dropped SYN, and the client retries
(§5.3).  For established connections it saves the 5-tuple, sequence
numbers, options and both socket buffers.  The reproduction keeps
exactly that state, and the restore tests assert the accept-queue
omission behaves as the paper describes (pending connections are gone;
re-connecting succeeds).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...errors import (AddressInUse, ConnectionRefused, InvalidArgument,
                       NotConnected, WouldBlock)
from ...units import KiB
from ..kobject import KObject
from .sockbuf import SockBuf

TCP_CLOSED = "closed"
TCP_LISTEN = "listen"
TCP_ESTABLISHED = "established"

#: Initial send sequence chosen deterministically per connection.
_ISS_STEP = 64009


class TCPSocket(KObject):
    """One TCP endpoint."""

    obj_type = "tcpsock"

    def __init__(self, kernel):
        super().__init__(kernel)
        self.state = TCP_CLOSED
        self.laddr: Optional[str] = None
        self.lport: Optional[int] = None
        self.raddr: Optional[str] = None
        self.rport: Optional[int] = None
        self.snd_nxt = 0
        self.rcv_nxt = 0
        self.options = {"TCP_NODELAY": 0, "SO_SNDBUF": 64 * KiB,
                        "SO_RCVBUF": 64 * KiB, "SO_KEEPALIVE": 0}
        self.sndbuf = SockBuf(owner=self)
        self.rcvbuf = SockBuf(owner=self)
        #: LISTEN only: fully established, not-yet-accepted sockets.
        self.accept_queue: List["TCPSocket"] = []
        self.peer: Optional["TCPSocket"] = None

    # -- passive side -----------------------------------------------------------

    def bind(self, addr: str, port: int) -> None:
        """Claim a local (address, port)."""
        key = ("tcp", addr, port)
        bindings = self.kernel.port_bindings
        if key in bindings:
            raise AddressInUse(f"tcp {addr}:{port}")
        bindings[key] = self
        self.laddr = addr
        self.lport = port
        self.mark_dirty()

    def listen(self, backlog: int = 128) -> None:
        """Enter LISTEN; connections queue up to the backlog."""
        if self.lport is None:
            raise InvalidArgument("listen before bind")
        self.state = TCP_LISTEN
        self.backlog = backlog
        self.mark_dirty()

    def accept(self) -> "TCPSocket":
        """Pop one ESTABLISHED connection from the accept queue."""
        if self.state != TCP_LISTEN:
            raise InvalidArgument("socket is not listening")
        if not self.accept_queue:
            raise WouldBlock("accept queue empty")
        return self.accept_queue.pop(0)

    # -- active side --------------------------------------------------------------

    def connect(self, addr: str, port: int) -> None:
        """Three-way handshake against a listening socket."""
        listener = self.kernel.port_bindings.get(("tcp", addr, port))
        if listener is None or listener.state != TCP_LISTEN:
            raise ConnectionRefused(f"tcp {addr}:{port}")
        if len(listener.accept_queue) >= listener.backlog:
            raise ConnectionRefused("backlog full (SYN dropped)")
        server_side = TCPSocket(self.kernel)
        server_side.state = TCP_ESTABLISHED
        server_side.laddr, server_side.lport = addr, port
        server_side.raddr = self.laddr or "client"
        server_side.rport = self.lport or 0
        iss = (self.kid * _ISS_STEP) & 0xFFFFFFFF
        server_side.snd_nxt = (server_side.kid * _ISS_STEP) & 0xFFFFFFFF
        server_side.rcv_nxt = iss
        server_side.peer = self
        self.state = TCP_ESTABLISHED
        self.raddr, self.rport = addr, port
        self.snd_nxt = iss
        self.rcv_nxt = server_side.snd_nxt
        self.peer = server_side
        self.mark_dirty()
        listener.accept_queue.append(server_side)

    # -- data ------------------------------------------------------------------------

    def send(self, payload: bytes) -> int:
        """Append to the peer's receive buffer; advances snd_nxt."""
        if self.state != TCP_ESTABLISHED or self.peer is None:
            raise NotConnected("send on unconnected socket")
        accepted = self.peer.rcvbuf.append(payload)
        self.snd_nxt = (self.snd_nxt + accepted) & 0xFFFFFFFF
        self.peer.rcv_nxt = self.snd_nxt
        self.mark_dirty()
        self.peer.mark_dirty()
        return accepted

    def recv(self, nbytes: int) -> bytes:
        """Take up to ``nbytes`` from the receive buffer."""
        if self.state != TCP_ESTABLISHED:
            raise NotConnected("recv on unconnected socket")
        if not len(self.rcvbuf):
            raise WouldBlock("no data")
        return self.rcvbuf.take(nbytes)

    def five_tuple(self) -> Tuple[str, Optional[str], Optional[int],
                                  Optional[str], Optional[int]]:
        """(proto, laddr, lport, raddr, rport) — checkpointed state."""
        return ("tcp", self.laddr, self.lport, self.raddr, self.rport)

    def close(self) -> None:
        """Tear down the connection (peer sees a dead link)."""
        if self.peer is not None and self.peer.peer is self:
            self.peer.peer = None
            self.peer.mark_dirty()
        self.peer = None
        self.state = TCP_CLOSED
        self.mark_dirty()

    def destroy(self) -> None:
        """Release the port binding and the peer link."""
        if self.lport is not None:
            key = ("tcp", self.laddr, self.lport)
            if self.kernel.port_bindings.get(key) is self:
                self.kernel.port_bindings.pop(key, None)
        self.close()
