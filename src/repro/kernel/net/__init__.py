"""Network sockets: UDP and TCP over the simulated NIC."""

from .sockbuf import SockBuf
from .udp import UDPSocket
from .tcp import TCPSocket, TCP_LISTEN, TCP_ESTABLISHED, TCP_CLOSED

__all__ = [
    "SockBuf",
    "UDPSocket",
    "TCPSocket",
    "TCP_LISTEN",
    "TCP_ESTABLISHED",
    "TCP_CLOSED",
]
