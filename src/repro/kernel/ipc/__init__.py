"""IPC kernel objects: pipes, UNIX sockets, shared memory, kqueues,
pseudoterminals and device files — the POSIX object menagerie of the
paper's Table 4."""

from .pipe import Pipe
from .unixsock import UnixSocket
from .shm import SharedMemorySegment, PosixShmRegistry, SysVShmRegistry
from .kqueue import KQueue, KEvent
from .pty import Pty
from .devfs import DeviceFile, VDSO

__all__ = [
    "Pipe",
    "UnixSocket",
    "SharedMemorySegment",
    "PosixShmRegistry",
    "SysVShmRegistry",
    "KQueue",
    "KEvent",
    "Pty",
    "DeviceFile",
    "VDSO",
]
