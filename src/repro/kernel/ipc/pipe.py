"""Pipes: a bounded in-kernel byte buffer with two descriptors.

Both descriptors reference the *same* pipe object — checkpointing a
pipe once captures the buffer and both endpoints' liveness, which is
why Table 4's pipe row is one of the cheapest objects (1.7 µs).
"""

from __future__ import annotations

from ...errors import BrokenPipe, WouldBlock
from ...units import KiB
from ..kobject import KObject

PIPE_BUFFER_SIZE = 64 * KiB


class Pipe(KObject):
    """One pipe; ``read_open``/``write_open`` track endpoint liveness."""

    obj_type = "pipe"

    def __init__(self, kernel, capacity: int = PIPE_BUFFER_SIZE):
        super().__init__(kernel)
        self.capacity = capacity
        self.buffer = bytearray()
        self.read_open = True
        self.write_open = True

    def write(self, data: bytes) -> int:
        """Append up to the free space; EPIPE with no readers."""
        if not self.read_open:
            raise BrokenPipe("pipe has no readers")
        space = self.capacity - len(self.buffer)
        if space <= 0:
            raise WouldBlock("pipe buffer full")
        accepted = data[:space]
        self.buffer += accepted
        self.mark_dirty()
        return len(accepted)

    def read(self, nbytes: int) -> bytes:
        """Take up to ``nbytes``; empty bytes = EOF after writer close."""
        if not self.buffer:
            if not self.write_open:
                return b""  # EOF
            raise WouldBlock("pipe empty")
        out = bytes(self.buffer[:nbytes])
        del self.buffer[:nbytes]
        self.mark_dirty()
        return out

    def close_read(self) -> None:
        """Drop the read end (writers will see EPIPE)."""
        self.read_open = False
        self.mark_dirty()

    def close_write(self) -> None:
        """Drop the write end (readers will see EOF)."""
        self.write_open = False
        self.mark_dirty()

    def pending(self) -> int:
        """Bytes currently buffered."""
        return len(self.buffer)

    def __repr__(self) -> str:
        return (f"Pipe(kid={self.kid}, {len(self.buffer)}/{self.capacity}B, "
                f"r={'o' if self.read_open else 'c'}"
                f"w={'o' if self.write_open else 'c'})")
