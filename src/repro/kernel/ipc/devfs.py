"""Device files and the vDSO (§5.3 "Device Files").

Aurora supports a *whitelist* of devices that persistent processes may
hold open or map: hardware timers (the HPET is mapped read-only into
address spaces) and the usual pseudo-devices.  The vDSO is special: it
is kernel-version-specific code, so a restore injects the *current*
boot's vDSO rather than restoring the old one — which is what lets a
checkpoint resume on a machine running a different kernel build.
"""

from __future__ import annotations

from typing import Optional

from ...errors import PermissionDenied
from ...units import PAGE_SIZE
from ..kobject import KObject
from ..vm.vmobject import DEVICE, VMObject
from ...hw.memory import Page

#: Devices a persistent process is allowed to use (§5.3).
DEVICE_WHITELIST = frozenset({"null", "zero", "urandom", "hpet", "tty"})


class DeviceFile(KObject):
    """A character device, optionally memory-mappable (the HPET)."""

    obj_type = "device"

    def __init__(self, kernel, name: str):
        super().__init__(kernel)
        if name not in DEVICE_WHITELIST:
            raise PermissionDenied(
                f"device {name!r} is not on the SLS whitelist")
        self.name = name
        self.vmobject: Optional[VMObject] = None
        if name == "hpet":
            # The HPET registers: one read-only mappable page whose
            # content is machine-local (it is *not* checkpointed; a
            # restore maps the current machine's HPET).
            self.vmobject = VMObject(kernel, 1, kind=DEVICE,
                                     name="dev:hpet")
            self.vmobject.insert_page(0, Page(seed=kernel.boot_id))

    def read(self, nbytes: int) -> bytes:
        """Device read (zeros, random bytes, or nothing)."""
        if self.name == "zero":
            return b"\x00" * nbytes
        if self.name == "urandom":
            return self.kernel.rng.randbytes(nbytes)
        return b""

    def write(self, data: bytes) -> int:
        # null/zero sink everything; tty sinks into the void here.
        """Device write (sunk)."""
        return len(data)

    def destroy(self) -> None:
        """Release the mappable register object, if any."""
        if self.vmobject is not None:
            self.vmobject.unref()
            self.vmobject = None


class VDSO:
    """The per-boot virtual dynamic shared object.

    One page of position-independent fast-path code whose content
    differs per kernel build.  ``inject`` maps the *current* kernel's
    vDSO into an address space; restore calls it instead of restoring
    the checkpoint-time page (§5.3: "On restore we inject the current
    platform's vDSO").
    """

    #: Fixed mapping address used by this simulated platform's ABI.
    VDSO_PAGE = 0x7fff0

    def __init__(self, kernel):
        self.kernel = kernel
        self.vmobject = VMObject(kernel, 1, kind=DEVICE,
                                 name=f"vdso:boot{kernel.boot_id}")
        self.vmobject.insert_page(0, Page(seed=0x7D50_0000 + kernel.boot_id))

    def inject(self, vmspace) -> int:
        """Map this boot's vDSO into ``vmspace`` at the ABI address."""
        from ..vm.vmmap import PROT_READ, PROT_EXEC
        from ..vm.vmmap import INHERIT_SHARE
        return vmspace.mmap(
            PAGE_SIZE, protection=PROT_READ | PROT_EXEC,
            inheritance=INHERIT_SHARE, vmobject=self.vmobject,
            name="vdso", fixed_page=self.VDSO_PAGE)

    def content_seed(self) -> int:
        """Identifies this boot's vDSO build (tests compare it)."""
        page = self.vmobject.pages[0]
        assert page.seed is not None
        return page.seed
