"""Pseudoterminals.

A pty is a master/slave device pair with line discipline state.
Restoring one must recreate the virtual device in the device
filesystem, which takes devfs locks — the reason Table 4's restore
cost (30.2 µs) dwarfs its checkpoint cost (3.1 µs).
"""

from __future__ import annotations

from typing import Dict

from ...errors import WouldBlock
from ...units import KiB
from ..kobject import KObject

PTY_BUFFER = 8 * KiB

#: Default termios-like settings.
DEFAULT_TERMIOS = {
    "echo": True,
    "icanon": True,
    "isig": True,
    "rows": 24,
    "cols": 80,
}


class Pty(KObject):
    """A pseudoterminal pair (one object; two device endpoints)."""

    obj_type = "pty"

    def __init__(self, kernel, unit: int):
        super().__init__(kernel)
        self.unit = unit
        self.name = f"pts/{unit}"
        self.termios: Dict[str, object] = dict(DEFAULT_TERMIOS)
        self._to_slave = bytearray()   # master writes -> slave reads
        self._to_master = bytearray()  # slave writes -> master reads
        self.session_sid = None        # controlling session, if any

    def master_write(self, data: bytes) -> int:
        """Input from the terminal side (echoed when icanon)."""
        space = PTY_BUFFER - len(self._to_slave)
        if space <= 0:
            raise WouldBlock("pty input buffer full")
        accepted = data[:space]
        self._to_slave += accepted
        if self.termios["echo"]:
            self._to_master += accepted
        self.mark_dirty()
        return len(accepted)

    def slave_read(self, nbytes: int) -> bytes:
        """The application reads its input."""
        out = bytes(self._to_slave[:nbytes])
        del self._to_slave[:nbytes]
        if out:
            self.mark_dirty()
        return out

    def slave_write(self, data: bytes) -> int:
        """The application writes output."""
        space = PTY_BUFFER - len(self._to_master)
        if space <= 0:
            raise WouldBlock("pty output buffer full")
        accepted = data[:space]
        self._to_master += accepted
        self.mark_dirty()
        return len(accepted)

    def master_read(self, nbytes: int) -> bytes:
        """The terminal side drains output."""
        out = bytes(self._to_master[:nbytes])
        del self._to_master[:nbytes]
        if out:
            self.mark_dirty()
        return out

    def set_winsize(self, rows: int, cols: int) -> None:
        """TIOCSWINSZ: update the window dimensions."""
        self.termios["rows"] = rows
        self.termios["cols"] = cols
        self.mark_dirty()

    def __repr__(self) -> str:
        return f"Pty({self.name})"
