"""UNIX domain sockets, including in-flight descriptor passing.

The hard part Aurora handles (§5.3): the socket buffer may contain
*control messages* carrying file descriptors or credentials.  The
checkpointer must parse the buffer and persist each in-flight
descriptor's object — the famous case CRIU only supported seven years
after release.  Messages here are kept structured (data + attached
OpenFile list), so the serializer can walk them exactly as Aurora's
buffer scan does.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...errors import (AddressInUse, ConnectionRefused, InvalidArgument,
                       NotConnected, WouldBlock)
from ...units import KiB
from ..kobject import KObject

SOCK_STREAM = "stream"
SOCK_DGRAM = "dgram"

UNIX_BUFFER_SIZE = 64 * KiB


class ControlMessage:
    """SCM_RIGHTS / SCM_CREDS payload attached to a message."""

    __slots__ = ("files", "creds")

    def __init__(self, files: Optional[list] = None,
                 creds: Optional[Tuple[int, int, int]] = None):
        self.files = list(files or [])  # OpenFile references in flight
        self.creds = creds              # (pid, uid, gid)


class Message:
    """One queued datagram: bytes plus optional control payload."""
    __slots__ = ("data", "control")

    def __init__(self, data: bytes, control: Optional[ControlMessage] = None):
        self.data = data
        self.control = control


class UnixSocket(KObject):
    """One endpoint of a UNIX domain socket."""

    obj_type = "unixsock"

    def __init__(self, kernel, sock_type: str = SOCK_STREAM):
        super().__init__(kernel)
        if sock_type not in (SOCK_STREAM, SOCK_DGRAM):
            raise InvalidArgument(f"bad socket type {sock_type}")
        self.sock_type = sock_type
        self.address: Optional[str] = None
        self.peer: Optional["UnixSocket"] = None
        self.listening = False
        self.backlog: List["UnixSocket"] = []
        self.buffer: List[Message] = []
        self.buffer_bytes = 0
        self.options = {"SO_SNDBUF": UNIX_BUFFER_SIZE,
                        "SO_RCVBUF": UNIX_BUFFER_SIZE}

    # -- naming / connection ------------------------------------------------------

    def bind(self, address: str) -> None:
        """Claim a filesystem-namespace address."""
        registry = self.kernel.unix_bindings
        if address in registry:
            raise AddressInUse(address)
        registry[address] = self
        self.address = address
        self.mark_dirty()

    def listen(self, backlog: int = 128) -> None:
        """Accept incoming connections from now on."""
        self.listening = True
        self.mark_dirty()

    def connect(self, address: str) -> None:
        """Connect to a listening socket (queues on its backlog)."""
        registry = self.kernel.unix_bindings
        server = registry.get(address)
        if server is None or not server.listening:
            raise ConnectionRefused(address)
        accepted = UnixSocket(self.kernel, self.sock_type)
        accepted.peer = self
        self.peer = accepted
        self.mark_dirty()
        server.backlog.append(accepted)

    def accept(self) -> "UnixSocket":
        """Pop one established connection off the backlog."""
        if not self.listening:
            raise InvalidArgument("socket is not listening")
        if not self.backlog:
            raise WouldBlock("no pending connections")
        return self.backlog.pop(0)

    @classmethod
    def socketpair(cls, kernel, sock_type: str = SOCK_STREAM):
        """Two mutually connected sockets (no namespace involved)."""
        left = cls(kernel, sock_type)
        right = cls(kernel, sock_type)
        left.peer = right
        right.peer = left
        return left, right

    # -- data transfer ---------------------------------------------------------------

    def sendmsg(self, data: bytes,
                control: Optional[ControlMessage] = None) -> int:
        """Queue a message (optionally with SCM control payload)."""
        if self.peer is None:
            raise NotConnected("socket has no peer")
        peer = self.peer
        if peer.buffer_bytes + len(data) > peer.options["SO_RCVBUF"]:
            raise WouldBlock("peer receive buffer full")
        if control is not None:
            for file in control.files:
                file.ref()  # the in-flight message owns a reference
        peer.buffer.append(Message(data, control))
        peer.buffer_bytes += len(data)
        peer.mark_dirty()
        return len(data)

    def send(self, data: bytes) -> int:
        """Queue plain bytes to the peer."""
        return self.sendmsg(data)

    def recvmsg(self) -> Message:
        """Pop the oldest message, control payload included."""
        if not self.buffer:
            raise WouldBlock("no messages")
        message = self.buffer.pop(0)
        self.buffer_bytes -= len(message.data)
        self.mark_dirty()
        return message

    def recv(self) -> bytes:
        """Pop the oldest message's bytes."""
        return self.recvmsg().data

    def inflight_files(self) -> list:
        """Every OpenFile sitting in this socket's receive buffer —
        the set the checkpoint serializer must chase (§5.3)."""
        files = []
        for message in self.buffer:
            if message.control is not None:
                files.extend(message.control.files)
        return files

    def destroy(self) -> None:
        """Release the address, drop in-flight fd references."""
        if self.address is not None:
            self.kernel.unix_bindings.pop(self.address, None)
        for message in self.buffer:
            if message.control is not None:
                for file in message.control.files:
                    file.unref()
        self.buffer = []
        if self.peer is not None and self.peer.peer is self:
            self.peer.peer = None
        self.peer = None
