"""POSIX and System V shared memory.

Shared memory is the case that breaks process-centric checkpointing
(§6: "fork cannot shadow shared memory regions without breaking
sharing") and motivates two Aurora mechanisms reproduced here:

* system shadowing replaces the *one* shared VM object with a shadow
  mapped by every sharer, and
* each segment keeps a **backmap** entry so that after its object is
  replaced by a shadow, future ``mmap``/``shmat`` calls attach the
  newest shadow rather than the frozen parent (§6 "for POSIX or SysV
  shared memory descriptors we introduce a backmap to update the
  reference in the descriptor").

System V segments live in a fixed-size global namespace; checkpointing
one requires scanning that table (the reason Table 4's SysV row costs
14.9 µs against POSIX's 4.5 µs).
"""

from __future__ import annotations

from typing import Dict, Optional

from ...errors import FileExists, InvalidArgument, NoSuchFile
from ...units import pages_of
from ..kobject import KObject
from ..vm.vmobject import ANONYMOUS, VMObject


class SharedMemorySegment(KObject):
    """A named chunk of shareable memory backed by one VM object."""

    obj_type = "shm"

    def __init__(self, kernel, name: str, size: int, flavor: str = "posix"):
        super().__init__(kernel)
        if flavor not in ("posix", "sysv"):
            raise InvalidArgument(f"bad shm flavor {flavor}")
        self.name = name
        self.size = size
        self.flavor = flavor
        self.vmobject = VMObject(kernel, pages_of(size), kind=ANONYMOUS,
                                 name=f"shm:{name}")
        # The backmap: object kid -> segment, maintained so system
        # shadowing can find and update this descriptor when it
        # replaces the object.
        kernel.shm_backmap[self.vmobject.kid] = self

    def replace_object(self, new_object: VMObject) -> None:
        """Point the descriptor at the newest system shadow."""
        kernel = self.kernel
        # Shadows of one logical object share its on-disk OID, so the
        # routine per-checkpoint repoint leaves the serialized record
        # unchanged; only an identity change dirties the descriptor.
        if new_object.sls_oid != self.vmobject.sls_oid:
            self.mark_dirty()
        kernel.shm_backmap.pop(self.vmobject.kid, None)
        new_object.ref()
        self.vmobject.unref()
        self.vmobject = new_object
        kernel.shm_backmap[new_object.kid] = self

    def destroy(self) -> None:
        """Release the backmap entry and the VM object."""
        self.kernel.shm_backmap.pop(self.vmobject.kid, None)
        self.vmobject.unref()


class PosixShmRegistry:
    """``shm_open`` namespace: "/name" → segment."""

    def __init__(self, kernel):
        self.kernel = kernel
        self._segments: Dict[str, SharedMemorySegment] = {}

    def open(self, name: str, size: int = 0,
             create: bool = False) -> SharedMemorySegment:
        """Find or create the named POSIX segment."""
        segment = self._segments.get(name)
        if segment is None:
            if not create:
                raise NoSuchFile(name)
            segment = SharedMemorySegment(self.kernel, name, size, "posix")
            self._segments[name] = segment
        return segment

    def unlink(self, name: str) -> None:
        """Remove the name; mappings keep the segment alive."""
        segment = self._segments.pop(name, None)
        if segment is None:
            raise NoSuchFile(name)
        segment.unref()

    def names(self):
        """Registered POSIX shm names, sorted."""
        return sorted(self._segments)

    def segments(self):
        """Every live segment in this namespace."""
        return list(self._segments.values())


class SysVShmRegistry:
    """The global System V namespace: a fixed table of slots.

    ``nslots`` mirrors ``shmmni``; Aurora's checkpoint of a SysV
    segment scans all slots (charged by the serializer), reproducing
    the Table 4 cost asymmetry.
    """

    def __init__(self, kernel, nslots: int = 128):
        self.kernel = kernel
        self.nslots = nslots
        self._by_key: Dict[int, int] = {}
        self._slots: Dict[int, Optional[SharedMemorySegment]] = {}
        self._next_id = 1

    def shmget(self, key: int, size: int, create: bool = False) -> int:
        """Find or create the segment for ``key``; returns the shmid."""
        if key in self._by_key:
            return self._by_key[key]
        if not create:
            raise NoSuchFile(f"SysV key {key:#x}")
        if len(self._by_key) >= self.nslots:
            raise InvalidArgument("SysV namespace full (shmmni)")
        shmid = self._next_id
        self._next_id += 1
        segment = SharedMemorySegment(self.kernel, f"sysv:{key:#x}", size,
                                      "sysv")
        segment.shmid = shmid
        segment.key = key
        self._by_key[key] = shmid
        self._slots[shmid] = segment
        return shmid

    def segment(self, shmid: int) -> SharedMemorySegment:
        """Segment by shmid (ENOENT when absent)."""
        segment = self._slots.get(shmid)
        if segment is None:
            raise NoSuchFile(f"shmid {shmid}")
        return segment

    def shmctl_rmid(self, shmid: int) -> None:
        """IPC_RMID: drop the key and release the registry reference."""
        segment = self._slots.pop(shmid, None)
        if segment is None:
            raise NoSuchFile(f"shmid {shmid}")
        self._by_key.pop(segment.key, None)
        segment.unref()

    def segments(self):
        """Every live segment in this namespace."""
        return [seg for seg in self._slots.values() if seg is not None]
