"""Kqueues: kernel event queues.

Table 4 benchmarks a kqueue holding 1024 registered events; the
checkpoint cost is dominated by locking and serializing each knote,
which the serializer charges per event.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...errors import InvalidArgument
from ..kobject import KObject

#: kevent filter types we model.
EVFILT_READ = "read"
EVFILT_WRITE = "write"
EVFILT_TIMER = "timer"
EVFILT_SIGNAL = "signal"
EVFILT_PROC = "proc"

_FILTERS = (EVFILT_READ, EVFILT_WRITE, EVFILT_TIMER, EVFILT_SIGNAL,
            EVFILT_PROC)


class KEvent:
    """One registered knote."""

    __slots__ = ("ident", "filter", "flags", "fflags", "data", "udata")

    def __init__(self, ident: int, filter: str, flags: int = 0,
                 fflags: int = 0, data: int = 0, udata: int = 0):
        if filter not in _FILTERS:
            raise InvalidArgument(f"bad kevent filter {filter}")
        self.ident = ident
        self.filter = filter
        self.flags = flags
        self.fflags = fflags
        self.data = data
        self.udata = udata

    def key(self) -> Tuple[int, str]:
        """(ident, filter): the knote's identity within its queue."""
        return (self.ident, self.filter)


class KQueue(KObject):
    """A kernel event queue with its registered events."""

    obj_type = "kqueue"

    def __init__(self, kernel):
        super().__init__(kernel)
        self._events: Dict[Tuple[int, str], KEvent] = {}
        #: Triggered events awaiting collection by kevent(2).
        self.pending: List[KEvent] = []

    def register(self, event: KEvent) -> None:
        """Add or update a knote."""
        self._events[event.key()] = event
        self.mark_dirty()

    def deregister(self, ident: int, filter: str) -> None:
        """Remove a knote (EINVAL when absent)."""
        if self._events.pop((ident, filter), None) is None:
            raise InvalidArgument(f"no event ({ident}, {filter})")
        self.mark_dirty()

    def trigger(self, ident: int, filter: str, data: int = 0) -> None:
        """Mark a registered event ready with ``data``."""
        event = self._events.get((ident, filter))
        if event is not None:
            event.data = data
            self.pending.append(event)
            # The knote's ``data`` field is part of the checkpointed
            # event set, so a trigger dirties the queue.
            self.mark_dirty()

    def collect(self, max_events: int = 64) -> List[KEvent]:
        """Harvest up to ``max_events`` ready events (kevent(2))."""
        out = self.pending[:max_events]
        self.pending = self.pending[max_events:]
        return out

    def events(self) -> List[KEvent]:
        """Every registered knote (the checkpointed set)."""
        return list(self._events.values())

    def __len__(self) -> int:
        return len(self._events)
