"""Filesystem base class and the in-memory filesystem.

:class:`Filesystem` owns the inode table and provides the hook points
(`on_create`, `on_data_write`, `on_fsync`, ...) that concrete
filesystems use to charge their metadata-update costs and, in the
Aurora filesystem's case, to persist state into the object store.
:class:`MemFS` is the trivial volatile implementation used as the root
filesystem of machines that are not running Aurora.
"""

from __future__ import annotations

from typing import Dict, Optional

from ...errors import NoSuchFile
from .vnode import Vnode, VDIR, VREG


class Filesystem:
    """Inode table + lifecycle hooks for one mounted filesystem."""

    fs_type = "basefs"

    def __init__(self, kernel, name: str = ""):
        self.kernel = kernel
        self.name = name or self.fs_type
        self._vnodes: Dict[int, Vnode] = {}
        self._next_inode = 2  # inode 1 is the root, allocated below
        self.root = self._make_vnode(VDIR, inode=1)
        self.root.link_count = 1

    # -- inode management ------------------------------------------------------

    def _make_vnode(self, vtype: str, inode: Optional[int] = None) -> Vnode:
        if inode is None:
            inode = self._next_inode
            self._next_inode += 1
        vnode = Vnode(self.kernel, self, inode, vtype)
        self._vnodes[inode] = vnode
        return vnode

    def alloc_vnode(self, vtype: str = VREG) -> Vnode:
        """Create a vnode and fire the on_create hook."""
        vnode = self._make_vnode(vtype)
        self.on_create(vnode)
        return vnode

    def getvnode(self, inode: int) -> Vnode:
        """Vnode by inode (ENOENT when absent)."""
        try:
            return self._vnodes[inode]
        except KeyError:
            raise NoSuchFile(f"inode {inode} not in {self.name}")

    def has_inode(self, inode: int) -> bool:
        """True when the inode is live in this filesystem."""
        return inode in self._vnodes

    def forget_vnode(self, vnode: Vnode) -> None:
        """Reclaim a vnode with no links and no open references."""
        self._vnodes.pop(vnode.inode, None)
        vnode.unref()

    def all_vnodes(self):
        """Every live vnode (checkpoint walks)."""
        return list(self._vnodes.values())

    # -- hooks (cost charging / persistence) -------------------------------------

    def on_create(self, vnode: Vnode) -> None:
        """Called when a vnode is allocated."""

    def on_data_write(self, vnode: Vnode, offset: int, nbytes: int) -> None:
        """Called after file data is modified."""

    def on_fsync(self, vnode: Vnode) -> None:
        """Called for fsync(2); implementations charge their sync cost."""

    def on_unlink(self, vnode: Vnode) -> None:
        """Called when a name for the vnode is removed."""


class MemFS(Filesystem):
    """A volatile in-memory filesystem (tmpfs-like).

    Loses everything on a machine crash — which is exactly the failure
    mode Aurora's file system exists to fix, and what the crash tests
    contrast against.
    """

    fs_type = "memfs"

    def crash_wipe(self) -> None:
        """A reboot empties a memory filesystem."""
        self._vnodes.clear()
        self._next_inode = 2
        self.root = self._make_vnode(VDIR, inode=1)
        self.root.link_count = 1
