"""VFS layer: vnodes, path lookup, open files and fd tables.

File *data* lives in each regular vnode's VM object — the same
arrangement as FreeBSD, and the property Aurora exploits to treat
memory-mapped files and anonymous memory identically in the object
store (§5.2 "Memory mapped regions and files are treated identically
in the object store").
"""

from .vnode import Vnode, VREG, VDIR
from .filesystem import Filesystem, MemFS
from .vfs import VFS
from .file import (OpenFile, FDTable, O_RDONLY, O_WRONLY, O_RDWR, O_CREAT,
                   O_APPEND, O_TRUNC)

__all__ = [
    "Vnode", "VREG", "VDIR",
    "Filesystem", "MemFS", "VFS",
    "OpenFile", "FDTable",
    "O_RDONLY", "O_WRONLY", "O_RDWR", "O_CREAT", "O_APPEND", "O_TRUNC",
]
