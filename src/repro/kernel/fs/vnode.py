"""Vnodes: in-kernel file representations.

A regular vnode owns a VM object holding its pages, so ``read``/
``write`` system calls, ``mmap`` of the file, and Aurora's checkpointer
all observe a single source of truth.  Link counts are the *filesystem*
reclamation counts; Aurora's object store keeps its own reference
counts so an unlinked-but-open ("anonymous") file survives a crash
(§5.2 "File System").
"""

from __future__ import annotations

from typing import Dict, Optional

from ...errors import InvalidArgument, IsADirectory, NotADirectory
from ...hw.memory import Page
from ...units import PAGE_SIZE, pages_of
from ..kobject import KObject
from ..vm.vmobject import VMObject, VNODE

VREG = "reg"
VDIR = "dir"


class Vnode(KObject):
    """One file or directory inside a mounted filesystem."""

    obj_type = "vnode"

    def __init__(self, kernel, fs, inode: int, vtype: str = VREG):
        super().__init__(kernel)
        self.fs = fs
        self.inode = inode
        self.vtype = vtype
        self.link_count = 0
        self.size = 0
        if vtype == VREG:
            self.vmobject: Optional[VMObject] = VMObject(
                kernel, 0, kind=VNODE, vnode=self, name=f"vnode:{inode}")
        else:
            self.vmobject = None
        #: Directory entries: name -> inode number.
        self.entries: Dict[str, int] = {}

    # -- regular file data ----------------------------------------------------

    def _require_reg(self) -> VMObject:
        if self.vtype != VREG or self.vmobject is None:
            raise IsADirectory(f"inode {self.inode} is a directory")
        return self.vmobject

    def write(self, offset: int, data: bytes) -> int:
        """Write ``data`` at ``offset``; grows the file; returns len."""
        obj = self._require_reg()
        end = offset + len(data)
        obj.grow(pages_of(end))
        pos = 0
        while pos < len(data):
            pindex = (offset + pos) // PAGE_SIZE
            page_off = (offset + pos) % PAGE_SIZE
            chunk = min(len(data) - pos, PAGE_SIZE - page_off)
            existing = obj.pages.get(pindex)
            content = bytearray(existing.realize() if existing else
                                b"\x00" * PAGE_SIZE)
            content[page_off:page_off + chunk] = data[pos:pos + chunk]
            obj.insert_page(pindex, Page(data=bytes(content)))
            pos += chunk
        self.size = max(self.size, end)
        self.mark_dirty()
        self.fs.on_data_write(self, offset, len(data))
        return len(data)

    def write_synthetic(self, offset: int, nbytes: int, seed: int) -> int:
        """Benchmark path: dirty whole pages with synthetic payloads."""
        obj = self._require_reg()
        if offset % PAGE_SIZE or nbytes % PAGE_SIZE:
            raise InvalidArgument("synthetic writes must be page aligned")
        end = offset + nbytes
        obj.grow(pages_of(end))
        first = offset // PAGE_SIZE
        for i in range(nbytes // PAGE_SIZE):
            obj.insert_page(first + i, Page(seed=seed + i))
        self.size = max(self.size, end)
        self.mark_dirty()
        self.fs.on_data_write(self, offset, nbytes)
        return nbytes

    def read(self, offset: int, nbytes: int) -> bytes:
        """Read up to ``nbytes`` at ``offset`` (short at EOF)."""
        obj = self._require_reg()
        nbytes = max(0, min(nbytes, self.size - offset))
        out = bytearray()
        pos = 0
        while pos < nbytes:
            pindex = (offset + pos) // PAGE_SIZE
            page_off = (offset + pos) % PAGE_SIZE
            chunk = min(nbytes - pos, PAGE_SIZE - page_off)
            page = obj.pages.get(pindex)
            content = page.realize() if page else b"\x00" * PAGE_SIZE
            out += content[page_off:page_off + chunk]
            pos += chunk
        return bytes(out)

    def truncate(self, length: int = 0) -> None:
        """Cut the file to ``length`` bytes, dropping tail pages."""
        obj = self._require_reg()
        keep = pages_of(length)
        for pindex in [p for p in obj.pages if p >= keep]:
            obj.remove_page(pindex)
        self.size = length
        self.mark_dirty()

    def resident_bytes(self) -> int:
        """Bytes of file data currently in memory."""
        if self.vmobject is None:
            return 0
        return self.vmobject.resident_count() * PAGE_SIZE

    # -- directory operations ---------------------------------------------------

    def _require_dir(self) -> None:
        if self.vtype != VDIR:
            raise NotADirectory(f"inode {self.inode} is not a directory")

    def dir_add(self, name: str, inode: int) -> None:
        """Insert a directory entry."""
        self._require_dir()
        self.entries[name] = inode
        self.mark_dirty()

    def dir_remove(self, name: str) -> int:
        """Remove a directory entry; returns the inode it named."""
        self._require_dir()
        inode = self.entries.pop(name)
        self.mark_dirty()
        return inode

    def dir_lookup(self, name: str) -> Optional[int]:
        """The inode a name maps to, or None."""
        self._require_dir()
        return self.entries.get(name)

    def destroy(self) -> None:
        """Release the data object when the vnode is reclaimed."""
        if self.vmobject is not None:
            self.vmobject.unref()
            self.vmobject = None

    def __repr__(self) -> str:
        return f"Vnode(inode={self.inode}, {self.vtype}, {self.size}B)"
