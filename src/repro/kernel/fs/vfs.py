"""Path resolution and namespace operations.

Implements ``namei``-style lookup with a name cache.  The cache exists
for more than realism: the paper's §5.2 notes that Aurora checkpoints
vnodes *by inode number* precisely to avoid "costly lookups in the VFS
name cache and namei calls during the checkpoint stop time" — the
CRIU baseline, by contrast, resolves paths through here and pays for
it in the Table 7 comparison.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...errors import (DirectoryNotEmpty, FileExists, InvalidArgument,
                       NoSuchFile, NotADirectory)
from .filesystem import Filesystem
from .vnode import Vnode, VDIR, VREG


def split_path(path: str) -> List[str]:
    """Absolute path -> component list (rejects relative paths)."""
    if not path.startswith("/"):
        raise InvalidArgument(f"paths must be absolute: {path!r}")
    return [part for part in path.split("/") if part]


class VFS:
    """The kernel's file namespace over a single mounted root fs."""

    def __init__(self, kernel, rootfs: Filesystem):
        self.kernel = kernel
        self.rootfs = rootfs
        self._namecache: Dict[str, int] = {}
        self.namecache_hits = 0
        self.namecache_misses = 0

    # -- lookup -----------------------------------------------------------------

    def namei(self, path: str) -> Vnode:
        """Resolve ``path`` to a vnode, consulting the name cache."""
        cached = self._namecache.get(path)
        if cached is not None and self.rootfs.has_inode(cached):
            self.namecache_hits += 1
            return self.rootfs.getvnode(cached)
        self.namecache_misses += 1
        vnode = self.rootfs.root
        for part in split_path(path):
            inode = vnode.dir_lookup(part)
            if inode is None:
                raise NoSuchFile(path)
            vnode = self.rootfs.getvnode(inode)
        self._namecache[path] = vnode.inode
        return vnode

    def _lookup_parent(self, path: str) -> Tuple[Vnode, str]:
        parts = split_path(path)
        if not parts:
            raise InvalidArgument("path refers to the root directory")
        parent_path = "/" + "/".join(parts[:-1])
        return self.namei(parent_path), parts[-1]

    def exists(self, path: str) -> bool:
        """True when the path resolves."""
        try:
            self.namei(path)
            return True
        except NoSuchFile:
            return False

    # -- namespace mutation --------------------------------------------------------

    def create(self, path: str) -> Vnode:
        """Create a regular file; fails if the name exists."""
        parent, name = self._lookup_parent(path)
        if parent.dir_lookup(name) is not None:
            raise FileExists(path)
        vnode = self.rootfs.alloc_vnode(VREG)
        vnode.link_count = 1
        parent.dir_add(name, vnode.inode)
        self._namecache[path] = vnode.inode
        return vnode

    def mkdir(self, path: str) -> Vnode:
        """Create a directory."""
        parent, name = self._lookup_parent(path)
        if parent.dir_lookup(name) is not None:
            raise FileExists(path)
        vnode = self.rootfs.alloc_vnode(VDIR)
        vnode.link_count = 1
        parent.dir_add(name, vnode.inode)
        self._namecache[path] = vnode.inode
        return vnode

    def unlink(self, path: str) -> Vnode:
        """Remove a name.  The vnode survives while open refs exist.

        On a conventional filesystem an unlinked-but-open file is
        reclaimed at reboot; the Aurora filesystem overrides
        reclamation with its hidden (store-side) reference count.
        """
        parent, name = self._lookup_parent(path)
        inode = parent.dir_lookup(name)
        if inode is None:
            raise NoSuchFile(path)
        vnode = self.rootfs.getvnode(inode)
        if vnode.vtype == VDIR and vnode.entries:
            raise DirectoryNotEmpty(path)
        parent.dir_remove(name)
        vnode.link_count -= 1
        vnode.mark_dirty()
        self._namecache.pop(path, None)
        self.rootfs.on_unlink(vnode)
        if vnode.link_count == 0 and vnode.ref_count == 1:
            # No names and no open files: reclaim now.
            self.rootfs.forget_vnode(vnode)
        return vnode

    def rename(self, old_path: str, new_path: str) -> None:
        """Move a name, replacing any existing target."""
        old_parent, old_name = self._lookup_parent(old_path)
        inode = old_parent.dir_lookup(old_name)
        if inode is None:
            raise NoSuchFile(old_path)
        new_parent, new_name = self._lookup_parent(new_path)
        existing = new_parent.dir_lookup(new_name)
        if existing is not None:
            victim = self.rootfs.getvnode(existing)
            new_parent.dir_remove(new_name)
            victim.link_count -= 1
            victim.mark_dirty()
            if victim.link_count == 0 and victim.ref_count == 1:
                self.rootfs.forget_vnode(victim)
        old_parent.dir_remove(old_name)
        new_parent.dir_add(new_name, inode)
        self._namecache.pop(old_path, None)
        self._namecache[new_path] = inode

    def listdir(self, path: str) -> List[str]:
        """Sorted names in a directory."""
        vnode = self.namei(path)
        if vnode.vtype != VDIR:
            raise NotADirectory(path)
        return sorted(vnode.entries)

    def invalidate_cache(self) -> None:
        """Drop every name-cache entry (used after FS recovery)."""
        self._namecache.clear()
