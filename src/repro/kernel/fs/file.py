"""Open files and file descriptor tables.

This module is where the paper's fd-sharing semantics live (§5.1
"File Descriptors"): an :class:`OpenFile` is FreeBSD's ``struct file``
— it owns the offset and open mode — while the underlying object (a
vnode, pipe end, socket, ...) is shared at another level entirely.

* ``open()`` twice on one path → two OpenFiles, one vnode: independent
  offsets, shared data.
* ``fork()`` / ``dup()`` / SCM_RIGHTS → one OpenFile in two tables or
  slots: *shared* offset.

Aurora checkpoints OpenFiles and vnodes as distinct first-class
objects, which is how it reproduces both relationships for free; the
CRIU baseline must rediscover them by cross-referencing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...errors import BadFileDescriptor, InvalidArgument
from ..kobject import KObject
from .vnode import Vnode

O_RDONLY = 0x0
O_WRONLY = 0x1
O_RDWR = 0x2
O_CREAT = 0x40
O_TRUNC = 0x200
O_APPEND = 0x400

#: OpenFile.ftype values; each maps to a checkpoint serializer.
DTYPE_VNODE = "vnode"
DTYPE_PIPE = "pipe"
DTYPE_SOCKET = "socket"
DTYPE_KQUEUE = "kqueue"
DTYPE_PTS = "pts"
DTYPE_SHM = "shm"
DTYPE_DEVICE = "device"


class OpenFile(KObject):
    """An open file description (``struct file``): offset + mode + object."""

    obj_type = "file"

    def __init__(self, kernel, fobj: KObject, ftype: str, flags: int = O_RDWR):
        super().__init__(kernel)
        self.fobj = fobj
        self.ftype = ftype
        self.flags = flags
        self.offset = 0
        fobj.ref()
        #: External synchrony suppressed via sls_fdctl (§3).
        self.sls_nosync = False

    @property
    def vnode(self) -> Vnode:
        """The backing vnode (raises unless vnode-backed)."""
        if self.ftype != DTYPE_VNODE or not isinstance(self.fobj, Vnode):
            raise InvalidArgument("not a vnode-backed file")
        return self.fobj

    def readable(self) -> bool:
        """True when the open mode permits reads."""
        return (self.flags & 0x3) in (O_RDONLY, O_RDWR)

    def writable(self) -> bool:
        """True when the open mode permits writes."""
        return (self.flags & 0x3) in (O_WRONLY, O_RDWR)

    def destroy(self) -> None:
        """Last reference: close the object; reclaim orphan vnodes."""
        fobj = self.fobj
        self.fobj = None
        close_hook = getattr(fobj, "on_file_close", None)
        if close_hook is not None:
            close_hook()
        fobj.unref()
        if isinstance(fobj, Vnode) and fobj.link_count == 0 \
                and not fobj.destroyed and fobj.ref_count == 1:
            # Last open reference to an unlinked file: the conventional
            # filesystem reclaims it here.
            fobj.fs.forget_vnode(fobj)

    def __repr__(self) -> str:
        return f"OpenFile(kid={self.kid}, {self.ftype}, off={self.offset})"


class FDTable(KObject):
    """A process's descriptor table: small integers → OpenFile refs."""

    obj_type = "fdtable"

    def __init__(self, kernel):
        super().__init__(kernel)
        self._fds: Dict[int, OpenFile] = {}

    def _lowest_free(self) -> int:
        fd = 0
        while fd in self._fds:
            fd += 1
        return fd

    def install(self, file: OpenFile, fd: Optional[int] = None) -> int:
        """Install an OpenFile, taking a reference; returns the fd."""
        if fd is None:
            fd = self._lowest_free()
        elif fd in self._fds:
            raise InvalidArgument(f"fd {fd} already in use")
        file.ref()
        self._fds[fd] = file
        self.mark_dirty()
        return fd

    def get(self, fd: int) -> OpenFile:
        """The OpenFile at ``fd`` (EBADF when absent)."""
        try:
            return self._fds[fd]
        except KeyError:
            raise BadFileDescriptor(f"fd {fd}")

    def dup(self, fd: int) -> int:
        """``dup(2)``: a second slot sharing the same OpenFile."""
        return self.install(self.get(fd))

    def dup2(self, fd: int, target: int) -> int:
        """dup2(2): duplicate onto a specific slot, closing any victim."""
        file = self.get(fd)
        if target in self._fds and self._fds[target] is not file:
            self.close(target)
        if target not in self._fds:
            self.install(file, fd=target)
        return target

    def close(self, fd: int) -> None:
        """Remove one fd slot, dropping its OpenFile reference."""
        file = self._fds.pop(fd, None)
        if file is None:
            raise BadFileDescriptor(f"fd {fd}")
        self.mark_dirty()
        file.unref()

    def close_all(self) -> None:
        """Close every slot (process exit)."""
        for fd in list(self._fds):
            self.close(fd)

    def fork_copy(self) -> "FDTable":
        """The fork(2) semantics: child shares every OpenFile."""
        child = FDTable(self.kernel)
        for fd, file in self._fds.items():
            file.ref()
            child._fds[fd] = file
        return child

    def fds(self) -> List[int]:
        """The occupied descriptor numbers, sorted."""
        return sorted(self._fds)

    def files(self) -> List[OpenFile]:
        """The OpenFiles in fd order (duplicates included)."""
        return [self._fds[fd] for fd in sorted(self._fds)]

    def items(self):
        """(fd, OpenFile) pairs in fd order."""
        return sorted(self._fds.items())

    def __len__(self) -> int:
        return len(self._fds)

    def __contains__(self, fd: int) -> bool:
        return fd in self._fds

    def destroy(self) -> None:
        """Last reference: close the object; reclaim orphan vnodes."""
        self.close_all()
