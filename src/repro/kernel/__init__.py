"""The simulated FreeBSD-like kernel substrate.

Everything Aurora checkpoints lives here: the Mach-style VM system
(:mod:`repro.kernel.vm`), processes/threads/sessions
(:mod:`repro.kernel.proc`), the VFS and file descriptor layer
(:mod:`repro.kernel.fs`), IPC objects (:mod:`repro.kernel.ipc`),
sockets (:mod:`repro.kernel.net`), async IO and the pageout daemon.
:class:`repro.kernel.kernel.Kernel` is the facade that boots the
subsystems and exposes the syscall-style API used by applications,
tests and the Aurora orchestrator.
"""

from .kernel import Kernel

__all__ = ["Kernel"]
