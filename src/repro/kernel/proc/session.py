"""Process groups and sessions (§5.1: "Aurora must also recreate the
process groups and sessions that were present at checkpoint time.
These groupings are used for job control, signals, and sandboxing.")
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..kobject import KObject


class ProcessGroup(KObject):
    """A job-control process group."""

    obj_type = "pgroup"

    def __init__(self, kernel, pgid: int, session: "Session"):
        super().__init__(kernel)
        self.pgid = pgid
        self.session = session
        self.members: List[object] = []
        session.groups.append(self)

    def add(self, proc) -> None:
        """Add a member process."""
        if proc not in self.members:
            self.members.append(proc)

    def remove(self, proc) -> None:
        """Remove a member; empty groups dissolve."""
        if proc in self.members:
            self.members.remove(proc)
        if not self.members:
            self.session.groups.remove(self)
            self.unref()

    def signal_all(self, signo: int) -> int:
        """Deliver a signal to every member (kill(-pgid, sig))."""
        for proc in list(self.members):
            proc.post_signal(signo)
        return len(self.members)

    def __repr__(self) -> str:
        return f"ProcessGroup(pgid={self.pgid}, n={len(self.members)})"


class Session(KObject):
    """A login session: a set of process groups plus a controlling tty."""

    obj_type = "session"

    def __init__(self, kernel, sid: int):
        super().__init__(kernel)
        self.sid = sid
        self.groups: List[ProcessGroup] = []
        #: Controlling terminal (a pty slave vnode-ish object) or None.
        self.controlling_tty = None

    def __repr__(self) -> str:
        return f"Session(sid={self.sid}, groups={len(self.groups)})"
