"""Threads and CPU state.

Checkpointing a thread means capturing its registers off the kernel
stack, its FPU/vector state, its signal state and scheduling fields
(§5.1 "Process, Thread, and CPU State").  The thread also tracks
*where* it is relative to the user/kernel boundary, which is what the
quiesce logic (:mod:`repro.core.quiesce`) inspects: a thread in
userspace is IPI'd to the boundary, a thread in a fast syscall is
waited out, and a thread sleeping in a syscall has its program counter
rewound so it transparently reissues the call after restore.
"""

from __future__ import annotations

from typing import Dict, Optional

from ...errors import InvalidArgument
from ..kobject import KObject
from .signals import SignalState

#: Thread positions relative to the user/kernel boundary.
IN_USER = "user"
IN_SYSCALL = "syscall"
IN_SYSCALL_SLEEPING = "syscall-sleeping"
AT_BOUNDARY = "boundary"

#: x86-64 general purpose register names we carry around.
GP_REGISTERS = (
    "rip", "rsp", "rbp", "rax", "rbx", "rcx", "rdx",
    "rsi", "rdi", "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
    "rflags",
)


class CPUState:
    """General purpose + FPU/vector register state of one thread."""

    def __init__(self):
        self.regs: Dict[str, int] = {name: 0 for name in GP_REGISTERS}
        #: Opaque FPU/SSE/AVX save area (x87 tag words, XMM/YMM...).
        self.fpu: bytes = b"\x00" * 64
        #: Lazy-FPU processors keep vector state on the CPU until an
        #: IPI flushes it into the process structure (§5.1).
        self.fpu_on_cpu = False

    def snapshot(self) -> dict:
        """Checkpointable register/FPU state."""
        return {"regs": dict(self.regs), "fpu": self.fpu}

    def restore(self, state: dict) -> None:
        """Load register/FPU state from a checkpoint."""
        regs = state["regs"]
        unknown = set(regs) - set(GP_REGISTERS)
        if unknown:
            raise InvalidArgument(f"unknown registers: {sorted(unknown)}")
        self.regs.update(regs)
        self.fpu = state["fpu"]
        self.fpu_on_cpu = False

    def rewind_to_syscall_entry(self) -> None:
        """Rewind %rip to just before the ``syscall`` instruction so a
        restarted thread reissues the interrupted call (§5.1)."""
        self.regs["rip"] -= 2  # sizeof(syscall opcode) == 2 on x86-64


class Thread(KObject):
    """One kernel-scheduled thread."""

    obj_type = "thread"

    def __init__(self, kernel, proc, tid: int):
        super().__init__(kernel)
        self.proc = proc
        #: Global (system-visible) thread id.
        self.tid = tid
        #: Local (application-visible) id; differs after a restore.
        self.local_tid = tid
        self.cpu_state = CPUState()
        self.signals = SignalState()
        self.sched_priority = 120
        self.location = IN_USER
        self.current_syscall: Optional[str] = None
        #: Set when a sleeping syscall was interrupted by a quiesce and
        #: will be transparently reissued.
        self.syscall_restarted = False

    # -- syscall boundary tracking ------------------------------------------------

    def enter_syscall(self, name: str, sleeping: bool = False) -> None:
        """Cross into the kernel (optionally into a sleep)."""
        if self.location not in (IN_USER, AT_BOUNDARY):
            raise InvalidArgument(f"{self} is already in the kernel")
        self.current_syscall = name
        self.location = IN_SYSCALL_SLEEPING if sleeping else IN_SYSCALL

    def leave_syscall(self) -> None:
        """Return to userspace."""
        self.current_syscall = None
        self.location = IN_USER

    def park_at_boundary(self) -> None:
        """Quiesce: stop the thread at the user/kernel boundary."""
        if self.location == IN_SYSCALL_SLEEPING:
            # Interrupt the sleep and rewind the PC so the call is
            # reissued invisibly (no EINTR leaks to userspace).
            self.cpu_state.rewind_to_syscall_entry()
            self.syscall_restarted = True
        self.current_syscall = None
        self.location = AT_BOUNDARY

    def resume(self) -> None:
        """Leave the boundary; reissue a rewound syscall if armed."""
        if self.location != AT_BOUNDARY:
            return
        self.location = IN_USER
        if self.syscall_restarted:
            # The thread immediately reissues the rewound syscall.
            self.syscall_restarted = False

    def __repr__(self) -> str:
        return f"Thread(tid={self.tid}, pid={self.proc.pid}, {self.location})"
