"""PID/TID allocation and Aurora's ID virtualization (§5.3).

PIDs route signals and TIDs back pthread mutexes, so a restored
application must observe its checkpoint-time IDs.  Aurora virtualizes:
each restored process/thread carries a *local* ID (what the
application sees — the checkpoint-time value) and a *global* ID (what
the rest of the system sees — freshly allocated at restore).  The
:class:`IDVirtualization` table maps between them per consistency
group, so two restored applications can both believe they are PID 100.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ...errors import InvalidArgument


class PIDAllocator:
    """Allocates kernel-global process and thread IDs."""

    def __init__(self, first: int = 100, limit: int = 99999):
        self._next = first
        self._limit = limit
        self._in_use: Set[int] = set()

    def allocate(self) -> int:
        """Next free ID (wraps, skipping live ones)."""
        candidate = self._next
        for _ in range(self._limit):
            if candidate > self._limit:
                candidate = 2  # wrap, skipping init
            if candidate not in self._in_use:
                self._in_use.add(candidate)
                self._next = candidate + 1
                return candidate
            candidate += 1
        raise InvalidArgument("PID space exhausted")

    def reserve(self, pid: int) -> bool:
        """Try to claim a specific ID (restore fast path when the
        checkpoint-time ID happens to still be free).  Returns whether
        the reservation succeeded."""
        if pid in self._in_use:
            return False
        self._in_use.add(pid)
        return True

    def release(self, pid: int) -> None:
        """Return an ID to the pool."""
        self._in_use.discard(pid)

    def in_use(self, pid: int) -> bool:
        """True while the ID is allocated or reserved."""
        return pid in self._in_use


class IDVirtualization:
    """Local (checkpoint-time) ↔ global (runtime) ID mapping.

    One instance per restored consistency group.  An empty table is the
    common case for never-restored groups: local == global.
    """

    def __init__(self):
        self._local_to_global: Dict[int, int] = {}
        self._global_to_local: Dict[int, int] = {}

    def bind(self, local_id: int, global_id: int) -> None:
        """Record a local<->global pair (each side at most once)."""
        if local_id in self._local_to_global:
            raise InvalidArgument(f"local id {local_id} already bound")
        if global_id in self._global_to_local:
            raise InvalidArgument(f"global id {global_id} already bound")
        self._local_to_global[local_id] = global_id
        self._global_to_local[global_id] = local_id

    def unbind_global(self, global_id: int) -> None:
        """Forget the pair addressed by its global id."""
        local = self._global_to_local.pop(global_id, None)
        if local is not None:
            self._local_to_global.pop(local, None)

    def to_global(self, local_id: int) -> int:
        """Local -> global (identity when unbound)."""
        return self._local_to_global.get(local_id, local_id)

    def to_local(self, global_id: int) -> int:
        """Global -> local (identity when unbound)."""
        return self._global_to_local.get(global_id, global_id)

    def __len__(self) -> int:
        return len(self._local_to_global)
