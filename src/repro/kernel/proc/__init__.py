"""Processes, threads, IDs, sessions, signals and the syscall boundary."""

from .pid import PIDAllocator, IDVirtualization
from .process import Process
from .thread import Thread, CPUState
from .session import Session, ProcessGroup
from . import signals

__all__ = [
    "PIDAllocator",
    "IDVirtualization",
    "Process",
    "Thread",
    "CPUState",
    "Session",
    "ProcessGroup",
    "signals",
]
