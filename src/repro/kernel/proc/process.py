"""Processes: the unit POSIX organizes everything else around.

A process bundles an address space, an fd table, threads, signal
routing, and its position in the process tree / group / session
hierarchy.  ``fork`` duplicates it with the exact sharing semantics
Aurora must preserve across checkpoints: COW memory, *shared* OpenFile
descriptions, inherited group/session membership.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...errors import InvalidArgument, NoSuchProcess
from ..kobject import KObject
from ..fs.file import FDTable
from ..vm.vmspace import VMSpace
from .session import ProcessGroup, Session
from .signals import SIGCHLD, SIGCONT, SIGKILL, SIGSTOP
from .thread import Thread

#: Process lifecycle states.
RUNNING = "running"
STOPPED = "stopped"
ZOMBIE = "zombie"
DEAD = "dead"
#: Suspended into the store by ``sls suspend`` (not schedulable).
SUSPENDED = "suspended"


class Process(KObject):
    """One process: vmspace + fdtable + threads + tree position."""

    obj_type = "proc"

    def __init__(self, kernel, pid: int, name: str = "",
                 parent: Optional["Process"] = None,
                 vmspace: Optional[VMSpace] = None,
                 fdtable: Optional[FDTable] = None,
                 pgroup: Optional[ProcessGroup] = None):
        super().__init__(kernel)
        self.pid = pid
        #: Application-visible pid (differs from ``pid`` after restore).
        self.local_pid = pid
        self.name = name or f"proc{pid}"
        self.parent = parent
        self.children: List[Process] = []
        self.vmspace = vmspace if vmspace is not None else VMSpace(kernel)
        self.fdtable = fdtable if fdtable is not None else FDTable(kernel)
        self.threads: List[Thread] = []
        self.state = RUNNING
        self.exit_status: Optional[int] = None
        self.cwd = "/"
        #: Part of a consistency group but not persisted (§3).
        self.sls_ephemeral = False
        #: The consistency group this process is attached to, if any.
        self.sls_group = None
        if pgroup is None:
            session = Session(kernel, sid=pid)
            pgroup = ProcessGroup(kernel, pgid=pid, session=session)
        self.pgroup = pgroup
        pgroup.add(self)
        if parent is not None:
            parent.children.append(self)
        # Every process starts with one thread.
        self.add_thread()

    # -- threads -----------------------------------------------------------------

    def add_thread(self) -> Thread:
        """Create one more kernel thread in this process."""
        tid = self.kernel.tid_alloc.allocate()
        thread = Thread(self.kernel, self, tid)
        self.threads.append(thread)
        self.mark_dirty()
        return thread

    @property
    def main_thread(self) -> Thread:
        """Thread 0 (signal delivery target)."""
        if not self.threads:
            raise InvalidArgument(f"{self} has no threads")
        return self.threads[0]

    # -- signals ------------------------------------------------------------------

    def post_signal(self, signo: int) -> None:
        """Route a signal to the process (delivered to thread 0, as
        the common single-handler case)."""
        if self.state in (ZOMBIE, DEAD):
            return
        if signo == SIGKILL:
            self.exit(status=-SIGKILL)
            return
        if signo == SIGSTOP:
            self.state = STOPPED
            return
        if signo == SIGCONT and self.state == STOPPED:
            self.state = RUNNING
            self.mark_dirty()
            return
        self.main_thread.signals.post(signo)
        self.mark_dirty()

    def dispatch_signals(self) -> List[int]:
        """Run handlers for every deliverable pending signal."""
        delivered = []
        for thread in self.threads:
            delivered.extend(thread.signals.dispatch())
        return delivered

    # -- fork / exit / wait -----------------------------------------------------------

    def fork(self, name: str = "") -> "Process":
        """Duplicate this process (COW memory, shared OpenFiles)."""
        pid = self.kernel.pid_alloc.allocate()
        child = Process(
            self.kernel, pid,
            name=name or f"{self.name}-child",
            parent=self,
            vmspace=self.vmspace.fork(),
            fdtable=self.fdtable.fork_copy(),
            pgroup=self.pgroup,
        )
        # Child inherits the parent's signal mask and cwd.
        child.main_thread.signals.mask = set(self.main_thread.signals.mask)
        child.cwd = self.cwd
        self.mark_dirty()
        if self.sls_group is not None:
            # Children born into a consistency group stay in it (§3).
            self.sls_group.adopt(child)
        return child

    def exit(self, status: int = 0) -> None:
        """Terminate: free resources, reparent children, notify parent."""
        if self.state in (ZOMBIE, DEAD):
            return
        self.exit_status = status
        for thread in self.threads:
            self.kernel.tid_alloc.release(thread.tid)
            thread.unref()
        self.threads = []
        self.fdtable.close_all()
        self.vmspace.destroy()
        # Orphans are reparented to init (pid 1) if it exists.
        for child in self.children:
            child.parent = self.kernel.initproc \
                if self.kernel.initproc is not self else None
        self.children = []
        self.pgroup.remove(self)
        self.state = ZOMBIE
        self.mark_dirty()
        if self.parent is not None and self.parent.state == RUNNING:
            self.parent.post_signal(SIGCHLD)
        if self.sls_group is not None:
            self.sls_group.on_member_exit(self)

    def reap(self, child: "Process") -> int:
        """``waitpid``: collect a zombie child's status."""
        if child not in self.children and child.parent is not self:
            raise NoSuchProcess(f"{child} is not a child of {self}")
        if child.state != ZOMBIE:
            raise InvalidArgument(f"{child} has not exited")
        status = child.exit_status if child.exit_status is not None else 0
        child.state = DEAD
        if child in self.children:
            self.children.remove(child)
        self.kernel.pid_alloc.release(child.pid)
        self.kernel.forget_process(child)
        return status

    # -- introspection ---------------------------------------------------------------

    def tree(self) -> List["Process"]:
        """This process and all live descendants, preorder."""
        out = [self]
        for child in self.children:
            out.extend(child.tree())
        return out

    def __repr__(self) -> str:
        return f"Process(pid={self.pid}, {self.name!r}, {self.state})"
