"""Signal numbers, masks and pending sets.

Only the slice of POSIX signals the reproduction exercises: job
control, child notification (Aurora delivers SIGCHLD to the parent of
an ephemeral process dropped at restore, §3) and the Aurora-specific
restore signal applications use to fix up runtime state after a
restore (§3 "applications fix up runtime state inside of an Aurora
specific signal handler").
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

SIGINT = 2
SIGKILL = 9
SIGUSR1 = 10
SIGUSR2 = 12
SIGTERM = 15
SIGCHLD = 20
SIGSTOP = 17
SIGCONT = 19
#: Aurora's restore-notification signal (a real-time signal slot).
SIGSLSRESTORE = 33

UNMASKABLE = frozenset({SIGKILL, SIGSTOP})

_NAMES = {
    SIGINT: "SIGINT", SIGKILL: "SIGKILL", SIGUSR1: "SIGUSR1",
    SIGUSR2: "SIGUSR2", SIGTERM: "SIGTERM", SIGCHLD: "SIGCHLD",
    SIGSTOP: "SIGSTOP", SIGCONT: "SIGCONT", SIGSLSRESTORE: "SIGSLSRESTORE",
}


def signame(signo: int) -> str:
    """Human-readable name of a signal number."""
    return _NAMES.get(signo, f"SIG{signo}")


class SignalState:
    """Per-thread signal mask, pending set and handlers."""

    def __init__(self):
        self.mask: Set[int] = set()
        self.pending: List[int] = []
        self.handlers: Dict[int, Callable[[int], None]] = {}

    def block(self, signo: int) -> None:
        """Add the signal to the mask (SIGKILL/SIGSTOP excepted)."""
        if signo not in UNMASKABLE:
            self.mask.add(signo)

    def unblock(self, signo: int) -> None:
        """Remove the signal from the mask."""
        self.mask.discard(signo)

    def post(self, signo: int) -> None:
        """Queue a pending signal."""
        self.pending.append(signo)

    def deliverable(self) -> List[int]:
        """Pending signals not currently masked."""
        return [s for s in self.pending if s not in self.mask]

    def dispatch(self) -> List[int]:
        """Deliver every unmasked pending signal; returns what ran."""
        delivered = []
        remaining = []
        for signo in self.pending:
            if signo in self.mask:
                remaining.append(signo)
                continue
            handler = self.handlers.get(signo)
            if handler is not None:
                handler(signo)
            delivered.append(signo)
        self.pending = remaining
        return delivered

    def snapshot(self) -> dict:
        """Checkpointable representation (handlers are code: the
        application re-registers them, like any reloaded program)."""
        return {"mask": sorted(self.mask), "pending": list(self.pending)}

    def restore(self, state: dict) -> None:
        """Reload mask and pending set from a checkpoint."""
        self.mask = set(state["mask"])
        self.pending = list(state["pending"])
