"""The pageout daemon, unified with the object store (§6 "Memory
Overcommitment").

Aurora subsumes swap: a page already captured by a checkpoint is
*clean* — its exact content is addressable in the store — and can be
evicted without IO; dirty pages are flushed through the store's data
path (into the next checkpoint's space) rather than to a separate swap
partition whose metadata would be lost on crash.  On fault, the most
recent version is paged back in from the store.

Cleanliness lives on the :class:`~repro.hw.memory.Page` itself
(``clean_locator``, stamped by the flush path): pages are immutable
and replaced on write, so a stale marker is impossible, and the marker
survives system-shadow collapses moving the page between VM objects.

``madvise`` hints bias the eviction policy, and lazy restores reuse
the same page-in path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..core import costs
from ..errors import InvalidArgument
from ..units import PAGE_SIZE
from .vm.vmobject import VMObject

#: madvise hints the policy understands.
MADV_NORMAL = "normal"
MADV_DONTNEED = "dontneed"
MADV_WILLNEED = "willneed"


class PageoutDaemon:
    """Evicts pages under memory pressure via the object store."""

    #: Start evicting above this usage ratio.
    HIGH_WATERMARK = 0.90
    #: Evict down to this ratio.
    LOW_WATERMARK = 0.85

    def __init__(self, kernel):
        self.kernel = kernel
        #: (object kid, pindex) -> store locator for evicted pages.
        self.evicted: Dict[Tuple[int, int], object] = {}
        #: madvise hints: object kid -> {pindex -> hint}.
        self.hints: Dict[int, Dict[int, str]] = {}
        self.evictions_clean = 0
        self.evictions_dirty = 0
        self.pageins = 0

    # -- bookkeeping --------------------------------------------------------------

    def mark_clean(self, vmobject: VMObject, pindex: int,
                   locator: object) -> None:
        """Record that a page's current content is persisted (the
        flush path normally stamps pages itself; this is the explicit
        form for tests and recovery paths)."""
        page = vmobject.pages.get(pindex)
        if page is not None:
            page.clean_locator = locator

    def madvise(self, vmobject: VMObject, pindex: int, hint: str) -> None:
        """Record an eviction-policy hint for one page."""
        if hint not in (MADV_NORMAL, MADV_DONTNEED, MADV_WILLNEED):
            raise InvalidArgument(f"bad madvise hint {hint}")
        self.hints.setdefault(vmobject.kid, {})[pindex] = hint

    # -- eviction -------------------------------------------------------------------

    def memory_pressure(self) -> bool:
        """True above the high watermark (eviction needed)."""
        return self.kernel.physmem.usage_ratio() > self.HIGH_WATERMARK

    def _eviction_candidates(self, objects: List[VMObject]):
        """Clean pages first (free to evict), DONTNEED pages first of
        all; dirty pages only under sustained pressure."""
        clean_hinted, clean_plain, dirty = [], [], []
        for obj in objects:
            hints = self.hints.get(obj.kid, {})
            for pindex, page in list(obj.pages.items()):
                if page.clean_locator is not None:
                    # Clean pages are evictable even in a frozen shadow
                    # (the marker is only stamped once the extent is
                    # durable).
                    if hints.get(pindex) == MADV_DONTNEED:
                        clean_hinted.append((obj, pindex, page))
                    else:
                        clean_plain.append((obj, pindex, page))
                elif not obj.frozen:
                    # Dirty pages of a frozen shadow are mid-flush and
                    # about to become clean; leave them alone.
                    dirty.append((obj, pindex, page))
        return clean_hinted + clean_plain, dirty

    def run_pageout(self, objects: List[VMObject], store=None) -> int:
        """Evict pages until below the low watermark; returns count."""
        physmem = self.kernel.physmem
        if not self.memory_pressure():
            return 0
        target = int(physmem.total_frames * self.LOW_WATERMARK)
        evicted = 0
        clean, dirty = self._eviction_candidates(objects)
        for obj, pindex, page in clean:
            if physmem.used_frames <= target:
                break
            obj.remove_page(pindex)
            self.evicted[(obj.kid, pindex)] = page.clean_locator
            self.evictions_clean += 1
            evicted += 1
        if physmem.used_frames > target and store is not None:
            # Sustained pressure: flush dirty pages through the store's
            # unified data path, then evict them.
            for obj, pindex, page in dirty:
                if physmem.used_frames <= target:
                    break
                locator = store.stage_swap_page(obj, pindex, page)
                obj.remove_page(pindex)
                self.evicted[(obj.kid, pindex)] = locator
                self.evictions_dirty += 1
                evicted += 1
        return evicted

    def migrate_object(self, old_kid: int, new_kid: int) -> int:
        """A collapse moved an object's pages into another object:
        evicted-page records must follow, or their content would be
        unreachable after the old object is destroyed."""
        moved = 0
        for (kid, pindex) in [key for key in self.evicted
                              if key[0] == old_kid]:
            locator = self.evicted.pop((kid, pindex))
            self.evicted.setdefault((new_kid, pindex), locator)
            moved += 1
        return moved

    # -- page-in --------------------------------------------------------------------

    def is_evicted(self, vmobject: VMObject, pindex: int) -> bool:
        """True when the page's content lives only in the store."""
        return (vmobject.kid, pindex) in self.evicted

    def page_in(self, vmobject: VMObject, pindex: int, store) -> None:
        """Fault path: retrieve the most recent version from the store."""
        key = (vmobject.kid, pindex)
        locator = self.evicted.pop(key, None)
        if locator is None:
            raise InvalidArgument(f"page {key} was not evicted")
        page = store.fetch_swapped_page(locator)
        page.clean_locator = locator  # fresh copy is clean by definition
        self.kernel.clock.advance(costs.LAZY_FAULT_PER_PAGE)
        # Paging back into a frozen shadow is safe: the content is the
        # exact durable copy the freeze protected.
        was_frozen = vmobject.frozen
        vmobject.frozen = False
        try:
            vmobject.insert_page(pindex, page)
        finally:
            vmobject.frozen = was_frozen
        self.pageins += 1
