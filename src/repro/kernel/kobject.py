"""Reference-counted kernel objects and the kernel object registry.

Aurora's POSIX object model hinges on kernel objects having *identity*:
a file descriptor shared through ``fork`` is the same object in two fd
tables, while two ``open`` calls on one file are two objects backed by
one vnode.  :class:`KObject` provides identity (a per-kernel serial
number), reference counting and a type tag; the orchestrator's
checkpoint pass walks objects by identity so every object is serialized
exactly once per checkpoint (§5.2, "This structure allows Aurora to
scan over all persistent objects and serialize each of them to storage
exactly once").
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional

from ..errors import InvalidArgument


class KObject:
    """Base class for every kernel object.

    ``kid`` is the kernel-lifetime-unique identity used as the key of
    Aurora's kernel-address → on-disk-object map.  ``obj_type`` names
    the serializer responsible for the object.
    """

    obj_type = "kobject"

    def __init__(self, kernel: Any):
        self.kernel: Any = kernel
        self.kid: int = kernel.next_kid()
        self.ref_count = 1
        self._destroyed = False
        #: Epoch of the last mutation (incremental checkpoints, §6).
        #: A freshly created object is dirty by construction: it is
        #: stamped with the kernel's current epoch, which is always
        #: above every group's checkpoint floor.
        self.dirty_epoch: int = getattr(kernel, "dirty_epoch", 1)

    def mark_dirty(self) -> None:
        """Stamp the object with the current mutation epoch.

        Every kernel path that changes checkpoint-visible state calls
        this; the serializer then skips objects whose ``dirty_epoch``
        is at or below the group's last-checkpoint epoch floor, making
        kernel-state checkpoint cost proportional to the dirty set
        rather than to total state.
        """
        self.dirty_epoch = getattr(self.kernel, "dirty_epoch",
                                   self.dirty_epoch + 1)

    def ref(self) -> "KObject":
        """Take a reference; returns self for chaining."""
        if self._destroyed:
            raise InvalidArgument(f"ref on destroyed {self!r}")
        self.ref_count += 1
        return self

    def unref(self) -> None:
        """Drop a reference; destroys the object at zero."""
        if self._destroyed:
            return
        if self.ref_count <= 0:
            raise InvalidArgument(f"unref underflow on {self!r}")
        self.ref_count -= 1
        if self.ref_count == 0:
            self._destroyed = True
            self.destroy()

    @property
    def destroyed(self) -> bool:
        """True once the last reference was dropped."""
        return self._destroyed

    def destroy(self) -> None:
        """Subclass hook: release resources when the last ref drops."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(kid={self.kid})"


class KIDAllocator:
    """Monotonic kernel-object id source (per kernel instance)."""

    def __init__(self, start: int = 1):
        self._counter = itertools.count(start)

    def next(self) -> int:
        """The next kernel-object id."""
        return next(self._counter)
