"""VM maps and map entries (Figure 2's ``vm_map`` / ``vm_map_entry``).

A map entry is an address range with a protection, an inheritance mode
(private-COW vs shared) and a backing VM object.  The map keeps entries
sorted by start page and provides first-fit placement for ``mmap``.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional

from ...errors import InvalidArgument, SegmentationFault
from .vmobject import VMObject

PROT_READ = 0x1
PROT_WRITE = 0x2
PROT_EXEC = 0x4

#: Inheritance modes (mirroring VM_INHERIT_*).
INHERIT_COPY = "copy"      # private: COW on fork
INHERIT_SHARE = "share"    # shared memory: both sides see writes
INHERIT_NONE = "none"      # not mapped in the child


class VMMapEntry:
    """One mapped address range, backed by a single VM object."""

    def __init__(self, start_page: int, npages: int, protection: int,
                 vmobject: VMObject, offset_pages: int = 0,
                 inheritance: str = INHERIT_COPY, name: str = "") -> None:
        if npages <= 0:
            raise InvalidArgument("entry must span at least one page")
        self.start_page = start_page
        self.npages = npages
        self.protection = protection
        self.vmobject = vmobject
        self.offset_pages = offset_pages
        self.inheritance = inheritance
        self.name = name
        #: Lazy-COW flag: first write fault must shadow the object.
        self.needs_copy = False
        #: Excluded from Aurora checkpoints via sls_mctl (§3).
        self.sls_excluded = False
        vmobject.ref()

    @property
    def end_page(self) -> int:
        """First page past the entry."""
        return self.start_page + self.npages

    def contains(self, va_page: int) -> bool:
        """True when the virtual page falls inside this entry."""
        return self.start_page <= va_page < self.end_page

    def pindex_of(self, va_page: int) -> int:
        """Object page index corresponding to ``va_page``."""
        if not self.contains(va_page):
            raise SegmentationFault(f"page {va_page} outside entry {self}")
        return va_page - self.start_page + self.offset_pages

    def set_object(self, new_object: VMObject) -> None:
        """Repoint the entry to a different object (takes a new ref)."""
        new_object.ref()
        old = self.vmobject
        self.vmobject = new_object
        old.unref()

    def adopt_object_ref(self, new_object: VMObject) -> None:
        """Repoint, *adopting* a reference the caller already holds."""
        old = self.vmobject
        self.vmobject = new_object
        old.unref()

    def release(self) -> None:
        """Drop the entry's object reference (unmap)."""
        self.vmobject.unref()

    def writable(self) -> bool:
        """True when PROT_WRITE is set."""
        return bool(self.protection & PROT_WRITE)

    def __repr__(self) -> str:
        prot = "".join(c for c, f in (("r", PROT_READ), ("w", PROT_WRITE),
                                      ("x", PROT_EXEC)) if self.protection & f)
        return (f"VMMapEntry([{self.start_page:#x}+{self.npages}p] {prot} "
                f"{self.inheritance} obj={self.vmobject.kid} {self.name!r})")


class VMMap:
    """Sorted list of map entries with first-fit address allocation."""

    #: Lowest user page (leave page 0 unmapped, as real systems do).
    MIN_PAGE = 0x1000

    def __init__(self) -> None:
        self.entries: List[VMMapEntry] = []
        #: Sorted start pages, kept in lockstep with ``entries`` so the
        #: fault path's per-page lookups do not rebuild the list.
        self._starts: List[int] = []

    def insert(self, entry: VMMapEntry) -> None:
        """Add an entry, rejecting overlaps."""
        index = bisect.bisect_left(self._starts, entry.start_page)
        prev_entry = self.entries[index - 1] if index > 0 else None
        next_entry = self.entries[index] if index < len(self.entries) else None
        if prev_entry is not None and prev_entry.end_page > entry.start_page:
            raise InvalidArgument(f"overlap with {prev_entry}")
        if next_entry is not None and entry.end_page > next_entry.start_page:
            raise InvalidArgument(f"overlap with {next_entry}")
        self.entries.insert(index, entry)
        self._starts.insert(index, entry.start_page)

    def remove(self, entry: VMMapEntry) -> None:
        """Remove an entry and drop its object reference."""
        index = self.entries.index(entry)
        del self.entries[index]
        del self._starts[index]
        entry.release()

    def find_space(self, npages: int) -> int:
        """First-fit gap of at least ``npages``; returns its start page."""
        cursor = self.MIN_PAGE
        for entry in self.entries:
            if entry.start_page - cursor >= npages:
                return cursor
            cursor = max(cursor, entry.end_page)
        return cursor

    def lookup(self, va_page: int) -> Optional[VMMapEntry]:
        """The entry covering a virtual page, or None."""
        index = bisect.bisect_right(self._starts, va_page) - 1
        if index >= 0:
            entry = self.entries[index]
            if entry.contains(va_page):
                return entry
        return None

    def __iter__(self) -> Iterator[VMMapEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)
