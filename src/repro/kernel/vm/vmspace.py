"""Per-process address spaces.

A :class:`VMSpace` bundles a :class:`~repro.kernel.vm.vmmap.VMMap`
(the authoritative list of mapped regions) with a
:class:`~repro.kernel.vm.pmap.Pmap` (the ephemeral page-table cache),
exactly as Figure 2 of the paper draws it.  It provides the byte-level
``read``/``write`` interface applications use, the bulk ``touch``
interface benchmarks use to dirty large regions, and ``fork``'s
copy-on-write address space duplication.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from ...core import costs
from ...errors import InvalidArgument, SegmentationFault
from ...hw.memory import Page
from ...units import PAGE_SIZE, pages_of
from ..kobject import KObject
from . import fault as fault_mod
from .pmap import Pmap
from .vmmap import (INHERIT_COPY, INHERIT_NONE, INHERIT_SHARE, PROT_READ,
                    PROT_WRITE, VMMap, VMMapEntry)
from .vmobject import ANONYMOUS, DEVICE, VMObject


class VMSpace(KObject):
    """One process's address space."""

    obj_type = "vmspace"

    def __init__(self, kernel: Any) -> None:
        super().__init__(kernel)
        self.map = VMMap()
        self.pmap = Pmap()

    # -- mapping management -------------------------------------------------

    def mmap(self, nbytes: int, protection: int = PROT_READ | PROT_WRITE,
             inheritance: str = INHERIT_COPY,
             vmobject: Optional[VMObject] = None, offset_pages: int = 0,
             name: str = "", fixed_page: Optional[int] = None) -> int:
        """Map ``nbytes`` (rounded up to pages); returns the base address.

        Without ``vmobject`` a fresh anonymous object is created.
        Passing an object maps it (shared memory, file mappings).
        """
        npages = pages_of(nbytes)
        if npages == 0:
            raise InvalidArgument("cannot map zero bytes")
        if vmobject is None:
            vmobject = VMObject(self.kernel, npages, kind=ANONYMOUS,
                                name=name or "anon")
            owned = True
        else:
            owned = False
        start_page = fixed_page if fixed_page is not None \
            else self.map.find_space(npages)
        entry = VMMapEntry(start_page, npages, protection, vmobject,
                           offset_pages=offset_pages,
                           inheritance=inheritance, name=name)
        self.map.insert(entry)
        if owned:
            vmobject.unref()  # the entry holds the only reference now
        return start_page * PAGE_SIZE

    def munmap(self, addr: int, nbytes: int) -> None:
        """Unmap entries fully covered by ``[addr, addr + nbytes)``."""
        start_page = addr // PAGE_SIZE
        end_page = start_page + pages_of(nbytes)
        doomed = [e for e in self.map
                  if e.start_page >= start_page and e.end_page <= end_page]
        if not doomed:
            raise InvalidArgument("munmap range covers no complete entry")
        for entry in doomed:
            self.pmap.remove_range(entry.start_page, entry.npages)
            self.map.remove(entry)

    def entry_at(self, addr: int) -> VMMapEntry:
        """The map entry covering ``addr``."""
        entry = self.map.lookup(addr // PAGE_SIZE)
        if entry is None:
            raise SegmentationFault(f"address {addr:#x} not mapped")
        return entry

    # -- byte-level access -----------------------------------------------------

    def _resolve_write(self, va_page: int) -> Page:
        """Ensure ``va_page`` is writable-mapped; return its page."""
        entry = self.map.lookup(va_page)
        if entry is None:
            raise SegmentationFault(f"no mapping for page {va_page:#x}")
        if self.pmap.is_writable(va_page):
            pindex = entry.pindex_of(va_page)
            page = entry.vmobject.pages.get(pindex)
            if page is not None:
                self.pmap.mark_dirty(va_page)
                return page
        page = fault_mod.handle_fault(self, va_page, write=True)
        assert page is not None
        return page

    def write(self, addr: int, data: bytes) -> None:
        """Store ``data`` at ``addr`` (may span pages)."""
        offset = 0
        while offset < len(data):
            va_page = (addr + offset) // PAGE_SIZE
            page_off = (addr + offset) % PAGE_SIZE
            chunk = min(len(data) - offset, PAGE_SIZE - page_off)
            page = self._resolve_write(va_page)
            content = bytearray(page.realize())
            content[page_off:page_off + chunk] = data[offset:offset + chunk]
            entry = self.map.lookup(va_page)
            assert entry is not None
            entry.vmobject.insert_page(entry.pindex_of(va_page),
                                       Page(data=bytes(content)))
            offset += chunk

    def read(self, addr: int, nbytes: int) -> bytes:
        """Load ``nbytes`` from ``addr`` (may span pages)."""
        out = bytearray()
        offset = 0
        while offset < nbytes:
            va_page = (addr + offset) // PAGE_SIZE
            page_off = (addr + offset) % PAGE_SIZE
            chunk = min(nbytes - offset, PAGE_SIZE - page_off)
            if not self.pmap.is_mapped(va_page):
                page = fault_mod.handle_fault(self, va_page, write=False)
            else:
                entry = self.map.lookup(va_page)
                if entry is None:
                    raise SegmentationFault(f"page {va_page:#x} vanished")
                page = entry.vmobject.visible_page(entry.pindex_of(va_page))
                if page is None:
                    # The PTE is stale: the pageout daemon evicted the
                    # page underneath us.  Take the fault path, which
                    # pages it back in from the store.
                    page = fault_mod.handle_fault(self, va_page,
                                                  write=False)
            content = page.realize() if page is not None else b"\x00" * PAGE_SIZE
            out += content[page_off:page_off + chunk]
            offset += chunk
        return bytes(out)

    # -- bulk benchmark interface -------------------------------------------------

    def fill(self, addr: int, npages: int, seed: int) -> None:
        """Populate ``npages`` with synthetic pages, bypassing faults.

        Setup helper for large benchmark datasets: installs pages
        directly (writable and dirty, as freshly written data would
        be) without charging per-fault costs.
        """
        start_page = addr // PAGE_SIZE
        end_page = start_page + npages
        va_page = start_page
        # Walk entry by entry so each covered stretch becomes one slab
        # insert plus one bitmap range-enter, keeping million-page
        # benchmark setup out of per-page Python loops.
        while va_page < end_page:
            entry = self.map.lookup(va_page)
            if entry is None:
                raise SegmentationFault(f"fill outside mapping: {va_page:#x}")
            stretch = min(end_page, entry.end_page) - va_page
            base_pindex = entry.pindex_of(va_page)
            base_seed = seed + (va_page - start_page)
            entry.vmobject.insert_pages({
                base_pindex + i: Page(seed=base_seed + i)
                for i in range(stretch)})
            self.pmap.enter_range(va_page, stretch, writable=True, dirty=True)
            va_page += stretch

    def touch(self, addr: int, npages: int, seed: int) -> int:
        """Dirty ``npages`` starting at ``addr`` with synthetic writes.

        Takes real write faults (COW copies, chain walks) exactly as an
        application storing to those pages would.  Returns the number
        of faults taken, which benchmarks use to attribute overhead.
        """
        start_page = addr // PAGE_SIZE
        faults_before = self.pmap.fault_count
        entry: Optional[VMMapEntry] = None
        for i in range(npages):
            va_page = start_page + i
            if entry is None or not entry.contains(va_page):
                entry = self.map.lookup(va_page)
            if self.pmap.is_writable(va_page):
                assert entry is not None
                pindex = entry.pindex_of(va_page)
                if pindex in entry.vmobject.pages:
                    entry.vmobject.pages[pindex] = Page(seed=seed + i)
                else:
                    entry.vmobject.insert_page(pindex, Page(seed=seed + i))
                self.pmap.mark_dirty(va_page)
            else:
                fault_mod.handle_fault(self, va_page, write=True)
                # The fault may have repointed the entry to a fresh COW
                # shadow; the entry object itself is stable, so re-read
                # its vmobject rather than re-running the map lookup.
                assert entry is not None
                pindex = entry.pindex_of(va_page)
                entry.vmobject.pages[pindex] = Page(seed=seed + i)
        return self.pmap.fault_count - faults_before

    # -- fork -------------------------------------------------------------------

    def fork(self) -> "VMSpace":
        """Duplicate the address space with classic fork COW semantics.

        Private entries are marked lazy-COW on both sides and the
        parent's writable translations are downgraded (charged per PTE,
        which is what makes Redis's BGSAVE fork cost ≈ 60 ns/page in
        Table 7).  Shared entries alias the same object.
        """
        child = VMSpace(self.kernel)
        downgraded_total = 0
        for entry in self.map:
            if entry.inheritance == INHERIT_NONE:
                continue
            child_entry = VMMapEntry(
                entry.start_page, entry.npages, entry.protection,
                entry.vmobject, offset_pages=entry.offset_pages,
                inheritance=entry.inheritance, name=entry.name)
            child_entry.sls_excluded = entry.sls_excluded
            if entry.inheritance == INHERIT_COPY \
                    and entry.vmobject.kind != DEVICE:
                entry.needs_copy = True
                child_entry.needs_copy = True
                downgraded_total += self.pmap.write_protect_range(
                    entry.start_page, entry.npages)
            child.map.insert(child_entry)
        self.kernel.clock.advance(
            downgraded_total * costs.FORK_COW_SETUP_PER_PAGE)
        return child

    # -- introspection for the orchestrator ------------------------------------

    def writable_objects(self, include_excluded: bool = False) -> List[VMObject]:
        """Distinct writable, checkpointable objects in this space."""
        seen: Set[int] = set()
        result: List[VMObject] = []
        for entry in self.map:
            if not entry.writable():
                continue
            if entry.sls_excluded and not include_excluded:
                continue
            obj = entry.vmobject
            if obj.kind == DEVICE:
                continue
            if obj.kid not in seen:
                seen.add(obj.kid)
                result.append(obj)
        return result

    def entries_for_object(self, vmobject: VMObject) -> List[VMMapEntry]:
        """Map entries of this space referencing ``vmobject``."""
        return [e for e in self.map if e.vmobject is vmobject]

    def resident_pages(self) -> int:
        """Distinct resident pages visible in this address space."""
        seen: Set[int] = set()
        total = 0
        for entry in self.map:
            for obj in entry.vmobject.chain():
                if obj.kid in seen:
                    continue
                seen.add(obj.kid)
                total += obj.resident_count()
        return total

    def destroy(self) -> None:
        """Tear down the address space (process exit)."""
        for entry in list(self.map):
            self.map.remove(entry)
        self.pmap.clear()
