"""Software pmap: the per-address-space stand-in for hardware page tables.

FreeBSD's physical map caches VM-map state in hardware page tables; the
tables are ephemeral and rebuilt from the VM map on demand (Figure 2).
This software pmap keeps the two bits the reproduction needs per mapped
page — *writable* and *dirty* — plus counters, so that:

* write faults occur exactly when the hardware would take one (page
  not mapped, or mapped read-only), and
* system shadowing's cost of "marking pages copy-on-write in the x86
  page tables" can be charged per PTE actually downgraded, which is
  what makes Table 5's stop time linear in the dirty set.

The default implementation is *columnar*: instead of a ``Dict[int,
PTE]`` keyed by virtual page number, the three PTE bits live in three
packed bitmap columns (present / writable / dirty), each a sparse map
of :data:`CHUNK_BITS`-wide integer words.  Range operations —
``write_protect_range``, ``remove_range``, ``collect_dirty`` — become
word-wise mask arithmetic (C-speed memcpy-class work), so a
checkpoint's write-protect pass over a million-page mapping costs a
few hundred mask ops instead of a million dict probes, while a single
page fault rewrites one chunk-sized word rather than the whole
column.  :class:`LegacyPmap`
preserves the original dict-of-PTE implementation; the equivalence
property suite drives both with identical operation sequences and
asserts observational equality.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

from ...errors import SegmentationFault


def iter_bit_runs(bits: int) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, length)`` runs of consecutive set bits.

    Each run costs a constant number of big-int operations (isolate
    the lowest set bit, count the trailing ones, strip the run), so a
    sweep costs O(runs), not O(bits): a million-page bitmap with one
    dirty run is three mask ops, independent of where the run sits.
    """
    while bits:
        # Lowest set bit = start of the next run.
        start = (bits & -bits).bit_length() - 1
        tail = bits >> start
        # ``tail`` ends in the run's ones; ``tail + 1`` carries past
        # them, so its lowest set bit sits just above the run.
        length = ((tail + 1) & -(tail + 1)).bit_length() - 1
        yield start, length
        bits = (tail >> length) << (start + length)


class PTE:
    """One translation: writable + dirty bits (legacy representation)."""
    __slots__ = ("writable", "dirty")

    def __init__(self, writable: bool) -> None:
        self.writable = writable
        self.dirty = False


#: Bits per bitmap chunk.  Single-PTE updates (page faults) rewrite one
#: chunk — a few hundred bytes — instead of the whole column, while
#: range operations still move chunk-at-a-time masks; 4096 bits keeps a
#: million-page column at 256 chunks.
CHUNK_BITS = 4096


class Pmap:
    """Per-address-space page table model, bitmap columns per PTE bit.

    Each column (present / writable / dirty) is a sparse map of chunk
    index → ``chunk_bits``-wide bitmap word.  Bit ``va_page %
    chunk_bits`` of word ``va_page // chunk_bits`` holds that page's
    bit.  Invariants: ``writable ⊆ present`` and ``dirty ⊆ present``;
    a chunk with no present bits is absent from every column.
    """

    def __init__(self, chunk_bits: int = CHUNK_BITS) -> None:
        self._chunk_bits = chunk_bits
        self._full_chunk = (1 << chunk_bits) - 1
        self._present: Dict[int, int] = {}
        self._writable: Dict[int, int] = {}
        self._dirty: Dict[int, int] = {}
        self.fault_count = 0
        self.wp_downgrades = 0

    def _chunk_masks(self, start_page: int,
                     npages: int) -> Iterator[Tuple[int, int]]:
        """Yield ``(chunk_index, mask)`` covering the page range."""
        chunk_bits = self._chunk_bits
        end = start_page + npages
        chunk = start_page // chunk_bits
        while chunk * chunk_bits < end:
            low = max(start_page - chunk * chunk_bits, 0)
            high = min(end - chunk * chunk_bits, chunk_bits)
            if low == 0 and high == chunk_bits:
                yield chunk, self._full_chunk
            else:
                yield chunk, ((1 << (high - low)) - 1) << low
            chunk += 1

    def enter(self, va_page: int, writable: bool) -> None:
        """Install a translation (overwrites any existing one)."""
        chunk, offset = divmod(va_page, self._chunk_bits)
        bit = 1 << offset
        self._present[chunk] = self._present.get(chunk, 0) | bit
        word = self._writable.get(chunk, 0)
        self._writable[chunk] = (word | bit) if writable else (word & ~bit)
        # A fresh PTE starts clean, exactly like ``PTE(writable)``.
        word = self._dirty.get(chunk, 0)
        if word & bit:
            self._dirty[chunk] = word & ~bit

    def enter_range(self, start_page: int, npages: int, writable: bool,
                    dirty: bool = False) -> None:
        """Install ``npages`` contiguous translations, one mask op per
        covered chunk.

        Equivalent to ``enter()`` per page (plus ``mark_dirty`` per
        page when ``dirty``); used by bulk setup paths such as
        :meth:`~repro.kernel.vm.vmspace.VMSpace.fill`.
        """
        if npages <= 0:
            return
        for chunk, mask in self._chunk_masks(start_page, npages):
            self._present[chunk] = self._present.get(chunk, 0) | mask
            word = self._writable.get(chunk, 0)
            self._writable[chunk] = (word | mask) if writable \
                else (word & ~mask)
            word = self._dirty.get(chunk, 0)
            self._dirty[chunk] = (word | mask) if dirty else (word & ~mask)

    def _drop_bits(self, chunk: int, mask: int) -> None:
        """Clear ``mask`` bits of one chunk in every column."""
        word = self._present.get(chunk, 0) & ~mask
        if word:
            self._present[chunk] = word
            self._writable[chunk] = self._writable.get(chunk, 0) & ~mask
            self._dirty[chunk] = self._dirty.get(chunk, 0) & ~mask
        else:
            self._present.pop(chunk, None)
            self._writable.pop(chunk, None)
            self._dirty.pop(chunk, None)

    def remove(self, va_page: int) -> None:
        """Invalidate one translation."""
        chunk, offset = divmod(va_page, self._chunk_bits)
        if chunk in self._present:
            self._drop_bits(chunk, 1 << offset)

    def remove_range(self, start_page: int, npages: int) -> None:
        """Invalidate a contiguous range of translations."""
        if npages <= 0:
            return
        for chunk, mask in self._chunk_masks(start_page, npages):
            if chunk in self._present:
                self._drop_bits(chunk, mask)

    def is_mapped(self, va_page: int) -> bool:
        """True when a translation exists for the page."""
        chunk, offset = divmod(va_page, self._chunk_bits)
        return bool(self._present.get(chunk, 0) >> offset & 1)

    def is_writable(self, va_page: int) -> bool:
        """True when the page is mapped writable."""
        chunk, offset = divmod(va_page, self._chunk_bits)
        return bool(self._writable.get(chunk, 0) >> offset & 1)

    def mark_dirty(self, va_page: int) -> None:
        """Set the dirty bit (a store hit the page).

        Dirtying a page with no installed translation is a VM-layer
        contract violation (the hardware cannot set a dirty bit in a
        PTE that does not exist), surfaced as a typed fault instead of
        a bare ``KeyError``.
        """
        chunk, offset = divmod(va_page, self._chunk_bits)
        bit = 1 << offset
        if not self._present.get(chunk, 0) & bit:
            raise SegmentationFault(
                f"mark_dirty on unmapped page {va_page:#x}: no PTE "
                f"installed (enter() the translation first)")
        self._dirty[chunk] = self._dirty.get(chunk, 0) | bit

    def write_protect_range(self, start_page: int, npages: int) -> int:
        """Downgrade writable PTEs in a range to read-only.

        Returns the number of PTEs actually downgraded — the linear
        cost driver of a system-shadowing pass.  Dirty bits are cleared
        as the downgraded pages now belong to the frozen checkpoint.
        """
        if npages <= 0:
            return 0
        downgraded = 0
        for chunk, mask in self._chunk_masks(start_page, npages):
            word = self._writable.get(chunk)
            if not word:
                continue
            downgrade = word & mask
            if not downgrade:
                continue
            self._writable[chunk] = word & ~downgrade
            dirty = self._dirty.get(chunk)
            if dirty:
                self._dirty[chunk] = dirty & ~downgrade
            downgraded += downgrade.bit_count()
        self.wp_downgrades += downgraded
        return downgraded

    def resident_pages(self) -> int:
        """Number of installed translations."""
        return sum(word.bit_count() for word in self._present.values())

    def dirty_pages(self) -> List[int]:
        """Virtual pages whose dirty bit is set (ascending)."""
        pages: List[int] = []
        for chunk in sorted(self._dirty):
            base = chunk * self._chunk_bits
            for start, length in iter_bit_runs(self._dirty[chunk]):
                pages.extend(range(base + start, base + start + length))
        return pages

    def collect_dirty(self, start_page: int,
                      npages: int) -> Iterator[Tuple[int, int]]:
        """Dirty pages in a range as ``(page, run_length)`` runs.

        The batched successor to :meth:`dirty_pages`: a checkpoint pass
        over a window yields contiguous dirty *runs* so downstream
        staging can move slabs instead of single pages.  Runs crossing
        a chunk boundary are stitched back together.
        """
        if npages <= 0:
            return
        pending_start = pending_len = 0
        for chunk, mask in self._chunk_masks(start_page, npages):
            word = self._dirty.get(chunk)
            window = word & mask if word else 0
            if not window:
                if pending_len:
                    yield pending_start, pending_len
                    pending_len = 0
                continue
            base = chunk * self._chunk_bits
            for run_start, run_len in iter_bit_runs(window):
                absolute = base + run_start
                if pending_len and pending_start + pending_len == absolute:
                    pending_len += run_len
                else:
                    if pending_len:
                        yield pending_start, pending_len
                    pending_start, pending_len = absolute, run_len
        if pending_len:
            yield pending_start, pending_len

    def clear(self) -> None:
        """Drop every translation (address space teardown)."""
        self._present.clear()
        self._writable.clear()
        self._dirty.clear()


class LegacyPmap:
    """The original dict-of-:class:`PTE` pmap.

    Kept as the executable specification: the hypothesis equivalence
    suite runs random operation sequences against this and the bitmap
    :class:`Pmap` and asserts identical observable state, and the
    ``bench_simscale`` baseline mode installs it to measure the
    pre-columnar wall-clock.
    """

    def __init__(self) -> None:
        self._ptes: Dict[int, PTE] = {}
        self.fault_count = 0
        self.wp_downgrades = 0

    def enter(self, va_page: int, writable: bool) -> None:
        """Install a translation (overwrites any existing one)."""
        self._ptes[va_page] = PTE(writable)

    def enter_range(self, start_page: int, npages: int, writable: bool,
                    dirty: bool = False) -> None:
        """Per-page equivalent of the bitmap bulk install."""
        for va_page in range(start_page, start_page + npages):
            pte = PTE(writable)
            pte.dirty = dirty
            self._ptes[va_page] = pte

    def remove(self, va_page: int) -> None:
        """Invalidate one translation."""
        self._ptes.pop(va_page, None)

    def remove_range(self, start_page: int, npages: int) -> None:
        """Invalidate a contiguous range of translations."""
        for va_page in range(start_page, start_page + npages):
            self._ptes.pop(va_page, None)

    def is_mapped(self, va_page: int) -> bool:
        """True when a translation exists for the page."""
        return va_page in self._ptes

    def is_writable(self, va_page: int) -> bool:
        """True when the page is mapped writable."""
        pte = self._ptes.get(va_page)
        return pte is not None and pte.writable

    def mark_dirty(self, va_page: int) -> None:
        """Set the dirty bit (a store hit the page)."""
        pte = self._ptes.get(va_page)
        if pte is None:
            raise SegmentationFault(
                f"mark_dirty on unmapped page {va_page:#x}: no PTE "
                f"installed (enter() the translation first)")
        pte.dirty = True

    def write_protect_range(self, start_page: int, npages: int) -> int:
        """Downgrade writable PTEs in a range to read-only."""
        downgraded = 0
        if npages <= 0:
            return 0
        # Iterate whichever side is smaller: the range or the PTE set.
        if npages <= len(self._ptes):
            candidates: Iterable[int] = range(start_page, start_page + npages)
        else:
            candidates = [va for va in self._ptes
                          if start_page <= va < start_page + npages]
        for va_page in candidates:
            pte = self._ptes.get(va_page)
            if pte is not None and pte.writable:
                pte.writable = False
                pte.dirty = False
                downgraded += 1
        self.wp_downgrades += downgraded
        return downgraded

    def resident_pages(self) -> int:
        """Number of installed translations."""
        return len(self._ptes)

    def dirty_pages(self) -> List[int]:
        """Virtual pages whose dirty bit is set (ascending)."""
        return sorted(va for va, pte in self._ptes.items() if pte.dirty)

    def collect_dirty(self, start_page: int,
                      npages: int) -> Iterator[Tuple[int, int]]:
        """Per-page scan producing the same runs as the bitmap pmap."""
        run_start = -1
        run_len = 0
        for va_page in range(start_page, start_page + npages):
            pte = self._ptes.get(va_page)
            if pte is not None and pte.dirty:
                if run_len and run_start + run_len == va_page:
                    run_len += 1
                else:
                    if run_len:
                        yield run_start, run_len
                    run_start, run_len = va_page, 1
        if run_len:
            yield run_start, run_len

    def clear(self) -> None:
        """Drop every translation (address space teardown)."""
        self._ptes.clear()
