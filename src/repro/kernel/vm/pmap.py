"""Software pmap: the per-address-space stand-in for hardware page tables.

FreeBSD's physical map caches VM-map state in hardware page tables; the
tables are ephemeral and rebuilt from the VM map on demand (Figure 2).
This software pmap keeps the two bits the reproduction needs per mapped
page — *writable* and *dirty* — plus counters, so that:

* write faults occur exactly when the hardware would take one (page
  not mapped, or mapped read-only), and
* system shadowing's cost of "marking pages copy-on-write in the x86
  page tables" can be charged per PTE actually downgraded, which is
  what makes Table 5's stop time linear in the dirty set.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple


class PTE:
    """One translation: writable + dirty bits."""
    __slots__ = ("writable", "dirty")

    def __init__(self, writable: bool):
        self.writable = writable
        self.dirty = False


class Pmap:
    """Per-address-space page table model keyed by virtual page number."""

    def __init__(self):
        self._ptes: Dict[int, PTE] = {}
        self.fault_count = 0
        self.wp_downgrades = 0

    def enter(self, va_page: int, writable: bool) -> None:
        """Install a translation (overwrites any existing one)."""
        self._ptes[va_page] = PTE(writable)

    def remove(self, va_page: int) -> None:
        """Invalidate one translation."""
        self._ptes.pop(va_page, None)

    def remove_range(self, start_page: int, npages: int) -> None:
        """Invalidate a contiguous range of translations."""
        for va_page in range(start_page, start_page + npages):
            self._ptes.pop(va_page, None)

    def is_mapped(self, va_page: int) -> bool:
        """True when a translation exists for the page."""
        return va_page in self._ptes

    def is_writable(self, va_page: int) -> bool:
        """True when the page is mapped writable."""
        pte = self._ptes.get(va_page)
        return pte is not None and pte.writable

    def mark_dirty(self, va_page: int) -> None:
        """Set the dirty bit (a store hit the page)."""
        self._ptes[va_page].dirty = True

    def write_protect_range(self, start_page: int, npages: int) -> int:
        """Downgrade writable PTEs in a range to read-only.

        Returns the number of PTEs actually downgraded — the linear
        cost driver of a system-shadowing pass.  Dirty bits are cleared
        as the downgraded pages now belong to the frozen checkpoint.
        """
        downgraded = 0
        if npages <= 0:
            return 0
        # Iterate whichever side is smaller: the range or the PTE set.
        if npages <= len(self._ptes):
            candidates: Iterable[int] = range(start_page, start_page + npages)
        else:
            candidates = [va for va in self._ptes
                          if start_page <= va < start_page + npages]
        for va_page in candidates:
            pte = self._ptes.get(va_page)
            if pte is not None and pte.writable:
                pte.writable = False
                pte.dirty = False
                downgraded += 1
        self.wp_downgrades += downgraded
        return downgraded

    def resident_pages(self) -> int:
        """Number of installed translations."""
        return len(self._ptes)

    def dirty_pages(self) -> List[int]:
        """Virtual pages whose dirty bit is set."""
        return [va for va, pte in self._ptes.items() if pte.dirty]

    def clear(self) -> None:
        """Drop every translation (address space teardown)."""
        self._ptes.clear()
