"""The page fault handler.

Implements the Mach fault algorithm over shadow chains (§6 "The Mach VM
System"): look in the entry's top object first, walk the backing chain
on a miss, and on a write to a page found deeper in the chain (or to a
lazy-COW entry created by ``fork``) copy the page into the top object.

Faults are where system shadowing's runtime overhead comes from —
after every checkpoint the application's dirty pages are read-only and
the first write to each takes the COW path below — so the handler
charges calibrated costs for every hop and copy it performs.
"""

from __future__ import annotations

from typing import Any, Optional

from ...core import costs
from ...errors import SegmentationFault
from ...hw.memory import Page
from .vmmap import PROT_READ, PROT_WRITE, VMMapEntry


def handle_fault(space: Any, va_page: int, write: bool) -> Optional[Page]:
    """Resolve a fault at ``va_page``; returns the resident page.

    Returns ``None`` for a read of a never-written anonymous page (the
    shared zero page in a real kernel).  Raises
    :class:`~repro.errors.SegmentationFault` on unmapped or
    protection-violating access.
    """
    kernel = space.kernel
    entry = space.map.lookup(va_page)
    if entry is None:
        raise SegmentationFault(f"no mapping for page {va_page:#x}")
    needed = PROT_WRITE if write else PROT_READ
    if not entry.protection & needed:
        raise SegmentationFault(
            f"{'write' if write else 'read'} to page {va_page:#x} "
            f"violates protection")

    space.pmap.fault_count += 1
    pindex = entry.pindex_of(va_page)

    if write and entry.needs_copy:
        # fork()-style lazy COW: give this map its own shadow before
        # the first write lands.
        shadow = entry.vmobject.shadow(name=f"cow:{entry.name}")
        entry.set_object(shadow)
        shadow.unref()  # entry holds the reference now
        entry.needs_copy = False

    vmobject = entry.vmobject
    page, depth, owner = vmobject.lookup_page(pindex)
    if page is None and kernel.sls is not None:
        # Lazy restore / swap: the page may live only in the object
        # store (§6 "Memory Overcommitment" + lazy restores).
        for obj in vmobject.chain():
            if kernel.pageout.is_evicted(obj, pindex):
                kernel.pageout.page_in(obj, pindex, kernel.sls.store)
                page, depth, owner = vmobject.lookup_page(pindex)
                break
    if depth > 0:
        kernel.clock.advance(depth * costs.SHADOW_CHAIN_HOP)

    if not write:
        kernel.clock.advance(costs.SOFT_FAULT)
        if page is None:
            # Zero-fill read: map nothing, reads observe zeros.
            space.pmap.enter(va_page, writable=False)
            return None
        writable = (depth == 0 and owner is not None and entry.writable()
                    and not entry.needs_copy and not owner.frozen)
        space.pmap.enter(va_page, writable=writable)
        return page

    # Write fault: the page must end up privately writable in the top
    # object of this entry's chain.
    if page is None:
        kernel.clock.advance(costs.SOFT_FAULT)
        page = Page(data=b"")
        vmobject.insert_page(pindex, page)
    elif depth > 0:
        kernel.clock.advance(costs.COW_FAULT)
        page = page.copy()
        vmobject.insert_page(pindex, page)
    else:
        kernel.clock.advance(costs.SOFT_FAULT)
    space.pmap.enter(va_page, writable=True)
    space.pmap.mark_dirty(va_page)
    return page
