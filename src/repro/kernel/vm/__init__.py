"""The Mach-derived virtual memory subsystem (paper §6, Figure 2).

Address spaces (:class:`~repro.kernel.vm.vmspace.VMSpace`) hold a VM
map — a list of :class:`~repro.kernel.vm.vmmap.VMMapEntry` address
ranges — plus a software pmap (:class:`~repro.kernel.vm.pmap.Pmap`)
standing in for the hardware page tables.  Each entry is backed by a
:class:`~repro.kernel.vm.vmobject.VMObject`; objects shadow one
another to implement copy-on-write, and Aurora's *system shadowing*
(:mod:`repro.core.shadowing`) builds directly on the shadow/collapse
operations implemented here.
"""

from .vmobject import VMObject
from .vmmap import VMMapEntry, VMMap, PROT_READ, PROT_WRITE, PROT_EXEC
from .vmspace import VMSpace
from .pmap import Pmap

__all__ = [
    "VMObject",
    "VMMapEntry",
    "VMMap",
    "VMSpace",
    "Pmap",
    "PROT_READ",
    "PROT_WRITE",
    "PROT_EXEC",
]
