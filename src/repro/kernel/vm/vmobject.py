"""VM objects: mappable page collections with shadow chains.

A VM object is a collection of pages backing one or more map entries
(Figure 2).  Objects know nothing about virtual addresses or
permissions, which is what lets one object appear in several address
spaces (shared memory) and lets *shadow* objects stack on top of a
parent to hold process-private (or, for Aurora, checkpoint-private)
copies of pages.

Two collapse directions are implemented:

* :meth:`collapse_forward` — the classic Mach/FreeBSD operation that
  moves the **parent's** pages into the shadow (cost proportional to
  the parent's resident count).
* :meth:`collapse_into_parent` — Aurora's reversed operation (§6,
  "Aurora optimizes the collapse operation by reversing its
  direction"): the short-lived system shadow's few pages move into the
  parent, so cost is proportional to the *dirty set* instead of the
  full resident set.  The ablation benchmark contrasts the two.

The page-moving primitives are *slab* operations: a collapse merges
the shadow's whole page dict into the parent with one dict update and
one frame-accounting adjustment instead of three per-page calls, so
the real (wall-clock) cost of a collapse tracks the number of
contiguous runs, not the page count.
:meth:`collapse_into_parent_legacy` preserves the page-at-a-time
original for the equivalence property suite and the scale benchmark's
baseline mode.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

from ...errors import InvalidArgument
from ...hw.memory import Page
from ..kobject import KObject

#: Object kinds, mirroring FreeBSD's OBJT_* types we need.
ANONYMOUS = "anonymous"
VNODE = "vnode"
DEVICE = "device"


class VMObject(KObject):
    """A mappable collection of pages, possibly shadowing a parent."""

    obj_type = "vmobject"

    def __init__(self, kernel: Any, size_pages: int, kind: str = ANONYMOUS,
                 backing: Optional["VMObject"] = None,
                 backing_offset: int = 0, vnode: Any = None,
                 name: str = "") -> None:
        super().__init__(kernel)
        if size_pages < 0:
            raise InvalidArgument("object size cannot be negative")
        self.size_pages = size_pages
        self.kind = kind
        self.pages: Dict[int, Page] = {}
        self.backing = backing
        self.backing_offset = backing_offset
        self.vnode = vnode
        self.name = name
        #: Number of shadow objects whose ``backing`` is this object.
        self.shadow_count = 0
        #: Set by system shadowing while this object's pages are being
        #: flushed to the store; a frozen object must not gain pages.
        self.frozen = False
        #: Logical on-disk identity assigned by Aurora.  Every object
        #: in one shadow chain created by system shadowing shares the
        #: chain's logical OID; privately faulted (fork-COW) shadows
        #: get their own.  None means not yet tracked by the SLS.
        self.sls_oid: Optional[int] = None
        if backing is not None:
            backing.ref()
            backing.shadow_count += 1

    # -- page management ------------------------------------------------------

    def insert_page(self, pindex: int, page: Page) -> None:
        """Install ``page`` at ``pindex``, replacing any existing page."""
        if self.frozen:
            raise InvalidArgument(f"insert into frozen object {self!r}")
        if not 0 <= pindex < self.size_pages:
            raise InvalidArgument(
                f"pindex {pindex} outside object of {self.size_pages} pages")
        if pindex not in self.pages:
            self.kernel.physmem.allocate(1)
        self.pages[pindex] = page

    def insert_pages(self, pages: Mapping[int, Page]) -> None:
        """Bulk-install a page slab: one frame-accounting adjustment.

        Equivalent to :meth:`insert_page` per entry (replacement
        included) but the new-frame count is computed with one dict-key
        difference instead of a per-page membership probe, which is
        what keeps million-page benchmark setup linear with a tiny
        constant.
        """
        if not pages:
            return
        if self.frozen:
            raise InvalidArgument(f"insert into frozen object {self!r}")
        low = min(pages)
        high = max(pages)
        if low < 0 or high >= self.size_pages:
            raise InvalidArgument(
                f"pindex range [{low}, {high}] outside object of "
                f"{self.size_pages} pages")
        new = len(pages.keys() - self.pages.keys())
        if new:
            self.kernel.physmem.allocate(new)
        self.pages.update(pages)

    def remove_page(self, pindex: int) -> Optional[Page]:
        """Remove and return the page at ``pindex`` (frame freed)."""
        page = self.pages.pop(pindex, None)
        if page is not None:
            self.kernel.physmem.release(1)
        return page

    def resident_count(self) -> int:
        """Number of pages resident in this object."""
        return len(self.pages)

    def grow(self, size_pages: int) -> None:
        """Extend the object (vnode objects grow as their file grows)."""
        if size_pages > self.size_pages:
            self.size_pages = size_pages

    def lookup_page(self, pindex: int) -> Tuple[Optional[Page], int,
                                                Optional["VMObject"]]:
        """Walk the shadow chain for the page at ``pindex``.

        Returns ``(page, depth, owner)`` where depth counts chain hops
        (0 = found in this object).  ``(None, depth, None)`` means no
        object in the chain has the page (an anonymous zero-fill).
        """
        obj: Optional[VMObject] = self
        index = pindex
        depth = 0
        while obj is not None:
            page = obj.pages.get(index)
            if page is not None:
                return page, depth, obj
            index += obj.backing_offset
            obj = obj.backing
            depth += 1
        return None, depth, None

    def chain_length(self) -> int:
        """Number of objects in this shadow chain, including self."""
        length = 0
        obj: Optional[VMObject] = self
        while obj is not None:
            length += 1
            obj = obj.backing
        return length

    def chain(self) -> Iterator["VMObject"]:
        """Iterate this object then its backing ancestors."""
        obj: Optional[VMObject] = self
        while obj is not None:
            yield obj
            obj = obj.backing

    def visible_page(self, pindex: int) -> Optional[Page]:
        """The page a reader mapping this object at ``pindex`` sees."""
        page, _depth, _owner = self.lookup_page(pindex)
        return page

    # -- shadowing -------------------------------------------------------------

    def shadow(self, name: str = "") -> "VMObject":
        """Create a shadow of this object (new top of the chain)."""
        return VMObject(self.kernel, self.size_pages, kind=ANONYMOUS,
                        backing=self, name=name or f"shadow:{self.name}")

    def _detach_backing(self) -> None:
        if self.backing is not None:
            self.backing.shadow_count -= 1
            self.backing.unref()
            self.backing = None

    def collapse_forward(self) -> int:
        """Classic collapse: absorb the parent's pages into *this* object.

        Only legal when the parent is not shared with anyone else
        (refcount 1 beyond our backing ref means just us).  Returns the
        number of pages moved (the operation's cost driver).
        """
        parent = self.backing
        if parent is None:
            raise InvalidArgument("no backing object to collapse")
        if parent.shadow_count != 1:
            raise InvalidArgument("cannot collapse: parent has other shadows")
        moved = 0
        for pindex, page in list(parent.pages.items()):
            local = pindex - self.backing_offset
            if 0 <= local < self.size_pages and local not in self.pages:
                # Keep the shadow's version when both exist.
                self.kernel.physmem.allocate(1)
                self.pages[local] = page
                moved += 1
            parent.remove_page(pindex)
        pageout = getattr(self.kernel, "pageout", None)
        if pageout is not None:
            pageout.migrate_object(parent.kid, self.kid)
        grandparent = parent.backing
        offset = self.backing_offset + parent.backing_offset
        self._detach_backing()
        if grandparent is not None:
            grandparent.ref()
            grandparent.shadow_count += 1
            self.backing = grandparent
            self.backing_offset = offset
        return moved

    def collapse_into_parent(self) -> Tuple["VMObject", int]:
        """Aurora's reversed collapse: push *this* object's pages down.

        Moves this (short-lived, sparsely populated) shadow's pages
        into the parent, overwriting the parent's stale versions, and
        returns ``(parent, pages_moved)``.  The caller repoints any map
        entries or shadows that referenced this object to the parent
        and discards this object.

        The move is a slab merge: one newest-wins dict update plus one
        frame release for the overwritten stale pages, instead of a
        remove/insert/remove triple per page.
        """
        parent = self.backing
        if parent is None:
            raise InvalidArgument("no backing object to collapse into")
        if self.backing_offset != 0:
            raise InvalidArgument("system shadows always use offset 0")
        # Hold the parent alive across _detach_backing; this reference
        # is transferred to the caller, which repoints map entries.
        parent.ref()
        moved = len(self.pages)
        # Stale parent copies are overwritten in place: the net frame
        # delta of the whole move is exactly -|overlap| (each
        # overwritten page frees the parent's stale frame; every other
        # page just changes owner).
        overlap = len(self.pages.keys() & parent.pages.keys())
        parent.pages.update(self.pages)
        self.pages.clear()
        if overlap:
            self.kernel.physmem.release(overlap)
        pageout = getattr(self.kernel, "pageout", None)
        if pageout is not None:
            # Evicted-page records follow the pages' new home.
            pageout.migrate_object(self.kid, parent.kid)
        self._detach_backing()
        # Our ref on parent was dropped by _detach_backing; the caller
        # re-refs when it repoints entries.
        return parent, moved

    def collapse_into_parent_legacy(self) -> Tuple["VMObject", int]:
        """The original page-at-a-time reversed collapse.

        Executable specification for the equivalence property suite
        and the scale benchmark's pre-columnar baseline; behavior must
        match :meth:`collapse_into_parent` observationally.
        """
        parent = self.backing
        if parent is None:
            raise InvalidArgument("no backing object to collapse into")
        if self.backing_offset != 0:
            raise InvalidArgument("system shadows always use offset 0")
        parent.ref()
        was_frozen = parent.frozen
        parent.frozen = False
        moved = 0
        for pindex, page in list(self.pages.items()):
            stale = parent.pages.get(pindex)
            if stale is not None:
                parent.remove_page(pindex)
            parent.insert_page(pindex, page)
            self.remove_page(pindex)
            moved += 1
        parent.frozen = was_frozen
        pageout = getattr(self.kernel, "pageout", None)
        if pageout is not None:
            pageout.migrate_object(self.kid, parent.kid)
        self._detach_backing()
        return parent, moved

    # -- lifecycle ---------------------------------------------------------------

    def destroy(self) -> None:
        """Release pages and the backing reference."""
        if self.pages:
            self.kernel.physmem.release(len(self.pages))
            self.pages.clear()
        self._detach_backing()

    def __repr__(self) -> str:
        backing = f" over kid={self.backing.kid}" if self.backing else ""
        return (f"VMObject(kid={self.kid}, {self.kind}, "
                f"{self.resident_count()}/{self.size_pages} pages{backing})")
