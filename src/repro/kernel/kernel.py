"""The kernel facade: boots the subsystems, exposes the syscall API.

A :class:`Kernel` is one boot of a :class:`~repro.machine.Machine`.
It owns every volatile structure — processes, address spaces, fd
tables, socket namespaces — all of which vanish on
:meth:`~repro.machine.Machine.crash`.  Only the simulated NVMe array
(and therefore the Aurora object store) survives across boots, which
is the entire point of the single level store.

The syscall-style methods (``open``, ``pipe``, ``shm_open``...) take
the calling :class:`~repro.kernel.proc.process.Process` first, return
what the real call returns, raise :class:`~repro.errors.KernelError`
subclasses for failures, and charge the fixed syscall crossing cost.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..core import costs
from ..errors import BadFileDescriptor, InvalidArgument, MachineCrashed
from ..units import PAGE_SIZE, pages_of
from .aio import AIOQueue
from .fs.file import (FDTable, OpenFile, O_APPEND, O_CREAT, O_RDONLY, O_RDWR,
                      O_TRUNC, O_WRONLY, DTYPE_DEVICE, DTYPE_KQUEUE,
                      DTYPE_PIPE, DTYPE_PTS, DTYPE_SHM, DTYPE_SOCKET,
                      DTYPE_VNODE)
from .fs.filesystem import Filesystem, MemFS
from .fs.vfs import VFS
from .ipc.devfs import DeviceFile, VDSO
from .ipc.kqueue import KQueue
from .ipc.pipe import Pipe
from .ipc.pty import Pty
from .ipc.shm import PosixShmRegistry, SysVShmRegistry
from .ipc.unixsock import UnixSocket
from .kobject import KIDAllocator
from .net.tcp import TCPSocket
from .net.udp import UDPSocket
from .proc.pid import PIDAllocator
from .proc.process import Process
from .swap import PageoutDaemon
from .vm.vmmap import INHERIT_SHARE, PROT_READ, PROT_WRITE
from ..hw.cpu import CPUSet
from ..hw.memory import PhysicalMemory


class Kernel:
    """One booted kernel instance."""

    def __init__(self, machine, rootfs: Optional[Filesystem] = None,
                 boot_id: int = 1):
        self.machine = machine
        self.clock = machine.clock
        self.loop = machine.loop
        self.boot_id = boot_id
        self.rng = random.Random(0xA0207A + boot_id)
        self.crashed = False

        #: Global mutation epoch for incremental checkpoints (§6).
        #: Every mutating kernel path stamps the touched object via
        #: :meth:`~repro.kernel.kobject.KObject.mark_dirty`; the
        #: serializer skips objects at or below a group's checkpoint
        #: floor.  Set before any KObject exists so creation stamps
        #: are well defined.
        self.dirty_epoch = 1

        # Hardware views.
        self.physmem = PhysicalMemory(machine.ram_bytes)
        self.cpus = CPUSet(self.clock, machine.ncpus)
        self.storage = machine.storage

        # Object identity and ID allocation.
        self._kids = KIDAllocator()
        self.pid_alloc = PIDAllocator()
        self.tid_alloc = PIDAllocator(first=100000, limit=999999)

        # Global namespaces.
        self.processes: Dict[int, Process] = {}
        self.unix_bindings: Dict[str, UnixSocket] = {}
        self.port_bindings: Dict[Tuple[str, str, int], object] = {}
        self.shm_backmap: Dict[int, object] = {}
        self.posix_shm = PosixShmRegistry(self)
        self.sysv_shm = SysVShmRegistry(self, nslots=costs.SYSV_NAMESPACE_SLOTS)
        self._next_pty_unit = 0

        # Subsystems.
        self.vfs = VFS(self, rootfs if rootfs is not None else MemFS(self))
        self.aio = AIOQueue(self)
        self.pageout = PageoutDaemon(self)
        self.vdso = VDSO(self)

        # PID 1.
        self.initproc: Optional[Process] = None
        self.initproc = self.spawn("init", pid=1)

        #: Set by the SLS orchestrator when Aurora is loaded.
        self.sls = None

    # -- object identity ----------------------------------------------------------

    def next_kid(self) -> int:
        """Next kernel-object identity (unique per boot)."""
        return self._kids.next()

    def check_alive(self) -> None:
        """Raise MachineCrashed if this kernel has been crashed."""
        if self.crashed:
            raise MachineCrashed("kernel has crashed")

    def _charge_syscall(self) -> None:
        self.check_alive()
        self.clock.advance(costs.SYSCALL_OVERHEAD)

    # -- processes -------------------------------------------------------------------

    def spawn(self, name: str, parent: Optional[Process] = None,
              pid: Optional[int] = None) -> Process:
        """Create a fresh process (fork+exec shorthand for tests/apps)."""
        self.check_alive()
        if pid is None:
            pid = self.pid_alloc.allocate()
        elif not self.pid_alloc.reserve(pid):
            raise InvalidArgument(f"pid {pid} in use")
        proc = Process(self, pid, name=name, parent=parent)
        self.processes[pid] = proc
        return proc

    def fork(self, proc: Process, name: str = "") -> Process:
        """fork(2): duplicate a process (COW memory, shared files)."""
        self._charge_syscall()
        child = proc.fork(name=name)
        self.processes[child.pid] = child
        return child

    def kill(self, sender: Process, target_pid: int, signo: int) -> None:
        """Deliver a signal, resolving virtualized PIDs (§5.3).

        A restored process addresses others by the IDs it saw at
        checkpoint time (its *local* PIDs); the group's virtualization
        table maps them to the system-visible IDs.  Negative pids
        signal the whole (local) process group.
        """
        self._charge_syscall()
        group = sender.sls_group
        if target_pid < 0:
            pgid = -target_pid
            for proc in self.live_processes():
                if proc.pgroup.pgid == pgid:
                    proc.post_signal(signo)
            return
        resolved = group.idmap.to_global(target_pid) if group is not None \
            else target_pid
        self.process(resolved).post_signal(signo)

    def waitpid(self, parent: Process, target_pid: int) -> Tuple[int, int]:
        """Reap a zombie child; returns (local pid, exit status)."""
        self._charge_syscall()
        group = parent.sls_group
        resolved = group.idmap.to_global(target_pid) if group is not None \
            else target_pid
        for child in list(parent.children):
            if child.pid == resolved and child.state == "zombie":
                status = parent.reap(child)
                return child.local_pid, status
        from ..errors import NoSuchProcess
        raise NoSuchProcess(f"no zombie child with pid {target_pid}")

    def register_process(self, proc: Process) -> None:
        """Used by restore to install a recreated process."""
        self.processes[proc.pid] = proc

    def forget_process(self, proc: Process) -> None:
        """Drop a reaped process from the pid table."""
        self.processes.pop(proc.pid, None)

    def process(self, pid: int) -> Process:
        """Look up a live process by global pid."""
        try:
            return self.processes[pid]
        except KeyError:
            from ..errors import NoSuchProcess
            raise NoSuchProcess(f"pid {pid}")

    def live_processes(self) -> List[Process]:
        """Every process that is neither zombie nor reaped."""
        return [p for p in self.processes.values()
                if p.state not in ("zombie", "dead")]

    # -- files -------------------------------------------------------------------------

    def open(self, proc: Process, path: str, flags: int = O_RDWR) -> int:
        """open(2): resolve or create a file; returns an fd."""
        self._charge_syscall()
        if flags & O_CREAT and not self.vfs.exists(path):
            vnode = self.vfs.create(path)
        else:
            vnode = self.vfs.namei(path)
        if flags & O_TRUNC:
            vnode.truncate(0)
        file = OpenFile(self, vnode, DTYPE_VNODE, flags)
        fd = proc.fdtable.install(file)
        file.unref()
        return fd

    def read(self, proc: Process, fd: int, nbytes: int) -> bytes:
        """read(2): file/pipe/device/socket read at the fd's semantics."""
        self._charge_syscall()
        file = proc.fdtable.get(fd)
        if file.ftype == DTYPE_VNODE:
            data = file.vnode.read(file.offset, nbytes)
            if data:
                file.offset += len(data)
                file.mark_dirty()
            return data
        if file.ftype == DTYPE_PIPE:
            return file.fobj.read(nbytes)
        if file.ftype == DTYPE_DEVICE:
            return file.fobj.read(nbytes)
        if file.ftype == DTYPE_SOCKET:
            fobj = file.fobj
            if fobj.obj_type == "tcpsock":
                return fobj.recv(nbytes)
            if fobj.obj_type == "unixsock":
                return fobj.recv()
        raise InvalidArgument(f"read not supported on {file.ftype}")

    def write(self, proc: Process, fd: int, data: bytes) -> int:
        """write(2): files, pipes, devices and sockets (with external-synchrony interception for attached groups)."""
        self._charge_syscall()
        file = proc.fdtable.get(fd)
        if file.ftype == DTYPE_VNODE:
            if file.flags & O_APPEND:
                file.offset = file.vnode.size
            written = file.vnode.write(file.offset, data)
            file.offset += written
            file.mark_dirty()
            return written
        if file.ftype == DTYPE_PIPE:
            return file.fobj.write(data)
        if file.ftype == DTYPE_DEVICE:
            return file.fobj.write(data)
        if file.ftype == DTYPE_SOCKET:
            written = file.fobj.send(data)
            # External synchrony: output leaving a consistency group is
            # withheld until the state producing it is persistent (§3).
            group = proc.sls_group
            if (self.sls is not None and group is not None
                    and group.external_synchrony):
                self.sls.extsync.buffer_send(group, written,
                                             nosync=file.sls_nosync)
            return written
        raise InvalidArgument(f"write not supported on {file.ftype}")

    def lseek(self, proc: Process, fd: int, offset: int) -> int:
        """lseek(2): set the open file description's offset."""
        self._charge_syscall()
        file = proc.fdtable.get(fd)
        if offset < 0:
            raise InvalidArgument("negative offset")
        file.offset = offset
        file.mark_dirty()
        return offset

    def fsync(self, proc: Process, fd: int) -> None:
        """fsync(2): cost depends entirely on the mounted filesystem."""
        self._charge_syscall()
        file = proc.fdtable.get(fd)
        if file.ftype != DTYPE_VNODE:
            raise InvalidArgument("fsync on non-vnode")
        file.vnode.fs.on_fsync(file.vnode)

    def close(self, proc: Process, fd: int) -> None:
        """close(2): drop the fd; the OpenFile dies with its last ref."""
        self._charge_syscall()
        proc.fdtable.close(fd)

    def dup(self, proc: Process, fd: int) -> int:
        """dup(2): a second fd sharing the same OpenFile (and offset)."""
        self._charge_syscall()
        return proc.fdtable.dup(fd)

    def unlink(self, proc: Process, path: str) -> None:
        """unlink(2): remove a name; open files keep the vnode alive."""
        self._charge_syscall()
        self.vfs.unlink(path)

    def mkdir(self, proc: Process, path: str) -> None:
        """mkdir(2)."""
        self._charge_syscall()
        self.vfs.mkdir(path)

    def mmap_file(self, proc: Process, fd: int, nbytes: int,
                  shared: bool = True) -> int:
        """Map a file's vnode object into the address space."""
        self._charge_syscall()
        file = proc.fdtable.get(fd)
        vnode = file.vnode
        assert vnode.vmobject is not None
        vnode.vmobject.grow(pages_of(nbytes))
        from .vm.vmmap import INHERIT_COPY
        inheritance = INHERIT_SHARE if shared else INHERIT_COPY
        addr = proc.vmspace.mmap(nbytes, vmobject=vnode.vmobject,
                                 inheritance=inheritance,
                                 name=f"file:{vnode.inode}")
        if not shared:
            entry = proc.vmspace.entry_at(addr)
            entry.needs_copy = True  # MAP_PRIVATE
        return addr

    # -- pipes ----------------------------------------------------------------------------

    def pipe(self, proc: Process) -> Tuple[int, int]:
        """pipe(2): one pipe object behind a read fd and a write fd."""
        self._charge_syscall()
        pipe_obj = Pipe(self)
        rfile = OpenFile(self, pipe_obj, DTYPE_PIPE, O_RDONLY)
        wfile = OpenFile(self, pipe_obj, DTYPE_PIPE, O_WRONLY)
        pipe_obj.unref()  # the two OpenFiles hold the references now
        rfd = proc.fdtable.install(rfile)
        wfd = proc.fdtable.install(wfile)
        rfile.unref()
        wfile.unref()
        return rfd, wfd

    # -- UNIX sockets -----------------------------------------------------------------------

    def unix_socket(self, proc: Process, sock_type: str = "stream") -> int:
        """socket(AF_UNIX): a fresh UNIX domain socket fd."""
        self._charge_syscall()
        sock = UnixSocket(self, sock_type)
        file = OpenFile(self, sock, DTYPE_SOCKET)
        sock.unref()
        fd = proc.fdtable.install(file)
        file.unref()
        return fd

    def socketpair(self, proc: Process) -> Tuple[int, int]:
        """socketpair(2): two connected UNIX sockets."""
        self._charge_syscall()
        left, right = UnixSocket.socketpair(self)
        lfile = OpenFile(self, left, DTYPE_SOCKET)
        rfile = OpenFile(self, right, DTYPE_SOCKET)
        left.unref()
        right.unref()
        lfd = proc.fdtable.install(lfile)
        rfd = proc.fdtable.install(rfile)
        lfile.unref()
        rfile.unref()
        return lfd, rfd

    def sock_of(self, proc: Process, fd: int):
        """The socket object behind a socket fd (test/app helper)."""
        file = proc.fdtable.get(fd)
        if file.ftype != DTYPE_SOCKET:
            raise BadFileDescriptor(f"fd {fd} is not a socket")
        return file.fobj

    # -- network sockets --------------------------------------------------------------------

    def udp_socket(self, proc: Process) -> int:
        """socket(AF_INET, SOCK_DGRAM)."""
        self._charge_syscall()
        sock = UDPSocket(self)
        file = OpenFile(self, sock, DTYPE_SOCKET)
        sock.unref()
        fd = proc.fdtable.install(file)
        file.unref()
        return fd

    def tcp_socket(self, proc: Process) -> int:
        """socket(AF_INET, SOCK_STREAM)."""
        self._charge_syscall()
        sock = TCPSocket(self)
        file = OpenFile(self, sock, DTYPE_SOCKET)
        sock.unref()
        fd = proc.fdtable.install(file)
        file.unref()
        return fd

    def accept(self, proc: Process, fd: int) -> int:
        """Accept a pending connection; returns the new socket's fd."""
        self._charge_syscall()
        listener = self.sock_of(proc, fd)
        accepted = listener.accept()
        file = OpenFile(self, accepted, DTYPE_SOCKET)
        newfd = proc.fdtable.install(file)
        file.unref()
        return newfd

    # -- kqueue ---------------------------------------------------------------------------------

    def kqueue(self, proc: Process) -> int:
        """kqueue(2): a kernel event queue fd."""
        self._charge_syscall()
        kq = KQueue(self)
        file = OpenFile(self, kq, DTYPE_KQUEUE)
        kq.unref()
        fd = proc.fdtable.install(file)
        file.unref()
        return fd

    # -- shared memory ----------------------------------------------------------------------------

    def shm_open(self, proc: Process, name: str, size: int) -> int:
        """shm_open(3): create/open a POSIX shared memory object."""
        self._charge_syscall()
        segment = self.posix_shm.open(name, size, create=True)
        file = OpenFile(self, segment, DTYPE_SHM)
        fd = proc.fdtable.install(file)
        file.unref()
        return fd

    def shm_mmap(self, proc: Process, fd: int) -> int:
        """Map a POSIX shm descriptor (MAP_SHARED)."""
        self._charge_syscall()
        file = proc.fdtable.get(fd)
        if file.ftype != DTYPE_SHM:
            raise BadFileDescriptor(f"fd {fd} is not a shm descriptor")
        segment = file.fobj
        return proc.vmspace.mmap(segment.size, vmobject=segment.vmobject,
                                 inheritance=INHERIT_SHARE,
                                 name=f"shm:{segment.name}")

    def shmget(self, key: int, size: int, create: bool = True) -> int:
        """shmget(2): find or create a System V segment by key."""
        self.check_alive()
        return self.sysv_shm.shmget(key, size, create=create)

    def shmat(self, proc: Process, shmid: int) -> int:
        """shmat(2): map a System V segment by shmid."""
        self._charge_syscall()
        segment = self.sysv_shm.segment(shmid)
        return proc.vmspace.mmap(segment.size, vmobject=segment.vmobject,
                                 inheritance=INHERIT_SHARE,
                                 name=f"shm:{segment.name}")

    # -- pseudoterminals ------------------------------------------------------------------------------

    def open_pty(self, proc: Process) -> Tuple[int, int]:
        """posix_openpt + open slave; returns (master fd, slave fd)."""
        self._charge_syscall()
        pty = Pty(self, self._next_pty_unit)
        self._next_pty_unit += 1
        master = OpenFile(self, pty, DTYPE_PTS, O_RDWR)
        slave = OpenFile(self, pty, DTYPE_PTS, O_RDWR)
        pty.unref()
        mfd = proc.fdtable.install(master)
        sfd = proc.fdtable.install(slave)
        master.unref()
        slave.unref()
        return mfd, sfd

    # -- devices ------------------------------------------------------------------------------------------

    def open_device(self, proc: Process, name: str) -> int:
        """Open a whitelisted device node."""
        self._charge_syscall()
        device = DeviceFile(self, name)
        file = OpenFile(self, device, DTYPE_DEVICE)
        device.unref()
        fd = proc.fdtable.install(file)
        file.unref()
        return fd

    def map_hpet(self, proc: Process) -> int:
        """Map the HPET registers read-only (§5.3)."""
        self._charge_syscall()
        device = DeviceFile(self, "hpet")
        assert device.vmobject is not None
        addr = proc.vmspace.mmap(PAGE_SIZE, protection=PROT_READ,
                                 vmobject=device.vmobject,
                                 inheritance=INHERIT_SHARE, name="hpet")
        device.unref()
        return addr

    # -- crash --------------------------------------------------------------------------------------------

    def mark_crashed(self) -> None:
        """Flip the crash flag; every further syscall raises."""
        self.crashed = True
