"""On-disk record envelopes.

Every object record and checkpoint metadata blob the store writes is a
:mod:`repro.serde` document wrapped in a small typed envelope, so
recovery can sanity-check what it reads before trusting it.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from .. import serde
from ..errors import CorruptRecord

REC_SUPERBLOCK = "superblock"
REC_CATALOG = "catalog"
REC_CKPT_META = "ckpt-meta"
REC_OBJECT = "object"
REC_OBJECT_BATCH = "object-batch"
REC_JOURNAL = "journal"
REC_SWAP = "swap"
REC_FLIGHTREC = "flightrec"

_KINDS = (REC_SUPERBLOCK, REC_CATALOG, REC_CKPT_META, REC_OBJECT,
          REC_OBJECT_BATCH, REC_JOURNAL, REC_SWAP, REC_FLIGHTREC)


def encode(kind: str, body: Any) -> bytes:
    """Wrap a body in a typed, checksummed envelope."""
    if kind not in _KINDS:
        raise CorruptRecord(f"unknown record kind {kind!r}")
    return serde.dumps({"kind": kind, "body": body})


def decode(data: bytes, expect: str) -> Any:
    """Unwrap an envelope, checking the expected kind."""
    document = serde.loads(data)
    if not isinstance(document, dict) or "kind" not in document:
        raise CorruptRecord("record missing envelope")
    if document["kind"] != expect:
        raise CorruptRecord(
            f"expected {expect!r} record, found {document['kind']!r}")
    return document["body"]


def encode_object(oid: int, otype: str, state: Any) -> bytes:
    """Envelope for one serialized kernel object."""
    return encode(REC_OBJECT, {"oid": oid, "otype": otype, "state": state})


def decode_object(data: bytes) -> Tuple[int, str, Any]:
    """(oid, otype, state) from an object record."""
    body = decode(data, REC_OBJECT)
    return body["oid"], body["otype"], body["state"]


def encode_objects(encoded_records: Sequence[bytes]) -> bytes:
    """Batch envelope wrapping pre-encoded object records.

    A checkpoint stages its records into one extent per batch instead
    of one per object; the inner payloads are the unchanged per-object
    envelopes, so the batch amortizes extent allocation and write
    submission without a second serialization format.
    """
    return encode(REC_OBJECT_BATCH, {"records": list(encoded_records)})


def decode_objects(data: bytes) -> List[Tuple[int, str, Any]]:
    """Every ``(oid, otype, state)`` in a record extent.

    Accepts both a single-object envelope (legacy extents, single-
    record checkpoints) and a batch envelope.
    """
    document = serde.loads(data)
    if not isinstance(document, dict) or "kind" not in document:
        raise CorruptRecord("record missing envelope")
    if document["kind"] == REC_OBJECT:
        body = document["body"]
        return [(body["oid"], body["otype"], body["state"])]
    if document["kind"] != REC_OBJECT_BATCH:
        raise CorruptRecord(
            f"expected object record(s), found {document['kind']!r}")
    return [decode_object(item) for item in document["body"]["records"]]
