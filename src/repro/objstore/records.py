"""On-disk record envelopes.

Every object record and checkpoint metadata blob the store writes is a
:mod:`repro.serde` document wrapped in a small typed envelope, so
recovery can sanity-check what it reads before trusting it.
"""

from __future__ import annotations

from typing import Any, Tuple

from .. import serde
from ..errors import CorruptRecord

REC_SUPERBLOCK = "superblock"
REC_CATALOG = "catalog"
REC_CKPT_META = "ckpt-meta"
REC_OBJECT = "object"
REC_JOURNAL = "journal"
REC_SWAP = "swap"

_KINDS = (REC_SUPERBLOCK, REC_CATALOG, REC_CKPT_META, REC_OBJECT,
          REC_JOURNAL, REC_SWAP)


def encode(kind: str, body: Any) -> bytes:
    """Wrap a body in a typed, checksummed envelope."""
    if kind not in _KINDS:
        raise CorruptRecord(f"unknown record kind {kind!r}")
    return serde.dumps({"kind": kind, "body": body})


def decode(data: bytes, expect: str) -> Any:
    """Unwrap an envelope, checking the expected kind."""
    document = serde.loads(data)
    if not isinstance(document, dict) or "kind" not in document:
        raise CorruptRecord("record missing envelope")
    if document["kind"] != expect:
        raise CorruptRecord(
            f"expected {expect!r} record, found {document['kind']!r}")
    return document["body"]


def encode_object(oid: int, otype: str, state: Any) -> bytes:
    """Envelope for one serialized kernel object."""
    return encode(REC_OBJECT, {"oid": oid, "otype": otype, "state": state})


def decode_object(data: bytes) -> Tuple[int, str, Any]:
    """(oid, otype, state) from an object record."""
    body = decode(data, REC_OBJECT)
    return body["oid"], body["otype"], body["state"]
