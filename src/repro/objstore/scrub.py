"""Offline integrity scrub over the versioned object store.

The commit protocol promises that everything reachable from a valid
superblock is durable and consistent; the scrubber *checks* that
promise the way a versioned-OSD fsck would, walking the on-disk object
graph top-down:

    superblock slots → catalog → checkpoint metadata records →
    object record extents → page data extents

verifying along the way:

* **Checksums** — every metadata/record extent decodes through the
  :mod:`repro.serde` envelope (CRC32 + strict TLV), so a flipped byte
  anywhere in a record surfaces as a ``checksum`` finding.
* **Reachability** — every extent a checkpoint references (its own
  metadata, object records, page data) actually exists on the device;
  a dangling pointer is a ``dangling`` finding.
* **Reference counts** — the per-extent refcounts implied by the
  checkpoints' ``owned_extents`` match the mounted store's in-memory
  counts, and no live extent sits on the superblock's free list.
* **Liveness** — incremental checkpoints leave an unchanged object's
  record in an ancestor delta, so every OID in a checkpoint's
  effective live set must still resolve to a record somewhere along
  its parent chain.  A live OID with no reachable record means GC
  forwarding lost state (the exact failure record copy-forwarding
  exists to prevent).
* **Shadow chains** — for live consistency groups (when an
  orchestrator is passed), each tracked object's shadow chain holds at
  most :data:`MAX_SHADOW_DEPTH` shadows above its base: the eager
  collapse invariant of §6.  Ablation modes that let chains grow are
  exactly what this catches.

Results land in a :class:`ScrubReport` and in telemetry counters
(``sls.scrub.*``), and ``sls scrub`` exposes the walk on the CLI.
The scrub only ever *reads* the device; it never repairs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core import events, telemetry, tracing
from ..errors import CorruptRecord, StoreError
from . import records
from .checkpoint import CheckpointInfo

#: Shadow objects allowed above a chain's base: the active top plus at
#: most one frozen (flushing / awaiting collapse) shadow (§6).
MAX_SHADOW_DEPTH = 2

#: Finding kinds.
SUPERBLOCK = "superblock"
CHECKSUM = "checksum"
DANGLING = "dangling"
REFCOUNT = "refcount"
FREELIST = "freelist"
CHAIN = "shadow-chain"
LIVENESS = "liveness"


class Finding:
    """One integrity violation the scrub observed."""

    __slots__ = ("kind", "detail", "ckpt_id")

    def __init__(self, kind: str, detail: str,
                 ckpt_id: Optional[int] = None) -> None:
        self.kind = kind
        self.detail = detail
        self.ckpt_id = ckpt_id

    def __repr__(self) -> str:
        where = f" (ckpt {self.ckpt_id})" if self.ckpt_id is not None else ""
        return f"Finding({self.kind}: {self.detail}{where})"


class ScrubReport:
    """Everything one scrub pass saw, plus its verdict."""

    def __init__(self) -> None:
        self.findings: List[Finding] = []
        #: Set by :func:`scrub` so each finding also lands in the
        #: structured event log at the sim-instant it was observed.
        self.clock: Optional[Any] = None
        self.superblocks_valid = 0
        self.generation: Optional[int] = None
        self.checkpoints_scanned = 0
        self.records_verified = 0
        self.page_extents_verified = 0
        self.extents_counted = 0
        self.chains_checked = 0
        self.liveness_checked = 0
        self.stats = telemetry.StatsView(
            "sls.scrub",
            keys=("runs", "checkpoints", "records", "page_extents",
                  "chains", "liveness", "findings"))

    @property
    def ok(self) -> bool:
        return not self.findings

    def add(self, kind: str, detail: str,
            ckpt_id: Optional[int] = None) -> None:
        self.findings.append(Finding(kind, detail, ckpt_id))
        self.stats["findings"] += 1
        if self.clock is not None:
            events.emit(self.clock.now(), events.SCRUB_FINDING,
                        finding=kind, detail=detail, ckpt=ckpt_id)

    def __repr__(self) -> str:
        verdict = "clean" if self.ok else f"{len(self.findings)} finding(s)"
        return (f"ScrubReport({verdict}: {self.checkpoints_scanned} ckpts, "
                f"{self.records_verified} records, "
                f"{self.page_extents_verified} page extents)")


def _read_superblocks(device: Any
                      ) -> List[Tuple[int, Optional[dict], bool]]:
    """(slot, decoded-or-None, slot-holds-data) for both slots.

    The third element distinguishes a slot that was simply never
    written (young store: only one generation so far) from one that
    holds bytes which no longer decode — only the latter is damage.
    """
    from .store import SUPERBLOCK_SLOTS

    slots = []
    for slot in SUPERBLOCK_SLOTS:
        decoded = None
        present = bool(device.has_extent(slot))
        if present:
            try:
                payload = device.read(slot)
                if isinstance(payload, bytes):
                    decoded = records.decode(payload, records.REC_SUPERBLOCK)
            except (CorruptRecord, StoreError):
                decoded = None
        slots.append((slot, decoded, present))
    return slots


def _scan_checkpoint(store: Any, report: ScrubReport,
                     info: CheckpointInfo) -> None:
    """Verify one checkpoint's record and page extents."""
    device = store.device
    # Record extents are shared by every OID staged in the same batch:
    # read + checksum each distinct extent once, then check per-OID
    # membership against the decoded batch.
    batch_oids: Dict[int, Optional[Set[int]]] = {}
    batch_errors: Dict[int, str] = {}
    for oid, (extent, _length) in sorted(info.object_records.items()):
        if not device.has_extent(extent):
            report.add(DANGLING,
                       f"object record for oid {oid} points at missing "
                       f"extent {extent}", info.ckpt_id)
            continue
        if extent not in batch_oids:
            payload = device.read(extent)
            if not isinstance(payload, bytes):
                batch_oids[extent] = None
                batch_errors[extent] = (
                    f"object record extent {extent} holds synthetic data")
            else:
                try:
                    batch_oids[extent] = {
                        r_oid for r_oid, _otype, _state
                        in records.decode_objects(payload)}
                except CorruptRecord as exc:
                    batch_oids[extent] = None
                    batch_errors[extent] = (
                        f"object record at extent {extent}: {exc}")
        members = batch_oids[extent]
        if members is None:
            report.add(CHECKSUM, batch_errors[extent], info.ckpt_id)
            continue
        if oid not in members:
            report.add(CHECKSUM,
                       f"object record extent {extent} does not contain "
                       f"oid {oid} the catalog maps to it", info.ckpt_id)
        report.records_verified += 1
        report.stats["records"] += 1

    for oid, page_map in sorted(info.pages.items()):
        for pindex, locator in sorted(page_map.items()):
            if locator.kind != "ext":
                continue  # synthetic: content is a function of the seed
            if not device.has_extent(locator.extent):
                report.add(DANGLING,
                           f"page {pindex} of oid {oid} points at missing "
                           f"extent {locator.extent}", info.ckpt_id)
                continue
            payload = device.read(locator.extent)
            from ..hw.nvme import payload_length
            if locator.byte_off + locator.length > payload_length(payload):
                report.add(DANGLING,
                           f"page {pindex} of oid {oid} overruns extent "
                           f"{locator.extent}", info.ckpt_id)
                continue
            report.page_extents_verified += 1
            report.stats["page_extents"] += 1


def _scan_refcounts(store: Any, report: ScrubReport,
                    checkpoints: Dict[int, CheckpointInfo],
                    superblock: dict) -> None:
    """Recompute extent refcounts from metadata; cross-check the
    mounted store and the superblock's free list."""
    expected: Dict[int, int] = {}
    lengths: Dict[int, int] = {}
    for info in checkpoints.values():
        for offset, length in info.owned_extents:
            expected[offset] = expected.get(offset, 0) + 1
            lengths[offset] = length
        report.extents_counted += len(info.owned_extents)

    if store is not None and getattr(store, "_mounted", False):
        for offset, count in sorted(expected.items()):
            have = store.extent_refs.get(offset, 0)
            if have != count:
                report.add(REFCOUNT,
                           f"extent {offset}: metadata implies "
                           f"{count} reference(s), store tracks {have}")
        for offset, have in sorted(store.extent_refs.items()):
            if offset not in expected:
                report.add(REFCOUNT,
                           f"extent {offset}: store tracks {have} "
                           f"reference(s) but no checkpoint owns it")

    free_spans = [(pair[0], pair[1]) for pair in superblock["free_list"]]
    for offset in sorted(expected):
        length = lengths[offset]
        for free_off, free_len in free_spans:
            if offset < free_off + free_len and free_off < offset + length:
                report.add(FREELIST,
                           f"live extent [{offset}, {offset + length}) "
                           f"overlaps free span [{free_off}, "
                           f"{free_off + free_len})")
                break


def _meta_parent_chain(checkpoints: Dict[int, CheckpointInfo],
                       ckpt_id: int) -> List[CheckpointInfo]:
    """Parent chain (newest first) over the *decoded* metadata set.

    A parent missing from the catalog terminates the walk — that hole
    is already a ``dangling`` finding from the parent-pointer scan.
    """
    chain: List[CheckpointInfo] = []
    current: Optional[int] = ckpt_id
    while current is not None:
        info = checkpoints.get(current)
        if info is None:
            break
        chain.append(info)
        current = info.parent
    return chain


def _scan_liveness(report: ScrubReport,
                   checkpoints: Dict[int, CheckpointInfo]) -> None:
    """Cross-checkpoint record reachability.

    For every checkpoint whose chain carries liveness info, recompute
    the effective live set (mirroring
    :meth:`ObjectStore.effective_live_oids`, but over the decoded
    on-disk metadata) and require each live OID to resolve to an
    object record somewhere along the parent chain.  Chains without
    liveness info (legacy stores, pure-partial histories) are skipped
    — they have nothing to cross-check against.
    """
    for ckpt_id in sorted(checkpoints):
        chain = _meta_parent_chain(checkpoints, ckpt_id)
        base: Optional[set] = None
        newer: set = set()
        for info in chain:
            if not info.partial and info.live_oids is not None:
                base = info.live_oids
                break
            newer.update(info.object_records)
            newer.update(info.pages)
        if base is None:
            continue
        report.liveness_checked += 1
        report.stats["liveness"] += 1
        live = base | newer
        merged: set = set()
        for info in chain:
            merged.update(info.object_records)
        missing = sorted(live - merged)
        for oid in missing[:8]:
            report.add(LIVENESS,
                       f"oid {oid} is live at checkpoint {ckpt_id} but no "
                       f"chain delta holds its record", ckpt_id)
        if len(missing) > 8:
            report.add(LIVENESS,
                       f"... and {len(missing) - 8} more unreachable live "
                       f"oid(s)", ckpt_id)


def _chain_segment_len(track: Any) -> int:
    """Objects in the track's chain segment (same logical object),
    walking from the active top down — the walk
    :func:`~repro.core.shadowing.merged_chain_pages` performs."""
    top = track.active
    length = 0
    for obj in top.chain():
        if obj is not top and obj.sls_oid not in (None, top.sls_oid):
            break
        length += 1
    return length


def _scan_shadow_chains(sls: Any, report: ScrubReport) -> None:
    for group in sorted(sls.groups.values(), key=lambda g: g.group_id):
        for oid, track in sorted(group.tracks.items()):
            if track.active is None:
                continue
            report.chains_checked += 1
            report.stats["chains"] += 1
            depth = _chain_segment_len(track) - 1  # shadows above base
            if depth > MAX_SHADOW_DEPTH:
                report.add(CHAIN,
                           f"group {group.group_id} oid {oid}: {depth} "
                           f"shadows above the chain base "
                           f"(limit {MAX_SHADOW_DEPTH})")


def scrub(store: Any, sls: Optional[Any] = None) -> ScrubReport:
    """Scrub the store's on-disk object graph; returns the report.

    ``store`` supplies the device and (when mounted) the in-memory
    refcounts to cross-check.  Passing the orchestrator as ``sls``
    additionally checks live groups' shadow-chain invariant.  The walk
    runs under a ``scrub`` operation trace; findings are also emitted
    into the structured event log.
    """
    report = ScrubReport()
    report.clock = getattr(store, "clock", None)
    report.stats["runs"] += 1
    clock = report.clock
    if clock is None:
        return _scrub_walk(store, sls, report)
    with tracing.trace(clock, tracing.SCRUB) as trace_obj:
        _scrub_walk(store, sls, report)
        if trace_obj is not None:
            trace_obj.complete = True
    return report


def _scrub_walk(store: Any, sls: Optional[Any],
                report: ScrubReport) -> ScrubReport:
    device = store.device

    slots = _read_superblocks(device)
    valid = [sb for _slot, sb, _present in slots if sb is not None]
    report.superblocks_valid = len(valid)
    for slot, decoded, present in slots:
        if present and decoded is None:
            # Named per slot so ``sls scrub --repair`` can rewrite the
            # damaged mirror from its valid twin.
            report.add(SUPERBLOCK,
                       f"superblock slot {slot} holds undecodable data")
    if not valid:
        if not report.findings:
            report.add(SUPERBLOCK, "no valid superblock in either slot")
        return report
    superblock = max(valid, key=lambda sb: sb["generation"])
    report.generation = superblock["generation"]

    catalog_extent = tuple(superblock["catalog_extent"])
    if not device.has_extent(catalog_extent[0]):
        report.add(DANGLING,
                   f"superblock generation {report.generation} points at "
                   f"missing catalog extent {catalog_extent[0]}")
        return report
    try:
        payload = device.read(catalog_extent[0])
        if not isinstance(payload, bytes):
            raise CorruptRecord("catalog extent holds synthetic data")
        catalog = records.decode(payload, records.REC_CATALOG)
    except (CorruptRecord, StoreError) as exc:
        report.add(CHECKSUM, f"catalog extent {catalog_extent[0]}: {exc}")
        return report

    checkpoints: Dict[int, CheckpointInfo] = {}
    for ckpt_id, entry in sorted(catalog["checkpoints"].items(),
                                 key=lambda item: int(item[0])):
        meta_extent = tuple(entry["meta_extent"])
        if not device.has_extent(meta_extent[0]):
            report.add(DANGLING,
                       f"checkpoint {ckpt_id} metadata extent "
                       f"{meta_extent[0]} missing", int(ckpt_id))
            continue
        try:
            payload = device.read(meta_extent[0])
            if not isinstance(payload, bytes):
                raise CorruptRecord("metadata extent holds synthetic data")
            meta = records.decode(payload, records.REC_CKPT_META)
            info = CheckpointInfo.decode_meta(meta)
        except (CorruptRecord, StoreError) as exc:
            report.add(CHECKSUM,
                       f"checkpoint {ckpt_id} metadata: {exc}",
                       int(ckpt_id))
            continue
        info.meta_extent = meta_extent
        checkpoints[info.ckpt_id] = info
        report.checkpoints_scanned += 1
        report.stats["checkpoints"] += 1
        _scan_checkpoint(store, report, info)

    # Parent pointers must resolve within the catalog (deleted parents
    # are rewritten out by GC before the old metadata goes away).
    for info in checkpoints.values():
        if info.parent is not None and info.parent not in checkpoints \
                and str(info.parent) not in catalog["checkpoints"]:
            report.add(DANGLING,
                       f"checkpoint {info.ckpt_id} parent {info.parent} "
                       f"is not in the catalog", info.ckpt_id)

    _scan_refcounts(store, report, checkpoints, superblock)
    _scan_liveness(report, checkpoints)
    if sls is not None:
        _scan_shadow_chains(sls, report)
    return report
