"""Extent allocation for the object store.

Never-overwrite semantics fall out of the allocator: live extents are
simply never handed out again until freed by GC.  Allocations are
4 KiB aligned; *data* allocations additionally cap at one stripe unit
(64 KiB) so consecutive page batches round-robin across the array's
devices — that fan-out is where the paper's ~5.4 GiB/s aggregate flush
bandwidth comes from, while single-stream journal slots stay on one
device at a time.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

from ..errors import InvalidArgument, StoreFull
from ..units import KiB, STRIPE_SIZE

ALIGN = 4 * KiB


def _align_up(value: int, align: int = ALIGN) -> int:
    return (value + align - 1) // align * align


class ExtentAllocator:
    """Bump allocator with a first-fit free list."""

    def __init__(self, capacity: int, reserved: int = 2 * STRIPE_SIZE,
                 cursor: Optional[int] = None) -> None:
        if capacity <= reserved:
            raise InvalidArgument("device smaller than reserved area")
        self.capacity = capacity
        self.reserved = reserved
        self.cursor = cursor if cursor is not None else reserved
        #: Freed extents: sorted list of (offset, length).
        self._free: List[Tuple[int, int]] = []
        self.allocated_bytes = 0
        self.freed_bytes = 0

    def alloc(self, nbytes: int) -> int:
        """Allocate an extent of at least ``nbytes``; returns offset."""
        if nbytes <= 0:
            raise InvalidArgument("extent size must be positive")
        want = _align_up(nbytes)
        for index, (offset, length) in enumerate(self._free):
            if length >= want:
                remainder = length - want
                if remainder >= ALIGN:
                    self._free[index] = (offset + want, remainder)
                else:
                    del self._free[index]
                self.allocated_bytes += want
                return offset
        if self.cursor + want > self.capacity:
            raise StoreFull(
                f"object store full: need {want}B, "
                f"{self.capacity - self.cursor}B left")
        offset = self.cursor
        self.cursor += want
        self.allocated_bytes += want
        return offset

    def free(self, offset: int, nbytes: int) -> None:
        """Return an extent to the free list (coalescing neighbours)."""
        length = _align_up(nbytes)
        entry = (offset, length)
        index = bisect.bisect_left(self._free, entry)
        # Coalesce with successor.
        if index < len(self._free):
            next_off, next_len = self._free[index]
            if offset + length == next_off:
                entry = (offset, length + next_len)
                del self._free[index]
        # Coalesce with predecessor.
        if index > 0:
            prev_off, prev_len = self._free[index - 1]
            if prev_off + prev_len == entry[0]:
                entry = (prev_off, prev_len + entry[1])
                del self._free[index - 1]
                index -= 1
        self._free.insert(index, entry)
        self.freed_bytes += length

    def free_bytes(self) -> int:
        """Unallocated bytes remaining (tail + free list)."""
        tail = self.capacity - self.cursor
        return tail + sum(length for _off, length in self._free)

    def used_bytes(self) -> int:
        """Live allocated bytes."""
        return self.allocated_bytes - self.freed_bytes

    def data_chunks(self, total: int) -> List[int]:
        """Split a data payload into stripe-unit-sized chunk lengths so
        the flush fans out across devices."""
        chunks = []
        remaining = total
        while remaining > 0:
            take = min(remaining, STRIPE_SIZE)
            chunks.append(take)
            remaining -= take
        return chunks
