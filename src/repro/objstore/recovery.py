"""Crash recovery: find the last complete state of the store.

The commit protocol guarantees the superblock only ever points at
fully durable state, so recovery is: read both superblock slots, pick
the valid one with the highest generation, and rebuild the in-memory
maps by reading the catalog and every checkpoint's metadata record.
Incomplete checkpoints are invisible by construction (their metadata
was never reachable), satisfying §7: "Aurora prevents resuming
incomplete checkpoints by finding the last complete checkpoint after
a crash."
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import CorruptRecord, StoreError
from . import records
from .blockalloc import ExtentAllocator
from .checkpoint import CheckpointInfo
from .journal import Journal
from .oid import OIDAllocator
from .store_state import RecoveredState  # re-exported dataclass


def _read_superblock(store: Any, slot: int) -> Optional[dict]:
    if not store.device.has_extent(slot):
        return None
    try:
        payload = store.device.read(slot)
        if not isinstance(payload, bytes):
            return None
        return records.decode(payload, records.REC_SUPERBLOCK)
    except (CorruptRecord, StoreError):
        return None


def recover(store: Any) -> Optional[RecoveredState]:
    """Rebuild ``store``'s in-memory state from the device.

    Returns None when no valid superblock exists (blank array).
    Tries superblock generations newest-first: if the newest
    generation's metadata turns out corrupt (a torn catalog or
    checkpoint record), recovery falls back to the previous
    generation rather than failing the mount.
    """
    from .store import SUPERBLOCK_SLOTS

    candidates = []
    for slot in SUPERBLOCK_SLOTS:
        superblock = _read_superblock(store, slot)
        if superblock is not None:
            candidates.append(superblock)
    if not candidates:
        return None
    candidates.sort(key=lambda sb: sb["generation"], reverse=True)
    last_error: Optional[Exception] = None
    for superblock in candidates:
        try:
            return _rebuild(store, superblock)
        except (CorruptRecord, StoreError) as exc:
            last_error = exc
    raise StoreError(f"no recoverable superblock generation: {last_error}")


def _rebuild(store: Any, superblock: dict) -> RecoveredState:
    store._generation = superblock["generation"]
    store.alloc = ExtentAllocator(store.device.capacity,
                                  cursor=superblock["alloc_cursor"])
    store.alloc._free = [(pair[0], pair[1])
                         for pair in superblock["free_list"]]
    store.oids = OIDAllocator(next_serial=superblock["oid_cursor"])
    store._ckpt_counter = superblock["ckpt_counter"]
    store._catalog_extent = tuple(superblock["catalog_extent"])
    # Flight-recorder anchor: tolerate its absence (pre-recorder
    # images mount unchanged).
    anchor = superblock.get("flightrec")
    store._flightrec_extent = tuple(anchor) if anchor else None
    # Promised cluster epoch: tolerate its absence (single-machine and
    # pre-fencing images mount unchanged) — the promise survives the
    # crash exactly because it rides the superblock.
    store.cluster_epoch = superblock.get("cluster_epoch", 0)

    catalog = records.decode(store.device.read(store._catalog_extent[0]),
                             records.REC_CATALOG)
    store.checkpoints = {}
    store.extent_refs = {}
    for _ckpt_id, entry in catalog["checkpoints"].items():
        meta_extent = tuple(entry["meta_extent"])
        meta = records.decode(store.device.read(meta_extent[0]),
                              records.REC_CKPT_META)
        info = CheckpointInfo.decode_meta(meta)
        info.meta_extent = meta_extent
        info.complete = True
        store.checkpoints[info.ckpt_id] = info
        for offset, _length in info.owned_extents:
            store.extent_refs[offset] = store.extent_refs.get(offset, 0) + 1

    store.journals = {}
    for _jid, meta in superblock["journal_dir"].items():
        journal = Journal.decode_meta(store, meta)
        journal.replay()  # fixes epoch/head from the header slot
        store.journals[journal.jid] = journal

    return RecoveredState(
        generation=store._generation,
        checkpoint_count=len(store.checkpoints),
        journal_count=len(store.journals),
    )
