"""Small shared value types for the store/recovery modules."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RecoveredState:
    """Summary of what :func:`repro.objstore.recovery.recover` found."""

    generation: int
    checkpoint_count: int
    journal_count: int
