"""Garbage collection: WAFL/ZFS-style snapshot deletion (§7).

Deleting the oldest checkpoint of a group *transfers* the pieces of
its delta that are still visible through younger checkpoints (pages
and object records the children never overwrote), then frees whatever
nothing references.  There is no log cleaner and no background
compaction — reclamation cost is proportional to the deleted delta,
never to store size, so it cannot stall the 100 Hz checkpoint loop.

Extent liveness is tracked with an in-memory reference count per
extent (rebuilt from checkpoint metadata at recovery), because one
packed data extent may back pages adopted by different children after
a restore forked the history.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..errors import InvalidArgument, NoSuchCheckpoint
from . import records
from .checkpoint import CheckpointInfo


def _children_of(store, ckpt_id: int) -> List[CheckpointInfo]:
    return [info for info in store.checkpoints.values()
            if info.parent == ckpt_id]


def delete_checkpoint(store, ckpt_id: int) -> int:
    """Delete one checkpoint; returns bytes reclaimed.

    Only a chain head (a checkpoint whose parent is already deleted or
    never existed) may be removed, mirroring how snapshot stores
    reclaim history from the old end.
    """
    info = store.get_checkpoint(ckpt_id)
    if info.parent is not None and info.parent in store.checkpoints:
        raise InvalidArgument(
            f"checkpoint {ckpt_id} still has ancestor {info.parent}; "
            f"delete from the old end of the chain")
    children = _children_of(store, ckpt_id)

    refs: Dict[int, int] = store.extent_refs
    # Transfer still-visible state into each child delta.
    for child in children:
        adopted: Set[int] = set()
        for oid, page_map in info.pages.items():
            child_map = child.pages.setdefault(oid, {})
            for pindex, locator in page_map.items():
                if pindex not in child_map:
                    child_map[pindex] = locator
                    if locator.kind == "ext":
                        adopted.add(locator.extent)
        for oid, extent in info.object_records.items():
            if oid not in child.object_records:
                child.object_records[oid] = extent
                adopted.add(extent[0])
        for offset, length in info.owned_extents:
            if offset in adopted:
                child.owned_extents.append((offset, length))
                refs[offset] = refs.get(offset, 0) + 1
        child.parent = info.parent

    # Drop the deleted checkpoint's references; free what hit zero.
    reclaimed = 0
    for offset, length in info.owned_extents:
        refs[offset] = refs.get(offset, 1) - 1
        if refs[offset] <= 0:
            refs.pop(offset, None)
            store.alloc.free(offset, length)
            store.device.discard_extent(offset)
            reclaimed += length
    if info.meta_extent is not None:
        store.alloc.free(*info.meta_extent)
        store.device.discard_extent(info.meta_extent[0])
        reclaimed += info.meta_extent[1]
    del store.checkpoints[ckpt_id]

    # Children metadata changed (adopted state, new parent): rewrite
    # their meta records COW-style, then flip the superblock.
    for child in children:
        payload = records.encode(records.REC_CKPT_META, child.encode_meta())
        new_extent = store.alloc.alloc(len(payload))
        store.device.write(new_extent, payload)
        if child.meta_extent is not None:
            store.alloc.free(*child.meta_extent)
            store.device.discard_extent(child.meta_extent[0])
        child.meta_extent = (new_extent, len(payload))
    store._write_catalog_and_superblock()
    return reclaimed
