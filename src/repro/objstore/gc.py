"""Garbage collection: WAFL/ZFS-style snapshot deletion (§7).

Deleting the oldest checkpoint of a group *transfers* the pieces of
its delta that are still visible through younger checkpoints, then
frees whatever nothing references.  There is no log cleaner and no
background compaction — reclamation cost is proportional to the
deleted delta, never to store size, so it cannot stall the 100 Hz
checkpoint loop.

Page extents are adopted by reference (a packed extent may back pages
shared across several children after a restore forked the history),
tracked with an in-memory reference count per extent rebuilt from
checkpoint metadata at recovery.  Object *records* are copy-forwarded
instead: the record payload (checksum included) is copied verbatim
into a fresh extent owned by the oldest surviving child, so the
victim's record extents are actually reclaimed rather than pinned by
adoption — with incremental checkpoints an unchanged object's record
would otherwise ride along forever.  Records for OIDs no surviving
checkpoint's live set can reach are dropped outright.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from ..core import telemetry
from ..errors import CorruptRecord, InvalidArgument
from . import records
from .checkpoint import CheckpointInfo


def _children_of(store: Any, ckpt_id: int) -> List[CheckpointInfo]:
    return [info for info in store.checkpoints.values()
            if info.parent == ckpt_id]


def _subtree_needed(store: Any, child: CheckpointInfo) -> Optional[Set[int]]:
    """OIDs a restore anywhere in ``child``'s subtree may still need.

    The union of effective live sets over the child and all of its
    descendants.  Returns None — forward everything — when any
    subtree checkpoint has no bounded live set (legacy metadata, or a
    chain whose newest full checkpoint predates liveness tracking).
    """
    needed: Set[int] = set()
    stack = [child]
    while stack:
        info = stack.pop()
        live = store.effective_live_oids(info.ckpt_id)
        if live is None:
            return None
        needed |= live
        stack.extend(_children_of(store, info.ckpt_id))
    return needed


def truncate_checkpoint(store: Any, ckpt_id: int) -> int:
    """Delete one checkpoint from the *new* end of the chain.

    The mirror image of :func:`delete_checkpoint`: only a checkpoint
    with no children may be truncated.  Nothing is forwarded — the
    victim is the newest state, so nobody references its delta — and
    its extents are reclaimed outright.  Quorum recovery uses this to
    discard a replica's non-quorum tail (Aurora-style truncation of
    writes that never reached the write quorum).

    Returns bytes reclaimed.
    """
    info = store.get_checkpoint(ckpt_id)
    if _children_of(store, ckpt_id):
        raise InvalidArgument(
            f"checkpoint {ckpt_id} still has descendants; truncate "
            f"from the new end of the chain")
    reclaimed = _reclaim_victim(store, info)
    del store.checkpoints[ckpt_id]
    store._write_catalog_and_superblock()
    return reclaimed


def _reclaim_victim(store: Any, info: CheckpointInfo) -> int:
    """Drop ``info``'s extent references; free whatever hit zero.

    The victim's metadata record counts too — a checkpoint that owned
    zero page extents (a pure OS-state delta) still gives back its
    record and meta extents, so reclaimed-bytes telemetry must not
    read zero for it.
    """
    refs: Dict[int, int] = store.extent_refs
    reclaimed = 0
    for offset, length in info.owned_extents:
        refs[offset] = refs.get(offset, 1) - 1
        if refs[offset] <= 0:
            refs.pop(offset, None)
            store.alloc.free(offset, length)
            store.device.discard_extent(offset)
            reclaimed += length
    if info.meta_extent is not None:
        store.alloc.free(*info.meta_extent)
        store.device.discard_extent(info.meta_extent[0])
        reclaimed += info.meta_extent[1]
    return reclaimed


def delete_checkpoint(store: Any, ckpt_id: int) -> int:
    """Delete one checkpoint; returns bytes reclaimed.

    Only a chain head (a checkpoint whose parent is already deleted or
    never existed) may be removed, mirroring how snapshot stores
    reclaim history from the old end.
    """
    info = store.get_checkpoint(ckpt_id)
    if info.parent is not None and info.parent in store.checkpoints:
        raise InvalidArgument(
            f"checkpoint {ckpt_id} still has ancestor {info.parent}; "
            f"delete from the old end of the chain")
    children = _children_of(store, ckpt_id)
    registry = telemetry.registry()

    refs: Dict[int, int] = store.extent_refs
    # Transfer still-visible state into each child delta.
    for child in children:
        needed = _subtree_needed(store, child)
        adopted: Set[int] = set()
        for oid, page_map in info.pages.items():
            if needed is not None and oid not in needed:
                continue
            child_map = child.pages.setdefault(oid, {})
            for pindex, locator in page_map.items():
                if pindex not in child_map:
                    child_map[pindex] = locator
                    if locator.kind == "ext":
                        adopted.add(locator.extent)
        forwarded = dropped = 0
        # Batched staging shares one record extent across many OIDs:
        # group the survivors by source extent so each batch payload is
        # copied forward once and every surviving OID repointed to the
        # single new copy.  (The copy is verbatim — checksum included —
        # so it may carry records of dropped OIDs as dead weight; reads
        # select by OID, so that is a space-only cost.)
        to_forward: Dict[int, List[int]] = {}
        extent_len: Dict[int, int] = {}
        for oid, extent in info.object_records.items():
            if oid in child.object_records:
                continue
            if needed is not None and oid not in needed:
                dropped += 1
                continue
            to_forward.setdefault(extent[0], []).append(oid)
            extent_len[extent[0]] = extent[1]
        for src_offset, oids in to_forward.items():
            length = extent_len[src_offset]
            payload = store.device.read(src_offset)
            if not isinstance(payload, bytes):
                raise CorruptRecord(
                    f"record extent {src_offset} holds synthetic data")
            new_offset = store.alloc.alloc(length)
            store.device.write(new_offset, payload)
            child.owned_extents.append((new_offset, length))
            refs[new_offset] = refs.get(new_offset, 0) + 1
            for oid in oids:
                child.object_records[oid] = (new_offset, length)
                forwarded += 1
        for offset, length in info.owned_extents:
            if offset in adopted:
                child.owned_extents.append((offset, length))
                refs[offset] = refs.get(offset, 0) + 1
        child.parent = info.parent
        registry.counter("sls.store.gc.records_forwarded",
                         group=info.group_id).add(forwarded)
        registry.counter("sls.store.gc.records_dropped",
                         group=info.group_id).add(dropped)

    # Drop the deleted checkpoint's references; free what hit zero.
    reclaimed = _reclaim_victim(store, info)
    del store.checkpoints[ckpt_id]

    # Children metadata changed (adopted state, new parent): rewrite
    # their meta records COW-style, then flip the superblock.
    for child in children:
        payload = records.encode(records.REC_CKPT_META, child.encode_meta())
        new_extent = store.alloc.alloc(len(payload))
        store.device.write(new_extent, payload)
        if child.meta_extent is not None:
            store.alloc.free(*child.meta_extent)
            store.device.discard_extent(child.meta_extent[0])
        child.meta_extent = (new_extent, len(payload))
    store._write_catalog_and_superblock()
    return reclaimed
